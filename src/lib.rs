//! # perconf — Perceptron-Based Branch Confidence Estimation
//!
//! A full reproduction of *"Perceptron-Based Branch Confidence
//! Estimation"* (Akkary, Srinivasan, Koltur, Patil, Refaai — HPCA
//! 2004), including every substrate the paper depends on:
//!
//! * [`workload`] — calibrated synthetic SPECint2000-like uop traces
//!   (replacing the paper's proprietary Intel LIT traces);
//! * [`bpred`] — bimodal, gshare, PAs, perceptron and McFarling hybrid
//!   branch predictors;
//! * [`core`] — the paper's contribution: perceptron confidence
//!   estimation trained on correct/incorrect outcomes, plus the JRS,
//!   enhanced-JRS, perceptron_tnt, Smith and Tyson baselines, and the
//!   pipeline-gating / branch-reversal policies;
//! * [`pipeline`] — a cycle-level out-of-order superscalar simulator
//!   with wrong-path fetch/execute modelling;
//! * [`metrics`] — PVN/Spec confusion metrics, density histograms and
//!   table rendering;
//! * [`experiments`] — drivers that regenerate every table and figure
//!   of the paper's evaluation, plus a panic-isolated, checkpointing
//!   sweep runner ([`experiments::runner`]);
//! * [`faults`] — deterministic seeded fault injection: single-bit
//!   upsets in predictor/estimator state, transient history strikes,
//!   and trace-record corruption, for the resilience extension.
//!
//! # Quickstart
//!
//! ```
//! use perconf::core::{ConfidenceEstimator, EstimateCtx, PerceptronCe, PerceptronCeConfig};
//!
//! let mut ce = PerceptronCe::new(PerceptronCeConfig::default());
//! let ctx = EstimateCtx { pc: 0x400100, history: 0b1011, predicted_taken: true };
//! let est = ce.estimate(&ctx);
//! // Train with the eventual outcome: was the branch prediction wrong?
//! ce.train(&ctx, est, /* mispredicted = */ false);
//! ```
//!
//! See `examples/` for end-to-end pipeline-gating runs and
//! `EXPERIMENTS.md` for the paper-vs-measured record.

#![forbid(unsafe_code)]

pub use perconf_bpred as bpred;
pub use perconf_core as core;
pub use perconf_experiments as experiments;
pub use perconf_faults as faults;
pub use perconf_metrics as metrics;
pub use perconf_pipeline as pipeline;
pub use perconf_workload as workload;
