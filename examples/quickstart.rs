//! Quickstart: build the paper's perceptron confidence estimator, feed
//! it a branch stream, and read off its accuracy (PVN) and coverage
//! (Spec).
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use perconf::bpred::{baseline_bimodal_gshare, BranchPredictor};
use perconf::core::{ConfidenceEstimator, EstimateCtx, PerceptronCe, PerceptronCeConfig};
use perconf::metrics::ConfusionMatrix;
use perconf::workload::{spec2000_config, WorkloadGenerator};

fn main() {
    // 1. A workload: the synthetic "gcc" benchmark (calibrated to the
    //    paper's Table 2 misprediction rate).
    let wl = spec2000_config("gcc").expect("gcc is a known benchmark");
    let mut gen = WorkloadGenerator::new(&wl);

    // 2. The paper's baseline branch predictor (Table 1) and its
    //    4 KB perceptron confidence estimator (P128W8H32, λ = 0).
    let mut predictor = baseline_bimodal_gshare();
    let mut estimator = PerceptronCe::new(PerceptronCeConfig::default());

    // 3. Run 200k branches: predict, estimate confidence, then train
    //    both structures with the architectural outcome — exactly what
    //    the pipeline does at fetch and retirement.
    let mut history = 0u64;
    let mut cm = ConfusionMatrix::new();
    let mut seen = 0u64;
    let warmup = 50_000;
    while seen < 250_000 {
        let uop = gen.next_uop();
        let Some(branch) = uop.branch else { continue };
        seen += 1;

        let predicted_taken = predictor.predict(branch.pc, history);
        let ctx = EstimateCtx {
            pc: branch.pc,
            history,
            predicted_taken,
        };
        let estimate = estimator.estimate(&ctx);
        let mispredicted = predicted_taken != branch.taken;

        if seen > warmup {
            cm.record(mispredicted, estimate.is_low());
        }

        predictor.train(branch.pc, history, branch.taken);
        estimator.train(&ctx, estimate, mispredicted);
        history = (history << 1) | u64::from(branch.taken);
    }

    // 4. The paper's two metrics.
    println!("branches measured : {}", cm.total());
    println!(
        "misprediction rate: {:.2}%",
        cm.misprediction_rate() * 100.0
    );
    println!(
        "PVN (accuracy)    : {:.0}%  — of flagged branches, how many really mispredict",
        cm.pvn() * 100.0
    );
    println!(
        "Spec (coverage)   : {:.0}%  — of mispredictions, how many were flagged",
        cm.spec() * 100.0
    );
}
