//! SMT speculation control — the paper's §1 motivation ("resources
//! that could have been allocated to ... another thread") made
//! runnable: two hardware threads share one core; gating the
//! mispredict-heavy thread hands its wasted fetch slots to its
//! neighbour.
//!
//! ```text
//! cargo run --release --example smt_gating [quiet_bench] [noisy_bench]
//! ```

use perconf::bpred::{baseline_bimodal_gshare, SimPredictor};
use perconf::core::{
    AlwaysHigh, PerceptronCe, PerceptronCeConfig, SimEstimator, SpeculationController,
};
use perconf::pipeline::{Controller, FetchPolicy, PipelineConfig, SmtSimulation};

fn plain() -> Controller {
    SpeculationController::new(
        Box::new(baseline_bimodal_gshare()) as Box<dyn SimPredictor>,
        Box::new(AlwaysHigh) as Box<dyn SimEstimator>,
    )
}

fn gated() -> Controller {
    SpeculationController::new(
        Box::new(baseline_bimodal_gshare()) as Box<dyn SimPredictor>,
        Box::new(PerceptronCe::new(PerceptronCeConfig::default())) as Box<dyn SimEstimator>,
    )
}

fn main() {
    let mut args = std::env::args().skip(1);
    let quiet = args.next().unwrap_or_else(|| "gzip".to_owned());
    let noisy = args.next().unwrap_or_else(|| "vpr".to_owned());
    let a = perconf::workload::spec2000_config(&quiet)
        .unwrap_or_else(|| panic!("unknown benchmark {quiet}"));
    let b = perconf::workload::spec2000_config(&noisy)
        .unwrap_or_else(|| panic!("unknown benchmark {noisy}"));

    let cfg = PipelineConfig::deep();
    let warm = 50_000;
    let run = 200_000;

    let mut base = SmtSimulation::new(cfg, FetchPolicy::RoundRobin, (&a, plain()), (&b, plain()));
    base.warmup_cycles(warm);
    base.run_cycles(run);

    let mut gate = SmtSimulation::new(
        cfg.gated(1),
        FetchPolicy::RoundRobin,
        (&a, plain()), // the quiet thread keeps speculating freely
        (&b, gated()), // only the noisy thread is gated
    );
    gate.warmup_cycles(warm);
    gate.run_cycles(run);

    println!("SMT: {quiet} (thread 0) + {noisy} (thread 1), 40-cycle core\n");
    println!("{:<30} {:>12} {:>14}", "", "baseline", "gated noisy t1");
    let row = |name: &str, x: f64, y: f64| println!("{name:<30} {x:>12.3} {y:>14.3}");
    row(
        &format!("{quiet} retired uops /cycle"),
        base.stats(0).retired as f64 / base.cycles() as f64,
        gate.stats(0).retired as f64 / gate.cycles() as f64,
    );
    row(
        &format!("{noisy} retired uops /cycle"),
        base.stats(1).retired as f64 / base.cycles() as f64,
        gate.stats(1).retired as f64 / gate.cycles() as f64,
    );
    row("combined IPC", base.combined_ipc(), gate.combined_ipc());
    row(
        &format!("{noisy} wrong-path fetched /kcycle"),
        base.stats(1).fetched_wrong as f64 * 1000.0 / base.cycles() as f64,
        gate.stats(1).fetched_wrong as f64 * 1000.0 / gate.cycles() as f64,
    );
    println!(
        "\n{} cycles gated on thread 1 ({:.1}% of cycles)",
        gate.stats(1).gated_cycles,
        gate.stats(1).gated_cycles as f64 * 100.0 / gate.cycles() as f64
    );
    let gain = gate.stats(0).retired as f64 / base.stats(0).retired as f64 - 1.0;
    println!(
        "neighbour throughput change: {:+.1}%  (Luo et al.'s SMT speculation-control effect)",
        gain * 100.0
    );
}
