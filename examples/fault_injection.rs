//! Fault injection: wrap the paper's predictor and confidence
//! estimator in seeded single-bit-upset adapters and watch confidence
//! quality degrade as the fault rate climbs.
//!
//! ```text
//! cargo run --release --example fault_injection
//! ```
//!
//! The same seed replays the same faults (same access numbers, same
//! bit addresses) exactly, and a rate of 0 is a bit-identical
//! passthrough — so the first row below *is* the fault-free baseline.

use perconf::bpred::{baseline_bimodal_gshare, BranchPredictor};
use perconf::core::{ConfidenceEstimator, EstimateCtx, PerceptronCe, PerceptronCeConfig};
use perconf::faults::{FaultConfig, FaultyEstimator, FaultyPredictor};
use perconf::metrics::ConfusionMatrix;
use perconf::workload::{spec2000_config, WorkloadGenerator};

fn evaluate(rate: f64) -> (ConfusionMatrix, u64, u64) {
    let wl = spec2000_config("gcc").expect("gcc is a known benchmark");
    let mut gen = WorkloadGenerator::new(&wl);

    // The adapters draw their fault schedule from the seeded config:
    // each predictor/estimator access may flip one stored state bit
    // (a persistent SRAM upset, until training overwrites it).
    let mut predictor =
        FaultyPredictor::new(baseline_bimodal_gshare(), &FaultConfig::state_only(rate, 1));
    let mut estimator = FaultyEstimator::new(
        PerceptronCe::new(PerceptronCeConfig::default()),
        &FaultConfig::state_only(rate, 2),
    );

    let mut history = 0u64;
    let mut cm = ConfusionMatrix::new();
    let mut seen = 0u64;
    let warmup = 50_000;
    while seen < 250_000 {
        let uop = gen.next_uop();
        let Some(branch) = uop.branch else { continue };
        seen += 1;

        let predicted_taken = predictor.predict(branch.pc, history);
        let ctx = EstimateCtx {
            pc: branch.pc,
            history,
            predicted_taken,
        };
        let estimate = estimator.estimate(&ctx);
        let mispredicted = predicted_taken != branch.taken;
        if seen > warmup {
            cm.record(mispredicted, estimate.is_low());
        }
        predictor.train(branch.pc, history, branch.taken);
        estimator.train(&ctx, estimate, mispredicted);
        history = (history << 1) | u64::from(branch.taken);
    }
    (cm, predictor.injected(), estimator.injected())
}

fn main() {
    println!("gcc, 200k branches measured; perceptron CE under single-bit upsets\n");
    println!("fault rate   faults(bp)   faults(ce)   miss%    PVN%   Spec%");
    println!("-------------------------------------------------------------");
    for rate in [0.0, 1e-4, 1e-3, 1e-2, 1e-1] {
        let (cm, fp, fe) = evaluate(rate);
        println!(
            "{rate:>9.0e}   {fp:>10}   {fe:>10}   {:>5.2}   {:>5.1}   {:>5.1}",
            cm.misprediction_rate() * 100.0,
            cm.pvn() * 100.0,
            cm.spec() * 100.0,
        );
    }
    println!(
        "\nPVN falls as upsets wash the trained weights toward noise, while\n\
         the predictor's big retrained tables barely move the miss rate —\n\
         the confidence estimator is the fault-sensitive structure."
    );
}
