//! Walk the gating design space the paper's conclusion describes: a
//! spectrum from "no performance loss, modest reduction" to "small
//! loss, large reduction", by sweeping the perceptron estimator's λ.
//!
//! ```text
//! cargo run --release --example design_space [bench]
//! ```

use perconf::bpred::{baseline_bimodal_gshare, SimPredictor};
use perconf::core::{
    AlwaysHigh, PerceptronCe, PerceptronCeConfig, SimEstimator, SpeculationController,
};
use perconf::metrics::{Align, Table};
use perconf::pipeline::{PipelineConfig, SimStats, Simulation};

fn run(
    wl: &perconf::workload::WorkloadConfig,
    cfg: PipelineConfig,
    lambda: Option<i32>,
) -> SimStats {
    let est: Box<dyn SimEstimator> = match lambda {
        None => Box::new(AlwaysHigh),
        Some(lambda) => Box::new(PerceptronCe::new(PerceptronCeConfig {
            lambda,
            ..PerceptronCeConfig::default()
        })),
    };
    let mut sim = Simulation::new(
        cfg,
        wl,
        SpeculationController::new(
            Box::new(baseline_bimodal_gshare()) as Box<dyn SimPredictor>,
            est,
        ),
    );
    sim.warmup(120_000);
    sim.run(250_000).clone()
}

fn main() {
    let bench = std::env::args().nth(1).unwrap_or_else(|| "vpr".to_owned());
    let wl = perconf::workload::spec2000_config(&bench)
        .unwrap_or_else(|| panic!("unknown benchmark {bench}"));
    let pipe = PipelineConfig::deep();

    let base = run(&wl, pipe, None);
    let mut t = Table::with_headers(&["λ", "U(fetch)%", "U(exec)%", "P%", "gated cycles%"]);
    for i in 1..5 {
        t.align(i, Align::Right);
    }
    println!("gating design space on {bench} (perceptron estimator, PL1, 40-cycle pipe)\n");
    for lambda in [50, 25, 0, -25, -50, -75, -100] {
        let g = run(&wl, pipe.gated(1), Some(lambda));
        let fetched = |s: &SimStats| (s.fetched_correct + s.fetched_wrong) as f64;
        t.row(vec![
            lambda.to_string(),
            format!("{:.1}", (1.0 - fetched(&g) / fetched(&base)) * 100.0),
            format!(
                "{:.1}",
                (1.0 - g.executed_total() as f64 / base.executed_total() as f64) * 100.0
            ),
            format!(
                "{:.1}",
                (g.cycles as f64 / base.cycles as f64 - 1.0) * 100.0
            ),
            format!("{:.1}", g.gated_cycles as f64 * 100.0 / g.cycles as f64),
        ]);
    }
    println!("{}", t.render());
    println!("Lower λ flags more branches: more fetch suppressed, more stall risk —");
    println!("the spectrum of design options the paper's conclusion describes.");
}
