//! Pipeline gating end to end: run the cycle-level out-of-order
//! simulator on one benchmark with and without gating and compare
//! wasted wrong-path work and performance — a single cell of the
//! paper's Table 4.
//!
//! ```text
//! cargo run --release --example pipeline_gating [bench] [lambda]
//! ```

use perconf::bpred::{baseline_bimodal_gshare, SimPredictor};
use perconf::core::{
    AlwaysHigh, PerceptronCe, PerceptronCeConfig, SimEstimator, SpeculationController,
};
use perconf::pipeline::{PipelineConfig, Simulation};

fn main() {
    let mut args = std::env::args().skip(1);
    let bench = args.next().unwrap_or_else(|| "twolf".to_owned());
    let lambda: i32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(0);

    let wl = perconf::workload::spec2000_config(&bench)
        .unwrap_or_else(|| panic!("unknown benchmark {bench}"));
    let pipe = PipelineConfig::deep(); // the paper's 40-cycle 4-wide machine
    let warmup = 150_000;
    let run = 350_000;

    // Baseline: no gating (estimator present but never flags).
    let mut base = Simulation::new(
        pipe,
        &wl,
        SpeculationController::new(
            Box::new(baseline_bimodal_gshare()) as Box<dyn SimPredictor>,
            Box::new(AlwaysHigh) as Box<dyn SimEstimator>,
        ),
    );
    base.warmup(warmup);
    let b = base.run(run).clone();

    // Gated: perceptron estimator, PL1 counter.
    let mut gated = Simulation::new(
        pipe.gated(1),
        &wl,
        SpeculationController::new(
            Box::new(baseline_bimodal_gshare()) as Box<dyn SimPredictor>,
            Box::new(PerceptronCe::new(PerceptronCeConfig {
                lambda,
                ..PerceptronCeConfig::default()
            })) as Box<dyn SimEstimator>,
        ),
    );
    gated.warmup(warmup);
    let g = gated.run(run).clone();

    println!("benchmark {bench}, perceptron λ = {lambda}, PL1, 40-cycle pipeline\n");
    println!("{:<28} {:>12} {:>12}", "", "baseline", "gated");
    let row = |name: &str, a: f64, b: f64| println!("{name:<28} {a:>12.3} {b:>12.3}");
    row("IPC", b.ipc(), g.ipc());
    row(
        "wrong-path fetched /kuop",
        b.fetched_wrong as f64 * 1000.0 / b.retired as f64,
        g.fetched_wrong as f64 * 1000.0 / g.retired as f64,
    );
    row(
        "wrong-path executed /kuop",
        b.executed_wrong as f64 * 1000.0 / b.retired as f64,
        g.executed_wrong as f64 * 1000.0 / g.retired as f64,
    );
    println!(
        "{:<28} {:>12} {:>12}",
        "cycles fetch was gated", b.gated_cycles, g.gated_cycles
    );
    println!();
    let u_fetch = 1.0
        - (g.fetched_correct + g.fetched_wrong) as f64
            / (b.fetched_correct + b.fetched_wrong) as f64;
    let u_exec = 1.0 - g.executed_total() as f64 / b.executed_total() as f64;
    let p = g.cycles as f64 / b.cycles as f64 - 1.0;
    println!("U (fetched uops reduced) : {:.1}%", u_fetch * 100.0);
    println!("U (executed uops reduced): {:.1}%", u_exec * 100.0);
    println!("P (performance loss)     : {:.1}%", p * 100.0);
    println!(
        "\nestimator quality on this run: PVN {:.0}%, Spec {:.0}%",
        g.confusion.pvn() * 100.0,
        g.confusion.spec() * 100.0
    );
}
