//! Branch reversal (§5.5): use the perceptron estimator's *strongly
//! low confident* class to invert predictions that are probably wrong,
//! and watch the speculated misprediction rate drop below the base
//! predictor's.
//!
//! ```text
//! cargo run --release --example branch_reversal [bench]
//! ```

use perconf::bpred::{baseline_bimodal_gshare, SimPredictor};
use perconf::core::{PerceptronCe, PerceptronCeConfig, SimEstimator, SpeculationController};
use perconf::pipeline::{PipelineConfig, Simulation};

fn main() {
    let bench = std::env::args().nth(1).unwrap_or_else(|| "mcf".to_owned());
    let wl = perconf::workload::spec2000_config(&bench)
        .unwrap_or_else(|| panic!("unknown benchmark {bench}"));

    // The combined three-way configuration: StrongLow → reverse.
    // (No gating here: the pipeline config has gating disabled, so the
    // WeakLow class has no effect and we see reversal in isolation.)
    let ce = PerceptronCe::new(PerceptronCeConfig::combined());
    let mut sim = Simulation::new(
        PipelineConfig::deep(),
        &wl,
        SpeculationController::new(
            Box::new(baseline_bimodal_gshare()) as Box<dyn SimPredictor>,
            Box::new(ce) as Box<dyn SimEstimator>,
        ),
    );
    sim.warmup(200_000);
    let s = sim.run(400_000).clone();

    println!("benchmark {bench}, reversal above y > 90, 40-cycle pipeline\n");
    println!("branches retired        : {}", s.branches_retired);
    println!(
        "base mispredicts        : {} ({:.2}%)",
        s.base_mispredicts,
        s.base_mispredicts as f64 * 100.0 / s.branches_retired as f64
    );
    println!(
        "speculated mispredicts  : {} ({:.2}%)",
        s.speculated_mispredicts,
        s.speculated_mispredicts as f64 * 100.0 / s.branches_retired as f64
    );
    println!("reversals               : {}", s.reversals);
    println!("  fixed a misprediction : {}", s.reversals_good);
    println!("  broke a correct one   : {}", s.reversals_bad);
    let net = s.reversals_good as i64 - s.reversals_bad as i64;
    println!(
        "net mispredictions fixed: {net} ({:+.2}% of base mispredicts)",
        net as f64 * 100.0 / s.base_mispredicts.max(1) as f64
    );
}
