//! How stable are the headline metrics across workload seeds? Runs the
//! Table 3 comparison on several reseeded copies of each benchmark and
//! reports mean ± sample standard deviation — the error bars the paper
//! does not show.
//!
//! ```text
//! cargo run --release --example seed_variance [seeds]
//! ```

use perconf::experiments::common::{
    benchmarks, jrs, perceptron, reseed, trace_eval, PredictorKind,
};
use perconf::metrics::{stats, ConfusionMatrix};

fn run_once(
    seed_run: u64,
    mk: &dyn Fn() -> Box<dyn perconf::core::SimEstimator>,
) -> ConfusionMatrix {
    let mut total = ConfusionMatrix::new();
    for wl in benchmarks() {
        let wl = reseed(&wl, seed_run);
        let mut p = PredictorKind::BimodalGshare.build();
        let mut ce = mk();
        let (cm, _) = trace_eval(&wl, p.as_mut(), ce.as_mut(), 60_000, 150_000, None);
        total.merge(&cm);
    }
    total
}

fn main() {
    let seeds: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);
    println!("Table 3 headline metrics over {seeds} workload seeds\n");
    for (name, mk) in [
        (
            "enhanced-JRS λ7",
            (&|| jrs(7)) as &dyn Fn() -> Box<dyn perconf::core::SimEstimator>,
        ),
        ("perceptron λ0", &|| perceptron(0)),
    ] {
        let mut pvns = Vec::new();
        let mut specs = Vec::new();
        for s in 0..seeds {
            let cm = run_once(s, mk);
            pvns.push(cm.pvn() * 100.0);
            specs.push(cm.spec() * 100.0);
        }
        let fmt = |xs: &[f64]| {
            format!(
                "{:.1} ± {:.1}",
                stats::mean(xs).unwrap_or(0.0),
                stats::stddev(xs).unwrap_or(0.0)
            )
        };
        println!("{name:<18} PVN {:<12} Spec {}", fmt(&pvns), fmt(&specs));
    }
    println!("\nSmall deviations mean the qualitative Table 3 ordering is seed-robust.");
}
