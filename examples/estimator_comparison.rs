//! Compare all five confidence estimators implemented in this
//! repository — perceptron_cic (the paper's), perceptron_tnt, enhanced
//! JRS, Smith, and Tyson — on one benchmark, at equal-ish storage.
//!
//! ```text
//! cargo run --release --example estimator_comparison [bench]
//! ```

use perconf::bpred::{baseline_bimodal_gshare, BranchPredictor};
use perconf::core::{
    ConfidenceEstimator, EstimateCtx, JrsConfig, JrsEstimator, PerceptronCe, PerceptronCeConfig,
    PerceptronTnt, PerceptronTntConfig, SmithCe, TysonCe,
};
use perconf::metrics::{Align, ConfusionMatrix, Table};
use perconf::workload::WorkloadGenerator;

fn evaluate(
    wl: &perconf::workload::WorkloadConfig,
    estimator: &mut dyn ConfidenceEstimator,
) -> ConfusionMatrix {
    let mut gen = WorkloadGenerator::new(wl);
    let mut predictor = baseline_bimodal_gshare();
    let mut history = 0u64;
    let mut cm = ConfusionMatrix::new();
    let mut seen = 0u64;
    let warmup = 100_000;
    while seen < 400_000 {
        let u = gen.next_uop();
        let Some(b) = u.branch else { continue };
        seen += 1;
        let predicted_taken = predictor.predict(b.pc, history);
        let ctx = EstimateCtx {
            pc: b.pc,
            history,
            predicted_taken,
        };
        let est = estimator.estimate(&ctx);
        let mispredicted = predicted_taken != b.taken;
        if seen > warmup {
            cm.record(mispredicted, est.is_low());
        }
        predictor.train(b.pc, history, b.taken);
        estimator.train(&ctx, est, mispredicted);
        history = (history << 1) | u64::from(b.taken);
    }
    cm
}

fn main() {
    let bench = std::env::args().nth(1).unwrap_or_else(|| "vpr".to_owned());
    let wl = perconf::workload::spec2000_config(&bench)
        .unwrap_or_else(|| panic!("unknown benchmark {bench}"));

    let mut estimators: Vec<Box<dyn ConfidenceEstimator>> = vec![
        Box::new(PerceptronCe::new(PerceptronCeConfig::default())),
        Box::new(PerceptronTnt::new(PerceptronTntConfig::default())),
        Box::new(JrsEstimator::new(JrsConfig::default())),
        Box::new(SmithCe::new(13, 2)),
        Box::new(TysonCe::new(12, 8)),
    ];

    let mut t = Table::with_headers(&["estimator", "storage", "PVN%", "Spec%", "flag rate%"]);
    for i in 1..5 {
        t.align(i, Align::Right);
    }
    println!("confidence estimators on {bench} (baseline bimodal-gshare predictor)\n");
    for est in &mut estimators {
        let name = est.name();
        let bits = est.storage_bits();
        let cm = evaluate(&wl, est.as_mut());
        t.row(vec![
            name.to_owned(),
            format!("{:.1}KB", bits as f64 / 8192.0),
            format!("{:.0}", cm.pvn() * 100.0),
            format!("{:.0}", cm.spec() * 100.0),
            format!("{:.1}", cm.flagged_low() as f64 * 100.0 / cm.total() as f64),
        ]);
    }
    println!("{}", t.render());
    println!("PVN = P(mispredict | flagged low); Spec = P(flagged low | mispredict).");
}
