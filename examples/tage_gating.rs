//! Extension: Table 5 one predictor further. The paper shows the
//! confidence estimator's reduction opportunity shrinking as the
//! baseline predictor improves (bimodal-gshare → gshare-perceptron).
//! This example adds a modern TAGE-based baseline and shows the trend
//! continuing — while gating remains worthwhile.
//!
//! ```text
//! cargo run --release --example tage_gating
//! ```

use perconf::bpred::{baseline_bimodal_gshare, gshare_perceptron, tage_hybrid, SimPredictor};
use perconf::core::{
    AlwaysHigh, PerceptronCe, PerceptronCeConfig, SimEstimator, SpeculationController,
};
use perconf::metrics::{Align, Table};
use perconf::pipeline::{PipelineConfig, SimStats, Simulation};
use perconf::workload::spec2000;

fn run(
    wl: &perconf::workload::WorkloadConfig,
    cfg: PipelineConfig,
    predictor: Box<dyn SimPredictor>,
    gated: bool,
) -> SimStats {
    let est: Box<dyn SimEstimator> = if gated {
        Box::new(PerceptronCe::new(PerceptronCeConfig::default()))
    } else {
        Box::new(AlwaysHigh)
    };
    let mut sim = Simulation::new(cfg, wl, SpeculationController::new(predictor, est));
    sim.warmup(60_000);
    sim.run(150_000).clone()
}

type MkPredictor = fn() -> Box<dyn SimPredictor>;

fn main() {
    let predictors: [(&str, MkPredictor); 3] = [
        ("bimodal-gshare", || Box::new(baseline_bimodal_gshare())),
        ("gshare-perceptron", || Box::new(gshare_perceptron())),
        ("gshare-TAGE", || Box::new(tage_hybrid())),
    ];
    let mut t = Table::with_headers(&["baseline predictor", "mpku", "U(fetch)%", "P%"]);
    for i in 1..4 {
        t.align(i, Align::Right);
    }
    println!("Table 5 extended: gating (perceptron λ=0, PL1) under three baselines\n");
    for (name, mk) in predictors {
        let mut mpku = 0.0;
        let mut u = 0.0;
        let mut p = 0.0;
        let benches = spec2000();
        for wl in &benches {
            let base = run(wl, PipelineConfig::deep(), mk(), false);
            let gated = run(wl, PipelineConfig::deep().gated(1), mk(), true);
            mpku += base.mpku();
            let fetched = |s: &SimStats| (s.fetched_correct + s.fetched_wrong) as f64;
            u += 1.0 - fetched(&gated) / fetched(&base);
            p += gated.cycles as f64 / base.cycles as f64 - 1.0;
        }
        let n = benches.len() as f64;
        t.row(vec![
            name.to_owned(),
            format!("{:.1}", mpku / n),
            format!("{:.1}", u / n * 100.0),
            format!("{:.1}", p / n * 100.0),
        ]);
    }
    println!("{}", t.render());
    println!("Better prediction → fewer mispredicts → less waste for gating to recover,");
    println!("but the estimator stays useful — the paper's §5.2 conclusion, extended.");
}
