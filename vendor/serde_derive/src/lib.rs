//! Offline vendored `#[derive(Serialize, Deserialize)]` macros for the
//! value-tree serde subset in `vendor/serde`.
//!
//! Hand-rolled token parsing (the real `syn`/`quote` stack is not
//! available offline). Supported shapes — the ones this workspace
//! uses:
//!
//! * structs with named fields;
//! * unit structs;
//! * enums whose variants are unit or struct-like (named fields).
//!
//! Unsupported shapes (tuple structs, generics, tuple variants) fail
//! with a compile error naming the limitation rather than generating
//! wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Shape {
    UnitStruct {
        name: String,
    },
    Struct {
        name: String,
        fields: Vec<String>,
    },
    Enum {
        name: String,
        variants: Vec<(String, Option<Vec<String>>)>,
    },
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().expect("valid error tokens")
}

/// Skips attribute tokens (`#` followed by a bracket group) and
/// visibility (`pub`, optionally followed by a paren group).
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#[...]` — the bracket group follows.
                i += 1;
                if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    i += 1;
                }
            }
            _ => return i,
        }
    }
}

/// Parses the comma-separated named fields of a brace group, returning
/// the field names. Tracks angle-bracket depth so commas inside
/// generic types (e.g. `HashMap<String, u32>`) don't split fields.
fn parse_named_fields(group: &proc_macro::Group) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected field name, found `{other}`")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => {
                return Err(format!(
                    "expected `:` after field `{name}`, found {other:?} (tuple fields are unsupported)"
                ))
            }
        }
        // Consume the type: until a top-level comma, minding `<...>`.
        let mut angle: i32 = 0;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(name);
    }
    Ok(fields)
}

/// Parses enum variants: unit (`Name`) or struct-like (`Name { .. }`).
fn parse_variants(
    group: &proc_macro::Group,
) -> Result<Vec<(String, Option<Vec<String>>)>, String> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected variant name, found `{other}`")),
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = parse_named_fields(g)?;
                i += 1;
                Some(f)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                return Err(format!("tuple variant `{name}` is unsupported"));
            }
            _ => None,
        };
        // Skip an optional discriminant (`= expr`) and the trailing comma.
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
        variants.push((name, fields));
    }
    Ok(variants)
}

fn parse_shape(input: TokenStream) -> Result<Shape, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);
    let kw = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "generic type `{name}` is unsupported by the vendored serde derive; write the impl by hand"
        ));
    }
    match kw.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Shape::Struct {
                name,
                fields: parse_named_fields(g)?,
            }),
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Shape::UnitStruct { name }),
            None => Ok(Shape::UnitStruct { name }),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Err(format!(
                "tuple struct `{name}` is unsupported by the vendored serde derive"
            )),
            other => Err(format!("unexpected token after `struct {name}`: {other:?}")),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Shape::Enum {
                name,
                variants: parse_variants(g)?,
            }),
            other => Err(format!("unexpected token after `enum {name}`: {other:?}")),
        },
        other => Err(format!("expected `struct` or `enum`, found `{other}`")),
    }
}

/// Derives the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = match parse_shape(input) {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    let code = match shape {
        Shape::UnitStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{ ::serde::Value::Null }}\n\
             }}"
        ),
        Shape::Struct { name, fields } => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "fields.push((::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f})));\n"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         let mut fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n\
                         {pushes}\
                         ::serde::Value::Object(fields)\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|(v, fields)| match fields {
                    None => format!(
                        "{name}::{v} => ::serde::Value::Str(::std::string::String::from(\"{v}\")),\n"
                    ),
                    Some(fs) => {
                        let binds = fs.join(", ");
                        let pushes: String = fs
                            .iter()
                            .map(|f| {
                                format!(
                                    "inner.push((::std::string::String::from(\"{f}\"), \
                                     ::serde::Serialize::to_value({f})));\n"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {binds} }} => {{\n\
                                 let mut inner: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n\
                                 {pushes}\
                                 ::serde::Value::Object(vec![(::std::string::String::from(\"{v}\"), ::serde::Value::Object(inner))])\n\
                             }},\n"
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{arms}\n}}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("generated Serialize impl parses")
}

/// Derives the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = match parse_shape(input) {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    let code = match shape {
        Shape::UnitStruct { name } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(_v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                     ::std::result::Result::Ok({name})\n\
                 }}\n\
             }}"
        ),
        Shape::Struct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| format!("{f}: ::serde::field(v, \"{f}\")?,\n"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         ::std::result::Result::Ok(Self {{\n{inits}}})\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum { name, variants } => {
            let str_arms: String = variants
                .iter()
                .filter(|(_, f)| f.is_none())
                .map(|(v, _)| format!("\"{v}\" => ::std::result::Result::Ok({name}::{v}),\n"))
                .collect();
            let obj_arms: String = variants
                .iter()
                .filter_map(|(v, f)| f.as_ref().map(|fs| (v, fs)))
                .map(|(v, fs)| {
                    let inits: String = fs
                        .iter()
                        .map(|f| format!("{f}: ::serde::field(inner, \"{f}\")?,\n"))
                        .collect();
                    format!(
                        "\"{v}\" => ::std::result::Result::Ok({name}::{v} {{\n{inits}}}),\n"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match v {{\n\
                             ::serde::Value::Str(s) => match s.as_str() {{\n\
                                 {str_arms}\
                                 other => ::std::result::Result::Err(::serde::DeError(\
                                     ::std::format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                             }},\n\
                             ::serde::Value::Object(fields) if fields.len() == 1 => {{\n\
                                 let (tag, inner) = &fields[0];\n\
                                 match tag.as_str() {{\n\
                                     {obj_arms}\
                                     other => ::std::result::Result::Err(::serde::DeError(\
                                         ::std::format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                                 }}\n\
                             }},\n\
                             _ => ::std::result::Result::Err(::serde::DeError(\
                                 ::std::string::String::from(\"expected variant of {name}\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("generated Deserialize impl parses")
}
