//! Offline vendored subset of the `serde` API.
//!
//! The build environment has no network access to crates.io, so the
//! workspace patches `serde` to this crate. Instead of the real
//! serde's visitor-based architecture, this vendored version uses a
//! simple value-tree data model: [`Serialize`] renders a type into a
//! [`Value`], [`Deserialize`] reconstructs a type from one, and the
//! companion vendored `serde_json` converts values to and from JSON
//! text. The `#[derive(Serialize, Deserialize)]` macros (from the
//! vendored `serde_derive`) generate impls for named-field structs,
//! unit enums and struct-variant enums — the shapes this workspace
//! uses.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::path::PathBuf;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The serialisation data model: a JSON-shaped tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer (used when the value exceeds `i64::MAX`).
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object: insertion-ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an `i128` if it is any integer representation
    /// (including an integral float, which JSON round-trips produce).
    #[must_use]
    pub fn as_int(&self) -> Option<i128> {
        match self {
            Value::Int(i) => Some(i128::from(*i)),
            Value::UInt(u) => Some(i128::from(*u)),
            #[allow(clippy::cast_possible_truncation)]
            Value::Float(f) if f.fract() == 0.0 && f.abs() < 9.2e18 => Some(*f as i128),
            _ => None,
        }
    }

    /// The value as an `f64` if it is numeric.
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) | Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Deserialisation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// Creates an error from anything printable.
    pub fn msg(m: impl fmt::Display) -> Self {
        Self(m.to_string())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// A type renderable into a [`Value`].
pub trait Serialize {
    /// Renders `self` into the value tree.
    fn to_value(&self) -> Value;
}

/// A type reconstructible from a [`Value`].
pub trait Deserialize: Sized {
    /// Reconstructs from the value tree.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] on shape or range mismatches.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Marker matching serde's `DeserializeOwned` (this vendored model has
/// no borrowed deserialisation, so every `Deserialize` qualifies).
pub trait DeserializeOwned: Deserialize {}
impl<T: Deserialize> DeserializeOwned for T {}

/// Re-exports mirroring `serde::de`.
pub mod de {
    pub use super::{DeError, Deserialize, DeserializeOwned};
}

/// Re-exports mirroring `serde::ser`.
pub mod ser {
    pub use super::Serialize;
}

/// Derive-macro helper: extracts and deserialises object field `name`.
///
/// # Errors
///
/// Returns [`DeError`] if the field is missing or has the wrong shape.
pub fn field<T: Deserialize>(v: &Value, name: &str) -> Result<T, DeError> {
    match v.get(name) {
        Some(fv) => T::from_value(fv)
            .map_err(|e| DeError(format!("field `{name}`: {e}"))),
        None => Err(DeError(format!("missing field `{name}`"))),
    }
}

// ----- primitive impls ---------------------------------------------

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            #[allow(clippy::cast_lossless, clippy::cast_possible_wrap)]
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_lossless)]
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let i = v.as_int().ok_or_else(|| {
                    DeError(format!("expected integer, got {}", v.kind()))
                })?;
                <$t>::try_from(i).map_err(|_| DeError(format!("integer {i} out of range")))
            }
        }
    )*};
}

impl_ser_int!(i8, i16, i32, i64, isize, u8, u16, u32);

macro_rules! impl_ser_uint64 {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                match i64::try_from(*self) {
                    Ok(i) => Value::Int(i),
                    Err(_) => Value::UInt(*self as u64),
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let i = v.as_int().ok_or_else(|| {
                    DeError(format!("expected integer, got {}", v.kind()))
                })?;
                <$t>::try_from(i).map_err(|_| DeError(format!("integer {i} out of range")))
            }
        }
    )*};
}

impl_ser_uint64!(u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64()
            .ok_or_else(|| DeError(format!("expected number, got {}", v.kind())))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    #[allow(clippy::cast_possible_truncation)]
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(f64::from_value(v)? as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError(format!("expected bool, got {}", other.kind()))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError(format!("expected string, got {}", other.kind()))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for PathBuf {
    fn to_value(&self) -> Value {
        Value::Str(self.display().to_string())
    }
}

impl Deserialize for PathBuf {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(PathBuf::from(String::from_value(v)?))
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(()),
            other => Err(DeError(format!("expected null, got {}", other.kind()))),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

// ----- container impls ---------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError(format!("expected array, got {}", other.kind()))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = Vec::<T>::from_value(v)?;
        let n = items.len();
        items
            .try_into()
            .map_err(|_| DeError(format!("expected array of {N}, got {n}")))
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(Box::new(T::from_value(v)?))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Array(items) => {
                        let expect = [$($idx),+].len();
                        if items.len() != expect {
                            return Err(DeError(format!(
                                "expected {expect}-tuple, got {} items", items.len()
                            )));
                        }
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => Err(DeError(format!("expected array, got {}", other.kind()))),
                }
            }
        }
    )+};
}

impl_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
);

impl<T: Serialize + Copy> Serialize for std::cell::Cell<T> {
    fn to_value(&self) -> Value {
        self.get().to_value()
    }
}

impl<T: Deserialize> Deserialize for std::cell::Cell<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(std::cell::Cell::new(T::from_value(v)?))
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for std::collections::VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError(format!("expected array, got {}", other.kind()))),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, fv)| Ok((k.clone(), V::from_value(fv)?)))
                .collect(),
            other => Err(DeError(format!("expected object, got {}", other.kind()))),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort for deterministic output.
        let mut fields: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(fields)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, fv)| Ok((k.clone(), V::from_value(fv)?)))
                .collect(),
            other => Err(DeError(format!("expected object, got {}", other.kind()))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_none_is_null_and_back() {
        let v = Option::<u32>::None.to_value();
        assert_eq!(v, Value::Null);
        assert_eq!(Option::<u32>::from_value(&v).unwrap(), None);
    }

    #[test]
    fn ints_round_trip_through_values() {
        for x in [0i64, -5, i64::MAX, i64::MIN] {
            assert_eq!(i64::from_value(&x.to_value()).unwrap(), x);
        }
        assert_eq!(u64::from_value(&u64::MAX.to_value()).unwrap(), u64::MAX);
    }

    #[test]
    fn out_of_range_int_errors() {
        assert!(u8::from_value(&Value::Int(300)).is_err());
        assert!(u32::from_value(&Value::Int(-1)).is_err());
    }

    #[test]
    fn tuples_are_arrays() {
        let v = (1u32, 2.5f64, true).to_value();
        assert_eq!(
            v,
            Value::Array(vec![Value::Int(1), Value::Float(2.5), Value::Bool(true)])
        );
        let back: (u32, f64, bool) = Deserialize::from_value(&v).unwrap();
        assert_eq!(back, (1, 2.5, true));
    }

    #[test]
    fn integral_float_deserialises_as_int() {
        // JSON round-trips may render 3.0 where an int is expected.
        assert_eq!(u32::from_value(&Value::Float(3.0)).unwrap(), 3);
        assert!(u32::from_value(&Value::Float(3.5)).is_err());
    }
}
