//! Offline vendored subset of the `signal-hook` crate: exactly the
//! API surface this workspace uses — [`consts::SIGTERM`] and
//! [`flag::register`], which arranges for an `Arc<AtomicBool>` to be
//! set when a signal is delivered.
//!
//! Keeping the `unsafe` signal plumbing here (instead of in
//! `perconf-serve`) lets every workspace crate carry
//! `#![forbid(unsafe_code)]`; `perconf-lint`'s unsafe-hygiene rule
//! requires a `// SAFETY:` comment above each `unsafe` block in
//! vendored code, which this file follows.

#![deny(unsafe_op_in_unsafe_fn)]

pub mod consts {
    //! Signal numbers (POSIX-standard values, identical on every
    //! platform this workspace targets).

    /// Termination request — the default signal `kill(1)` sends.
    pub const SIGTERM: i32 = 15;
}

pub mod flag {
    //! Set an atomic flag when a signal arrives.

    use std::io;
    use std::sync::atomic::{AtomicBool, AtomicPtr, Ordering};
    use std::sync::Arc;

    /// Opaque registration handle. In this subset registrations are
    /// process-lifetime (the real crate's `unregister` is not
    /// vendored because nothing in the workspace uses it).
    #[derive(Debug)]
    pub struct SigId {
        _signal: i32,
    }

    /// Highest signal number (exclusive) the flag table covers;
    /// comfortably above every POSIX signal.
    const MAX_SIGNAL: usize = 64;

    /// One published flag pointer per signal number. The handler only
    /// loads an `AtomicPtr` and stores an `AtomicBool` — both
    /// async-signal-safe operations.
    static FLAGS: [AtomicPtr<AtomicBool>; MAX_SIGNAL] =
        [const { AtomicPtr::new(std::ptr::null_mut()) }; MAX_SIGNAL];

    extern "C" fn set_flag_handler(sig: i32) {
        let Ok(idx) = usize::try_from(sig) else {
            return;
        };
        if idx >= MAX_SIGNAL {
            return;
        }
        let p = FLAGS[idx].load(Ordering::SeqCst);
        if !p.is_null() {
            // SAFETY: `p` was produced by `Arc::into_raw` in
            // `register`, which deliberately leaks that strong
            // reference, so the pointee stays valid for the rest of
            // the process. An atomic store is async-signal-safe.
            unsafe { (*p).store(true, Ordering::SeqCst) };
        }
    }

    extern "C" {
        /// `signal(2)` — the only libc entry point this subset needs.
        fn signal(signum: i32, handler: usize) -> usize;
    }

    /// Arranges for `flag` to be set to `true` whenever `signal_num`
    /// is delivered. Mirrors `signal_hook::flag::register`: the flag
    /// is shared, the caller polls it, and the handler itself does
    /// nothing but the atomic store.
    ///
    /// Re-registering the same signal replaces the published flag
    /// (the previous one stays alive: an in-flight handler on another
    /// thread may still hold its pointer).
    ///
    /// # Errors
    ///
    /// Returns an error if `signal_num` is out of range or the
    /// `signal(2)` call is rejected by the OS.
    pub fn register(signal_num: i32, flag: Arc<AtomicBool>) -> io::Result<SigId> {
        let idx = usize::try_from(signal_num)
            .ok()
            .filter(|&i| i < MAX_SIGNAL)
            .ok_or_else(|| {
                io::Error::new(io::ErrorKind::InvalidInput, "signal number out of range")
            })?;
        // Leak one strong reference: the handler can fire at any
        // point for the rest of the process, so the flag must never
        // be dropped out from under it.
        let raw = Arc::into_raw(flag).cast_mut();
        FLAGS[idx].store(raw, Ordering::SeqCst);
        // SAFETY: installs a handler that only performs atomic loads
        // and stores (async-signal-safe); `set_flag_handler` has the
        // exact `extern "C" fn(i32)` shape `signal(2)` expects, and
        // the function-pointer-to-usize cast matches the declared
        // FFI signature above.
        let rc = unsafe { signal(signal_num, set_flag_handler as extern "C" fn(i32) as usize) };
        // SIG_ERR is `(void (*)(int)) -1`.
        if rc == usize::MAX {
            return Err(io::Error::last_os_error());
        }
        Ok(SigId {
            _signal: signal_num,
        })
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn rejects_out_of_range_signal() {
            assert!(register(-1, Arc::new(AtomicBool::new(false))).is_err());
            assert!(register(9999, Arc::new(AtomicBool::new(false))).is_err());
        }

        #[test]
        fn flag_is_set_on_raise() {
            // SIGUSR1 = 10 on Linux; safe to self-deliver in-process.
            const SIGUSR1: i32 = 10;
            let flag = Arc::new(AtomicBool::new(false));
            register(SIGUSR1, Arc::clone(&flag)).unwrap();
            assert!(!flag.load(Ordering::SeqCst));
            // SAFETY: raising a signal for which an async-signal-safe
            // handler was just installed; `raise(3)` is the
            // documented way to self-deliver.
            unsafe {
                extern "C" {
                    fn raise(signum: i32) -> i32;
                }
                assert_eq!(raise(SIGUSR1), 0);
            }
            assert!(flag.load(Ordering::SeqCst));
        }
    }
}
