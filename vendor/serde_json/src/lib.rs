//! Offline vendored subset of the `serde_json` API: JSON text to and
//! from the vendored serde [`Value`] tree.
//!
//! Provides [`to_string`], [`to_string_pretty`], [`from_str`] and
//! [`from_value`]/[`to_value`] — the surface this workspace uses.

#![forbid(unsafe_code)]

use serde::{Serialize, Value};
use std::fmt;

/// Serialisation or parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn msg(m: impl fmt::Display) -> Self {
        Self(m.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Result alias mirroring `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

// ----- writing ------------------------------------------------------

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_float(out: &mut String, f: f64) {
    if f.is_finite() {
        let s = format!("{f}");
        out.push_str(&s);
        // Ensure the token re-parses as a float, matching serde_json.
        if !s.contains('.') && !s.contains('e') && !s.contains('E') {
            out.push_str(".0");
        }
    } else {
        // serde_json renders non-finite floats as null.
        out.push_str("null");
    }
}

fn write_value(out: &mut String, v: &Value, pretty: bool, indent: usize) {
    let pad = |out: &mut String, n: usize| {
        if pretty {
            out.push('\n');
            for _ in 0..n {
                out.push_str("  ");
            }
        }
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => escape_into(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                    if pretty {
                        // newline added by pad below
                    }
                }
                pad(out, indent + 1);
                write_value(out, item, pretty, indent + 1);
            }
            pad(out, indent);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, fv)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(out, indent + 1);
                escape_into(out, k);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                write_value(out, fv, pretty, indent + 1);
            }
            pad(out, indent);
            out.push('}');
        }
    }
}

/// Serialises to compact JSON.
///
/// # Errors
///
/// Infallible in this vendored implementation; kept fallible to match
/// the real API.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), false, 0);
    Ok(out)
}

/// Serialises to human-readable, two-space-indented JSON.
///
/// # Errors
///
/// Infallible in this vendored implementation; kept fallible to match
/// the real API.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), true, 0);
    Ok(out)
}

/// Serialises into the [`Value`] tree.
///
/// # Errors
///
/// Infallible in this vendored implementation.
pub fn to_value<T: Serialize>(value: &T) -> Result<Value> {
    Ok(value.to_value())
}

/// Deserialises from a [`Value`] tree.
///
/// # Errors
///
/// Fails on shape mismatches.
pub fn from_value<T: serde::DeserializeOwned>(v: &Value) -> Result<T> {
    T::from_value(v).map_err(Error::msg)
}

// ----- parsing ------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Self {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => self.parse_lit("null", Value::Null),
            Some(b't') => self.parse_lit("true", Value::Bool(true)),
            Some(b'f') => self.parse_lit("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => Err(self.err(&format!("unexpected byte `{}`", b as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_lit(&mut self, lit: &str, v: Value) -> Result<Value> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| self.err("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        other => {
                            return Err(
                                self.err(&format!("bad escape `\\{}`", other as char))
                            )
                        }
                    }
                }
                _ => {
                    // Step back and copy the longest run of plain bytes
                    // in one append. Validating only this run (rather
                    // than the whole remaining input per character)
                    // keeps parsing linear in the document size.
                    self.pos -= 1;
                    let start = self.pos;
                    while self
                        .bytes
                        .get(self.pos)
                        .is_some_and(|&b| b != b'"' && b != b'\\')
                    {
                        self.pos += 1;
                    }
                    let run = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    out.push_str(run);
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        self.skip_ws();
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.err("invalid number"))
        } else if let Ok(i) = text.parse::<i64>() {
            Ok(Value::Int(i))
        } else if let Ok(u) = text.parse::<u64>() {
            Ok(Value::UInt(u))
        } else {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.err("invalid number"))
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

/// Parses JSON text into a `T`.
///
/// # Errors
///
/// Fails on malformed JSON or shape mismatches.
pub fn from_str<T: serde::DeserializeOwned>(s: &str) -> Result<T> {
    let mut p = Parser::new(s);
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    T::from_value(&v).map_err(Error::msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let s = to_string(&42u64).unwrap();
        assert_eq!(s, "42");
        assert_eq!(from_str::<u64>(&s).unwrap(), 42);
        let s = to_string(&-1.5f64).unwrap();
        assert_eq!(from_str::<f64>(&s).unwrap(), -1.5);
        assert_eq!(from_str::<bool>("true").unwrap(), true);
    }

    #[test]
    fn floats_keep_a_decimal_point() {
        assert_eq!(to_string(&3.0f64).unwrap(), "3.0");
        assert_eq!(from_str::<f64>("3.0").unwrap(), 3.0);
    }

    #[test]
    fn strings_escape_and_unescape() {
        let original = "line\n\"quoted\"\t\\slash\u{263a}".to_owned();
        let s = to_string(&original).unwrap();
        assert_eq!(from_str::<String>(&s).unwrap(), original);
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(from_str::<String>("\"\\u263a\"").unwrap(), "\u{263a}");
    }

    #[test]
    fn vec_and_tuple_round_trip() {
        let v = vec![(1u32, 2.5f64), (3, 4.5)];
        let s = to_string_pretty(&v).unwrap();
        let back: Vec<(u32, f64)> = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn option_round_trips_through_null() {
        let s = to_string(&Option::<u32>::None).unwrap();
        assert_eq!(s, "null");
        assert_eq!(from_str::<Option<u32>>(&s).unwrap(), None);
        let s = to_string(&Some(7u32)).unwrap();
        assert_eq!(from_str::<Option<u32>>(&s).unwrap(), Some(7));
    }

    #[test]
    fn pretty_output_is_indented_and_reparses() {
        let v = Value::Object(vec![
            ("a".into(), Value::Int(1)),
            ("b".into(), Value::Array(vec![Value::Bool(true), Value::Null])),
        ]);
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains("\n  \"a\": 1"));
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn malformed_input_errors() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("12 34").is_err());
    }

    #[test]
    fn nan_serialises_as_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }

    #[test]
    fn large_documents_parse_in_linear_time() {
        // Regression: string parsing used to re-validate the entire
        // remaining input per character, making multi-megabyte
        // documents effectively unparseable. A few hundred KB of keys
        // and string values must round-trip promptly.
        let rows: Vec<(String, String)> = (0..4000)
            .map(|i| (format!("key-{i:06}"), format!("value-\u{263a}-{i:06}")))
            .collect();
        let s = to_string(&rows).unwrap();
        assert!(s.len() > 200_000);
        let back: Vec<(String, String)> = from_str(&s).unwrap();
        assert_eq!(back, rows);
    }
}
