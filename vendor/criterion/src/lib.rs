//! Offline vendored mini benchmark harness exposing the subset of the
//! `criterion` 0.5 API this workspace uses.
//!
//! Runs each benchmark a small, fixed number of iterations and prints
//! mean wall-clock time per iteration. It is a smoke harness — enough
//! to keep `cargo bench` compiling and producing sane numbers offline,
//! not a statistics engine.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Bytes processed per iteration in decimal units.
    BytesDecimal(u64),
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it a fixed number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` over fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Batch sizing hint for [`Bencher::iter_batched`]. Ignored by this
/// vendored harness.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small inputs.
    SmallInput,
    /// Large inputs.
    LargeInput,
    /// One iteration per batch.
    PerIteration,
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _marker: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count. Accepted for API compatibility; the
    /// vendored harness uses a fixed iteration budget.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the measurement time. Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Sets the warm-up time. Accepted for API compatibility.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Annotates per-iteration throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark and prints its mean time per iteration.
    pub fn bench_function<S: Into<String>, F>(&mut self, id: S, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        // One warm-up pass, then a short measured run.
        let mut warm = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut warm);
        let iters = if warm.elapsed > Duration::from_millis(100) {
            1
        } else {
            5
        };
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per_iter = b.elapsed.as_secs_f64() / iters as f64;
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if per_iter > 0.0 => {
                format!("  ({:.3} Melem/s)", n as f64 / per_iter / 1e6)
            }
            Some(Throughput::Bytes(n) | Throughput::BytesDecimal(n)) if per_iter > 0.0 => {
                format!("  ({:.3} MiB/s)", n as f64 / per_iter / (1024.0 * 1024.0))
            }
            _ => String::new(),
        };
        println!(
            "{}/{id}: {:.3} ms/iter over {iters} iters{rate}",
            self.name,
            per_iter * 1e3
        );
        self
    }

    /// Ends the group. No-op in the vendored harness.
    pub fn finish(self) {}
}

/// Benchmark manager mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Creates a benchmark group with the given name.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _marker: std::marker::PhantomData,
        }
    }

    /// Runs a standalone benchmark outside a group.
    pub fn bench_function<S: Into<String>, F>(&mut self, id: S, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut g = BenchmarkGroup {
            name: String::from("bench"),
            throughput: None,
            _marker: std::marker::PhantomData,
        };
        g.bench_function(id, f);
        self
    }
}

/// Declares a group of benchmark functions, mirroring
/// `criterion::criterion_group!` (simple form).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark entry point, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        let mut ran = 0u32;
        g.sample_size(10)
            .measurement_time(Duration::from_millis(1))
            .warm_up_time(Duration::from_millis(1))
            .throughput(Throughput::Elements(4));
        g.bench_function("inc", |b| b.iter(|| ran = ran.wrapping_add(1)));
        g.finish();
        assert!(ran > 0);
    }

    #[test]
    fn iter_batched_consumes_setup_values() {
        let mut b = Bencher {
            iters: 3,
            elapsed: Duration::ZERO,
        };
        let mut total = 0u64;
        b.iter_batched(|| 7u64, |v| total += v, BatchSize::SmallInput);
        assert_eq!(total, 21);
    }
}
