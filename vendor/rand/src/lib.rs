//! Offline vendored subset of the `rand` 0.8 API.
//!
//! The build environment has no network access to crates.io, so the
//! workspace patches `rand` to this crate (see `[patch.crates-io]` in
//! the workspace manifest). Only the surface the workspace actually
//! uses is provided:
//!
//! * [`rngs::SmallRng`] — xoshiro256++ (the same algorithm rand 0.8
//!   uses for `SmallRng` on 64-bit targets), seeded with SplitMix64
//!   exactly like `rand_core`'s `seed_from_u64`;
//! * [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`];
//! * [`SeedableRng::seed_from_u64`].
//!
//! Streams are deterministic for a given seed, which is all the
//! workload generators and the fault-injection subsystem require.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A random generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Constructs from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs from a `u64`, expanded with SplitMix64 (matching
    /// `rand_core`'s implementation bit for bit).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Types samplable from the "standard" distribution (`Rng::gen`).
pub trait StandardSample {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty => $via:ident),* $(,)?) => {$(
        impl StandardSample for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_lossless)]
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}

impl_standard_int!(
    u8 => next_u32, u16 => next_u32, u32 => next_u32,
    u64 => next_u64, usize => next_u64,
    i8 => next_u32, i16 => next_u32, i32 => next_u32,
    i64 => next_u64, isize => next_u64,
);

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // Compare against the most significant bit, as rand 0.8 does.
        rng.next_u32() & (1 << 31) != 0
    }
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Unbiased integer in `[0, span)` by rejection sampling.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    let zone = (u64::MAX / span) * span;
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

/// Types with a uniform sampler over half-open and closed intervals.
/// Mirrors the role of `rand::distributions::uniform::SampleUniform`.
pub trait SampleUniform: Sized {
    /// Draws from `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Draws from `[low, high]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap, clippy::cast_lossless)]
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "cannot sample empty range");
                let span = (high as i128 - low as i128) as u64;
                let off = uniform_u64(rng, span);
                ((low as i128) + off as i128) as $t
            }
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap, clippy::cast_lossless)]
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "cannot sample empty range");
                let span = (high as i128 - low as i128 + 1) as u128;
                if span > u128::from(u64::MAX) {
                    // Whole-domain u64/i64 range.
                    return rng.next_u64() as $t;
                }
                let off = uniform_u64(rng, span as u64);
                ((low as i128) + off as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "cannot sample empty range");
        low + f64::sample_standard(rng) * (high - low)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        Self::sample_half_open(rng, low, high)
    }
}

/// Ranges samplable by [`Rng::gen_range`]. The single blanket impl per
/// range shape keeps type inference working for untyped integer
/// literals (`gen_range(0..3)` in a `u32` context), matching rand 0.8.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// High-level sampling helpers, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples from the standard distribution (uniform bits; `[0,1)`
    /// for floats).
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p must be in [0,1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast generator: xoshiro256++ — the algorithm rand 0.8
    /// uses for `SmallRng` on 64-bit platforms.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        /// Raw xoshiro256++ state, for snapshot/restore.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild a generator from a previously captured [`state`].
        /// An all-zero state (a fixed point of the generator) is nudged
        /// the same way `from_seed` nudges it.
        ///
        /// [`state`]: SmallRng::state
        pub fn from_state(s: [u64; 4]) -> Self {
            if s == [0; 4] {
                return Self {
                    s: [0x9E37_79B9_7F4A_7C15, 1, 2, 3],
                };
            }
            Self { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            if s == [0; 4] {
                // All-zero state is a fixed point; nudge it.
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            Self { s }
        }
    }

    /// Alias kept for API compatibility (`std_rng` feature).
    pub type StdRng = SmallRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_are_inclusive_exclusive() {
        let mut r = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = r.gen_range(3u32..7);
            assert!((3..7).contains(&x));
            let y = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
        }
    }

    #[test]
    fn range_distribution_is_roughly_uniform() {
        let mut r = SmallRng::seed_from_u64(9);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[r.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "counts={counts:?}");
        }
    }

    #[test]
    fn bool_is_roughly_fair() {
        let mut r = SmallRng::seed_from_u64(11);
        let heads = (0..100_000).filter(|_| r.gen::<bool>()).count();
        assert!((48_000..52_000).contains(&heads), "heads={heads}");
    }
}
