//! Conservation and consistency invariants of the pipeline simulator,
//! checked across machine shapes, benchmarks and speculation-control
//! configurations. These are the properties every experiment's
//! arithmetic silently relies on.

use perconf::bpred::{baseline_bimodal_gshare, SimPredictor};
use perconf::core::{
    AlwaysHigh, PerceptronCe, PerceptronCeConfig, SimEstimator, SpeculationController,
};
use perconf::pipeline::{PipelineConfig, SimStats, Simulation};
use perconf::workload::spec2000_config;

fn run(bench: &str, cfg: PipelineConfig, estimator: Option<i32>) -> SimStats {
    let est: Box<dyn SimEstimator> = match estimator {
        None => Box::new(AlwaysHigh),
        Some(lambda) => Box::new(PerceptronCe::new(PerceptronCeConfig {
            lambda,
            ..PerceptronCeConfig::default()
        })),
    };
    let mut sim = Simulation::new(
        cfg,
        &spec2000_config(bench).unwrap(),
        SpeculationController::new(
            Box::new(baseline_bimodal_gshare()) as Box<dyn SimPredictor>,
            est,
        ),
    );
    sim.run(25_000).clone()
}

fn check_invariants(s: &SimStats, label: &str) {
    // Work can only shrink through the pipe.
    assert!(
        s.executed_correct >= s.retired,
        "{label}: every retired uop must have executed ({} < {})",
        s.executed_correct,
        s.retired
    );
    assert!(
        s.fetched_correct + 64 >= s.executed_correct,
        "{label}: correct-path execution cannot exceed fetch"
    );
    assert!(
        s.fetched_wrong >= s.executed_wrong,
        "{label}: wrong-path execution cannot exceed wrong-path fetch"
    );
    // Squashed uops were fetched and never retired.
    assert!(
        s.squashed <= s.fetched_correct + s.fetched_wrong,
        "{label}: squashed exceeds fetched"
    );
    // Every squash corresponds to a speculated misprediction; they are
    // counted at different pipeline points (resolution vs retirement),
    // so they may differ by the handful in flight when the run stops.
    let diff = s.squashes.abs_diff(s.speculated_mispredicts);
    assert!(
        diff <= 8,
        "{label}: squashes ({}) and speculated mispredicts ({}) diverge",
        s.squashes,
        s.speculated_mispredicts
    );
    // Confusion quadrants account for exactly the retired branches.
    assert_eq!(
        s.confusion.total(),
        s.branches_retired,
        "{label}: confusion totals"
    );
    assert_eq!(
        s.confusion.mispredicted(),
        s.base_mispredicts,
        "{label}: confusion mispredict count"
    );
    // Reversal bookkeeping.
    assert_eq!(
        s.reversals,
        s.reversals_good + s.reversals_bad,
        "{label}: reversal split"
    );
    // Cycle accounting.
    assert!(s.cycles > 0, "{label}: no cycles");
    assert!(
        s.gated_cycles + s.redirect_cycles <= s.cycles,
        "{label}: stall cycles exceed total"
    );
}

#[test]
fn invariants_hold_without_gating() {
    for bench in ["gcc", "mcf", "vortex", "twolf"] {
        for cfg in [PipelineConfig::shallow(), PipelineConfig::deep()] {
            let s = run(bench, cfg, None);
            check_invariants(&s, &format!("{bench}-ungated"));
            assert_eq!(s.gated_cycles, 0, "{bench}: gate fired without config");
            assert_eq!(
                s.base_mispredicts, s.speculated_mispredicts,
                "{bench}: no reversal configured"
            );
        }
    }
}

#[test]
fn invariants_hold_with_gating() {
    for bench in ["vpr", "mcf"] {
        for pl in [1, 2] {
            let s = run(bench, PipelineConfig::deep().gated(pl), Some(0));
            check_invariants(&s, &format!("{bench}-PL{pl}"));
        }
    }
}

#[test]
fn invariants_hold_on_wide_machine_with_latency() {
    let s = run(
        "twolf",
        PipelineConfig::wide().gated(2).with_ce_latency(9),
        Some(-25),
    );
    check_invariants(&s, "twolf-wide-lat9");
}

#[test]
fn gating_never_reduces_retirement_below_target() {
    // run() asks for 25k uops; even heavily gated configs must deliver.
    let s = run("mcf", PipelineConfig::deep().gated(1), Some(-100));
    assert!(s.retired >= 25_000);
    assert!(s.gated_cycles > 0, "λ=-100 should gate frequently");
}
