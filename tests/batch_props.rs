//! Seeded property test for the batched cycle loop: random
//! (batch width, fault plan, checkpoint interval) triples must leave
//! every member's stats and state digest invariant between the batched
//! and sequential checkpointed paths. Runs in the CI determinism lane.
//!
//! Each trial draws a width in 1..=8, a per-member fault plan (rate ×
//! seed × benchmark × estimator kind), and a checkpoint interval, runs
//! every member sequentially as the reference, then batched — with
//! per-member checkpoint cells enabled so the trial also exercises the
//! store path — and compares [`SimStats`] plus the FNV state digest.

use perconf_bpred::{baseline_bimodal_gshare, SimPredictor, Snapshot};
use perconf_core::{
    JrsConfig, JrsEstimator, PerceptronCe, PerceptronCeConfig, SimEstimator, SpeculationController,
};
use perconf_experiments::common::{
    run_pipeline_checkpointed, run_pipeline_checkpointed_batch, BatchMember, Scale,
};
use perconf_experiments::runner::CheckpointCell;
use perconf_faults::{FaultConfig, FaultyEstimator, FaultyPredictor};
use perconf_pipeline::{Controller, PipelineConfig};
use perconf_workload::WorkloadConfig;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;

const BENCHES: [&str; 4] = ["gcc", "twolf", "mcf", "gzip"];
const RATES: [f64; 4] = [0.0, 1e-4, 1e-3, 1e-2];

/// One member's randomly drawn configuration.
#[derive(Debug, Clone)]
struct Plan {
    bench: &'static str,
    rate: f64,
    seed: u64,
    perceptron: bool,
}

impl Plan {
    fn draw(rng: &mut SmallRng) -> Self {
        Plan {
            bench: BENCHES[rng.gen_range(0..BENCHES.len())],
            rate: RATES[rng.gen_range(0..RATES.len())],
            seed: rng.gen_range(0u64..u64::MAX),
            perceptron: rng.gen_range(0u32..2) == 0,
        }
    }

    fn wl(&self) -> WorkloadConfig {
        perconf_workload::spec2000_config(self.bench).expect("known benchmark")
    }

    fn ctl(&self) -> Controller {
        let cfg_p = FaultConfig {
            rate: self.rate,
            history_rate: self.rate,
            seed: self.seed ^ 0x11,
        };
        let cfg_e = FaultConfig::state_only(self.rate, self.seed ^ 0x22);
        let est: Box<dyn perconf_core::FaultableEstimator> = if self.perceptron {
            Box::new(PerceptronCe::new(PerceptronCeConfig::default()))
        } else {
            Box::new(JrsEstimator::new(JrsConfig {
                lambda: 1,
                ..JrsConfig::default()
            }))
        };
        SpeculationController::new(
            Box::new(FaultyPredictor::new(baseline_bimodal_gshare(), &cfg_p))
                as Box<dyn SimPredictor>,
            Box::new(FaultyEstimator::new(est, &cfg_e)) as Box<dyn SimEstimator>,
        )
    }
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("perconf-batch-props-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

#[test]
fn random_width_fault_plan_interval_triples_are_invariant() {
    let mut rng = SmallRng::seed_from_u64(0x5EED_BA7C);
    let scale = Scale::tiny();
    let cfg = PipelineConfig::deep().gated(1);
    let dir = fresh_dir("trials");

    for trial in 0..5u32 {
        let width = rng.gen_range(1usize..=8);
        let interval = rng.gen_range(3_000u64..30_000);
        let plans: Vec<Plan> = (0..width).map(|_| Plan::draw(&mut rng)).collect();
        let wls: Vec<WorkloadConfig> = plans.iter().map(Plan::wl).collect();

        let mut refs = Vec::new();
        for (i, plan) in plans.iter().enumerate() {
            let sim = run_pipeline_checkpointed(
                &wls[i],
                cfg,
                || plan.ctl(),
                scale,
                &CheckpointCell::disabled(),
                interval,
            )
            .unwrap_or_else(|e| panic!("trial {trial} member {i} sequential: {e:?}"));
            refs.push((sim.stats().clone(), sim.state_digest()));
        }

        // Batched, with live checkpoint cells so the store path is
        // part of the property (stores must never perturb the run).
        let cells: Vec<CheckpointCell> = (0..width)
            .map(|i| CheckpointCell::at(dir.join(format!("t{trial}-m{i}.part.psnap"))))
            .collect();
        let members: Vec<BatchMember> = plans
            .iter()
            .enumerate()
            .map(|(i, plan)| BatchMember {
                wl: &wls[i],
                mk_ctl: Box::new(move || plan.ctl()),
                cell: &cells[i],
            })
            .collect();
        let outs = run_pipeline_checkpointed_batch(&members, cfg, scale, interval);
        drop(members);
        for (i, out) in outs.into_iter().enumerate() {
            let sim = out.unwrap_or_else(|e| panic!("trial {trial} member {i} batched: {e:?}"));
            assert_eq!(
                sim.stats(),
                &refs[i].0,
                "trial {trial} width {width} interval {interval} member {i} ({plans:?}): stats diverged",
            );
            assert_eq!(
                sim.state_digest(),
                refs[i].1,
                "trial {trial} width {width} interval {interval} member {i} ({plans:?}): state diverged",
            );
            assert!(
                cells[i].load().is_none(),
                "trial {trial} member {i}: completed member left its partial checkpoint"
            );
        }
    }

    let _ = std::fs::remove_dir_all(&dir);
}
