//! Property-based tests on the synthetic workload generator: the
//! invariants the simulator depends on.

use perconf::workload::{spec2000, spec2000_config, UopKind, WorkloadGenerator};
use proptest::prelude::*;

fn benchmark_names() -> impl Strategy<Value = String> {
    proptest::sample::select(
        perconf::workload::SPEC2000_NAMES
            .iter()
            .map(|s| (*s).to_owned())
            .collect::<Vec<_>>(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn generator_is_deterministic(name in benchmark_names()) {
        let cfg = spec2000_config(&name).unwrap();
        let a: Vec<_> = WorkloadGenerator::new(&cfg).take(2_000).collect();
        let b: Vec<_> = WorkloadGenerator::new(&cfg).take(2_000).collect();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn branch_payloads_are_consistent(name in benchmark_names()) {
        let cfg = spec2000_config(&name).unwrap();
        let mut g = WorkloadGenerator::new(&cfg);
        for _ in 0..3_000 {
            let u = g.next_uop();
            prop_assert_eq!(u.is_branch(), u.kind == UopKind::Branch);
            prop_assert_eq!(u.mem.is_some(), u.kind.is_mem());
            if let Some(b) = u.branch {
                prop_assert!((b.site as usize) < g.program().sites.len());
                prop_assert_eq!(g.program().sites[b.site as usize].pc, b.pc);
            }
        }
    }

    #[test]
    fn wrong_path_stream_is_well_formed(name in benchmark_names()) {
        let cfg = spec2000_config(&name).unwrap();
        let mut g = WorkloadGenerator::new(&cfg);
        for _ in 0..2_000 {
            let u = g.next_wrong_path();
            prop_assert_eq!(u.mem.is_some(), u.kind.is_mem());
            if let Some(m) = u.mem {
                prop_assert!(m.addr < cfg.working_set.max(64));
            }
        }
    }

    #[test]
    fn interleaved_wrong_path_never_perturbs_correct_path(
        name in benchmark_names(),
        pattern in proptest::collection::vec(0u8..5, 50..200),
    ) {
        let cfg = spec2000_config(&name).unwrap();
        let mut clean = WorkloadGenerator::new(&cfg);
        let mut dirty = WorkloadGenerator::new(&cfg);
        for wp_count in pattern {
            for _ in 0..wp_count {
                let _ = dirty.next_wrong_path();
            }
            prop_assert_eq!(clean.next_uop(), dirty.next_uop());
        }
    }
}

#[test]
fn every_benchmark_emits_all_its_claimed_uop_kinds() {
    for cfg in spec2000() {
        let mut g = WorkloadGenerator::new(&cfg);
        let mut saw_branch = false;
        let mut saw_load = false;
        let mut saw_store = false;
        for _ in 0..20_000 {
            match g.next_uop().kind {
                UopKind::Branch => saw_branch = true,
                UopKind::Load => saw_load = true,
                UopKind::Store => saw_store = true,
                _ => {}
            }
        }
        assert!(saw_branch && saw_load && saw_store, "{}", cfg.name);
    }
}

#[test]
fn site_frequency_skew_is_zipf_like() {
    // The hottest site should carry far more mass than the median one.
    let cfg = spec2000_config("gzip").unwrap();
    let prog = cfg.build_program();
    let mut freqs = prog.site_freq.clone();
    freqs.sort_by(|a, b| b.total_cmp(a));
    assert!(freqs[0] > 10.0 * freqs[freqs.len() / 2].max(1e-12));
}
