//! Property-style tests on the synthetic workload generator: the
//! invariants the simulator depends on, checked deterministically
//! across every benchmark (no proptest in the offline build; the
//! benchmark list itself is the case generator).

use perconf::workload::{spec2000, spec2000_config, UopKind, WorkloadGenerator, SPEC2000_NAMES};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

#[test]
fn generator_is_deterministic() {
    for name in SPEC2000_NAMES {
        let cfg = spec2000_config(name).unwrap();
        let a: Vec<_> = WorkloadGenerator::new(&cfg).take(2_000).collect();
        let b: Vec<_> = WorkloadGenerator::new(&cfg).take(2_000).collect();
        assert_eq!(a, b, "{name}");
    }
}

#[test]
fn branch_payloads_are_consistent() {
    for name in SPEC2000_NAMES {
        let cfg = spec2000_config(name).unwrap();
        let mut g = WorkloadGenerator::new(&cfg);
        for _ in 0..3_000 {
            let u = g.next_uop();
            assert_eq!(u.is_branch(), u.kind == UopKind::Branch);
            assert_eq!(u.mem.is_some(), u.kind.is_mem());
            if let Some(b) = u.branch {
                assert!((b.site as usize) < g.program().sites.len());
                assert_eq!(g.program().sites[b.site as usize].pc, b.pc);
            }
        }
    }
}

#[test]
fn wrong_path_stream_is_well_formed() {
    for name in SPEC2000_NAMES {
        let cfg = spec2000_config(name).unwrap();
        let mut g = WorkloadGenerator::new(&cfg);
        for _ in 0..2_000 {
            let u = g.next_wrong_path();
            assert_eq!(u.mem.is_some(), u.kind.is_mem());
            if let Some(m) = u.mem {
                assert!(m.addr < cfg.working_set.max(64));
            }
        }
    }
}

#[test]
fn interleaved_wrong_path_never_perturbs_correct_path() {
    for (i, name) in SPEC2000_NAMES.iter().enumerate() {
        let cfg = spec2000_config(name).unwrap();
        let mut pattern_rng = SmallRng::seed_from_u64(0x77A0 ^ i as u64);
        let mut clean = WorkloadGenerator::new(&cfg);
        let mut dirty = WorkloadGenerator::new(&cfg);
        for _ in 0..150 {
            let wp_count = pattern_rng.gen_range(0u8..5);
            for _ in 0..wp_count {
                let _ = dirty.next_wrong_path();
            }
            assert_eq!(clean.next_uop(), dirty.next_uop(), "{name}");
        }
    }
}

#[test]
fn every_benchmark_emits_all_its_claimed_uop_kinds() {
    for cfg in spec2000() {
        let mut g = WorkloadGenerator::new(&cfg);
        let mut saw_branch = false;
        let mut saw_load = false;
        let mut saw_store = false;
        for _ in 0..20_000 {
            match g.next_uop().kind {
                UopKind::Branch => saw_branch = true,
                UopKind::Load => saw_load = true,
                UopKind::Store => saw_store = true,
                _ => {}
            }
        }
        assert!(saw_branch && saw_load && saw_store, "{}", cfg.name);
    }
}

#[test]
fn site_frequency_skew_is_zipf_like() {
    // The hottest site should carry far more mass than the median one.
    let cfg = spec2000_config("gzip").unwrap();
    let prog = cfg.build_program();
    let mut freqs = prog.site_freq.clone();
    freqs.sort_by(|a, b| b.total_cmp(a));
    assert!(freqs[0] > 10.0 * freqs[freqs.len() / 2].max(1e-12));
}
