//! Differential determinism suite for batched execution.
//!
//! The batched cycle loop ([`BatchSim`] /
//! `common::run_pipeline_checkpointed_batch` / the scheduler's
//! `BatchSpec` path) promises byte-identical results to N sequential
//! runs — for every batch width, with faults injected, with counters
//! enabled, and across a kill + resume in either direction (a batch's
//! mid-run checkpoint continued sequentially, a sequential checkpoint
//! continued batched). These tests pin that contract at all three
//! layers:
//!
//! 1. engine level — widths {1, 2, 4, 7, 16} against per-member
//!    sequential references, comparing serialized `.psnap` bytes and
//!    `CounterSnapshot`s, not just summary stats;
//! 2. checkpoint level — mid-batch kill with cross-path resume;
//! 3. sweep level — `run_grid_batched` vs `run_grid` byte-identical
//!    JSON + rendered table, including a batch-prefix kill + resume
//!    and a batched sweep's checkpoints consumed by the sequential
//!    scheduler path.

use perconf_bpred::{baseline_bimodal_gshare, SimPredictor, Snapshot};
use perconf_core::{
    JrsConfig, JrsEstimator, PerceptronCe, PerceptronCeConfig, SimEstimator, SpeculationController,
};
use perconf_experiments::common::{
    run_pipeline_checkpointed, run_pipeline_checkpointed_batch, BatchMember, Scale,
};
use perconf_experiments::faults::{self, FaultTable, Grid};
use perconf_experiments::runner::{CheckpointCell, RunnerConfig, Scheduler, SchedulerConfig};
use perconf_experiments::snapfile;
use perconf_faults::{FaultConfig, FaultyEstimator, FaultyPredictor};
use perconf_pipeline::{BatchSim, Controller, PipelineConfig, Simulation};
use perconf_workload::WorkloadConfig;
use serde::Value;
use std::path::{Path, PathBuf};

const BENCHES: [&str; 4] = ["gcc", "twolf", "mcf", "gzip"];
const INTERVAL: u64 = 7_000;

/// Member `i`'s workload: cycle through four benchmarks.
fn member_wl(i: usize) -> WorkloadConfig {
    perconf_workload::spec2000_config(BENCHES[i % BENCHES.len()]).expect("known benchmark")
}

/// Member `i`'s controller: faults-wrapped predictor + estimator, with
/// per-member fault rates/seeds and alternating estimator kinds, so a
/// batch mixes fault-free members with heavily faulted ones.
fn member_ctl(i: usize) -> Controller {
    let rate = [0.0, 1e-4, 1e-3][i % 3];
    let salt = i as u64 * 0x9E37_79B9;
    let cfg_p = FaultConfig {
        rate,
        history_rate: rate,
        seed: 0x11 ^ salt,
    };
    let cfg_e = FaultConfig::state_only(rate, 0x22 ^ salt);
    let est: Box<dyn perconf_core::FaultableEstimator> = if i.is_multiple_of(2) {
        Box::new(PerceptronCe::new(PerceptronCeConfig::default()))
    } else {
        Box::new(JrsEstimator::new(JrsConfig {
            lambda: 1,
            ..JrsConfig::default()
        }))
    };
    SpeculationController::new(
        Box::new(FaultyPredictor::new(baseline_bimodal_gshare(), &cfg_p)) as Box<dyn SimPredictor>,
        Box::new(FaultyEstimator::new(est, &cfg_e)) as Box<dyn SimEstimator>,
    )
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "perconf-batch-determinism-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// The serialized `.psnap` container bytes for a finished simulation —
/// the byte-level artifact kill+resume actually round-trips.
fn psnap_bytes(sim: &Simulation, dir: &Path, tag: &str) -> Vec<u8> {
    let p = dir.join(format!("{tag}.psnap"));
    snapfile::write(&p, &sim.save_state()).expect("write .psnap");
    std::fs::read(&p).expect("read .psnap back")
}

#[test]
fn batch_widths_match_sequential_psnap_and_counters() {
    let scale = Scale::tiny();
    let cfg = PipelineConfig::deep().gated(1);
    let dir = fresh_dir("widths");

    let widths = [1usize, 2, 4, 7, 16];
    let pool = *widths.iter().max().unwrap();
    let wls: Vec<WorkloadConfig> = (0..pool).map(member_wl).collect();

    // Sequential references: stats, serialized snapshot bytes, and the
    // full counter snapshot per member.
    let mut refs = Vec::new();
    for (i, wl) in wls.iter().enumerate() {
        let sim = run_pipeline_checkpointed(
            wl,
            cfg,
            || member_ctl(i),
            scale,
            &CheckpointCell::disabled(),
            INTERVAL,
        )
        .expect("sequential member");
        refs.push((
            sim.stats().clone(),
            psnap_bytes(&sim, &dir, &format!("seq-{i}")),
            sim.counters(),
        ));
    }

    for width in widths {
        let cells: Vec<CheckpointCell> = (0..width).map(|_| CheckpointCell::disabled()).collect();
        let members: Vec<BatchMember> = (0..width)
            .map(|i| BatchMember {
                wl: &wls[i],
                mk_ctl: Box::new(move || member_ctl(i)),
                cell: &cells[i],
            })
            .collect();
        let outs = run_pipeline_checkpointed_batch(&members, cfg, scale, INTERVAL);
        drop(members);
        for (i, out) in outs.into_iter().enumerate() {
            let sim = out.expect("batched member");
            assert_eq!(
                sim.stats(),
                &refs[i].0,
                "width {width} member {i}: stats diverged"
            );
            assert_eq!(
                psnap_bytes(&sim, &dir, &format!("b{width}-{i}")),
                refs[i].1,
                "width {width} member {i}: .psnap bytes diverged"
            );
            assert_eq!(
                sim.counters(),
                refs[i].2,
                "width {width} member {i}: counters diverged"
            );
        }
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn mid_batch_kill_resumes_across_batch_and_sequential_paths() {
    let scale = Scale::tiny();
    let cfg = PipelineConfig::deep().gated(1);
    let dir = fresh_dir("kill");
    let n = 3usize;
    let wls: Vec<WorkloadConfig> = (0..n).map(member_wl).collect();

    // Uninterrupted sequential references.
    let mut refs = Vec::new();
    for (i, wl) in wls.iter().enumerate() {
        let sim = run_pipeline_checkpointed(
            wl,
            cfg,
            || member_ctl(i),
            scale,
            &CheckpointCell::disabled(),
            INTERVAL,
        )
        .expect("reference member");
        refs.push((sim.stats().clone(), sim.state_digest()));
    }

    let store = |cell: &CheckpointCell, phase: u64, sim: &Simulation| {
        cell.store(&Value::Object(vec![
            ("phase".into(), Value::UInt(phase)),
            ("sim".into(), sim.save_state()),
        ]));
    };

    // A *batch* killed mid-warmup: advance an interleaved batch two
    // checkpoint legs, persist each member's {phase, sim} partial —
    // the exact bytes the batched loop stores — then abandon it.
    let mut batch = BatchSim::new(
        (0..n)
            .map(|i| Simulation::new(cfg, &wls[i], member_ctl(i)))
            .collect(),
    );
    for leg in 0..2 {
        for r in batch.try_run(INTERVAL) {
            r.unwrap_or_else(|e| panic!("warmup leg {leg}: {e:?}"));
        }
    }
    let cells: Vec<CheckpointCell> = (0..n)
        .map(|i| CheckpointCell::at(dir.join(format!("batch-killed-{i}.part.psnap"))))
        .collect();
    for (i, cell) in cells.iter().enumerate() {
        store(cell, 0, batch.get(i));
    }
    drop(batch);

    // ... and resumed *sequentially*: every member must land on the
    // uninterrupted result, and clear its partial on completion.
    for (i, wl) in wls.iter().enumerate() {
        let sim = run_pipeline_checkpointed(wl, cfg, || member_ctl(i), scale, &cells[i], INTERVAL)
            .expect("sequential resume of batch-killed member");
        assert_eq!(
            sim.stats(),
            &refs[i].0,
            "member {i}: resumed stats diverged"
        );
        assert_eq!(
            sim.state_digest(),
            refs[i].1,
            "member {i}: resumed state diverged"
        );
        assert!(
            cells[i].load().is_none(),
            "member {i}: completed run left its partial checkpoint behind"
        );
    }

    // The reverse direction: *sequential* runs killed mid-run-phase,
    // resumed through the batched loop.
    let cells2: Vec<CheckpointCell> = (0..n)
        .map(|i| CheckpointCell::at(dir.join(format!("seq-killed-{i}.part.psnap"))))
        .collect();
    for (i, wl) in wls.iter().enumerate() {
        let mut sim = Simulation::new(cfg, wl, member_ctl(i));
        while sim.stats().retired < scale.warmup_uops {
            let chunk = INTERVAL.min(scale.warmup_uops - sim.stats().retired);
            sim.try_run(chunk).expect("warmup");
        }
        sim.try_warmup(0).expect("warmup handoff");
        sim.try_run(INTERVAL).expect("first run leg");
        store(&cells2[i], 1, &sim);
    }
    let members: Vec<BatchMember> = (0..n)
        .map(|i| BatchMember {
            wl: &wls[i],
            mk_ctl: Box::new(move || member_ctl(i)),
            cell: &cells2[i],
        })
        .collect();
    let outs = run_pipeline_checkpointed_batch(&members, cfg, scale, INTERVAL);
    drop(members);
    for (i, out) in outs.into_iter().enumerate() {
        let sim = out.expect("batched resume of sequentially-killed member");
        assert_eq!(
            sim.stats(),
            &refs[i].0,
            "member {i}: batch-resumed stats diverged"
        );
        assert_eq!(
            sim.state_digest(),
            refs[i].1,
            "member {i}: batch-resumed state diverged"
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}

fn scheduler(jobs: usize, dir: Option<&Path>) -> Scheduler {
    let runner = match dir {
        Some(d) => RunnerConfig {
            timeout: None,
            retries: 0,
            ..RunnerConfig::resuming(d)
        },
        None => RunnerConfig {
            checkpoint_dir: None,
            resume: false,
            timeout: None,
            retries: 0,
            ..RunnerConfig::default()
        },
    };
    Scheduler::new(SchedulerConfig { runner, jobs })
}

/// The byte-level view CI's `diff` compares: pretty JSON + rendered
/// table.
fn bytes(t: &FaultTable) -> (String, String) {
    (
        serde_json::to_string_pretty(t).expect("serialize"),
        t.render(),
    )
}

#[test]
fn batched_sweep_byte_identical_and_resumes_after_kill() {
    const SEED: u64 = 11;
    let g = Grid {
        estimators: vec!["jrs".to_owned()],
        benchmarks: vec!["gcc".to_owned(), "twolf".to_owned()],
        rates: vec![0.0, 1e-2],
    };

    let (seq, _) = faults::run_grid(Scale::tiny(), SEED, &g, &mut scheduler(1, None));
    assert_eq!(seq.cells.len(), g.cell_count());
    assert!(seq.failed.is_empty());

    // Every batch width merges to the same bytes as the sequential
    // sweep, on one worker or several.
    for width in [1usize, 3, 8] {
        let (bat, _) =
            faults::run_grid_batched(Scale::tiny(), SEED, &g, &mut scheduler(2, None), width);
        assert_eq!(
            bytes(&seq),
            bytes(&bat),
            "--batch {width} diverged from sequential"
        );
    }

    // Kill after the first batch group completed: run only the first
    // BatchSpec into a resume dir, then resume the full batched sweep.
    let dir = fresh_dir("sweep-resume");
    let prefix: Vec<_> = faults::batch_specs(Scale::tiny(), SEED, &g, 3)
        .into_iter()
        .take(1)
        .collect();
    let partial = scheduler(2, Some(&dir)).run_batches(prefix);
    assert_eq!(partial.executed(), 3);
    assert!(partial.failures().is_empty());

    let (resumed, _) =
        faults::run_grid_batched(Scale::tiny(), SEED, &g, &mut scheduler(2, Some(&dir)), 3);
    assert_eq!(
        bytes(&seq),
        bytes(&resumed),
        "resumed batched sweep diverged from the uninterrupted sequential one"
    );

    // The batched sweep's final checkpoints now cover every cell; the
    // *sequential* scheduler path must consume them unchanged.
    let (cross, _) = faults::run_grid(Scale::tiny(), SEED, &g, &mut scheduler(1, Some(&dir)));
    assert_eq!(
        bytes(&seq),
        bytes(&cross),
        "sequential resume from batch-written checkpoints diverged"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
