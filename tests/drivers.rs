//! Tiny-scale smoke tests of the experiment drivers: every table and
//! figure driver must run end to end and produce structurally sound
//! output. (The real reproduction runs at `--full`; these only guard
//! the plumbing.)

use perconf::experiments::{fig89, figs, table2, table3, Scale};

#[test]
fn table2_driver_produces_all_rows() {
    let t = table2::run(Scale::tiny());
    assert_eq!(t.rows.len(), 12);
    for row in &t.rows {
        assert!(row.mpku >= 0.0);
        for w in row.waste {
            assert!(w.fetched >= 0.0);
        }
    }
    let rendered = t.render();
    assert!(rendered.contains("mcf"));
    assert!(rendered.contains("average"));
}

#[test]
fn table3_driver_sweeps_all_lambdas() {
    let t = table3::run(Scale::tiny());
    assert_eq!(t.jrs.len(), 4);
    assert_eq!(t.perceptron.len(), 4);
    for r in t.jrs.iter().chain(&t.perceptron) {
        assert!((0.0..=100.0).contains(&r.pvn), "pvn {}", r.pvn);
        assert!((0.0..=100.0).contains(&r.spec), "spec {}", r.spec);
    }
    // JRS coverage should rise with λ even at tiny scale.
    assert!(t.jrs.last().unwrap().spec >= t.jrs.first().unwrap().spec);
}

#[test]
fn figs_driver_counts_match_between_ranges() {
    let f = figs::run(figs::Training::CorrectIncorrect, "gcc", Scale::tiny());
    // Same samples go into both histograms (zoom clamps to edges).
    assert_eq!(
        f.full.correct.count() + f.full.mispredicted.count(),
        f.zoom.correct.count() + f.zoom.mispredicted.count()
    );
    let (csv_full, csv_zoom) = f.to_csv();
    assert!(csv_full.starts_with("bin,correct,mispredicted"));
    assert!(csv_zoom.lines().count() > 10);
}

#[test]
fn fig89_driver_covers_all_benchmarks() {
    let f = fig89::run(fig89::Machine::Wide, Scale::tiny());
    assert_eq!(f.rows.len(), 12);
    let rendered = f.render();
    assert!(rendered.contains("Figure 9"));
    assert!(rendered.contains("average"));
}
