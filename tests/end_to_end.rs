//! Integration tests spanning all crates: full pipeline runs with
//! every estimator, gating, reversal, and the experiment drivers at
//! tiny scale.

use perconf::bpred::{baseline_bimodal_gshare, gshare_perceptron, SimPredictor};
use perconf::core::{
    AlwaysHigh, JrsConfig, JrsEstimator, PerceptronCe, PerceptronCeConfig, PerceptronTnt,
    PerceptronTntConfig, SimEstimator, SmithCe, SpeculationController, TysonCe,
};
use perconf::pipeline::{PipelineConfig, Simulation};
use perconf::workload::spec2000_config;

fn sim_with(cfg: PipelineConfig, bench: &str, est: Box<dyn SimEstimator>) -> Simulation {
    let wl = spec2000_config(bench).unwrap();
    Simulation::new(
        cfg,
        &wl,
        SpeculationController::new(
            Box::new(baseline_bimodal_gshare()) as Box<dyn SimPredictor>,
            est,
        ),
    )
}

#[test]
fn every_estimator_survives_a_gated_pipeline_run() {
    let estimators: Vec<Box<dyn SimEstimator>> = vec![
        Box::new(AlwaysHigh),
        Box::new(PerceptronCe::new(PerceptronCeConfig::default())),
        Box::new(PerceptronCe::new(PerceptronCeConfig::combined())),
        Box::new(PerceptronTnt::new(PerceptronTntConfig::default())),
        Box::new(JrsEstimator::new(JrsConfig::default())),
        Box::new(SmithCe::new(12, 2)),
        Box::new(TysonCe::new(12, 8)),
    ];
    for est in estimators {
        let name = est.name();
        let mut sim = sim_with(PipelineConfig::shallow().gated(2), "twolf", est);
        let stats = sim.run(15_000);
        assert!(stats.retired >= 15_000, "{name} retired too few");
        assert!(stats.ipc() > 0.05, "{name} ipc collapsed");
    }
}

#[test]
fn gshare_perceptron_predictor_works_in_pipeline() {
    let wl = spec2000_config("gcc").unwrap();
    let mut sim = Simulation::new(
        PipelineConfig::shallow(),
        &wl,
        SpeculationController::new(
            Box::new(gshare_perceptron()) as Box<dyn SimPredictor>,
            Box::new(AlwaysHigh) as Box<dyn SimEstimator>,
        ),
    );
    let stats = sim.run(20_000);
    assert!(stats.branches_retired > 1_000);
    assert!(stats.mispredict_rate() < 0.5);
}

#[test]
fn better_predictor_mispredicts_less() {
    // §5.2's premise: the gshare-perceptron hybrid beats bimodal-gshare
    // on workloads with long-range correlations.
    let wl = spec2000_config("mcf").unwrap();
    let run = |p: Box<dyn SimPredictor>| {
        let mut sim = Simulation::new(
            PipelineConfig::shallow(),
            &wl,
            SpeculationController::new(p, Box::new(AlwaysHigh) as Box<dyn SimEstimator>),
        );
        sim.warmup(80_000);
        sim.run(120_000).mpku()
    };
    let bg = run(Box::new(baseline_bimodal_gshare()));
    let gp = run(Box::new(gshare_perceptron()));
    assert!(
        gp < bg * 1.05,
        "gshare-perceptron ({gp:.2}) should not be clearly worse than bimodal-gshare ({bg:.2})"
    );
}

#[test]
fn gating_trades_fetch_for_cycles() {
    let wl = spec2000_config("vpr").unwrap();
    let mk = || {
        SpeculationController::new(
            Box::new(baseline_bimodal_gshare()) as Box<dyn SimPredictor>,
            Box::new(PerceptronCe::new(PerceptronCeConfig {
                lambda: -25,
                ..PerceptronCeConfig::default()
            })) as Box<dyn SimEstimator>,
        )
    };
    let mut base = Simulation::new(PipelineConfig::deep(), &wl, mk());
    let mut gated = Simulation::new(PipelineConfig::deep().gated(1), &wl, mk());
    base.warmup(60_000);
    gated.warmup(60_000);
    let b = base.run(120_000).clone();
    let g = gated.run(120_000).clone();
    assert!(g.gated_cycles > 0);
    let bf = b.fetched_correct + b.fetched_wrong;
    let gf = g.fetched_correct + g.fetched_wrong;
    assert!(gf < bf, "gating must reduce total fetch: {gf} vs {bf}");
}

#[test]
fn identical_runs_are_deterministic() {
    let wl = spec2000_config("gap").unwrap();
    let run = || {
        let mut sim = Simulation::new(
            PipelineConfig::shallow().gated(1),
            &wl,
            SpeculationController::new(
                Box::new(baseline_bimodal_gshare()) as Box<dyn SimPredictor>,
                Box::new(PerceptronCe::new(PerceptronCeConfig::default())) as Box<dyn SimEstimator>,
            ),
        );
        let s = sim.run(30_000);
        (
            s.cycles,
            s.fetched_wrong,
            s.executed_wrong,
            s.base_mispredicts,
            s.gated_cycles,
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn all_twelve_benchmarks_run_on_all_three_machines() {
    for cfg in [
        PipelineConfig::shallow(),
        PipelineConfig::wide(),
        PipelineConfig::deep(),
    ] {
        for wl in perconf::workload::spec2000() {
            let mut sim = Simulation::with_defaults(cfg, &wl);
            let stats = sim.run(4_000);
            assert!(stats.retired >= 4_000, "{} stalled", wl.name);
        }
    }
}

#[test]
fn reversal_improves_speculated_rate_on_hard_benchmark() {
    let wl = spec2000_config("mcf").unwrap();
    let mut sim = Simulation::new(
        PipelineConfig::deep(),
        &wl,
        SpeculationController::new(
            Box::new(baseline_bimodal_gshare()) as Box<dyn SimPredictor>,
            Box::new(PerceptronCe::new(PerceptronCeConfig::combined())) as Box<dyn SimEstimator>,
        ),
    );
    sim.warmup(100_000);
    let s = sim.run(200_000);
    assert!(s.reversals > 0);
    assert!(
        s.speculated_mispredicts <= s.base_mispredicts,
        "reversal should not increase mispredictions overall: {} vs {}",
        s.speculated_mispredicts,
        s.base_mispredicts
    );
}
