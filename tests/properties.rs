//! Property-style tests over the core data structures and cross-crate
//! invariants, driven by deterministic seeded sampling (the build
//! environment has no proptest; a fixed-seed RNG keeps the same
//! breadth of coverage reproducible).

use perconf::bpred::{
    Bimodal, BranchPredictor, GlobalHistory, Gshare, ResettingCounter, SatCounter,
};
use perconf::core::{
    ConfidenceClass, ConfidenceEstimator, EstimateCtx, GateCounter, JrsConfig, JrsEstimator,
    PerceptronCe, PerceptronCeConfig,
};
use perconf::metrics::{ConfusionMatrix, Histogram};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn rng(case: u64) -> SmallRng {
    SmallRng::seed_from_u64(0xC0FF_EE00 ^ case)
}

#[test]
fn sat_counter_stays_in_range() {
    for bits in 1u8..=7 {
        let mut r = rng(u64::from(bits));
        let mut c = SatCounter::new(bits);
        for _ in 0..200 {
            c.update(r.gen::<bool>());
            assert!(c.value() <= c.max());
        }
    }
}

#[test]
fn sat_counter_converges_to_extreme() {
    for bits in 1u8..=7 {
        let mut c = SatCounter::new(bits);
        for _ in 0..200 {
            c.inc();
        }
        assert_eq!(c.value(), c.max());
        assert!(c.is_saturated());
        for _ in 0..200 {
            c.dec();
        }
        assert_eq!(c.value(), 0);
    }
}

#[test]
fn resetting_counter_value_equals_streak() {
    for bits in 2u8..=7 {
        let mut r = rng(0x5EED ^ u64::from(bits));
        let mut c = ResettingCounter::new(bits);
        let mut streak = 0u32;
        for _ in 0..100 {
            if r.gen::<bool>() {
                c.correct();
                streak += 1;
            } else {
                c.incorrect();
                streak = 0;
            }
            assert_eq!(u32::from(c.value()), streak.min(u32::from(c.max())));
        }
    }
}

#[test]
fn global_history_matches_reference() {
    for len in 1u32..=64 {
        let mut r = rng(0x4157 ^ u64::from(len));
        let mut h = GlobalHistory::new(len);
        let mut reference = 0u128;
        for _ in 0..100 {
            let taken = r.gen::<bool>();
            h.push(taken);
            reference = (reference << 1) | u128::from(taken);
        }
        let mask = if len == 64 {
            u64::MAX
        } else {
            (1u64 << len) - 1
        };
        assert_eq!(h.snapshot(), (reference as u64) & mask);
    }
}

#[test]
fn gate_counter_never_goes_negative() {
    for threshold in 1u32..=4 {
        let mut r = rng(0x6A7E ^ u64::from(threshold));
        let mut g = GateCounter::new(threshold);
        let mut in_flight = 0i64;
        for _ in 0..100 {
            if r.gen::<bool>() {
                g.on_low_conf_fetch();
                in_flight += 1;
            } else {
                g.on_low_conf_resolve();
                in_flight = (in_flight - 1).max(0);
            }
            assert_eq!(i64::from(g.count()), in_flight);
            assert_eq!(g.should_gate(), g.count() >= threshold);
        }
    }
}

#[test]
fn confusion_matrix_metrics_bounded() {
    for case in 0..16u64 {
        let mut r = rng(0xC33 ^ case);
        let n = r.gen_range(1..300usize);
        let mut cm = ConfusionMatrix::new();
        for _ in 0..n {
            cm.record(r.gen::<bool>(), r.gen::<bool>());
        }
        assert_eq!(cm.total(), n as u64);
        for m in [
            cm.pvn(),
            cm.spec(),
            cm.sens(),
            cm.pvp(),
            cm.misprediction_rate(),
        ] {
            assert!((0.0..=1.0).contains(&m));
        }
    }
}

#[test]
fn histogram_conserves_mass() {
    for case in 0..16u64 {
        let mut r = rng(0x4157_0630 ^ case);
        let lo = r.gen_range(-200i64..0);
        let hi = lo + 100;
        let width = r.gen_range(1u32..=32);
        let n = r.gen_range(0..300usize);
        let mut h = Histogram::new(lo, hi, width);
        for _ in 0..n {
            h.add(r.gen_range(-500i64..500));
        }
        assert_eq!(h.count(), n as u64);
        let total: u64 = h.iter().map(|(_, c)| c).sum();
        assert_eq!(total, n as u64);
    }
}

#[test]
fn bimodal_predicts_majority_after_training() {
    let mut r = rng(0xB1B0);
    for _ in 0..32 {
        let taken = r.gen::<bool>();
        let pc = r.gen_range(0u64..100_000);
        let mut p = Bimodal::new(12);
        for _ in 0..4 {
            p.train(pc, 0, taken);
        }
        assert_eq!(p.predict(pc, 0), taken);
    }
}

#[test]
fn gshare_learns_any_fixed_context() {
    let mut r = rng(0x65AA);
    for _ in 0..32 {
        let pc = r.gen_range(0u64..100_000);
        let hist = r.gen_range(0u64..4096);
        let taken = r.gen::<bool>();
        let mut p = Gshare::new(14, 12);
        for _ in 0..4 {
            p.train(pc, hist, taken);
        }
        assert_eq!(p.predict(pc, hist), taken);
    }
}

#[test]
fn perceptron_ce_weights_bounded_under_arbitrary_training() {
    for weight_bits in 2u32..=8 {
        let mut r = rng(0x93C ^ u64::from(weight_bits));
        let mut ce = PerceptronCe::new(PerceptronCeConfig {
            entries: 8,
            hist_len: 16,
            weight_bits,
            ..PerceptronCeConfig::default()
        });
        let bound = 1i64 << (weight_bits - 1);
        for _ in 0..400 {
            let pc = r.gen_range(0u64..4096);
            let hist = r.gen::<u64>();
            let ctx = EstimateCtx {
                pc,
                history: hist,
                predicted_taken: r.gen::<bool>(),
            };
            let est = ce.estimate(&ctx);
            ce.train(&ctx, est, r.gen::<bool>());
            // The output is the sum of 17 bounded weights.
            let y = i64::from(ce.output(pc, hist));
            assert!(y.abs() <= 17 * bound);
        }
    }
}

#[test]
fn jrs_flags_immediately_after_any_miss() {
    for lambda in 1u8..=15 {
        let mut r = rng(0x1255 ^ u64::from(lambda));
        for _ in 0..8 {
            let mut jrs = JrsEstimator::new(JrsConfig {
                lambda,
                ..JrsConfig::default()
            });
            let ctx = EstimateCtx {
                pc: r.gen_range(0u64..100_000),
                history: r.gen_range(0u64..65_536),
                predicted_taken: r.gen::<bool>(),
            };
            // Regardless of prior state, a miss resets the counter, so
            // the very next estimate in the same context must be low
            // confidence.
            let est = jrs.estimate(&ctx);
            jrs.train(&ctx, est, true);
            assert!(jrs.estimate(&ctx).is_low());
        }
    }
}

#[test]
fn estimate_classes_are_ordered_by_raw_output() {
    // For the perceptron CE's classifier: if y1 <= y2 then class rank
    // (High < WeakLow < StrongLow) must not decrease.
    let ce = PerceptronCe::new(PerceptronCeConfig::combined());
    let rank = |y: i32| {
        let cfg = ce.config();
        if cfg.reverse_lambda.is_some_and(|r| y > r) {
            2
        } else if y >= cfg.lambda {
            1
        } else {
            0
        }
    };
    let mut r = rng(0x0D3);
    for _ in 0..256 {
        let y1 = r.gen_range(-500i32..500);
        let y2 = r.gen_range(-500i32..500);
        let (lo, hi) = if y1 <= y2 { (y1, y2) } else { (y2, y1) };
        assert!(rank(lo) <= rank(hi));
    }
}

#[test]
fn confidence_class_equality_is_reflexive() {
    for c in [
        ConfidenceClass::High,
        ConfidenceClass::WeakLow,
        ConfidenceClass::StrongLow,
    ] {
        assert_eq!(c, c);
    }
}
