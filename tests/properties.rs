//! Property-based tests (proptest) over the core data structures and
//! cross-crate invariants.

use perconf::bpred::{Bimodal, BranchPredictor, GlobalHistory, Gshare, ResettingCounter, SatCounter};
use perconf::core::{
    ConfidenceClass, ConfidenceEstimator, EstimateCtx, GateCounter, JrsConfig, JrsEstimator,
    PerceptronCe, PerceptronCeConfig,
};
use perconf::metrics::{ConfusionMatrix, Histogram};
use proptest::prelude::*;

proptest! {
    #[test]
    fn sat_counter_stays_in_range(bits in 1u8..=7, ops in proptest::collection::vec(any::<bool>(), 0..200)) {
        let mut c = SatCounter::new(bits);
        for up in ops {
            c.update(up);
            prop_assert!(c.value() <= c.max());
        }
    }

    #[test]
    fn sat_counter_converges_to_extreme(bits in 1u8..=7) {
        let mut c = SatCounter::new(bits);
        for _ in 0..200 {
            c.inc();
        }
        prop_assert_eq!(c.value(), c.max());
        prop_assert!(c.is_saturated());
        for _ in 0..200 {
            c.dec();
        }
        prop_assert_eq!(c.value(), 0);
    }

    #[test]
    fn resetting_counter_value_equals_streak(bits in 2u8..=7, outcomes in proptest::collection::vec(any::<bool>(), 1..100)) {
        let mut c = ResettingCounter::new(bits);
        let mut streak = 0u32;
        for correct in outcomes {
            if correct {
                c.correct();
                streak += 1;
            } else {
                c.incorrect();
                streak = 0;
            }
            prop_assert_eq!(u32::from(c.value()), streak.min(u32::from(c.max())));
        }
    }

    #[test]
    fn global_history_matches_reference(len in 1u32..=64, pushes in proptest::collection::vec(any::<bool>(), 0..100)) {
        let mut h = GlobalHistory::new(len);
        let mut reference = 0u128;
        for taken in pushes {
            h.push(taken);
            reference = (reference << 1) | u128::from(taken);
        }
        let mask = if len == 64 { u64::MAX } else { (1u64 << len) - 1 };
        prop_assert_eq!(h.snapshot(), (reference as u64) & mask);
    }

    #[test]
    fn gate_counter_never_goes_negative(ops in proptest::collection::vec(any::<bool>(), 0..100), threshold in 1u32..=4) {
        let mut g = GateCounter::new(threshold);
        let mut in_flight = 0i64;
        for fetch in ops {
            if fetch {
                g.on_low_conf_fetch();
                in_flight += 1;
            } else {
                g.on_low_conf_resolve();
                in_flight = (in_flight - 1).max(0);
            }
            prop_assert_eq!(i64::from(g.count()), in_flight);
            prop_assert_eq!(g.should_gate(), g.count() >= threshold);
        }
    }

    #[test]
    fn confusion_matrix_metrics_bounded(events in proptest::collection::vec((any::<bool>(), any::<bool>()), 1..300)) {
        let mut cm = ConfusionMatrix::new();
        for (miss, low) in &events {
            cm.record(*miss, *low);
        }
        prop_assert_eq!(cm.total(), events.len() as u64);
        for m in [cm.pvn(), cm.spec(), cm.sens(), cm.pvp(), cm.misprediction_rate()] {
            prop_assert!((0.0..=1.0).contains(&m));
        }
    }

    #[test]
    fn histogram_conserves_mass(lo in -200i64..0, width in 1u32..=32, samples in proptest::collection::vec(-500i64..500, 0..300)) {
        let hi = lo + 100;
        let mut h = Histogram::new(lo, hi, width);
        for &s in &samples {
            h.add(s);
        }
        prop_assert_eq!(h.count(), samples.len() as u64);
        let total: u64 = h.iter().map(|(_, c)| c).sum();
        prop_assert_eq!(total, samples.len() as u64);
    }

    #[test]
    fn bimodal_predicts_majority_after_training(taken in any::<bool>(), pc in 0u64..100_000) {
        let mut p = Bimodal::new(12);
        for _ in 0..4 {
            p.train(pc, 0, taken);
        }
        prop_assert_eq!(p.predict(pc, 0), taken);
    }

    #[test]
    fn gshare_learns_any_fixed_context(pc in 0u64..100_000, hist in 0u64..4096, taken in any::<bool>()) {
        let mut p = Gshare::new(14, 12);
        for _ in 0..4 {
            p.train(pc, hist, taken);
        }
        prop_assert_eq!(p.predict(pc, hist), taken);
    }

    #[test]
    fn perceptron_ce_weights_bounded_under_arbitrary_training(
        updates in proptest::collection::vec((0u64..4096, 0u64..u64::MAX, any::<bool>(), any::<bool>()), 0..400),
        weight_bits in 2u32..=8,
    ) {
        let mut ce = PerceptronCe::new(PerceptronCeConfig {
            entries: 8,
            hist_len: 16,
            weight_bits,
            ..PerceptronCeConfig::default()
        });
        let bound = 1i64 << (weight_bits - 1);
        for (pc, hist, pred, miss) in updates {
            let ctx = EstimateCtx { pc, history: hist, predicted_taken: pred };
            let est = ce.estimate(&ctx);
            ce.train(&ctx, est, miss);
            // The output is the sum of 17 bounded weights.
            let y = i64::from(ce.output(pc, hist));
            prop_assert!(y.abs() <= 17 * bound);
        }
    }

    #[test]
    fn jrs_flags_immediately_after_any_miss(
        pc in 0u64..100_000,
        hist in 0u64..65_536,
        pred in any::<bool>(),
        lambda in 1u8..=15,
    ) {
        let mut jrs = JrsEstimator::new(JrsConfig { lambda, ..JrsConfig::default() });
        let ctx = EstimateCtx { pc, history: hist, predicted_taken: pred };
        // Regardless of prior state, a miss resets the counter, so the
        // very next estimate in the same context must be low confidence.
        let est = jrs.estimate(&ctx);
        jrs.train(&ctx, est, true);
        prop_assert!(jrs.estimate(&ctx).is_low());
    }

    #[test]
    fn estimate_classes_are_ordered_by_raw_output(y1 in -500i32..500, y2 in -500i32..500) {
        // For the perceptron CE's classifier: if y1 <= y2 then class
        // rank (High < WeakLow < StrongLow) must not decrease.
        let ce = PerceptronCe::new(PerceptronCeConfig::combined());
        let rank = |y: i32| {
            // classify via a lookup with forged weights is not public;
            // instead check using the config thresholds directly.
            let cfg = ce.config();
            if cfg.reverse_lambda.is_some_and(|r| y > r) {
                2
            } else if y >= cfg.lambda {
                1
            } else {
                0
            }
        };
        let (lo, hi) = if y1 <= y2 { (y1, y2) } else { (y2, y1) };
        prop_assert!(rank(lo) <= rank(hi));
    }
}

#[test]
fn confidence_class_equality_is_reflexive() {
    for c in [
        ConfidenceClass::High,
        ConfidenceClass::WeakLow,
        ConfidenceClass::StrongLow,
    ] {
        assert_eq!(c, c);
    }
}
