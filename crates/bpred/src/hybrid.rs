use crate::counter::SatCounter;
use crate::faultable::FaultableState;
use crate::snapshot::{Snapshot, SnapshotError, StateDigest};
use crate::traits::BranchPredictor;
use serde::{DeError, Deserialize, Serialize, Value};

/// McFarling combining predictor: two component predictors plus a
/// meta ("chooser") table of 2-bit counters indexed by PC.
///
/// The meta counter's MSB selects component `B`; it is trained toward
/// whichever component was correct when exactly one of them was.
///
/// The paper's baseline is `Hybrid<Bimodal, Gshare>` (16K/64K/64K,
/// Table 1) and §5.2 uses `Hybrid<Gshare, PerceptronPredictor>`.
///
/// # Examples
///
/// ```
/// use perconf_bpred::{baseline_bimodal_gshare, BranchPredictor};
///
/// let mut p = baseline_bimodal_gshare();
/// for _ in 0..8 {
///     p.train(0x40, 0b1010, true);
/// }
/// assert!(p.predict(0x40, 0b1010));
/// ```
#[derive(Debug, Clone)]
pub struct Hybrid<A, B> {
    a: A,
    b: B,
    meta: Vec<SatCounter>,
    meta_bits: u32,
}

impl<A: BranchPredictor, B: BranchPredictor> Hybrid<A, B> {
    /// Combines predictors `a` and `b` with a `2^meta_bits`-entry
    /// chooser.
    ///
    /// # Panics
    ///
    /// Panics if `meta_bits` is 0 or greater than 28.
    #[must_use]
    pub fn new(a: A, b: B, meta_bits: u32) -> Self {
        assert!((1..=28).contains(&meta_bits), "meta bits must be 1..=28");
        Self {
            a,
            b,
            meta: vec![SatCounter::new(2); 1 << meta_bits],
            meta_bits,
        }
    }

    fn meta_index(&self, pc: u64) -> usize {
        ((pc >> 2) & ((1 << self.meta_bits) - 1)) as usize
    }

    /// Access to component `a`.
    #[must_use]
    pub fn component_a(&self) -> &A {
        &self.a
    }

    /// Access to component `b`.
    #[must_use]
    pub fn component_b(&self) -> &B {
        &self.b
    }
}

impl<A: BranchPredictor, B: BranchPredictor> BranchPredictor for Hybrid<A, B> {
    fn predict(&self, pc: u64, hist: u64) -> bool {
        if self.meta[self.meta_index(pc)].msb() {
            self.b.predict(pc, hist)
        } else {
            self.a.predict(pc, hist)
        }
    }

    fn train(&mut self, pc: u64, hist: u64, taken: bool) {
        let pa = self.a.predict(pc, hist);
        let pb = self.b.predict(pc, hist);
        let ca = pa == taken;
        let cb = pb == taken;
        if ca != cb {
            let i = self.meta_index(pc);
            // Move toward B when B alone was right.
            self.meta[i].update(cb);
        }
        self.a.train(pc, hist, taken);
        self.b.train(pc, hist, taken);
    }

    fn name(&self) -> &'static str {
        "hybrid"
    }

    fn storage_bits(&self) -> u64 {
        self.a.storage_bits() + self.b.storage_bits() + 2 * self.meta.len() as u64
    }
}

impl<A: FaultableState, B: FaultableState> FaultableState for Hybrid<A, B> {
    fn state_bits(&self) -> u64 {
        self.a.state_bits() + self.b.state_bits() + 2 * self.meta.len() as u64
    }

    fn flip_state_bit(&mut self, bit: u64) {
        // Address space: component a, then component b, then the meta
        // table — mirroring the storage_bits accounting.
        let mut bit = bit % self.state_bits();
        if bit < self.a.state_bits() {
            self.a.flip_state_bit(bit);
            return;
        }
        bit -= self.a.state_bits();
        if bit < self.b.state_bits() {
            self.b.flip_state_bit(bit);
            return;
        }
        bit -= self.b.state_bits();
        self.meta[(bit / 2) as usize].flip_state_bit(bit % 2);
    }
}

// The vendored serde derive does not handle generic types, so the
// serialisation impls are written by hand. Field names match what a
// derive would have produced.
impl<A: Serialize, B: Serialize> Serialize for Hybrid<A, B> {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("a".into(), self.a.to_value()),
            ("b".into(), self.b.to_value()),
            ("meta".into(), self.meta.to_value()),
            ("meta_bits".into(), self.meta_bits.to_value()),
        ])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for Hybrid<A, B> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(Self {
            a: serde::field(v, "a")?,
            b: serde::field(v, "b")?,
            meta: serde::field(v, "meta")?,
            meta_bits: serde::field(v, "meta_bits")?,
        })
    }
}

impl<A, B> Snapshot for Hybrid<A, B>
where
    A: Snapshot + Serialize + Deserialize,
    B: Snapshot + Serialize + Deserialize,
{
    fn save_state(&self) -> Value {
        self.to_value()
    }

    fn restore_state(&mut self, state: &Value) -> Result<(), SnapshotError> {
        *self = Self::from_value(state).map_err(SnapshotError::from_de)?;
        Ok(())
    }

    fn state_digest(&self) -> u64 {
        let mut d = StateDigest::new();
        d.word(self.a.state_digest())
            .word(self.b.state_digest())
            .word(u64::from(self.meta_bits));
        for c in &self.meta {
            d.byte(c.value());
        }
        d.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Bimodal, Gshare};

    #[test]
    fn chooser_migrates_to_better_component() {
        // Pattern: taken iff history bit0 set. Bimodal cannot learn it;
        // gshare can. The meta table should migrate to gshare.
        let mut p = Hybrid::new(Bimodal::new(8), Gshare::new(10, 4), 8);
        for i in 0..400u64 {
            let hist = i % 2;
            let taken = hist == 1;
            p.train(0x40, hist, taken);
        }
        assert!(p.predict(0x40, 1));
        assert!(!p.predict(0x40, 0));
        assert!(
            p.meta[p.meta_index(0x40)].msb(),
            "meta should choose gshare"
        );
    }

    #[test]
    fn agreeing_components_do_not_move_meta() {
        let mut p = Hybrid::new(Bimodal::new(8), Gshare::new(10, 4), 8);
        let before = p.meta[p.meta_index(0x80)].value();
        for _ in 0..10 {
            p.train(0x80, 0, true); // both learn "taken" together
        }
        // After both are trained they agree, so meta stops moving;
        // it can only have moved during the brief initial disagreement.
        let after = p.meta[p.meta_index(0x80)].value();
        assert!((i16::from(after) - i16::from(before)).abs() <= 1);
    }

    #[test]
    fn storage_sums_components_and_meta() {
        let p = Hybrid::new(Bimodal::new(4), Gshare::new(4, 4), 4);
        assert_eq!(p.storage_bits(), 2 * 16 + 2 * 16 + 2 * 16);
    }

    #[test]
    fn baseline_constructor_sizes_match_table1() {
        let p = crate::baseline_bimodal_gshare();
        // 16K bimodal + 64K gshare + 64K meta, 2 bits each.
        assert_eq!(
            p.storage_bits(),
            2 * 16 * 1024 + 2 * 64 * 1024 + 2 * 64 * 1024
        );
    }

    #[test]
    fn gshare_perceptron_constructor_builds() {
        let p = crate::gshare_perceptron();
        assert!(p.storage_bits() > 0);
    }
}
