use crate::faultable::FaultableState;
use serde::{Deserialize, Serialize};

/// An n-bit saturating up/down counter, the universal building block of
/// table-based predictors and confidence estimators.
///
/// # Examples
///
/// ```
/// use perconf_bpred::SatCounter;
///
/// let mut c = SatCounter::new(2); // 2 bits: 0..=3
/// assert_eq!(c.value(), 1);       // initialised weakly not-taken
/// c.inc();
/// c.inc();
/// c.inc();
/// assert_eq!(c.value(), 3);       // saturates at max
/// assert!(c.msb());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SatCounter {
    value: u8,
    max: u8,
}

impl SatCounter {
    /// Creates an n-bit counter (`1 <= bits <= 7`), initialised just
    /// below the midpoint (the conventional "weakly not-taken" state).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 7.
    #[must_use]
    pub fn new(bits: u8) -> Self {
        assert!((1..=7).contains(&bits), "counter width must be 1..=7 bits");
        let max = (1u8 << bits) - 1;
        Self {
            value: max.div_ceil(2) - 1,
            max,
        }
    }

    /// Creates an n-bit counter with an explicit initial value
    /// (clamped to range).
    #[must_use]
    pub fn with_value(bits: u8, value: u8) -> Self {
        let mut c = Self::new(bits);
        c.value = value.min(c.max);
        c
    }

    /// Current value.
    #[must_use]
    pub fn value(&self) -> u8 {
        self.value
    }

    /// Maximum representable value (`2^bits - 1`).
    #[must_use]
    pub fn max(&self) -> u8 {
        self.max
    }

    /// Saturating increment.
    pub fn inc(&mut self) {
        if self.value < self.max {
            self.value += 1;
        }
    }

    /// Saturating decrement.
    pub fn dec(&mut self) {
        if self.value > 0 {
            self.value -= 1;
        }
    }

    /// Increments if `up`, else decrements.
    pub fn update(&mut self, up: bool) {
        if up {
            self.inc();
        } else {
            self.dec();
        }
    }

    /// Most significant bit: the "predict taken" decision for a
    /// direction counter.
    #[must_use]
    pub fn msb(&self) -> bool {
        self.value > self.max / 2
    }

    /// Returns `true` when the counter is at one of its two extreme
    /// values — Smith's notion of a *high-confidence* state.
    #[must_use]
    pub fn is_saturated(&self) -> bool {
        self.value == 0 || self.value == self.max
    }
}

impl FaultableState for SatCounter {
    fn state_bits(&self) -> u64 {
        u64::from(self.max.count_ones())
    }

    fn flip_state_bit(&mut self, bit: u64) {
        // max = 2^bits - 1, so flipping any bit below the width leaves
        // the value representable.
        self.value ^= 1 << (bit % self.state_bits()) as u8;
    }
}

/// A miss-distance resetting counter as used by the JRS confidence
/// estimator: incremented (saturating) on a correct prediction, reset
/// to zero on a misprediction. The counter value is then the number of
/// consecutive correct predictions observed, capped at `2^bits - 1`.
///
/// # Examples
///
/// ```
/// use perconf_bpred::ResettingCounter;
///
/// let mut c = ResettingCounter::new(4);
/// for _ in 0..20 {
///     c.correct();
/// }
/// assert_eq!(c.value(), 15);
/// c.incorrect();
/// assert_eq!(c.value(), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ResettingCounter {
    value: u8,
    max: u8,
}

impl ResettingCounter {
    /// Creates an n-bit resetting counter starting at zero.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 7.
    #[must_use]
    pub fn new(bits: u8) -> Self {
        assert!((1..=7).contains(&bits), "counter width must be 1..=7 bits");
        Self {
            value: 0,
            max: (1u8 << bits) - 1,
        }
    }

    /// Current miss distance (consecutive correct predictions, capped).
    #[must_use]
    pub fn value(&self) -> u8 {
        self.value
    }

    /// Maximum representable value.
    #[must_use]
    pub fn max(&self) -> u8 {
        self.max
    }

    /// Records a correct prediction (saturating increment).
    pub fn correct(&mut self) {
        if self.value < self.max {
            self.value += 1;
        }
    }

    /// Records a misprediction (reset to zero).
    pub fn incorrect(&mut self) {
        self.value = 0;
    }
}

impl FaultableState for ResettingCounter {
    fn state_bits(&self) -> u64 {
        u64::from(self.max.count_ones())
    }

    fn flip_state_bit(&mut self, bit: u64) {
        self.value ^= 1 << (bit % self.state_bits()) as u8;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_bit_counter_cycle() {
        let mut c = SatCounter::new(2);
        assert_eq!(c.value(), 1);
        assert!(!c.msb());
        c.inc();
        assert!(c.msb());
        c.inc();
        assert_eq!(c.value(), 3);
        c.inc();
        assert_eq!(c.value(), 3);
        for _ in 0..5 {
            c.dec();
        }
        assert_eq!(c.value(), 0);
    }

    #[test]
    fn saturation_detection() {
        let mut c = SatCounter::new(2);
        assert!(!c.is_saturated());
        c.dec();
        assert!(c.is_saturated());
        c.inc();
        c.inc();
        c.inc();
        assert!(c.is_saturated());
    }

    #[test]
    fn update_routes_by_direction() {
        let mut c = SatCounter::new(3);
        let v = c.value();
        c.update(true);
        assert_eq!(c.value(), v + 1);
        c.update(false);
        assert_eq!(c.value(), v);
    }

    #[test]
    fn with_value_clamps() {
        let c = SatCounter::with_value(2, 200);
        assert_eq!(c.value(), 3);
    }

    #[test]
    #[should_panic(expected = "1..=7")]
    fn zero_bits_panics() {
        let _ = SatCounter::new(0);
    }

    #[test]
    fn resetting_counter_counts_streaks() {
        let mut c = ResettingCounter::new(4);
        for i in 1..=10 {
            c.correct();
            assert_eq!(c.value(), i.min(15));
        }
        c.incorrect();
        assert_eq!(c.value(), 0);
        c.correct();
        assert_eq!(c.value(), 1);
    }

    #[test]
    fn resetting_counter_saturates() {
        let mut c = ResettingCounter::new(2);
        for _ in 0..10 {
            c.correct();
        }
        assert_eq!(c.value(), 3);
    }
}
