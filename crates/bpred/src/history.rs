use serde::{Deserialize, Serialize};

/// A global branch-history register of up to 64 bits.
///
/// Bit 0 holds the most recent branch outcome (1 = taken). The
/// simulator owns one `GlobalHistory`, pushes each resolved correct-path
/// outcome into it, and hands [`snapshot`](Self::snapshot)s to the
/// predictor and confidence estimator at lookup time; the same snapshot
/// is replayed at training time.
///
/// # Examples
///
/// ```
/// use perconf_bpred::GlobalHistory;
///
/// let mut h = GlobalHistory::new(4);
/// h.push(true);
/// h.push(false);
/// h.push(true);
/// assert_eq!(h.snapshot(), 0b101);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GlobalHistory {
    bits: u64,
    len: u32,
}

impl GlobalHistory {
    /// Creates an all-zero history of `len` bits (`1..=64`).
    ///
    /// # Panics
    ///
    /// Panics if `len` is 0 or greater than 64.
    #[must_use]
    pub fn new(len: u32) -> Self {
        assert!((1..=64).contains(&len), "history length must be 1..=64");
        Self { bits: 0, len }
    }

    /// Number of history bits tracked.
    #[must_use]
    pub fn len(&self) -> u32 {
        self.len
    }

    /// Returns `true` if the register tracks zero bits (never; the
    /// constructor requires at least one).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Shifts in one outcome (1 = taken) as the new bit 0.
    pub fn push(&mut self, taken: bool) {
        self.bits = ((self.bits << 1) | u64::from(taken)) & self.mask();
    }

    /// Current history value, masked to `len` bits.
    #[must_use]
    pub fn snapshot(&self) -> u64 {
        self.bits
    }

    /// Replaces the whole register (used to repair history after a
    /// misprediction squash).
    pub fn restore(&mut self, bits: u64) {
        self.bits = bits & self.mask();
    }

    fn mask(&self) -> u64 {
        if self.len == 64 {
            u64::MAX
        } else {
            (1u64 << self.len) - 1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_shifts_in_at_bit_zero() {
        let mut h = GlobalHistory::new(8);
        h.push(true);
        assert_eq!(h.snapshot(), 1);
        h.push(false);
        assert_eq!(h.snapshot(), 0b10);
        h.push(true);
        assert_eq!(h.snapshot(), 0b101);
    }

    #[test]
    fn history_wraps_at_length() {
        let mut h = GlobalHistory::new(2);
        h.push(true);
        h.push(true);
        h.push(false);
        assert_eq!(h.snapshot(), 0b10);
    }

    #[test]
    fn restore_masks() {
        let mut h = GlobalHistory::new(4);
        h.restore(0xFF);
        assert_eq!(h.snapshot(), 0xF);
    }

    #[test]
    fn full_width_history() {
        let mut h = GlobalHistory::new(64);
        for _ in 0..100 {
            h.push(true);
        }
        assert_eq!(h.snapshot(), u64::MAX);
    }

    #[test]
    #[should_panic(expected = "1..=64")]
    fn oversized_history_panics() {
        let _ = GlobalHistory::new(65);
    }
}
