//! Branch-predictor substrate for the HPCA 2004 confidence-estimation
//! reproduction.
//!
//! The paper's baseline processor uses a *"combined: 16K bimodal, 64K
//! gshare, 64K meta"* hybrid predictor (Table 1), and §5.2 additionally
//! evaluates a *gshare–perceptron* hybrid. This crate implements all of
//! the pieces from scratch:
//!
//! * [`SatCounter`] — n-bit saturating counters (the universal
//!   building block, also reused by the confidence estimators);
//! * [`Bimodal`] — per-PC 2-bit counters;
//! * [`Gshare`] — global-history XOR-indexed counters (McFarling);
//! * [`PasPredictor`] — two-level per-address (PAs) predictor, needed
//!   by the Tyson pattern-based confidence estimator;
//! * [`PerceptronPredictor`] — the Jimenez–Lin perceptron predictor,
//!   trained with taken/not-taken directions;
//! * [`Hybrid`] — a McFarling meta/chooser combiner over any two
//!   predictors, giving the paper's `bimodal-gshare` baseline and the
//!   `gshare-perceptron` predictor of §5.2.
//!
//! All predictors implement [`BranchPredictor`]: `predict` is a pure
//! lookup against the caller-supplied global-history snapshot, and
//! `train` is applied non-speculatively (at retirement) with the same
//! snapshot that was live at prediction time.
//!
//! # Examples
//!
//! ```
//! use perconf_bpred::{BranchPredictor, Gshare};
//!
//! let mut p = Gshare::new(16, 12); // 2^16 counters, 12 history bits
//! let pc = 0x40_0000;
//! for _ in 0..32 {
//!     let hist = 0;
//!     let _ = p.predict(pc, hist);
//!     p.train(pc, hist, true); // branch is always taken
//! }
//! assert!(p.predict(pc, 0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bimodal;
mod counter;
mod faultable;
mod gshare;
mod history;
mod hybrid;
mod pas;
mod perceptron;
mod snapshot;
mod tage;
mod traits;

pub use bimodal::Bimodal;
pub use counter::{ResettingCounter, SatCounter};
pub use faultable::{FaultablePredictor, FaultableState};
pub use gshare::Gshare;
pub use history::GlobalHistory;
pub use hybrid::Hybrid;
pub use pas::PasPredictor;
pub use perceptron::{flip_weight_bit, perceptron_theta, PerceptronPredictor};
pub use snapshot::{
    digest_bytes, digest_value, SimPredictor, Snapshot, SnapshotError, StateDigest,
};
pub use tage::Tage;
pub use traits::BranchPredictor;

/// Builds the paper's Table 1 baseline predictor: 16K-entry bimodal +
/// 64K-entry gshare combined by a 64K-entry meta table.
///
/// The gshare component folds 8 history bits into its 16-bit index —
/// using fewer history bits than index bits is the standard way to
/// trade pattern-space size against warm-up time; 8 bits cover every
/// short-range correlated tap the synthetic workloads emit while
/// leaving the long-range (periodic / long-history) correlations to
/// structures with longer windows, exactly the regime the perceptron
/// literature targets.
#[must_use]
pub fn baseline_bimodal_gshare() -> Hybrid<Bimodal, Gshare> {
    Hybrid::new(Bimodal::new(14), Gshare::new(16, 8), 16)
}

/// Builds the §5.2 gshare–perceptron hybrid: 64K gshare combined with a
/// 256-entry, 32-history perceptron predictor by a 64K meta table.
#[must_use]
pub fn gshare_perceptron() -> Hybrid<Gshare, PerceptronPredictor> {
    Hybrid::new(Gshare::new(16, 8), PerceptronPredictor::new(256, 32), 16)
}

/// Builds an extension baseline two steps past the paper: 64K gshare
/// combined with a [`Tage`] predictor. Used to show Table 5's
/// better-predictor trend continuing with a modern predictor.
#[must_use]
pub fn tage_hybrid() -> Hybrid<Gshare, Tage> {
    Hybrid::new(Gshare::new(16, 8), Tage::default_config(), 16)
}
