use crate::counter::SatCounter;
use crate::faultable::FaultableState;
use crate::snapshot::{Snapshot, StateDigest};
use crate::traits::BranchPredictor;
use serde::{Deserialize, Serialize};

/// A TAGE branch predictor (Seznec & Michaud, "A case for (partially)
/// TAgged GEometric history length branch predictors", JILP 2006).
///
/// TAGE post-dates the paper and is included as the repository's
/// *extension* baseline: Table 5 shows that a better baseline
/// predictor shrinks — but does not eliminate — the confidence
/// estimator's opportunity, and TAGE extends that trend one more step
/// (see the `tage_gating` example).
///
/// Structure: a bimodal base predictor plus `N` partially tagged
/// tables indexed with geometrically increasing history lengths. The
/// prediction comes from the longest-history table that hits; the
/// runner-up ("altpred") is used when the provider entry is weak and
/// unproven. Allocation on mispredictions steals a not-useful entry
/// from a longer table.
///
/// # Examples
///
/// ```
/// use perconf_bpred::{BranchPredictor, Tage};
///
/// let mut t = Tage::geometric(4, 10, 4, 64);
/// for _ in 0..64 {
///     t.train(0x40, 0b1011, true);
/// }
/// assert!(t.predict(0x40, 0b1011));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Tage {
    base: Vec<SatCounter>,
    base_bits: u32,
    tables: Vec<TaggedTable>,
    /// Use-alt-on-new-alloc counter (dynamic choice between provider
    /// and altpred for weak entries).
    use_alt: SatCounter,
    tick: u64,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct TaggedTable {
    entries: Vec<TageEntry>,
    index_bits: u32,
    tag_bits: u32,
    hist_len: u32,
}

#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct TageEntry {
    tag: u16,
    ctr: SatCounter,
    useful: SatCounter,
}

impl TaggedTable {
    fn new(index_bits: u32, tag_bits: u32, hist_len: u32) -> Self {
        Self {
            entries: vec![
                TageEntry {
                    tag: 0,
                    ctr: SatCounter::new(3),
                    useful: SatCounter::with_value(2, 0),
                };
                1 << index_bits
            ],
            index_bits,
            tag_bits,
            hist_len,
        }
    }

    /// Folds `hist_len` bits of history into `bits` output bits.
    fn fold(&self, hist: u64, bits: u32) -> u64 {
        let mask = if self.hist_len >= 64 {
            u64::MAX
        } else {
            (1u64 << self.hist_len) - 1
        };
        let mut h = hist & mask;
        let mut out = 0u64;
        while h != 0 {
            out ^= h & ((1 << bits) - 1);
            h >>= bits;
        }
        out
    }

    fn index(&self, pc: u64, hist: u64) -> usize {
        let folded = self.fold(hist, self.index_bits);
        (((pc >> 2) ^ (pc >> (2 + self.index_bits as u64)) ^ folded) & ((1 << self.index_bits) - 1))
            as usize
    }

    fn tag(&self, pc: u64, hist: u64) -> u16 {
        let folded = self.fold(hist, self.tag_bits) ^ self.fold(hist, self.tag_bits - 1) << 1;
        (((pc >> 2) ^ folded) & ((1 << self.tag_bits) - 1)) as u16
    }

    fn lookup(&self, pc: u64, hist: u64) -> Option<&TageEntry> {
        let e = &self.entries[self.index(pc, hist)];
        (e.tag == self.tag(pc, hist)).then_some(e)
    }
}

/// Outcome of a TAGE lookup, kept for the training step.
#[derive(Debug, Clone, Copy)]
struct Lookup {
    provider: Option<usize>,
    provider_pred: bool,
    provider_weak: bool,
    alt_pred: bool,
    final_pred: bool,
}

impl Tage {
    /// Builds a TAGE with `n_tables` tagged components of
    /// `2^index_bits` entries each, history lengths growing
    /// geometrically from `min_hist` to `max_hist`, plus a
    /// `2^(index_bits + 2)`-entry bimodal base.
    ///
    /// # Panics
    ///
    /// Panics if `n_tables == 0`, `index_bits` outside `4..=20`, or
    /// `min_hist == 0` / `max_hist < min_hist` / `max_hist > 64`.
    #[must_use]
    pub fn geometric(n_tables: u32, index_bits: u32, min_hist: u32, max_hist: u32) -> Self {
        assert!(n_tables >= 1, "need at least one tagged table");
        assert!((4..=20).contains(&index_bits), "index bits must be 4..=20");
        assert!(
            min_hist >= 1 && max_hist >= min_hist && max_hist <= 64,
            "history lengths must satisfy 1 <= min <= max <= 64"
        );
        let ratio = if n_tables == 1 {
            1.0
        } else {
            (f64::from(max_hist) / f64::from(min_hist)).powf(1.0 / f64::from(n_tables - 1))
        };
        let tables = (0..n_tables)
            .map(|i| {
                let len = (f64::from(min_hist) * ratio.powi(i as i32)).round() as u32;
                TaggedTable::new(index_bits, 9, len.clamp(1, 64))
            })
            .collect();
        Self {
            base: vec![SatCounter::new(2); 1 << (index_bits + 2)],
            base_bits: index_bits + 2,
            tables,
            use_alt: SatCounter::new(4),
            tick: 0,
        }
    }

    /// The default configuration used by [`crate::tage_hybrid`]:
    /// 4 tables × 1K entries, histories 4–64.
    #[must_use]
    pub fn default_config() -> Self {
        Self::geometric(4, 10, 4, 64)
    }

    fn base_index(&self, pc: u64) -> usize {
        ((pc >> 2) & ((1 << self.base_bits) - 1)) as usize
    }

    fn lookup(&self, pc: u64, hist: u64) -> Lookup {
        let base_pred = self.base[self.base_index(pc)].msb();
        let mut provider = None;
        let mut alt = None;
        for (i, t) in self.tables.iter().enumerate().rev() {
            if t.lookup(pc, hist).is_some() {
                if provider.is_none() {
                    provider = Some(i);
                } else if alt.is_none() {
                    alt = Some(i);
                    break;
                }
            }
        }
        let alt_pred = alt
            .and_then(|i| self.tables[i].lookup(pc, hist))
            .map_or(base_pred, |e| e.ctr.msb());
        match provider {
            None => Lookup {
                provider: None,
                provider_pred: base_pred,
                provider_weak: false,
                alt_pred: base_pred,
                final_pred: base_pred,
            },
            Some(i) => {
                let e = self.tables[i].lookup(pc, hist).expect("provider hit");
                let weak = e.ctr.value() == 3 || e.ctr.value() == 4; // around 3-bit midpoint
                let unproven = e.useful.value() == 0;
                let final_pred = if weak && unproven && self.use_alt.msb() {
                    alt_pred
                } else {
                    e.ctr.msb()
                };
                Lookup {
                    provider: Some(i),
                    provider_pred: e.ctr.msb(),
                    provider_weak: weak && unproven,
                    alt_pred,
                    final_pred,
                }
            }
        }
    }
}

impl BranchPredictor for Tage {
    fn predict(&self, pc: u64, hist: u64) -> bool {
        self.lookup(pc, hist).final_pred
    }

    fn train(&mut self, pc: u64, hist: u64, taken: bool) {
        let l = self.lookup(pc, hist);
        let mispredicted = l.final_pred != taken;

        // Update the use-alt chooser when provider and alt disagree on
        // a weak, unproven entry.
        if l.provider.is_some() && l.provider_weak && l.provider_pred != l.alt_pred {
            self.use_alt.update(l.alt_pred == taken);
        }

        match l.provider {
            Some(i) => {
                let (index, tag) = {
                    let t = &self.tables[i];
                    (t.index(pc, hist), t.tag(pc, hist))
                };
                let e = &mut self.tables[i].entries[index];
                debug_assert_eq!(e.tag, tag);
                e.ctr.update(taken);
                // Usefulness: provider was right where alt was wrong.
                if l.provider_pred != l.alt_pred {
                    e.useful.update(l.provider_pred == taken);
                }
            }
            None => {
                let bi = self.base_index(pc);
                self.base[bi].update(taken);
            }
        }
        if let Some(i) = l.provider {
            // Also keep the base warm so evictions degrade gracefully.
            if i == 0 {
                let bi = self.base_index(pc);
                self.base[bi].update(taken);
            }
        }

        // Allocate on misprediction: pick a longer table whose entry
        // is not useful.
        if mispredicted {
            let start = l.provider.map_or(0, |i| i + 1);
            let mut allocated = false;
            for i in start..self.tables.len() {
                let (index, tag) = {
                    let t = &self.tables[i];
                    (t.index(pc, hist), t.tag(pc, hist))
                };
                let e = &mut self.tables[i].entries[index];
                if e.useful.value() == 0 {
                    e.tag = tag;
                    e.ctr = SatCounter::with_value(3, if taken { 4 } else { 3 });
                    allocated = true;
                    break;
                }
            }
            if !allocated {
                // Decay usefulness so future allocations can succeed.
                for i in start..self.tables.len() {
                    let (index, _) = {
                        let t = &self.tables[i];
                        (t.index(pc, hist), 0)
                    };
                    self.tables[i].entries[index].useful.dec();
                }
            }
            self.tick += 1;
            // Periodic global usefulness decay, as in the original.
            if self.tick.is_multiple_of(256 * 1024) {
                for t in &mut self.tables {
                    for e in &mut t.entries {
                        e.useful.dec();
                    }
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "TAGE"
    }

    fn storage_bits(&self) -> u64 {
        let base = 2 * self.base.len() as u64;
        let tagged: u64 = self
            .tables
            .iter()
            .map(|t| t.entries.len() as u64 * (u64::from(t.tag_bits) + 3 + 2))
            .sum();
        base + tagged
    }
}

impl FaultableState for Tage {
    fn state_bits(&self) -> u64 {
        // Matches the storage_bits accounting: base counters, then per
        // tagged entry its tag, 3-bit ctr and 2-bit useful counter.
        let base = 2 * self.base.len() as u64;
        let tagged: u64 = self
            .tables
            .iter()
            .map(|t| t.entries.len() as u64 * (u64::from(t.tag_bits) + 3 + 2))
            .sum();
        base + tagged
    }

    fn flip_state_bit(&mut self, bit: u64) {
        let mut bit = bit % self.state_bits();
        let base_region = 2 * self.base.len() as u64;
        if bit < base_region {
            self.base[(bit / 2) as usize].flip_state_bit(bit % 2);
            return;
        }
        bit -= base_region;
        for t in &mut self.tables {
            let entry_bits = u64::from(t.tag_bits) + 3 + 2;
            let region = t.entries.len() as u64 * entry_bits;
            if bit >= region {
                bit -= region;
                continue;
            }
            let e = &mut t.entries[(bit / entry_bits) as usize];
            let b = bit % entry_bits;
            if b < u64::from(t.tag_bits) {
                e.tag ^= 1 << b as u16;
            } else if b < u64::from(t.tag_bits) + 3 {
                e.ctr.flip_state_bit(b - u64::from(t.tag_bits));
            } else {
                e.useful.flip_state_bit(b - u64::from(t.tag_bits) - 3);
            }
            return;
        }
    }
}

impl Snapshot for Tage {
    crate::snapshot_serde_body!();

    fn state_digest(&self) -> u64 {
        let mut d = StateDigest::new();
        d.word(u64::from(self.base_bits));
        for c in &self.base {
            d.byte(c.value());
        }
        for t in &self.tables {
            d.word(u64::from(t.hist_len));
            for e in &t.entries {
                d.word(u64::from(e.tag))
                    .byte(e.ctr.value())
                    .byte(e.useful.value());
            }
        }
        d.byte(self.use_alt.value()).word(self.tick);
        d.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_a_biased_branch() {
        let mut t = Tage::default_config();
        for _ in 0..32 {
            t.train(0x40, 0, true);
        }
        assert!(t.predict(0x40, 0));
    }

    #[test]
    fn learns_a_long_self_period_exactly() {
        // A single branch whose outcome repeats with period 21 visits,
        // with history = its own outcome history: in steady state there
        // are only 21 distinct histories and TAGE memorizes them all.
        let pattern: [bool; 21] = [
            true, false, true, true, false, false, true, false, true, true, false, true, true,
            true, false, false, false, true, false, true, true,
        ];
        let mut t = Tage::geometric(4, 10, 4, 32);
        let mut hist = 0u64;
        let mut correct = 0;
        let mut total = 0;
        for i in 0..6_000usize {
            let taken = pattern[i % 21];
            if i > 2_000 {
                total += 1;
                if t.predict(0x80, hist) == taken {
                    correct += 1;
                }
            }
            t.train(0x80, hist, taken);
            hist = (hist << 1) | u64::from(taken);
        }
        let acc = f64::from(correct as u32) / f64::from(total as u32);
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn geometric_history_lengths_are_increasing() {
        let t = Tage::geometric(5, 8, 4, 64);
        for w in t.tables.windows(2) {
            assert!(w[0].hist_len < w[1].hist_len);
        }
        assert_eq!(t.tables[0].hist_len, 4);
        assert_eq!(t.tables[4].hist_len, 64);
    }

    #[test]
    fn storage_is_accounted() {
        let t = Tage::geometric(4, 10, 4, 64);
        // base: 2^12 * 2 bits; each tagged: 2^10 * (9 + 3 + 2).
        assert_eq!(t.storage_bits(), 4096 * 2 + 4 * 1024 * 14);
    }

    #[test]
    fn competitive_with_gshare_on_a_real_workload() {
        use crate::{Gshare, Hybrid};
        use perconf_workload::WorkloadGenerator;
        let cfg = perconf_workload::spec2000_config("twolf").unwrap();
        let mut g = WorkloadGenerator::new(&cfg);
        let mut tage = Hybrid::new(Gshare::new(16, 8), Tage::default_config(), 16);
        let mut gshare = crate::baseline_bimodal_gshare();
        let mut hist = 0u64;
        let (mut tm, mut gm, mut n) = (0u32, 0u32, 0u64);
        while n < 400_000 {
            let u = g.next_uop();
            let Some(b) = u.branch else { continue };
            n += 1;
            if n > 150_000 {
                if tage.predict(b.pc, hist) != b.taken {
                    tm += 1;
                }
                if gshare.predict(b.pc, hist) != b.taken {
                    gm += 1;
                }
            }
            tage.train(b.pc, hist, b.taken);
            gshare.train(b.pc, hist, b.taken);
            hist = (hist << 1) | u64::from(b.taken);
        }
        // The TAGE hybrid should mispredict no more than ~5% above the
        // tuned baseline on this workload (and usually less).
        assert!(
            f64::from(tm) < f64::from(gm) * 1.05,
            "tage-hybrid misses {tm} vs baseline {gm}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_tables_panics() {
        let _ = Tage::geometric(0, 10, 4, 64);
    }
}
