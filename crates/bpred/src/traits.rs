/// Common interface of all direction predictors.
///
/// `predict` is a side-effect-free lookup; `train` applies the
/// non-speculative update at retirement. Both take the global-history
/// snapshot that was (or will be, for `predict`) live at fetch time, so
/// implementations never have to manage speculative history repair
/// themselves.
///
/// The trait is object-safe; the pipeline simulator holds a
/// `Box<dyn BranchPredictor>`.
pub trait BranchPredictor {
    /// Predicts the direction of the branch at `pc` given the global
    /// history `hist` (bit 0 = most recent outcome, 1 = taken).
    fn predict(&self, pc: u64, hist: u64) -> bool;

    /// Trains the predictor with the architectural outcome `taken`,
    /// using the same history snapshot that produced the prediction.
    fn train(&mut self, pc: u64, hist: u64, taken: bool);

    /// Short, stable display name (used in experiment output).
    fn name(&self) -> &'static str;

    /// Storage budget in bits (used to check the paper's "equal
    /// storage" comparisons).
    fn storage_bits(&self) -> u64;
}

impl<P: BranchPredictor + ?Sized> BranchPredictor for Box<P> {
    fn predict(&self, pc: u64, hist: u64) -> bool {
        (**self).predict(pc, hist)
    }

    fn train(&mut self, pc: u64, hist: u64, taken: bool) {
        (**self).train(pc, hist, taken);
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn storage_bits(&self) -> u64 {
        (**self).storage_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Bimodal;

    #[test]
    fn trait_is_object_safe_and_boxable() {
        let mut p: Box<dyn BranchPredictor> = Box::new(Bimodal::new(4));
        let _ = p.predict(0x40, 0);
        p.train(0x40, 0, true);
        assert_eq!(p.name(), "bimodal");
        assert!(p.storage_bits() > 0);
    }
}
