use crate::traits::BranchPredictor;

/// Architectural predictor/estimator state that supports targeted
/// single-bit upsets, for fault-injection studies.
///
/// Implementations expose their table state as a flat, stable bit
/// address space of [`state_bits`](Self::state_bits) bits, numbered
/// from 0. [`flip_state_bit`](Self::flip_state_bit) inverts exactly
/// one bit of that space, modelling a transient particle strike in an
/// SRAM cell. The bit numbering is deterministic for a given
/// configuration, so a recorded fault plan replays identically.
///
/// Flipping any in-range bit must leave the structure in a state it
/// could legally represent (no panics, no out-of-range counter values)
/// — faults perturb behaviour, never crash the simulator. Out-of-range
/// bit addresses wrap modulo `state_bits()` for the same reason.
pub trait FaultableState {
    /// Total number of addressable state bits.
    fn state_bits(&self) -> u64;

    /// Inverts one state bit. Addresses wrap modulo
    /// [`state_bits`](Self::state_bits).
    fn flip_state_bit(&mut self, bit: u64);
}

impl<F: FaultableState + ?Sized> FaultableState for Box<F> {
    fn state_bits(&self) -> u64 {
        (**self).state_bits()
    }

    fn flip_state_bit(&mut self, bit: u64) {
        (**self).flip_state_bit(bit);
    }
}

/// A branch predictor whose state can be fault-injected. Blanket
/// implemented; exists so callers can hold one trait object
/// (`Box<dyn FaultablePredictor>`) giving all three capabilities.
/// [`Snapshot`](crate::Snapshot) is a supertrait so fault-injected
/// runs can be checkpointed and resumed like clean ones.
pub trait FaultablePredictor: BranchPredictor + FaultableState + crate::Snapshot {}

impl<T: BranchPredictor + FaultableState + crate::Snapshot> FaultablePredictor for T {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{baseline_bimodal_gshare, Bimodal, SatCounter};

    #[test]
    fn trait_object_combines_predict_and_flip() {
        let mut p: Box<dyn FaultablePredictor> = Box::new(Bimodal::new(4));
        let before = p.predict(0x40, 0);
        assert_eq!(p.state_bits(), 2 * 16);
        // Flip the MSB of the counter for pc 0x40 (index 16 >> 2 = 4... pc
        // 0x40 >> 2 = 0x10 & 0xF = 0 → counter 0, bit 1 is its MSB).
        p.flip_state_bit(1);
        assert_ne!(p.predict(0x40, 0), before);
    }

    #[test]
    fn sat_counter_flip_stays_in_range() {
        for bits in 1..=7u8 {
            let mut c = SatCounter::new(bits);
            assert_eq!(c.state_bits(), u64::from(bits));
            for b in 0..u64::from(bits) {
                c.flip_state_bit(b);
                assert!(c.value() <= c.max());
            }
        }
    }

    #[test]
    fn flip_is_its_own_inverse() {
        let mut p = baseline_bimodal_gshare();
        let reference = baseline_bimodal_gshare();
        let bits = p.state_bits();
        for bit in [0, 1, bits / 2, bits - 1] {
            p.flip_state_bit(bit);
            p.flip_state_bit(bit);
        }
        for pc in (0..4096u64).step_by(4) {
            assert_eq!(p.predict(pc, 0), reference.predict(pc, 0));
        }
    }

    #[test]
    fn out_of_range_addresses_wrap() {
        let mut a = Bimodal::new(4);
        let mut b = Bimodal::new(4);
        a.flip_state_bit(3);
        b.flip_state_bit(3 + a.state_bits());
        for pc in (0..256u64).step_by(4) {
            assert_eq!(a.predict(pc, 0), b.predict(pc, 0));
        }
    }
}
