use crate::counter::SatCounter;
use crate::faultable::FaultableState;
use crate::snapshot::{Snapshot, StateDigest};
use crate::traits::BranchPredictor;
use serde::{Deserialize, Serialize};

/// Classic per-PC 2-bit-counter ("bimodal") predictor (Smith 1981).
///
/// # Examples
///
/// ```
/// use perconf_bpred::{Bimodal, BranchPredictor};
///
/// let mut p = Bimodal::new(10);
/// for _ in 0..4 {
///     p.train(0x1234, 0, false);
/// }
/// assert!(!p.predict(0x1234, 0));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Bimodal {
    table: Vec<SatCounter>,
    index_bits: u32,
}

impl Bimodal {
    /// Creates a bimodal predictor with `2^index_bits` 2-bit counters.
    ///
    /// # Panics
    ///
    /// Panics if `index_bits` is 0 or greater than 28.
    #[must_use]
    pub fn new(index_bits: u32) -> Self {
        assert!((1..=28).contains(&index_bits), "index bits must be 1..=28");
        Self {
            table: vec![SatCounter::new(2); 1 << index_bits],
            index_bits,
        }
    }

    fn index(&self, pc: u64) -> usize {
        // Branch PCs are word-spaced; drop the low alignment bits.
        ((pc >> 2) & ((1 << self.index_bits) - 1)) as usize
    }

    /// Reads the raw counter for `pc` (used by confidence estimators
    /// built on predictor state, e.g. Smith's scheme).
    #[must_use]
    pub fn counter(&self, pc: u64) -> SatCounter {
        self.table[self.index(pc)]
    }
}

impl BranchPredictor for Bimodal {
    fn predict(&self, pc: u64, _hist: u64) -> bool {
        self.table[self.index(pc)].msb()
    }

    fn train(&mut self, pc: u64, _hist: u64, taken: bool) {
        let i = self.index(pc);
        self.table[i].update(taken);
    }

    fn name(&self) -> &'static str {
        "bimodal"
    }

    fn storage_bits(&self) -> u64 {
        2 * self.table.len() as u64
    }
}

impl FaultableState for Bimodal {
    fn state_bits(&self) -> u64 {
        2 * self.table.len() as u64
    }

    fn flip_state_bit(&mut self, bit: u64) {
        let bit = bit % self.state_bits();
        self.table[(bit / 2) as usize].flip_state_bit(bit % 2);
    }
}

impl Snapshot for Bimodal {
    crate::snapshot_serde_body!();

    fn state_digest(&self) -> u64 {
        let mut d = StateDigest::new();
        d.word(u64::from(self.index_bits));
        for c in &self.table {
            d.byte(c.value());
        }
        d.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_direction_after_two_updates() {
        let mut p = Bimodal::new(8);
        assert!(!p.predict(0x100, 0)); // init weakly not-taken
        p.train(0x100, 0, true);
        p.train(0x100, 0, true);
        assert!(p.predict(0x100, 0));
    }

    #[test]
    fn distinct_pcs_do_not_interfere_when_not_aliased() {
        let mut p = Bimodal::new(8);
        p.train(0x100, 0, true);
        p.train(0x100, 0, true);
        assert!(!p.predict(0x104, 0));
    }

    #[test]
    fn aliased_pcs_share_a_counter() {
        let mut p = Bimodal::new(4);
        let a = 0x100;
        let b = a + (1 << (4 + 2)); // same index after >>2 and mask
        p.train(a, 0, true);
        p.train(a, 0, true);
        assert!(p.predict(b, 0));
    }

    #[test]
    fn hysteresis_requires_two_flips() {
        let mut p = Bimodal::new(8);
        for _ in 0..4 {
            p.train(0x40, 0, true);
        }
        p.train(0x40, 0, false);
        assert!(p.predict(0x40, 0)); // still taken after one not-taken
        p.train(0x40, 0, false);
        assert!(!p.predict(0x40, 0));
    }

    #[test]
    fn storage_matches_table_size() {
        assert_eq!(Bimodal::new(14).storage_bits(), 2 * 16 * 1024);
    }
}
