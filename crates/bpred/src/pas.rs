use crate::counter::SatCounter;
use crate::faultable::FaultableState;
use crate::snapshot::{Snapshot, StateDigest};
use crate::traits::BranchPredictor;
use serde::{Deserialize, Serialize};
use std::cell::Cell;

/// Two-level per-address (PAs) predictor: a table of per-branch local
/// history registers indexing a table of 2-bit pattern counters.
///
/// Needed both as a predictor in its own right and as the substrate of
/// the Tyson pattern-based confidence estimator, which classifies the
/// *local history pattern* of each prediction.
///
/// Local history is updated at `train` time (non-speculatively), which
/// is the standard approximation in trace-driven simulation.
///
/// # Examples
///
/// ```
/// use perconf_bpred::{BranchPredictor, PasPredictor};
///
/// let mut p = PasPredictor::new(10, 8);
/// for _ in 0..64 {
///     p.train(0x40, 0, true);
/// }
/// assert!(p.predict(0x40, 0));
/// assert_eq!(p.pattern(0x40), 0xFF); // local history saturated at "all taken"
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PasPredictor {
    local_hist: Vec<u16>,
    pattern_table: Vec<SatCounter>,
    bht_bits: u32,
    hist_bits: u32,
    last_pattern: Cell<u16>,
}

impl PasPredictor {
    /// Creates a PAs predictor with `2^bht_bits` local-history entries
    /// of `hist_bits` bits each, and a `2^(hist_bits + 4)`-entry
    /// pattern table (4 PC bits concatenated for set selection).
    ///
    /// # Panics
    ///
    /// Panics if `bht_bits` is outside `1..=20` or `hist_bits` outside
    /// `1..=16`.
    #[must_use]
    pub fn new(bht_bits: u32, hist_bits: u32) -> Self {
        assert!((1..=20).contains(&bht_bits), "bht bits must be 1..=20");
        assert!(
            (1..=16).contains(&hist_bits),
            "local history bits must be 1..=16"
        );
        Self {
            local_hist: vec![0; 1 << bht_bits],
            pattern_table: vec![SatCounter::new(2); 1 << (hist_bits + 4)],
            bht_bits,
            hist_bits,
            last_pattern: Cell::new(0),
        }
    }

    fn bht_index(&self, pc: u64) -> usize {
        ((pc >> 2) & ((1 << self.bht_bits) - 1)) as usize
    }

    fn pt_index(&self, pc: u64, pattern: u16) -> usize {
        let set = ((pc >> 2) & 0xF) as usize;
        (set << self.hist_bits) | pattern as usize
    }

    /// Local history pattern currently recorded for `pc`.
    #[must_use]
    pub fn pattern(&self, pc: u64) -> u16 {
        self.local_hist[self.bht_index(pc)]
    }

    /// Number of local-history bits per branch.
    #[must_use]
    pub fn hist_bits(&self) -> u32 {
        self.hist_bits
    }

    /// The local pattern used by the most recent `predict` call
    /// (consumed by the Tyson confidence estimator).
    #[must_use]
    pub fn last_pattern(&self) -> u16 {
        self.last_pattern.get()
    }
}

impl BranchPredictor for PasPredictor {
    fn predict(&self, pc: u64, _hist: u64) -> bool {
        let pattern = self.pattern(pc);
        self.last_pattern.set(pattern);
        self.pattern_table[self.pt_index(pc, pattern)].msb()
    }

    fn train(&mut self, pc: u64, _hist: u64, taken: bool) {
        let bi = self.bht_index(pc);
        let pattern = self.local_hist[bi];
        let pi = self.pt_index(pc, pattern);
        self.pattern_table[pi].update(taken);
        let mask = (1u16 << self.hist_bits) - 1;
        self.local_hist[bi] = ((pattern << 1) | u16::from(taken)) & mask;
    }

    fn name(&self) -> &'static str {
        "PAs"
    }

    fn storage_bits(&self) -> u64 {
        self.local_hist.len() as u64 * u64::from(self.hist_bits)
            + 2 * self.pattern_table.len() as u64
    }
}

impl FaultableState for PasPredictor {
    fn state_bits(&self) -> u64 {
        self.local_hist.len() as u64 * u64::from(self.hist_bits)
            + 2 * self.pattern_table.len() as u64
    }

    fn flip_state_bit(&mut self, bit: u64) {
        // Address space: local history registers, then pattern table —
        // mirroring the storage_bits accounting.
        let mut bit = bit % self.state_bits();
        let hist_region = self.local_hist.len() as u64 * u64::from(self.hist_bits);
        if bit < hist_region {
            let idx = (bit / u64::from(self.hist_bits)) as usize;
            let b = (bit % u64::from(self.hist_bits)) as u16;
            // Bits below hist_bits keep the register within its mask.
            self.local_hist[idx] ^= 1 << b;
            return;
        }
        bit -= hist_region;
        self.pattern_table[(bit / 2) as usize].flip_state_bit(bit % 2);
    }
}

impl Snapshot for PasPredictor {
    crate::snapshot_serde_body!();

    fn state_digest(&self) -> u64 {
        let mut d = StateDigest::new();
        d.word(u64::from(self.bht_bits))
            .word(u64::from(self.hist_bits));
        for &h in &self.local_hist {
            d.word(u64::from(h));
        }
        for c in &self.pattern_table {
            d.byte(c.value());
        }
        // last_pattern is observable through last_pattern(), so it is
        // part of the replayable state.
        d.word(u64::from(self.last_pattern.get()));
        d.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_local_period_two_pattern() {
        // Alternating T/N is invisible to a bimodal but trivial for PAs.
        let mut p = PasPredictor::new(8, 8);
        let mut taken = false;
        for _ in 0..200 {
            p.train(0x40, 0, taken);
            taken = !taken;
        }
        // Whatever the current local history is, the next outcome is
        // the complement of the last bit.
        let next = (p.pattern(0x40) & 1) == 0;
        assert_eq!(p.predict(0x40, 0), next);
    }

    #[test]
    fn pattern_tracks_outcomes() {
        let mut p = PasPredictor::new(8, 4);
        p.train(0x80, 0, true);
        p.train(0x80, 0, false);
        p.train(0x80, 0, true);
        assert_eq!(p.pattern(0x80), 0b101);
    }

    #[test]
    fn last_pattern_is_recorded_on_predict() {
        let mut p = PasPredictor::new(8, 6);
        for _ in 0..3 {
            p.train(0x40, 0, true);
        }
        let _ = p.predict(0x40, 0);
        assert_eq!(p.last_pattern(), 0b111);
    }

    #[test]
    fn separate_branches_have_separate_local_histories() {
        let mut p = PasPredictor::new(10, 8);
        for _ in 0..8 {
            p.train(0x100, 0, true);
            p.train(0x200, 0, false);
        }
        assert_eq!(p.pattern(0x100), 0xFF);
        assert_eq!(p.pattern(0x200), 0x00);
    }

    #[test]
    fn storage_accounts_for_both_levels() {
        let p = PasPredictor::new(10, 10);
        assert_eq!(p.storage_bits(), 1024 * 10 + 2 * (1 << 14));
    }
}
