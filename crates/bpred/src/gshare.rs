use crate::counter::SatCounter;
use crate::faultable::FaultableState;
use crate::snapshot::{Snapshot, StateDigest};
use crate::traits::BranchPredictor;
use serde::{Deserialize, Serialize};

/// McFarling's gshare predictor: 2-bit counters indexed by
/// `PC XOR global-history`.
///
/// # Examples
///
/// ```
/// use perconf_bpred::{BranchPredictor, Gshare};
///
/// let mut p = Gshare::new(12, 8);
/// // Branch taken only when the previous branch was taken:
/// for _ in 0..8 {
///     p.train(0x40, 0b1, true);
///     p.train(0x40, 0b0, false);
/// }
/// assert!(p.predict(0x40, 0b1));
/// assert!(!p.predict(0x40, 0b0));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Gshare {
    table: Vec<SatCounter>,
    index_bits: u32,
    hist_bits: u32,
}

impl Gshare {
    /// Creates a gshare predictor with `2^index_bits` counters using
    /// `hist_bits` bits of global history.
    ///
    /// # Panics
    ///
    /// Panics if `index_bits` is 0 or greater than 28, or if
    /// `hist_bits > index_bits` (extra history would be silently
    /// masked away, which is never what a caller wants).
    #[must_use]
    pub fn new(index_bits: u32, hist_bits: u32) -> Self {
        assert!((1..=28).contains(&index_bits), "index bits must be 1..=28");
        assert!(
            hist_bits <= index_bits,
            "history bits must not exceed index bits"
        );
        Self {
            table: vec![SatCounter::new(2); 1 << index_bits],
            index_bits,
            hist_bits,
        }
    }

    fn index(&self, pc: u64, hist: u64) -> usize {
        let mask = (1u64 << self.index_bits) - 1;
        let h = hist & ((1u64 << self.hist_bits) - 1).min(mask);
        (((pc >> 2) ^ h) & mask) as usize
    }

    /// Number of history bits used in the index.
    #[must_use]
    pub fn hist_bits(&self) -> u32 {
        self.hist_bits
    }
}

impl BranchPredictor for Gshare {
    fn predict(&self, pc: u64, hist: u64) -> bool {
        self.table[self.index(pc, hist)].msb()
    }

    fn train(&mut self, pc: u64, hist: u64, taken: bool) {
        let i = self.index(pc, hist);
        self.table[i].update(taken);
    }

    fn name(&self) -> &'static str {
        "gshare"
    }

    fn storage_bits(&self) -> u64 {
        2 * self.table.len() as u64
    }
}

impl FaultableState for Gshare {
    fn state_bits(&self) -> u64 {
        2 * self.table.len() as u64
    }

    fn flip_state_bit(&mut self, bit: u64) {
        let bit = bit % self.state_bits();
        self.table[(bit / 2) as usize].flip_state_bit(bit % 2);
    }
}

impl Snapshot for Gshare {
    crate::snapshot_serde_body!();

    fn state_digest(&self) -> u64 {
        let mut d = StateDigest::new();
        d.word(u64::from(self.index_bits))
            .word(u64::from(self.hist_bits));
        for c in &self.table {
            d.byte(c.value());
        }
        d.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn separates_contexts_by_history() {
        let mut p = Gshare::new(10, 6);
        for _ in 0..4 {
            p.train(0x80, 0b11, true);
            p.train(0x80, 0b00, false);
        }
        assert!(p.predict(0x80, 0b11));
        assert!(!p.predict(0x80, 0b00));
    }

    #[test]
    fn learns_xor_pattern_that_defeats_linear_predictors() {
        // taken = h0 XOR h1 — not linearly separable, but each history
        // pattern gets its own gshare counter.
        let mut p = Gshare::new(12, 4);
        for _ in 0..8 {
            for h in 0..4u64 {
                let taken = ((h & 1) ^ ((h >> 1) & 1)) == 1;
                p.train(0x44, h, taken);
            }
        }
        for h in 0..4u64 {
            let want = ((h & 1) ^ ((h >> 1) & 1)) == 1;
            assert_eq!(p.predict(0x44, h), want, "h={h:b}");
        }
    }

    #[test]
    fn zero_history_bits_degenerates_to_bimodal() {
        let mut p = Gshare::new(10, 0);
        p.train(0x40, 0b1010, true);
        p.train(0x40, 0b0101, true);
        assert!(p.predict(0x40, 0b1111));
    }

    #[test]
    #[should_panic(expected = "history bits")]
    fn oversized_history_panics() {
        let _ = Gshare::new(8, 9);
    }

    #[test]
    fn storage_bits() {
        assert_eq!(Gshare::new(16, 16).storage_bits(), 2 * 65536);
    }
}
