//! Snapshot/restore capability and rolling state digests.
//!
//! Every stateful component of the simulation stack (predictors here,
//! estimators and controllers in `perconf-core`, the workload cursor in
//! `perconf-workload`, the full pipeline in `perconf-pipeline`)
//! implements [`Snapshot`]: its state can be rendered into a
//! serde [`Value`] tree, restored from one, and summarised into a
//! stable 64-bit [FNV-1a] digest. Digests are the backbone of the
//! deterministic-replay verification in `perconf-experiments`: two runs
//! of the same configuration must produce identical digests at every
//! comparison point, so the first differing digest localises
//! nondeterminism or fault-induced corruption in time.
//!
//! Digest stability contract: for a fixed crate version and a fixed
//! component configuration, equal logical state ⇒ equal digest.
//! Digests are *not* stable across code changes that alter state
//! layout; snapshot files carry a format version for that reason.
//!
//! [FNV-1a]: http://www.isthe.com/chongo/tech/comp/fnv/
//!
//! # Examples
//!
//! ```
//! use perconf_bpred::{Bimodal, BranchPredictor, Snapshot};
//!
//! let mut a = Bimodal::new(8);
//! a.train(0x40, 0, true);
//! let saved = a.save_state();
//! let digest = a.state_digest();
//!
//! let mut b = Bimodal::new(8);
//! assert_ne!(b.state_digest(), digest);
//! b.restore_state(&saved).unwrap();
//! assert_eq!(b.state_digest(), digest);
//! ```

use serde::{DeError, Value};
use std::fmt;

/// Error restoring a component from a saved state tree: shape
/// mismatch, out-of-range value, or configuration mismatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotError {
    message: String,
}

impl SnapshotError {
    /// Creates an error from anything printable.
    pub fn msg(m: impl fmt::Display) -> Self {
        Self {
            message: m.to_string(),
        }
    }

    /// Converts a vendored-serde deserialisation error.
    #[must_use]
    pub fn from_de(e: DeError) -> Self {
        Self::msg(e)
    }
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "snapshot restore failed: {}", self.message)
    }
}

impl std::error::Error for SnapshotError {}

/// State that can be checkpointed, restored, and digest-summarised.
///
/// Object-safe; the pipeline holds `Box<dyn SimPredictor>` /
/// `Box<dyn SimEstimator>` trait objects that bundle this capability
/// with the behavioural trait.
///
/// Contract: `restore_state(&x.save_state())` must leave the component
/// in a state behaviourally identical to `x` (same future outputs for
/// the same future inputs) with `state_digest()` equal to
/// `x.state_digest()`. `restore_state` must not partially apply a
/// failing restore in a way that panics later — returning an error and
/// leaving *any* legal state is acceptable, because callers degrade to
/// a from-scratch rerun on error.
pub trait Snapshot {
    /// Renders the complete mutable state into a value tree.
    fn save_state(&self) -> Value;

    /// Restores state previously produced by
    /// [`save_state`](Self::save_state) on a component with the same
    /// configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError`] on shape or configuration mismatch.
    fn restore_state(&mut self, state: &Value) -> Result<(), SnapshotError>;

    /// A stable 64-bit digest of the current state. Equal states give
    /// equal digests; digests are cheap enough to compute every cycle
    /// in a lockstep divergence probe.
    fn state_digest(&self) -> u64;
}

impl<S: Snapshot + ?Sized> Snapshot for Box<S> {
    fn save_state(&self) -> Value {
        (**self).save_state()
    }

    fn restore_state(&mut self, state: &Value) -> Result<(), SnapshotError> {
        (**self).restore_state(state)
    }

    fn state_digest(&self) -> u64 {
        (**self).state_digest()
    }
}

/// A branch predictor that can also be checkpointed. Blanket
/// implemented; exists so callers can hold one trait object
/// (`Box<dyn SimPredictor>`) giving both capabilities.
pub trait SimPredictor: crate::traits::BranchPredictor + Snapshot {}

impl<T: crate::traits::BranchPredictor + Snapshot> SimPredictor for T {}

/// Expands to the [`Snapshot`] `save_state`/`restore_state` methods for
/// a `Serialize + Deserialize` type, serialising the whole struct.
/// Invoke inside an `impl Snapshot for T` block, then write
/// `state_digest` by hand (digests are hand-rolled over the raw fields
/// so they stay fast enough for per-cycle use).
#[macro_export]
macro_rules! snapshot_serde_body {
    () => {
        fn save_state(&self) -> ::serde::Value {
            ::serde::Serialize::to_value(self)
        }

        fn restore_state(
            &mut self,
            state: &::serde::Value,
        ) -> ::std::result::Result<(), $crate::SnapshotError> {
            *self = <Self as ::serde::Deserialize>::from_value(state)
                .map_err($crate::SnapshotError::from_de)?;
            ::std::result::Result::Ok(())
        }
    };
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a 64 hasher used by every `state_digest`
/// implementation. Deliberately not `std::hash::Hasher`: the std trait
/// makes no cross-run stability promise, while experiment artifacts
/// persist digests to disk and compare them across processes.
///
/// # Examples
///
/// ```
/// use perconf_bpred::StateDigest;
///
/// let mut d = StateDigest::new();
/// d.word(42).byte(7).flag(true);
/// let a = d.finish();
/// assert_eq!(a, StateDigest::new().word(42).byte(7).flag(true).finish());
/// ```
#[derive(Debug, Clone)]
pub struct StateDigest {
    h: u64,
}

impl Default for StateDigest {
    fn default() -> Self {
        Self::new()
    }
}

impl StateDigest {
    /// Creates a hasher at the FNV-1a offset basis.
    #[must_use]
    pub fn new() -> Self {
        Self { h: FNV_OFFSET }
    }

    /// Folds one byte.
    pub fn byte(&mut self, b: u8) -> &mut Self {
        self.h = (self.h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        self
    }

    /// Folds a 64-bit word (little-endian byte order).
    pub fn word(&mut self, w: u64) -> &mut Self {
        for b in w.to_le_bytes() {
            self.byte(b);
        }
        self
    }

    /// Folds a signed word through its two's-complement bits.
    #[allow(clippy::cast_sign_loss)]
    pub fn signed(&mut self, w: i64) -> &mut Self {
        self.word(w as u64)
    }

    /// Folds a boolean as one byte.
    pub fn flag(&mut self, b: bool) -> &mut Self {
        self.byte(u8::from(b))
    }

    /// Folds a float through its IEEE-754 bit pattern (so `-0.0` and
    /// `0.0` digest differently, and NaN digests deterministically).
    pub fn float(&mut self, f: f64) -> &mut Self {
        self.word(f.to_bits())
    }

    /// Folds every byte of a slice.
    pub fn bytes(&mut self, bs: &[u8]) -> &mut Self {
        for &b in bs {
            self.byte(b);
        }
        self
    }

    /// The digest of everything folded so far.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.h
    }
}

/// Digests a byte slice in one call — the hash used for on-disk
/// container payloads (snapshot and trace files), exposed here so
/// every consumer shares a single FNV-1a implementation.
#[must_use]
pub fn digest_bytes(bytes: &[u8]) -> u64 {
    let mut d = StateDigest::new();
    d.bytes(bytes);
    d.finish()
}

/// Digests an arbitrary value tree. Slower than a hand-rolled field
/// digest (it walks the serialised form) but handy as a fallback for
/// components whose state is digested rarely.
#[must_use]
pub fn digest_value(v: &Value) -> u64 {
    let mut d = StateDigest::new();
    fold_value(&mut d, v);
    d.finish()
}

fn fold_value(d: &mut StateDigest, v: &Value) {
    match v {
        Value::Null => {
            d.byte(0);
        }
        Value::Bool(b) => {
            d.byte(1).flag(*b);
        }
        // Int and UInt representations of the same non-negative number
        // must digest identically: which one the tree holds depends on
        // whether the value took a JSON round trip.
        #[allow(clippy::cast_sign_loss)]
        Value::Int(i) => {
            d.byte(2).word(*i as u64);
        }
        Value::UInt(u) => {
            d.byte(2).word(*u);
        }
        Value::Float(f) => {
            d.byte(3).float(*f);
        }
        Value::Str(s) => {
            d.byte(4).word(s.len() as u64).bytes(s.as_bytes());
        }
        Value::Array(items) => {
            d.byte(5).word(items.len() as u64);
            for item in items {
                fold_value(d, item);
            }
        }
        Value::Object(fields) => {
            d.byte(6).word(fields.len() as u64);
            for (k, fv) in fields {
                d.word(k.len() as u64).bytes(k.as_bytes());
                fold_value(d, fv);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{baseline_bimodal_gshare, Bimodal, BranchPredictor};

    #[test]
    fn digest_is_order_sensitive() {
        let a = StateDigest::new().word(1).word(2).finish();
        let b = StateDigest::new().word(2).word(1).finish();
        assert_ne!(a, b);
    }

    #[test]
    fn digest_distinguishes_field_boundaries() {
        let a = StateDigest::new().byte(0).word(1).finish();
        let b = StateDigest::new().word(1).byte(0).finish();
        assert_ne!(a, b);
    }

    #[test]
    fn int_and_uint_trees_digest_identically() {
        assert_eq!(
            digest_value(&Value::Int(42)),
            digest_value(&Value::UInt(42))
        );
    }

    #[test]
    fn box_forwards_snapshot() {
        let mut p: Box<dyn SimPredictor> = Box::new(Bimodal::new(4));
        p.train(0x40, 0, true);
        let saved = p.save_state();
        let digest = p.state_digest();
        let mut q: Box<dyn SimPredictor> = Box::new(Bimodal::new(4));
        q.restore_state(&saved).unwrap();
        assert_eq!(q.state_digest(), digest);
    }

    #[test]
    fn restore_rejects_mismatched_shape() {
        let mut p = baseline_bimodal_gshare();
        assert!(p.restore_state(&Value::Str("nonsense".into())).is_err());
    }
}
