use crate::faultable::FaultableState;
use crate::snapshot::{Snapshot, StateDigest};
use crate::traits::BranchPredictor;
use serde::{Deserialize, Serialize};

/// Jimenez–Lin training threshold: θ = ⌊1.93·h + 14⌋ for history
/// length `h`, the empirically optimal value from their HPCA 2001
/// paper.
///
/// # Examples
///
/// ```
/// assert_eq!(perconf_bpred::perceptron_theta(32), 75);
/// ```
#[must_use]
pub fn perceptron_theta(hist_len: u32) -> i32 {
    (1.93 * f64::from(hist_len) + 14.0) as i32
}

/// The Jimenez–Lin perceptron *direction* predictor, trained with
/// taken/not-taken outcomes.
///
/// Each table entry is a perceptron: a bias weight plus one weight per
/// history bit. The prediction is `y >= 0` where
/// `y = w0 + Σ w[i]·x[i]`, with `x[i] = +1` for a taken history bit
/// and `-1` for not-taken.
///
/// This is both a baseline predictor (the §5.2 gshare–perceptron
/// hybrid) and, through [`output`](Self::output), the substrate of the
/// `perceptron_tnt` confidence estimator that the paper argues
/// *against*.
///
/// # Examples
///
/// ```
/// use perconf_bpred::{BranchPredictor, PerceptronPredictor};
///
/// let mut p = PerceptronPredictor::new(64, 16);
/// // Outcome always equals history bit 2:
/// for i in 0..200u64 {
///     let hist = i * 37 % 8;
///     let taken = (hist >> 2) & 1 == 1;
///     p.train(0x40, hist, taken);
/// }
/// assert!(p.predict(0x40, 0b100));
/// assert!(!p.predict(0x40, 0b000));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PerceptronPredictor {
    weights: Vec<i32>,
    entries: u32,
    hist_len: u32,
    weight_min: i32,
    weight_max: i32,
    theta: i32,
}

impl PerceptronPredictor {
    /// Creates a predictor with `entries` perceptrons over `hist_len`
    /// history bits, 8-bit weights, and the standard Jimenez–Lin θ.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is 0 or `hist_len` is outside `1..=64`.
    #[must_use]
    pub fn new(entries: u32, hist_len: u32) -> Self {
        Self::with_weight_bits(entries, hist_len, 8)
    }

    /// Creates a predictor with explicit weight width in bits (2..=8).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is 0, `hist_len` outside `1..=64`, or
    /// `weight_bits` outside `2..=8`.
    #[must_use]
    pub fn with_weight_bits(entries: u32, hist_len: u32, weight_bits: u32) -> Self {
        assert!(entries > 0, "need at least one perceptron");
        assert!((1..=64).contains(&hist_len), "history must be 1..=64");
        assert!((2..=8).contains(&weight_bits), "weight bits must be 2..=8");
        let n = (hist_len + 1) as usize * entries as usize;
        Self {
            weights: vec![0; n],
            entries,
            hist_len,
            weight_min: -(1 << (weight_bits - 1)),
            weight_max: (1 << (weight_bits - 1)) - 1,
            theta: perceptron_theta(hist_len),
        }
    }

    fn row(&self, pc: u64) -> usize {
        // Every stock table size is a power of two, where the modulo
        // reduces to a mask — `%` by a non-constant is a hardware
        // divide on the hot lookup path. Non-power-of-two sizes keep
        // the exact modulo semantics.
        let e = u64::from(self.entries);
        let r = if e.is_power_of_two() {
            (pc >> 2) & (e - 1)
        } else {
            (pc >> 2) % e
        };
        r as usize * (self.hist_len + 1) as usize
    }

    /// The raw multi-valued perceptron output `y` for this lookup.
    /// Positive magnitudes far from zero indicate strong agreement of
    /// the correlated history bits.
    #[must_use]
    pub fn output(&self, pc: u64, hist: u64) -> i32 {
        let row = self.row(pc);
        let w = &self.weights[row..row + (self.hist_len + 1) as usize];
        let mut y = w[0]; // bias input is always 1
        for i in 0..self.hist_len as usize {
            let x = if (hist >> i) & 1 == 1 { 1 } else { -1 };
            y += w[i + 1] * x;
        }
        y
    }

    /// History length in bits.
    #[must_use]
    pub fn hist_len(&self) -> u32 {
        self.hist_len
    }

    /// The training threshold θ in use.
    #[must_use]
    pub fn theta(&self) -> i32 {
        self.theta
    }
}

impl BranchPredictor for PerceptronPredictor {
    fn predict(&self, pc: u64, hist: u64) -> bool {
        self.output(pc, hist) >= 0
    }

    fn train(&mut self, pc: u64, hist: u64, taken: bool) {
        let y = self.output(pc, hist);
        let t: i32 = if taken { 1 } else { -1 };
        let predicted_taken = y >= 0;
        if predicted_taken != taken || y.abs() <= self.theta {
            let row = self.row(pc);
            let n = (self.hist_len + 1) as usize;
            let w = &mut self.weights[row..row + n];
            w[0] = (w[0] + t).clamp(self.weight_min, self.weight_max);
            for i in 0..self.hist_len as usize {
                let x = if (hist >> i) & 1 == 1 { 1 } else { -1 };
                w[i + 1] = (w[i + 1] + t * x).clamp(self.weight_min, self.weight_max);
            }
        }
    }

    fn name(&self) -> &'static str {
        "perceptron"
    }

    fn storage_bits(&self) -> u64 {
        // weight_max + 1 is a power of two = 2^(bits-1)
        let bits = (32 - (self.weight_max as u32 + 1).leading_zeros()) as u64;
        self.weights.len() as u64 * bits
    }
}

/// Flips bit `b` of the `width`-bit two's-complement encoding of `w`.
/// The result always lies in `[-2^(width-1), 2^(width-1) - 1]`, so a
/// fault can never push a clamped weight out of its physical range.
/// Shared by every perceptron-family [`FaultableState`] impl (here and
/// in the confidence estimators).
#[must_use]
pub fn flip_weight_bit(w: i32, width: u32, b: u32) -> i32 {
    let mask = (1i64 << width) - 1;
    let raw = (i64::from(w) & mask) ^ (1i64 << b);
    let value = if raw & (1i64 << (width - 1)) != 0 {
        raw | !mask
    } else {
        raw
    };
    value as i32
}

impl FaultableState for PerceptronPredictor {
    fn state_bits(&self) -> u64 {
        let bits = u64::from(32 - (self.weight_max as u32 + 1).leading_zeros());
        self.weights.len() as u64 * bits
    }

    fn flip_state_bit(&mut self, bit: u64) {
        let width = 32 - (self.weight_max as u32 + 1).leading_zeros();
        let bit = bit % self.state_bits();
        let idx = (bit / u64::from(width)) as usize;
        let b = (bit % u64::from(width)) as u32;
        self.weights[idx] = flip_weight_bit(self.weights[idx], width, b);
    }
}

impl Snapshot for PerceptronPredictor {
    crate::snapshot_serde_body!();

    fn state_digest(&self) -> u64 {
        let mut d = StateDigest::new();
        d.word(u64::from(self.entries))
            .word(u64::from(self.hist_len))
            .signed(i64::from(self.weight_min))
            .signed(i64::from(self.weight_max))
            .signed(i64::from(self.theta));
        for &w in &self.weights {
            d.signed(i64::from(w));
        }
        d.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theta_matches_jimenez_lin_formula() {
        assert_eq!(perceptron_theta(16), 44);
        assert_eq!(perceptron_theta(32), 75);
    }

    #[test]
    fn learns_biased_branch_via_bias_weight() {
        let mut p = PerceptronPredictor::new(16, 8);
        for h in 0..100u64 {
            p.train(0x40, h * 13 % 256, true);
        }
        for h in [0u64, 5, 77, 255] {
            assert!(p.predict(0x40, h));
        }
    }

    #[test]
    fn learns_linear_history_correlation() {
        let mut p = PerceptronPredictor::new(16, 8);
        // taken = history bit 1 (direct correlation)
        for i in 0..300u64 {
            let hist = i.wrapping_mul(0x9E37) % 256;
            p.train(0x80, hist, (hist >> 1) & 1 == 1);
        }
        let mut correct = 0;
        for i in 0..64u64 {
            let hist = i * 4 + 2; // bit1 set
            if p.predict(0x80, hist) {
                correct += 1;
            }
            let hist = i * 4; // bit1 clear
            if !p.predict(0x80, hist) {
                correct += 1;
            }
        }
        assert!(correct >= 120, "correct={correct}/128");
    }

    #[test]
    fn cannot_learn_xor() {
        // XOR of two history bits is not linearly separable; accuracy
        // should hover near 50%.
        let mut p = PerceptronPredictor::new(16, 8);
        let mut correct = 0;
        let mut total = 0;
        for i in 0..2000u64 {
            let hist = i.wrapping_mul(0x9E37_79B9) % 256;
            let taken = ((hist ^ (hist >> 3)) & 1) == 1;
            if i > 500 {
                total += 1;
                if p.predict(0x40, hist) == taken {
                    correct += 1;
                }
            }
            p.train(0x40, hist, taken);
        }
        let acc = f64::from(correct) / f64::from(total);
        assert!(acc < 0.65, "accuracy {acc} unexpectedly high for XOR");
    }

    #[test]
    fn weights_stay_in_range() {
        let mut p = PerceptronPredictor::with_weight_bits(4, 8, 4);
        for i in 0..5000u64 {
            p.train(0x40, i % 256, true);
        }
        assert!(p.weights.iter().all(|&w| (-8..=7).contains(&w)));
    }

    #[test]
    fn output_magnitude_grows_with_training() {
        let mut p = PerceptronPredictor::new(4, 8);
        let y0 = p.output(0x40, 0).abs();
        for _ in 0..50 {
            p.train(0x40, 0, true);
        }
        assert!(p.output(0x40, 0).abs() > y0);
    }

    #[test]
    fn storage_bits_counts_weights() {
        let p = PerceptronPredictor::new(128, 32);
        assert_eq!(p.storage_bits(), 128 * 33 * 8);
    }
}
