//! Spec-conformance suite: the declarative experiment-spec format
//! must be a faithful, stable surface over the code-built experiment
//! machinery.
//!
//! - **Round-trip idempotence** — `parse → to_toml → parse` is the
//!   identity on every checked-in spec (and `to_toml` is a fixed
//!   point), so canonicalizing a spec never changes its meaning.
//! - **Diagnostics** — unknown keys are rejected with a `file:line`
//!   citation; a `spec_version` mismatch is its own error class and
//!   its own process exit code (6), distinct from plain usage errors.
//! - **Lowering equivalence** — a seeded sweep of randomly generated
//!   fault-grid specs lowers to exactly the cells (same keys, same
//!   order) that code-built `faults::Grid`s produce, which is the
//!   spec-vs-code contract the CI `specs` lane rides on.

use perconf_experiments::spec::{Lowered, RunSpec, SpecError};
use perconf_experiments::{exitcode, faults, Scale};
use std::path::PathBuf;
use std::process::Command;

fn specs_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../specs")
}

fn checked_in_specs() -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(specs_dir())
        .expect("specs/ exists at the workspace root")
        .map(|e| e.expect("readable entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "toml" || e == "json"))
        .collect();
    files.sort();
    assert!(
        files.len() >= 5,
        "expected the five checked-in specs, found {files:?}"
    );
    files
}

// ---------------------------------------------------------------- //
// Round-trip idempotence.
// ---------------------------------------------------------------- //

#[test]
fn every_checked_in_spec_round_trips_through_canonical_toml() {
    for path in checked_in_specs() {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let spec = RunSpec::load(&path).unwrap_or_else(|e| panic!("{name}: {}", e.message()));
        let canon = spec.to_toml();
        let back = RunSpec::parse_toml(&canon, &name)
            .unwrap_or_else(|e| panic!("{name} canonical form re-parses: {}", e.message()));
        assert_eq!(back, spec, "{name}: canonicalizing changed the spec");
        assert_eq!(
            back.to_toml(),
            canon,
            "{name}: to_toml is not a fixed point"
        );
    }
}

// ---------------------------------------------------------------- //
// Diagnostics: unknown keys and version gating.
// ---------------------------------------------------------------- //

#[test]
fn unknown_keys_are_cited_by_file_and_line_when_loaded_from_disk() {
    let dir = std::env::temp_dir().join("perconf-spec-conformance");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("misspelled.toml");
    std::fs::write(
        &path,
        "spec_version = 1\n\n[experiment]\nkind = \"table2\"\nscal = \"tiny\"\n",
    )
    .unwrap();
    let err = RunSpec::load(&path).expect_err("misspelled key must be rejected");
    let msg = err.message().to_owned();
    assert!(
        msg.contains("misspelled.toml:5:"),
        "diagnostic must cite file and line: {msg}"
    );
    assert!(
        msg.contains("`experiment.scal`"),
        "diagnostic must name the offending key: {msg}"
    );
}

fn repro(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("repro runs")
}

#[test]
fn spec_version_mismatch_exits_with_its_own_code() {
    let dir = std::env::temp_dir().join("perconf-spec-conformance");
    std::fs::create_dir_all(&dir).unwrap();

    let future = dir.join("future.toml");
    std::fs::write(
        &future,
        "spec_version = 99\n\n[experiment]\nkind = \"table2\"\n",
    )
    .unwrap();
    let out = repro(&["run", future.to_str().unwrap(), "--check"]);
    assert_eq!(
        out.status.code(),
        Some(i32::from(exitcode::SPEC_VERSION)),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // A merely invalid spec stays in the generic usage class — the
    // version code is reserved for forward-compatibility failures.
    let invalid = dir.join("invalid.toml");
    std::fs::write(
        &invalid,
        "spec_version = 1\n\n[experiment]\nkind = \"tableau\"\n",
    )
    .unwrap();
    let out = repro(&["run", invalid.to_str().unwrap(), "--check"]);
    assert_eq!(
        out.status.code(),
        Some(i32::from(exitcode::USAGE)),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn check_mode_accepts_every_checked_in_spec_without_running() {
    for path in checked_in_specs() {
        let out = repro(&["run", path.to_str().unwrap(), "--check"]);
        assert_eq!(
            out.status.code(),
            Some(0),
            "{}: {}",
            path.display(),
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(
            stdout.contains("spec OK"),
            "{}: --check must report without running: {stdout}",
            path.display()
        );
    }
}

// ---------------------------------------------------------------- //
// Lowering equivalence: random grids, spec path vs code path.
// ---------------------------------------------------------------- //

/// Deterministic LCG (MMIX constants) — the same generator idiom the
/// simulator crates use for seeded tests.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0
    }

    fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[(self.next() >> 33) as usize % xs.len()]
    }

    /// 1..=n distinct elements of `xs`, in `xs` order (the spec format
    /// rejects duplicate axis entries).
    fn subset<'a, T>(&mut self, xs: &'a [T]) -> Vec<&'a T> {
        let n = 1 + (self.next() >> 33) as usize % xs.len();
        let mut picked: Vec<usize> = (0..xs.len()).collect();
        // Partial Fisher-Yates, then restore axis order.
        for i in 0..n {
            let j = i + (self.next() >> 33) as usize % (picked.len() - i);
            picked.swap(i, j);
        }
        picked.truncate(n);
        picked.sort_unstable();
        picked.into_iter().map(|i| &xs[i]).collect()
    }
}

#[test]
fn random_grid_specs_lower_to_the_same_cells_as_code_built_grids() {
    let rates_pool = [0.0, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0];
    let mut rng = Lcg(0x5eed_c0de_0000_0001);
    for round in 0..40 {
        let estimators: Vec<String> = rng
            .subset(&faults::ESTIMATORS)
            .into_iter()
            .map(|s| (*s).to_owned())
            .collect();
        let benchmarks: Vec<String> = rng
            .subset(&perconf_workload::SPEC2000_NAMES)
            .into_iter()
            .map(|s| (*s).to_owned())
            .collect();
        let rates: Vec<f64> = rng.subset(&rates_pool).into_iter().copied().collect();
        let seed = rng.next();
        let scale_name = *rng.pick(&["tiny", "quick", "full"]);
        let code_grid = faults::Grid {
            estimators: estimators.clone(),
            benchmarks: benchmarks.clone(),
            rates: rates.clone(),
        };

        // Render the grid as a spec document, then push it through the
        // declarative pipeline.
        let doc = format!(
            "spec_version = 1\n\n[experiment]\nkind = \"faults\"\nscale = \"{scale_name}\"\n\
             seed = {seed}\n\n[faults]\nestimators = [{}]\nbenchmarks = [{}]\nrates = [{}]\n",
            quote_list(&estimators),
            quote_list(&benchmarks),
            rates
                .iter()
                .map(|r| format!("{r:?}"))
                .collect::<Vec<_>>()
                .join(", "),
        );
        let spec = RunSpec::parse_toml(&doc, "random.toml")
            .unwrap_or_else(|e| panic!("round {round}: {}\n{doc}", e.message()));
        let Lowered::Faults {
            scale,
            seed: lowered_seed,
            grid,
        } = spec
            .lower()
            .unwrap_or_else(|e| panic!("round {round}: {e}"))
        else {
            panic!("round {round}: faults spec must lower to Faults");
        };

        assert_eq!(lowered_seed, seed, "round {round}");
        assert_eq!(grid, code_grid, "round {round}:\n{doc}");
        let scale_code = match scale_name {
            "tiny" => Scale::tiny(),
            "quick" => Scale::quick(),
            _ => Scale::full(),
        };
        assert_eq!(scale, scale_code, "round {round}");

        // The contract that matters downstream: identical scheduler
        // cells, key for key, in the canonical order.
        let spec_keys: Vec<String> = faults::cell_specs(scale, lowered_seed, &grid)
            .iter()
            .map(|c| c.key().to_owned())
            .collect();
        let code_keys: Vec<String> = faults::cell_specs(scale_code, seed, &code_grid)
            .iter()
            .map(|c| c.key().to_owned())
            .collect();
        assert_eq!(spec_keys, code_keys, "round {round}:\n{doc}");
        assert_eq!(spec_keys.len(), code_grid.cell_count(), "round {round}");
    }
}

fn quote_list(xs: &[String]) -> String {
    xs.iter()
        .map(|x| format!("\"{x}\""))
        .collect::<Vec<_>>()
        .join(", ")
}

#[test]
fn version_error_class_is_distinct_in_the_library_too() {
    let err = RunSpec::parse_toml("spec_version = 2\n", "v.toml").expect_err("must reject");
    assert!(
        matches!(err, SpecError::Version { found: 2, .. }),
        "{err:?}"
    );
}
