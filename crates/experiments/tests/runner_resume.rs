//! End-to-end resilience of the sweep runner: a mid-sweep panic must
//! not lose finished cells, and a resumed sweep must re-execute only
//! the cell that failed.

use perconf_experiments::runner::{RunError, Runner, RunnerConfig};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Duration;

const CELLS: [&str; 4] = ["alpha", "beta", "gamma", "delta"];

fn fresh_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "perconf-runner-resume-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn sweep(
    dir: &std::path::Path,
    poison: Option<&str>,
    calls: &Arc<AtomicU32>,
) -> (Runner, Vec<Result<String, RunError>>) {
    let mut runner = Runner::new(RunnerConfig {
        retries: 0,
        backoff: Duration::from_millis(1),
        ..RunnerConfig::resuming(dir)
    });
    let mut results = Vec::new();
    for cell in CELLS {
        let c = Arc::clone(calls);
        let poisoned = poison == Some(cell);
        let name = cell.to_owned();
        results.push(runner.run_cell(cell, move || {
            c.fetch_add(1, Ordering::SeqCst);
            assert!(!poisoned, "injected failure in {name}");
            format!("result of {name}")
        }));
    }
    (runner, results)
}

#[test]
fn panicking_cell_fails_alone_and_resume_reruns_only_it() {
    let dir = fresh_dir("sweep");

    // First pass: "gamma" panics mid-sweep. The other three cells
    // complete and are checkpointed; the sweep itself survives.
    let calls = Arc::new(AtomicU32::new(0));
    let (runner, results) = sweep(&dir, Some("gamma"), &calls);
    assert_eq!(calls.load(Ordering::SeqCst), 4, "every cell executed");
    assert_eq!(results.iter().filter(|r| r.is_ok()).count(), 3);
    assert!(matches!(results[2], Err(RunError::Panic { .. })));
    assert_eq!(runner.failures().len(), 1);
    assert_eq!(runner.failures()[0].0, "gamma");
    for cell in ["alpha", "beta", "delta"] {
        assert!(
            runner.checkpoint_path(cell).unwrap().is_file(),
            "{cell} should be checkpointed"
        );
    }
    assert!(!runner.checkpoint_path("gamma").unwrap().is_file());
    assert!(
        runner.failed_path("gamma").unwrap().is_file(),
        "failed cell leaves a marker"
    );

    // Second pass with the panic gone: only the failed cell runs, the
    // rest are loaded from their checkpoints, and its marker clears.
    let calls = Arc::new(AtomicU32::new(0));
    let (runner, results) = sweep(&dir, None, &calls);
    assert_eq!(
        calls.load(Ordering::SeqCst),
        1,
        "resume must re-execute only the failed cell"
    );
    assert!(results.iter().all(|r| r.is_ok()));
    assert_eq!(results[2].as_ref().unwrap(), "result of gamma");
    assert_eq!(runner.cells_resumed(), 3);
    assert_eq!(runner.cells_executed(), 1);
    assert!(runner.failures().is_empty());
    assert!(!runner.failed_path("gamma").unwrap().is_file());

    // Third pass: nothing left to do.
    let calls = Arc::new(AtomicU32::new(0));
    let (runner, _) = sweep(&dir, None, &calls);
    assert_eq!(calls.load(Ordering::SeqCst), 0);
    assert_eq!(runner.cells_resumed(), 4);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_checkpoint_is_recomputed_not_trusted() {
    let dir = fresh_dir("corrupt");

    let calls = Arc::new(AtomicU32::new(0));
    let (runner, _) = sweep(&dir, None, &calls);
    assert_eq!(calls.load(Ordering::SeqCst), 4);
    let beta = runner.checkpoint_path("beta").unwrap();
    std::fs::write(&beta, "{ not json").unwrap();

    let calls = Arc::new(AtomicU32::new(0));
    let (runner, results) = sweep(&dir, None, &calls);
    assert_eq!(calls.load(Ordering::SeqCst), 1, "only beta recomputes");
    assert_eq!(results[1].as_ref().unwrap(), "result of beta");
    assert_eq!(runner.cells_resumed(), 3);

    let _ = std::fs::remove_dir_all(&dir);
}
