//! Property and protocol tests for the distributed sweep queue
//! (`perconf_experiments::distrib`): exclusive claims under thread
//! races, lease expiry and exactly-once completion, heartbeat
//! liveness, and corrupt-input degradation. These exercise the queue
//! protocol directly — the end-to-end multi-process determinism
//! contract is covered by `distrib_determinism.rs`.

// Test deadlines/heartbeat timing: wall-clock never reaches asserted results.
#![allow(clippy::disallowed_methods)]

use perconf_experiments::distrib::{Manifest, Queue, MANIFEST_VERSION};
use perconf_experiments::faults::{FaultCell, Grid};
use perconf_experiments::Scale;
use perconf_obs::CounterSnapshot;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// A unique scratch directory per test invocation (tests run in
/// parallel within one process, and the process id alone is shared).
fn fresh_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "perconf-distrib-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn manifest(lease_ms: u64) -> Manifest {
    Manifest {
        version: MANIFEST_VERSION,
        seed: 11,
        scale: Scale::tiny(),
        grid: Grid::small(),
        lease_ms,
    }
}

fn dummy_cell(bench: &str) -> FaultCell {
    FaultCell {
        benchmark: bench.to_owned(),
        estimator: "jrs".to_owned(),
        rate: 0.0,
        pvn: 1.0,
        spec: 2.0,
        miss_rate: 3.0,
        ipc: 4.0,
        faults_predictor: 5,
        faults_estimator: 6,
        counters: CounterSnapshot::default(),
    }
}

/// Tiny deterministic generator for the property loop (keeps the test
/// independent of any RNG crate's stream stability).
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

#[test]
fn every_cell_claimed_exactly_once_across_threads() {
    let root = fresh_dir("claim-race");
    let q = Queue::create(&root, &manifest(60_000)).unwrap();
    let n = q.manifest().grid.cell_count();
    assert_eq!(q.enqueue_missing().unwrap(), n);

    let claimed: Vec<String> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let q = q.clone();
                s.spawn(move || {
                    let mut mine = Vec::new();
                    while let Some(c) = q.claim(&format!("t{t}")) {
                        mine.push(c.desc.key.clone());
                        assert!(q.complete(&c), "fresh claim must complete");
                    }
                    mine
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });

    let mut keys = claimed;
    keys.sort_unstable();
    keys.dedup();
    assert_eq!(keys.len(), n, "every cell claimed exactly once");
    assert_eq!(q.pending(), 0);
    for desc in q.manifest().cells() {
        assert!(q.is_done(&desc.key));
    }
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn expired_lease_is_reaped_and_late_completion_fails() {
    let root = fresh_dir("reap");
    let q = Queue::create(&root, &manifest(50)).unwrap();
    assert!(q.enqueue_missing().unwrap() > 0);

    let stale = q.claim("dead-worker").expect("first claim");
    std::thread::sleep(Duration::from_millis(200));
    assert!(q.reap() >= 1, "expired lease requeued");

    // The cell is claimable again by a survivor.
    let fresh = q.claim("survivor").expect("requeued cell claimable again");
    assert_eq!(fresh.desc.key, stale.desc.key);
    assert!(q.complete(&fresh));

    // The dead worker's handle is now useless: heartbeat and complete
    // both fail, which is exactly the signal that tells a late worker
    // not to publish its result.
    assert!(!q.heartbeat(&stale), "reaped lease cannot heartbeat");
    assert!(!q.complete(&stale), "late completion must be rejected");
    assert!(q.is_done(&stale.desc.key));
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn heartbeat_keeps_a_slow_cell_leased() {
    let root = fresh_dir("heartbeat");
    let q = Queue::create(&root, &manifest(2_000)).unwrap();
    assert!(q.enqueue_missing().unwrap() > 0);

    let claim = q.claim("slow").expect("claim");
    // Hold the lease past its expiry window by heartbeating.
    let t0 = Instant::now();
    while t0.elapsed() < Duration::from_millis(2_500) {
        assert!(q.heartbeat(&claim), "live lease heartbeats");
        assert_eq!(q.reap(), 0, "heartbeated lease never reaped");
        std::thread::sleep(Duration::from_millis(100));
    }
    assert!(q.complete(&claim));
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn corrupt_todo_entry_is_reconstructed_from_the_manifest() {
    let root = fresh_dir("corrupt-todo");
    let q = Queue::create(&root, &manifest(60_000)).unwrap();
    q.enqueue_missing().unwrap();

    let first = q.manifest().cells().remove(0);
    std::fs::write(root.join("todo").join(&first.key), "{not json").unwrap();

    let claim = q.claim("w").expect("corrupt entry still claimable");
    assert_eq!(claim.desc, first, "descriptor rebuilt from the key");
    // The claim repaired the lease content in place: after expiry and
    // a reap/re-claim cycle the entry parses cleanly again.
    let text = std::fs::read_to_string(claim.lease_path()).unwrap();
    assert!(text.contains(&first.key), "lease content repaired");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn foreign_queue_entries_are_dropped_not_executed() {
    let root = fresh_dir("foreign");
    let q = Queue::create(&root, &manifest(60_000)).unwrap();
    q.enqueue_missing().unwrap();
    // An entry whose key no grid cell matches (e.g. leftover from a
    // different sweep dropped into the directory).
    std::fs::write(root.join("todo").join("alien-cell"), "junk").unwrap();

    let mut claimed = Vec::new();
    while let Some(c) = q.claim("w") {
        claimed.push(c.desc.key.clone());
        q.complete(&c);
    }
    assert_eq!(claimed.len(), q.manifest().grid.cell_count());
    assert!(claimed.iter().all(|k| k != "alien-cell"));
    assert!(
        !root.join("todo").join("alien-cell").exists(),
        "foreign entry removed so it cannot wedge the queue"
    );
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn malformed_lease_names_are_removed_by_reap() {
    let root = fresh_dir("bad-lease");
    let q = Queue::create(&root, &manifest(60_000)).unwrap();
    std::fs::write(root.join("lease").join("no-separators"), "x").unwrap();
    std::fs::write(root.join("lease").join("key@worker@not-a-number"), "x").unwrap();

    assert_eq!(q.reap(), 0, "malformed entries are removed, not requeued");
    assert_eq!(q.pending(), 0, "queue not wedged by junk leases");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn corrupt_result_file_degrades_to_recompute() {
    let root = fresh_dir("corrupt-result");
    let q = Queue::create(&root, &manifest(60_000)).unwrap();
    let key = &q.manifest().cells()[0].key;

    q.publish_result(key, &dummy_cell("gcc"));
    let good = q.read_result(key).expect("round-trips");
    assert_eq!(good.benchmark, "gcc");

    // Flip bytes mid-file: the snapfile checksum must catch it.
    let path = q.result_path(key);
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff;
    std::fs::write(&path, &bytes).unwrap();

    assert!(q.read_result(key).is_none(), "corrupt result rejected");
    assert!(!path.exists(), "corrupt result removed for recompute");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn enqueue_missing_is_idempotent_at_every_stage() {
    let root = fresh_dir("idempotent");
    let q = Queue::create(&root, &manifest(60_000)).unwrap();
    let n = q.manifest().grid.cell_count();

    assert_eq!(q.enqueue_missing().unwrap(), n);
    assert_eq!(q.enqueue_missing().unwrap(), 0, "already queued");

    let claim = q.claim("w").unwrap();
    assert_eq!(q.enqueue_missing().unwrap(), 0, "leased cell not re-added");

    q.complete(&claim);
    assert_eq!(q.enqueue_missing().unwrap(), 0, "done cell not re-added");

    // Re-creating the queue over existing state must also resume, not
    // reset: the completed cell stays done.
    let q2 = Queue::create(&root, q.manifest()).unwrap();
    assert_eq!(q2.enqueue_missing().unwrap(), 0);
    assert!(q2.is_done(&claim.desc.key));
    let _ = std::fs::remove_dir_all(&root);
}

/// Seeded chaos at the protocol level: threads randomly complete,
/// abandon, or stall on claims while everyone reaps; the queue must
/// still drain with every cell done exactly once and no entry wedged.
#[test]
fn seeded_random_failures_still_drain_every_cell_exactly_once() {
    let root = fresh_dir("property");
    let q = Queue::create(&root, &manifest(80)).unwrap();
    let n = q.manifest().grid.cell_count();
    assert_eq!(q.enqueue_missing().unwrap(), n);

    std::thread::scope(|s| {
        for t in 0..4u64 {
            let q = q.clone();
            s.spawn(move || {
                let mut rng = XorShift(0x9e37_79b9 ^ (t + 1));
                // Distinct worker id per claim so an abandoned lease
                // can never collide with a later claim's lease path.
                let mut attempt = 0u32;
                let deadline = Instant::now() + Duration::from_secs(30);
                while Instant::now() < deadline {
                    q.reap();
                    let Some(claim) = q.claim(&format!("t{t}a{attempt}")) else {
                        if q.pending() == 0 {
                            return;
                        }
                        std::thread::sleep(Duration::from_millis(20));
                        continue;
                    };
                    attempt += 1;
                    match rng.next() % 10 {
                        // Abandon: drop the claim; expiry + reap must
                        // recover the cell.
                        0 | 1 => {}
                        // Stall past expiry, then try to complete
                        // late; success and failure are both legal,
                        // exactly-once is what matters.
                        2 => {
                            std::thread::sleep(Duration::from_millis(160));
                            let _ = q.complete(&claim);
                        }
                        _ => {
                            assert!(q.complete(&claim), "fresh un-expired claim completes");
                        }
                    }
                }
                panic!("queue failed to drain within the deadline");
            });
        }
    });

    assert_eq!(q.pending(), 0, "todo and lease directories empty");
    let mut done = 0;
    for desc in q.manifest().cells() {
        assert!(q.is_done(&desc.key), "cell {} completed", desc.key);
        done += 1;
    }
    assert_eq!(done, n);
    let _ = std::fs::remove_dir_all(&root);
}
