//! Determinism under parallelism: the fault sweep's merged output is
//! byte-identical whether it ran on one worker or four, and whether it
//! ran straight through or was killed mid-sweep and resumed from its
//! checkpoints. This is the scheduler's core contract (see
//! `runner::Scheduler` — submission-order merge, coordinate-derived
//! seeds, wall-time segregated out of diffable outputs).

use perconf_experiments::faults::{self, FaultTable, Grid};
use perconf_experiments::runner::{RunnerConfig, Scheduler, SchedulerConfig};
use perconf_experiments::Scale;
use std::path::{Path, PathBuf};

const SEED: u64 = 11;

/// A reduced sweep grid: one estimator, two benchmarks, the fault-free
/// baseline rate plus one heavy rate — four cells, enough to exercise
/// cross-benchmark aggregation and ipc-loss baselining.
fn grid() -> Grid {
    Grid {
        estimators: vec!["jrs".to_owned()],
        benchmarks: vec!["gcc".to_owned(), "twolf".to_owned()],
        rates: vec![0.0, 1e-2],
    }
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "perconf-sched-determinism-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn scheduler(jobs: usize, dir: Option<&Path>) -> Scheduler {
    let runner = match dir {
        Some(d) => RunnerConfig {
            timeout: None,
            retries: 0,
            ..RunnerConfig::resuming(d)
        },
        None => RunnerConfig {
            checkpoint_dir: None,
            resume: false,
            timeout: None,
            retries: 0,
            ..RunnerConfig::default()
        },
    };
    Scheduler::new(SchedulerConfig { runner, jobs })
}

/// The byte-level view a CI `diff -ru` would compare: the pretty JSON
/// the `repro` binary writes, plus the rendered table.
fn bytes(t: &FaultTable) -> (String, String) {
    (
        serde_json::to_string_pretty(t).expect("serialize"),
        t.render(),
    )
}

#[test]
fn sweep_is_byte_identical_across_job_counts_and_resume() {
    let g = grid();

    // Reference: sequential, no persistence.
    let (seq, _) = faults::run_grid(Scale::tiny(), SEED, &g, &mut scheduler(1, None));
    assert_eq!(seq.cells.len(), g.cell_count());
    assert!(seq.failed.is_empty());

    // Same sweep on four workers must be byte-identical.
    let (par, timings) = faults::run_grid(Scale::tiny(), SEED, &g, &mut scheduler(4, None));
    assert_eq!(bytes(&seq), bytes(&par), "--jobs 4 diverged from --jobs 1");

    // Timing rows come back in canonical submission order too (only
    // their wall-clock field is nondeterministic, and it lives outside
    // the diffed outputs).
    let keys: Vec<&str> = timings.iter().map(|t| t.key.as_str()).collect();
    let expected: Vec<String> = faults::cell_specs(Scale::tiny(), SEED, &g)
        .iter()
        .map(|s| s.key().to_owned())
        .collect();
    assert_eq!(
        keys,
        expected.iter().map(String::as_str).collect::<Vec<_>>()
    );

    // Kill-and-resume: run only a prefix of the sweep's cells into a
    // checkpoint directory (the moral equivalent of a sweep killed
    // after two cells finished), then resume the full sweep. The
    // merged output must still be byte-identical to the straight run.
    let dir = fresh_dir("resume");
    let prefix: Vec<_> = faults::cell_specs(Scale::tiny(), SEED, &g)
        .into_iter()
        .take(2)
        .collect();
    let partial = scheduler(4, Some(&dir)).run_cells(prefix);
    assert_eq!(partial.executed(), 2);
    assert!(partial.failures().is_empty());

    let (resumed, _) = faults::run_grid(Scale::tiny(), SEED, &g, &mut scheduler(4, Some(&dir)));
    assert_eq!(
        bytes(&seq),
        bytes(&resumed),
        "resumed sweep diverged from the uninterrupted one"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
