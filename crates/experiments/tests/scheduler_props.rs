//! Property tests for the parallel sweep scheduler: across randomized
//! cell counts, worker counts, and per-cell failure injection (panics
//! and watchdog timeouts drawn from a seeded `perconf_faults` plan),
//! every submitted cell is reported exactly once, in submission order,
//! with a terminal status — and no coordinator worker leaks past
//! `run_cells`.

// Test deadlines: wall-clock never reaches asserted results.
#![allow(clippy::disallowed_methods)]

use perconf_experiments::runner::{CellSpec, RunError, RunnerConfig, Scheduler, SchedulerConfig};
use perconf_experiments::{common, faults, Scale};
use perconf_faults::{FaultConfig, FaultPlan};
use perconf_obs::{TraceLevel, Tracer};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// What the seeded plan tells one cell to do.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Behavior {
    Ok,
    Panic,
    Timeout,
    /// Fails the first attempt, succeeds on retry.
    FlakyThenOk,
}

/// Draws a deterministic behavior per cell from a `FaultPlan` — the
/// same seeded upset machinery the fault sweep injects with, repointed
/// at the scheduler itself. Rate 0.25 keeps roughly a quarter of the
/// cells hostile.
fn behaviors(seed: u64, n: usize) -> Vec<Behavior> {
    let mut plan = FaultPlan::new(&FaultConfig::state_only(0.25, seed));
    (0..n)
        .map(|_| match plan.next_fault(3) {
            None => Behavior::Ok,
            Some(0) => Behavior::Panic,
            Some(1) => Behavior::Timeout,
            Some(_) => Behavior::FlakyThenOk,
        })
        .collect()
}

fn specs(behaviors: &[Behavior], attempts: &Arc<AtomicU32>) -> Vec<CellSpec<u64>> {
    behaviors
        .iter()
        .enumerate()
        .map(|(i, b)| {
            let b = *b;
            let first_try = Arc::new(AtomicU32::new(1));
            let attempts = Arc::clone(attempts);
            CellSpec::new(format!("cell-{i:03}"), move |_chk| {
                attempts.fetch_add(1, Ordering::SeqCst);
                match b {
                    Behavior::Ok => {}
                    Behavior::Panic => panic!("injected panic in cell {i}"),
                    Behavior::Timeout => std::thread::sleep(Duration::from_secs(3600)),
                    Behavior::FlakyThenOk => {
                        if first_try.swap(0, Ordering::SeqCst) == 1 {
                            panic!("injected flake in cell {i}");
                        }
                    }
                }
                i as u64 * 10
            })
        })
        .collect()
}

#[test]
fn every_cell_reports_exactly_once_with_terminal_status() {
    // A modest matrix of (seed, cell count, workers): enough draws to
    // cover empty sweeps, fewer cells than workers, and more cells
    // than workers, with different injected failure patterns each.
    for (seed, n, jobs) in [
        (1u64, 0usize, 4usize),
        (2, 1, 4),
        (3, 3, 8),
        (4, 17, 4),
        (5, 17, 1),
        (6, 30, 6),
    ] {
        let plan = behaviors(seed, n);
        let attempts = Arc::new(AtomicU32::new(0));
        let mut scheduler = Scheduler::new(SchedulerConfig {
            runner: RunnerConfig {
                checkpoint_dir: None,
                resume: false,
                // Short watchdog so injected hangs resolve quickly;
                // one retry so FlakyThenOk cells can recover.
                timeout: Some(Duration::from_millis(200)),
                retries: 1,
                backoff: Duration::from_millis(1),
                ..RunnerConfig::default()
            },
            jobs,
        });
        let report = scheduler.run_cells(specs(&plan, &attempts));

        // Exactly one report per submitted cell, in submission order.
        assert_eq!(report.cells.len(), n, "seed {seed}");
        for (i, cell) in report.cells.iter().enumerate() {
            assert_eq!(cell.key, format!("cell-{i:03}"), "seed {seed}");
        }

        // Every report carries a terminal status matching its injected
        // behavior: Ok/Flaky succeed, Panic exhausts retries with a
        // Panic error, Timeout with a Timeout error.
        let mut expected_attempts = 0u32;
        for (i, (cell, b)) in report.cells.iter().zip(&plan).enumerate() {
            match b {
                Behavior::Ok => {
                    assert_eq!(cell.outcome.as_ref().ok(), Some(&(i as u64 * 10)));
                    assert_eq!(cell.attempts, 1);
                    expected_attempts += 1;
                }
                Behavior::FlakyThenOk => {
                    assert_eq!(cell.outcome.as_ref().ok(), Some(&(i as u64 * 10)));
                    assert_eq!(cell.attempts, 2, "flaky cell retries once");
                    assert_eq!(cell.retries(), 1);
                    expected_attempts += 2;
                }
                Behavior::Panic => {
                    assert!(
                        matches!(cell.outcome, Err(RunError::Panic { .. })),
                        "seed {seed} cell {i}: {:?}",
                        cell.outcome
                    );
                    assert_eq!(cell.attempts, 2, "panicking cell exhausts its retry");
                    expected_attempts += 2;
                }
                Behavior::Timeout => {
                    assert!(
                        matches!(cell.outcome, Err(RunError::Timeout { .. })),
                        "seed {seed} cell {i}: {:?}",
                        cell.outcome
                    );
                    assert_eq!(cell.attempts, 2);
                    // Timed-out attempts are abandoned, not joined, so
                    // the work closure may or may not have bumped the
                    // counter yet — exclude them from the exact count.
                }
            }
        }

        // Failures surface exactly the hostile cells, in order.
        let failed_keys: Vec<&str> = report.failures().iter().map(|(k, _)| *k).collect();
        let hostile: Vec<String> = plan
            .iter()
            .enumerate()
            .filter(|(_, b)| matches!(b, Behavior::Panic | Behavior::Timeout))
            .map(|(i, _)| format!("cell-{i:03}"))
            .collect();
        assert_eq!(
            failed_keys,
            hostile.iter().map(String::as_str).collect::<Vec<_>>(),
            "seed {seed}"
        );

        // Attempt accounting: non-timeout cells account exactly;
        // timeout cells add at most 2 in-flight bumps each.
        let timeouts = plan
            .iter()
            .filter(|b| matches!(b, Behavior::Timeout))
            .count() as u32;
        let seen = attempts.load(Ordering::SeqCst);
        assert!(
            seen >= expected_attempts && seen <= expected_attempts + timeouts * 2,
            "seed {seed}: {seen} attempts vs expected {expected_attempts} (+{timeouts} timeouts)"
        );
        assert_eq!(
            report.executed(),
            u64::from(expected_attempts + timeouts * 2)
        );

        // No coordinator leaks: run_cells blocked until its workers
        // joined, so only watchdog-abandoned attempt threads remain,
        // and those are all from timeout cells (they drain once their
        // sleep ends — here far in the future, so count them instead).
        assert!(
            scheduler.zombie_count() <= (timeouts * 2) as usize,
            "seed {seed}"
        );
    }
}

/// Reduced fault-sweep grid shared by the counter-determinism cases:
/// one estimator, two benchmarks, two rates — four cells.
fn counter_grid() -> faults::Grid {
    faults::Grid {
        estimators: vec!["jrs".to_owned()],
        benchmarks: vec!["gcc".to_owned(), "twolf".to_owned()],
        rates: vec![0.0, 1e-2],
    }
}

fn sweep_scheduler(jobs: usize, dir: Option<&std::path::Path>) -> Scheduler {
    let runner = match dir {
        Some(d) => RunnerConfig {
            timeout: None,
            retries: 0,
            ..RunnerConfig::resuming(d)
        },
        None => RunnerConfig {
            checkpoint_dir: None,
            resume: false,
            timeout: None,
            retries: 0,
            ..RunnerConfig::default()
        },
    };
    Scheduler::new(SchedulerConfig { runner, jobs })
}

#[test]
fn per_cell_counters_merge_deterministically_across_jobs_and_resume() {
    const SEED: u64 = 23;
    let g = counter_grid();

    let (seq, _) = faults::run_grid(Scale::tiny(), SEED, &g, &mut sweep_scheduler(1, None));
    assert!(seq.failed.is_empty());
    // The merged snapshot is non-trivial and carries real sim work.
    assert!(seq.counters.get("rob", "retired").unwrap_or(0) > 0);
    assert!(seq.counters.get("fetch", "cycles").unwrap_or(0) > 0);

    // Four workers: per-cell snapshots and the merged snapshot must be
    // identical to the sequential run — merge order is submission
    // order, never completion order.
    let (par, _) = faults::run_grid(Scale::tiny(), SEED, &g, &mut sweep_scheduler(4, None));
    for (a, b) in seq.cells.iter().zip(&par.cells) {
        assert_eq!(
            a.counters, b.counters,
            "cell {}/{}/{}",
            a.estimator, a.benchmark, a.rate
        );
    }
    assert_eq!(
        seq.counters, par.counters,
        "--jobs 4 merged snapshot diverged"
    );

    // Killed-and-resumed: run a two-cell prefix into a checkpoint
    // directory (a sweep killed mid-flight), then resume the full
    // sweep. Counters are derived from snapshotted state, so the
    // resumed cells must report the same numbers as uninterrupted
    // ones.
    let dir = std::env::temp_dir().join(format!("perconf-props-counters-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let prefix: Vec<_> = faults::cell_specs(Scale::tiny(), SEED, &g)
        .into_iter()
        .take(2)
        .collect();
    let partial = sweep_scheduler(4, Some(&dir)).run_cells(prefix);
    assert!(partial.failures().is_empty());

    let (resumed, _) =
        faults::run_grid(Scale::tiny(), SEED, &g, &mut sweep_scheduler(4, Some(&dir)));
    assert_eq!(
        seq.counters, resumed.counters,
        "killed+resumed sweep reported different merged counters"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn tracing_and_profiling_do_not_change_sweep_results() {
    const SEED: u64 = 29;
    let g = counter_grid();
    let bytes = |t: &faults::FaultTable| serde_json::to_string_pretty(t).expect("serialize");

    // Plain run with the whole observability stack quiet.
    let (off, _) = faults::run_grid(Scale::tiny(), SEED, &g, &mut sweep_scheduler(2, None));

    // Same sweep with event tracing and profiling live. Both are
    // derived outputs: the diffable result must stay byte-identical.
    common::tracer().set_level(TraceLevel::Verbose);
    common::profiler().enable(true);
    let (on, _) = faults::run_grid(Scale::tiny(), SEED, &g, &mut sweep_scheduler(2, None));
    common::profiler().enable(false);
    common::tracer().set_level(TraceLevel::Off);
    let (events, _dropped) = common::tracer().drain();

    assert_eq!(
        bytes(&off),
        bytes(&on),
        "observability changed the sweep's diffable output"
    );
    // The instrumented run did profile real work…
    let profile = common::profiler().report();
    assert!(
        profile
            .rows
            .iter()
            .any(|r| r.name == "phase/run" && r.calls > 0),
        "profiler captured no phase/run spans: {profile:?}"
    );
    // …and, when the tracer is compiled in, captured real events.
    if Tracer::COMPILED {
        assert!(!events.is_empty(), "trace-enabled build recorded nothing");
    } else {
        assert!(events.is_empty(), "compiled-out tracer produced events");
    }
}

#[test]
fn sleeping_zombies_are_reaped_once_they_finish() {
    let mut scheduler = Scheduler::new(SchedulerConfig {
        runner: RunnerConfig {
            checkpoint_dir: None,
            resume: false,
            timeout: Some(Duration::from_millis(50)),
            retries: 0,
            backoff: Duration::from_millis(1),
            ..RunnerConfig::default()
        },
        jobs: 2,
    });
    let report = scheduler.run_cells(vec![CellSpec::new("nap", move |_chk| {
        std::thread::sleep(Duration::from_millis(300));
        1u64
    })]);
    assert!(matches!(
        report.cells[0].outcome,
        Err(RunError::Timeout { .. })
    ));
    // The abandoned attempt finishes its nap shortly; reap until gone.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while scheduler.zombie_count() > 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "zombie attempt thread never finished"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}
