//! Golden-value regression suite: reduced-scale runs of Table 2,
//! Table 4 (two estimators × representative design points), and the
//! Figure 8 reversal+gating combination, compared field-by-field
//! against checked-in expected JSON under `tests/golden/`.
//!
//! The simulator is bit-deterministic, so the tolerance is tight
//! (1e-9 relative): these tests exist to catch *any* unintended change
//! to simulation results — a new feature that shifts numbers must
//! consciously regenerate the goldens and justify the diff.
//!
//! Regenerate after an intentional change with:
//!
//! ```text
//! cargo test -p perconf-experiments --test golden_tables -- --ignored
//! ```

use perconf_experiments::common::{jrs, perceptron, BaselineSet, PredictorKind};
use perconf_experiments::table4::{Table4, Table4Row};
use perconf_experiments::{fig89, table2, Scale};
use perconf_pipeline::PipelineConfig;
use serde::Value;
use std::path::PathBuf;

/// Relative tolerance for float fields. The runs are deterministic;
/// this only absorbs numeric-formatting round trips.
const RTOL: f64 = 1e-9;

fn benches() -> Vec<perconf_workload::WorkloadConfig> {
    ["gcc", "mcf", "twolf"]
        .iter()
        .map(|b| perconf_workload::spec2000_config(b).expect("known benchmark"))
        .collect()
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

// ---------------------------------------------------------------- //
// The three reduced-scale experiments under golden protection.
// ---------------------------------------------------------------- //

fn reduced_table2() -> table2::Table2 {
    table2::run_on(Scale::tiny(), &benches())
}

/// Representative Table 4 design points: the paper's midrange JRS
/// point (λ=7) at two branch-counter thresholds, and the perceptron at
/// its aggressive (λ=0) and conservative (λ=−25) thresholds.
fn reduced_table4() -> Table4 {
    let baselines = BaselineSet::build_on(
        PredictorKind::BimodalGshare,
        PipelineConfig::deep(),
        Scale::tiny(),
        benches(),
    );
    let jrs_rows = [(7u8, 1u32), (7, 2)]
        .iter()
        .map(|&(l, pl)| Table4Row {
            lambda: i32::from(l),
            pl,
            outcome: perconf_experiments::table4::run_point(&baselines, &|| jrs(l), pl),
        })
        .collect();
    let perc_rows = [0i32, -25]
        .iter()
        .map(|&l| Table4Row {
            lambda: l,
            pl: 1,
            outcome: perconf_experiments::table4::run_point(&baselines, &|| perceptron(l), 1),
        })
        .collect();
    Table4 {
        jrs: jrs_rows,
        perceptron: perc_rows,
    }
}

/// The Figure 8 combination cells: reversal + gating on the deep
/// machine, per benchmark.
fn reduced_fig8() -> fig89::Fig8 {
    fig89::run_on(fig89::Machine::Deep, Scale::tiny(), benches())
}

// ---------------------------------------------------------------- //
// Tolerant structural comparison over serde value trees.
// ---------------------------------------------------------------- //

fn close(a: f64, b: f64) -> bool {
    let scale = a.abs().max(b.abs());
    (a - b).abs() <= RTOL * scale.max(1e-300) || (a - b).abs() <= f64::EPSILON
}

fn as_f64(v: &Value) -> Option<f64> {
    match v {
        Value::Int(i) => Some(*i as f64),
        Value::UInt(u) => Some(*u as f64),
        Value::Float(f) => Some(*f),
        _ => None,
    }
}

/// Collects every mismatch between `actual` and `expected`, naming
/// the JSON path so a failure pinpoints the drifted field.
fn diff(path: &str, actual: &Value, expected: &Value, out: &mut Vec<String>) {
    if let (Some(a), Some(e)) = (as_f64(actual), as_f64(expected)) {
        if !close(a, e) {
            out.push(format!("{path}: {a} != {e}"));
        }
        return;
    }
    match (actual, expected) {
        (Value::Null, Value::Null) => {}
        (Value::Bool(a), Value::Bool(e)) if a == e => {}
        (Value::Str(a), Value::Str(e)) if a == e => {}
        (Value::Array(a), Value::Array(e)) => {
            if a.len() != e.len() {
                out.push(format!("{path}: array len {} != {}", a.len(), e.len()));
                return;
            }
            for (i, (av, ev)) in a.iter().zip(e).enumerate() {
                diff(&format!("{path}[{i}]"), av, ev, out);
            }
        }
        (Value::Object(a), Value::Object(e)) => {
            let keys = |o: &[(String, Value)]| o.iter().map(|(k, _)| k.clone()).collect::<Vec<_>>();
            if keys(a) != keys(e) {
                out.push(format!("{path}: keys {:?} != {:?}", keys(a), keys(e)));
                return;
            }
            for ((k, av), (_, ev)) in a.iter().zip(e) {
                diff(&format!("{path}.{k}"), av, ev, out);
            }
        }
        _ => out.push(format!("{path}: {actual:?} != {expected:?}")),
    }
}

fn assert_matches_golden(name: &str, actual: &impl serde::Serialize) {
    let path = golden_path(name);
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read golden file {} ({e}); regenerate with \
             `cargo test -p perconf-experiments --test golden_tables -- --ignored`",
            path.display()
        )
    });
    let expected: Value = serde_json::from_str(&text).expect("golden file parses");
    let actual = serde_json::to_value(actual).expect("serialize actual");
    let mut mismatches = Vec::new();
    diff("$", &actual, &expected, &mut mismatches);
    assert!(
        mismatches.is_empty(),
        "{name} drifted from its golden values:\n  {}",
        mismatches.join("\n  ")
    );
}

// ---------------------------------------------------------------- //
// The golden tests.
// ---------------------------------------------------------------- //

#[test]
fn table2_matches_golden() {
    assert_matches_golden("table2_tiny.json", &reduced_table2());
}

#[test]
fn table4_matches_golden() {
    assert_matches_golden("table4_tiny.json", &reduced_table4());
}

#[test]
fn fig8_combo_matches_golden() {
    assert_matches_golden("fig8_combo_tiny.json", &reduced_fig8());
}

// ---------------------------------------------------------------- //
// Spec pinning: the checked-in `specs/*.toml` files must lower to
// exactly the golden-protected experiments. A drift in either the
// spec or the lowering shows up as a golden mismatch here.
// ---------------------------------------------------------------- //

fn load_spec(name: &str) -> perconf_experiments::spec::Lowered {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../specs")
        .join(name);
    perconf_experiments::spec::RunSpec::load(&path)
        .unwrap_or_else(|e| panic!("{name} parses: {}", e.message()))
        .lower()
        .unwrap_or_else(|e| panic!("{name} lowers: {e}"))
}

#[test]
fn table2_spec_lowers_to_the_golden_experiment() {
    use perconf_experiments::spec::Lowered;
    let Lowered::Table2 { scale, benchmarks } = load_spec("table2_reduced.toml") else {
        panic!("table2_reduced.toml must lower to Table2");
    };
    assert_eq!(scale, Scale::tiny());
    assert_matches_golden("table2_tiny.json", &table2::run_on(scale, &benchmarks));
}

#[test]
fn table4_spec_lowers_to_the_golden_experiment() {
    use perconf_experiments::spec::Lowered;
    let Lowered::Table4 {
        scale,
        benchmarks,
        jrs_points,
        perceptron_lambdas,
    } = load_spec("table4_reduced.toml")
    else {
        panic!("table4_reduced.toml must lower to Table4");
    };
    assert_eq!(jrs_points, vec![(7, 1), (7, 2)]);
    assert_eq!(perceptron_lambdas, vec![0, -25]);
    assert_matches_golden(
        "table4_tiny.json",
        &perconf_experiments::table4::run_points(
            scale,
            benchmarks,
            &jrs_points,
            &perceptron_lambdas,
        ),
    );
}

#[test]
fn fig8_spec_lowers_to_the_golden_experiment() {
    use perconf_experiments::spec::Lowered;
    let Lowered::Fig89 {
        machine,
        scale,
        benchmarks,
        ..
    } = load_spec("fig8_reduced.toml")
    else {
        panic!("fig8_reduced.toml must lower to Fig89");
    };
    assert!(matches!(machine, fig89::Machine::Deep));
    assert_matches_golden(
        "fig8_combo_tiny.json",
        &fig89::run_on(machine, scale, benchmarks),
    );
}

#[test]
fn faults_specs_lower_to_the_named_presets() {
    use perconf_experiments::{faults, spec::Lowered};
    let Lowered::Faults { seed, grid, .. } = load_spec("faults_small.toml") else {
        panic!("faults_small.toml must lower to Faults");
    };
    assert_eq!((seed, grid), (42, faults::Grid::small()));
    let Lowered::Faults { seed, grid, .. } = load_spec("faults_full.toml") else {
        panic!("faults_full.toml must lower to Faults");
    };
    assert_eq!((seed, grid), (42, faults::Grid::full()));
}

/// The comparator itself must reject perturbed values — a golden suite
/// with a too-loose tolerance protects nothing.
#[test]
fn comparator_rejects_perturbed_values() {
    let t = reduced_table2();
    let good = serde_json::to_value(&t).expect("serialize");

    fn perturb_first_float(v: &mut Value) -> bool {
        match v {
            Value::Float(f) if *f != 0.0 => {
                *f *= 1.0 + 1e-6; // far above RTOL, far below eyeball
                true
            }
            Value::Array(a) => a.iter_mut().any(perturb_first_float),
            Value::Object(o) => o.iter_mut().any(|(_, v)| perturb_first_float(v)),
            _ => false,
        }
    }
    let mut bad = good.clone();
    assert!(perturb_first_float(&mut bad), "found a float to perturb");

    let mut mismatches = Vec::new();
    diff("$", &bad, &good, &mut mismatches);
    assert!(
        !mismatches.is_empty(),
        "a 1e-6 relative perturbation must fail the comparison"
    );
    // And the unperturbed tree passes against itself.
    let mut clean = Vec::new();
    diff("$", &good, &good, &mut clean);
    assert!(clean.is_empty());
}

// ---------------------------------------------------------------- //
// Regeneration (run explicitly with --ignored after intended changes).
// ---------------------------------------------------------------- //

#[test]
#[ignore = "writes tests/golden/*.json; run after intentional result changes"]
fn regenerate_golden_files() {
    std::fs::create_dir_all(golden_path("")).expect("create golden dir");
    let write = |name: &str, v: &dyn erased::Ser| {
        let text = v.pretty();
        std::fs::write(golden_path(name), text + "\n").expect("write golden");
        println!("wrote {}", golden_path(name).display());
    };
    write("table2_tiny.json", &reduced_table2());
    write("table4_tiny.json", &reduced_table4());
    write("fig8_combo_tiny.json", &reduced_fig8());
}

/// Object-safe serialization shim so the regenerate closure can take
/// heterogeneous tables.
mod erased {
    pub trait Ser {
        fn pretty(&self) -> String;
    }
    impl<T: serde::Serialize> Ser for T {
        fn pretty(&self) -> String {
            serde_json::to_string_pretty(self).expect("serialize golden")
        }
    }
}
