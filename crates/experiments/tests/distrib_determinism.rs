//! End-to-end determinism contract for `repro sweep`: the sweep's
//! byte-compared outputs (`faults.json`, `results/*.psnap`) must be
//! identical for 1 worker process, N worker processes, and N worker
//! processes that are chaos-killed mid-cell and respawned — and the
//! `repro` / `validate` binaries must honour the documented exit-code
//! taxonomy.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};
use std::sync::atomic::{AtomicU64, Ordering};

fn fresh_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "perconf-e2e-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn repro(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("spawn repro")
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// Byte-compares two directories of published results (same file
/// names, same bytes).
fn assert_identical_trees(a: &Path, b: &Path) {
    let names = |d: &Path| -> Vec<String> {
        let mut v: Vec<String> = std::fs::read_dir(d)
            .unwrap_or_else(|e| panic!("read {}: {e}", d.display()))
            .flatten()
            .filter_map(|e| e.file_name().into_string().ok())
            .collect();
        v.sort_unstable();
        v
    };
    let (an, bn) = (names(a), names(b));
    assert_eq!(
        an,
        bn,
        "{} and {} hold the same files",
        a.display(),
        b.display()
    );
    for n in an {
        let ab = std::fs::read(a.join(&n)).unwrap();
        let bb = std::fs::read(b.join(&n)).unwrap();
        assert!(
            ab == bb,
            "result file {n} differs between {} and {}",
            a.display(),
            b.display()
        );
    }
}

/// One sweep invocation into fresh queue/json dirs; returns the paths.
fn sweep(tag: &str, extra: &[&str]) -> (PathBuf, PathBuf) {
    let queue = fresh_dir(&format!("q-{tag}"));
    let json = fresh_dir(&format!("j-{tag}"));
    let mut args = vec![
        "sweep",
        "--grid",
        "small",
        "--tiny",
        "--seed",
        "11",
        "--queue",
        queue.to_str().unwrap(),
        "--json",
        json.to_str().unwrap(),
    ];
    args.extend_from_slice(extra);
    let out = repro(&args);
    assert!(
        out.status.success(),
        "sweep {tag} failed (status {:?}):\n{}",
        out.status.code(),
        stderr_of(&out)
    );
    (queue, json)
}

#[test]
fn sweep_output_is_byte_identical_across_workers_and_chaos_kills() {
    let (q1, j1) = sweep("w1", &["--workers", "1"]);
    let (q4, j4) = sweep("w4", &["--workers", "4"]);
    // Every incarnation-0 worker is killed the moment its first
    // mid-cell partial hits disk; the respawned workers must resume
    // their dead peers' cells from those orphaned partials.
    let (qc, jc) = sweep(
        "chaos",
        &[
            "--workers",
            "4",
            "--chaos",
            "kill-mid-cell=1.0,seed=3",
            "--lease-secs",
            "2",
        ],
    );

    let table1 = std::fs::read(j1.join("faults.json")).expect("workers=1 table");
    let table4 = std::fs::read(j4.join("faults.json")).expect("workers=4 table");
    let tablec = std::fs::read(jc.join("faults.json")).expect("chaos table");
    assert!(table1 == table4, "faults.json differs: 1 vs 4 workers");
    assert!(
        table1 == tablec,
        "faults.json differs: clean vs chaos-killed"
    );

    assert_identical_trees(&q1.join("results"), &q4.join("results"));
    assert_identical_trees(&q1.join("results"), &qc.join("results"));

    // The chaos run's report must prove the failure path actually ran:
    // workers died to chaos and orphaned partials were resumed.
    let report: perconf_experiments::distrib::DistribReport = serde_json::from_str(
        &std::fs::read_to_string(qc.join("report.json")).expect("chaos report.json"),
    )
    .expect("parse report.json");
    assert!(report.chaos_exits >= 1, "chaos killed at least one worker");
    assert!(
        report.cells_resumed_mid_cell >= 1,
        "at least one cell resumed from an orphaned mid-cell partial"
    );
    assert!(report.workers_respawned >= 1, "dead workers were respawned");
    assert!(report.failed_cells.is_empty(), "no terminally failed cells");

    for d in [q1, j1, q4, j4, qc, jc] {
        let _ = std::fs::remove_dir_all(&d);
    }
}

#[test]
fn resuming_a_half_finished_queue_completes_without_recompute() {
    // Run a sweep to completion, then re-run the coordinator against
    // the same queue: everything is already published, so the second
    // run must merge straight from the results tree and still succeed.
    let (queue, json) = sweep("rerun", &["--workers", "1"]);
    let before = std::fs::read(json.join("faults.json")).unwrap();

    let out = repro(&[
        "sweep",
        "--grid",
        "small",
        "--tiny",
        "--seed",
        "11",
        "--queue",
        queue.to_str().unwrap(),
        "--json",
        json.to_str().unwrap(),
        "--workers",
        "1",
    ]);
    assert!(out.status.success(), "re-run failed:\n{}", stderr_of(&out));
    let after = std::fs::read(json.join("faults.json")).unwrap();
    assert!(
        before == after,
        "re-run over a finished queue changed bytes"
    );

    let _ = std::fs::remove_dir_all(&queue);
    let _ = std::fs::remove_dir_all(&json);
}

// ----- exit-code taxonomy ------------------------------------------

#[test]
fn missing_experiment_is_a_usage_error() {
    let out = repro(&[]);
    assert_eq!(out.status.code(), Some(2), "{}", stderr_of(&out));
}

#[test]
fn unknown_experiment_is_a_usage_error() {
    let out = repro(&["no-such-experiment"]);
    assert_eq!(out.status.code(), Some(2), "{}", stderr_of(&out));
}

#[test]
fn sweep_without_queue_is_a_usage_error() {
    let out = repro(&["sweep", "--tiny"]);
    assert_eq!(out.status.code(), Some(2), "{}", stderr_of(&out));
    assert!(stderr_of(&out).contains("--queue"), "{}", stderr_of(&out));
}

#[test]
fn bad_chaos_spec_is_a_usage_error() {
    let q = fresh_dir("bad-chaos");
    let out = repro(&[
        "sweep",
        "--queue",
        q.to_str().unwrap(),
        "--chaos",
        "frobnicate=yes",
    ]);
    assert_eq!(out.status.code(), Some(2), "{}", stderr_of(&out));
    let _ = std::fs::remove_dir_all(&q);
}

#[test]
fn gc_without_resume_dir_is_a_usage_error() {
    let out = repro(&["faults", "--gc"]);
    assert_eq!(out.status.code(), Some(2), "{}", stderr_of(&out));
    assert!(stderr_of(&out).contains("--resume"), "{}", stderr_of(&out));
}

#[test]
fn gc_of_a_missing_dir_reports_and_succeeds() {
    let dir = fresh_dir("gc-missing");
    let out = repro(&["faults", "--gc", "--resume", dir.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr_of(&out));
    assert!(
        stderr_of(&out).contains("does not exist"),
        "actionable note expected, got:\n{}",
        stderr_of(&out)
    );
}

#[test]
fn resume_from_a_missing_dir_warns_then_runs_fresh() {
    let dir = fresh_dir("resume-missing");
    let json = fresh_dir("resume-missing-json");
    let out = repro(&[
        "faults",
        "--grid",
        "small",
        "--tiny",
        "--seed",
        "11",
        "--resume",
        dir.to_str().unwrap(),
        "--json",
        json.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr_of(&out));
    let err = stderr_of(&out);
    assert!(
        err.contains("does not exist") && err.contains("Starting fresh"),
        "actionable resume note expected, got:\n{err}"
    );
    assert!(
        dir.exists(),
        "the run creates the checkpoint dir it promised"
    );
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&json);
}
