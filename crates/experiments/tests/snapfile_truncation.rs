//! Mid-write kill scenarios for `.psnap` checkpoints.
//!
//! The snapfile writer is atomic (temp file + rename), so a process
//! killed *between* the temp write and the rename leaves only an
//! orphaned `.tmp` file — the final name never holds partial bytes.
//! These tests pin the two halves of that contract and the reader's
//! diagnosis when the final name *does* end up torn (non-atomic
//! filesystems, scp'd checkpoint dirs): truncation must be reported
//! as `Truncated`, not misdiagnosed as bit-rot (`DigestMismatch`),
//! and the affected cell must recompute cleanly either way.

use perconf_experiments::runner::{degraded_count, Runner, RunnerConfig};
use perconf_experiments::snapfile::{self, SnapfileError};
use serde::Value;
use std::path::PathBuf;

fn fresh_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("perconf-trunc-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

#[test]
fn kill_between_temp_write_and_rename_recomputes_cleanly() {
    let dir = fresh_dir("tmp-orphan");
    let cfg = RunnerConfig::resuming(&dir);
    let mut runner = Runner::new(cfg);
    let partial = runner.partial_path("cell").unwrap();

    // A process died after fully writing the temp file but before the
    // rename: the temp is complete and valid, the final name absent.
    let orphan_tmp = partial.with_extension("psnap.tmp99999");
    snapfile::write(&partial, &Value::UInt(5)).unwrap();
    std::fs::rename(&partial, &orphan_tmp).unwrap();
    assert!(!partial.exists());

    // The cell must start from scratch — no partial under the final
    // name means no mid-cell resume and, crucially, no degradation:
    // an interrupted write that never landed is not corruption.
    let degraded_before = degraded_count();
    let report = runner.run_cell_report("cell", |chk| {
        assert!(
            chk.load().is_none(),
            "an orphaned temp file must not be loadable as a checkpoint"
        );
        7u64
    });
    assert_eq!(*report.outcome.as_ref().unwrap(), 7);
    assert!(!report.resumed_mid_cell);
    assert_eq!(report.attempts, 1);
    assert_eq!(
        degraded_count(),
        degraded_before,
        "a never-landed write must not count as degraded input"
    );

    // Clean-completion GC sweeps the orphan.
    let gc = perconf_experiments::runner::gc_dir(&dir);
    assert!(gc.temps_removed >= 1, "gc must remove the orphaned temp");
    assert!(!orphan_tmp.exists());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_final_name_is_reported_as_truncation_not_corruption() {
    let dir = fresh_dir("torn-final");
    let cfg = RunnerConfig::resuming(&dir);
    let mut runner = Runner::new(cfg);
    let partial = runner.partial_path("cell").unwrap();

    // The final name holds a prefix of a checkpoint (torn non-atomic
    // copy): header intact, payload cut short.
    snapfile::write(&partial, &Value::UInt(5)).unwrap();
    let bytes = std::fs::read(&partial).unwrap();
    std::fs::write(&partial, &bytes[..bytes.len() - 5]).unwrap();

    // The reader must diagnose this as truncation — the length check
    // fires before the digest is ever computed — so logs point at a
    // torn write, not at bit-rot.
    match snapfile::read(&partial) {
        Err(SnapfileError::Truncated { expected, got }) => {
            assert!(got < expected, "payload is {got} of {expected} bytes");
        }
        other => panic!("expected Truncated, got {other:?}"),
    }

    // The runner discards the torn checkpoint (flagging degraded
    // input), recomputes the cell from scratch, and clears the file.
    let degraded_before = degraded_count();
    let report = runner.run_cell_report("cell", |chk| {
        assert!(
            chk.load().is_none(),
            "a torn checkpoint must be discarded, not resumed"
        );
        7u64
    });
    assert_eq!(*report.outcome.as_ref().unwrap(), 7);
    assert_eq!(report.attempts, 1, "recompute is a clean first attempt");
    assert!(
        degraded_count() > degraded_before,
        "consuming a torn checkpoint must flag the run as degraded"
    );
    assert!(
        !partial.exists(),
        "the finished cell must leave no partial behind"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn header_shorter_than_the_fixed_preamble_is_truncation() {
    let dir = fresh_dir("short-header");
    let p = dir.join("cell.part.psnap");
    // Killed after 12 of the 28 header bytes.
    std::fs::write(&p, b"PSNAP001\x01\x00\x00\x00").unwrap();
    match snapfile::read(&p) {
        Err(SnapfileError::Truncated { expected, got }) => {
            assert_eq!(expected, 28);
            assert_eq!(got, 12);
        }
        other => panic!("expected Truncated, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}
