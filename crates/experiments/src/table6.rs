//! Table 6 — perceptron array size sensitivity: the paper's seven
//! `PiWjHk` configurations (4 KB down to 2 KB via fewer entries,
//! narrower weights, or shorter history), each gated at PL1 on the
//! 40-cycle pipeline.

use crate::common::{controller, BaselineSet, GatingOutcome, PredictorKind, Scale};
use crate::paper;
use perconf_core::{PerceptronCe, PerceptronCeConfig};
use perconf_metrics::Table;
use perconf_pipeline::PipelineConfig;
use serde::{Deserialize, Serialize};

/// One size configuration's result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table6Row {
    /// Paper-style label, e.g. `P128W8H32`.
    pub label: String,
    /// Array size in bits.
    pub size_bits: u64,
    /// Mean outcome across benchmarks.
    pub outcome: GatingOutcome,
}

/// Full Table 6 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table6 {
    /// Rows in the paper's order.
    pub rows: Vec<Table6Row>,
}

/// The paper's seven configurations as (entries, weight bits, history).
pub const CONFIGS: [(u32, u32, u32); 7] = [
    (128, 8, 32),
    (96, 8, 32),
    (128, 6, 32),
    (128, 8, 24),
    (64, 8, 32),
    (128, 4, 32),
    (128, 8, 16),
];

/// Runs the Table 6 experiment.
#[must_use]
pub fn run(scale: Scale) -> Table6 {
    let baselines = BaselineSet::build(PredictorKind::BimodalGshare, PipelineConfig::deep(), scale);
    let mut rows = Vec::new();
    for (entries, wbits, hist) in CONFIGS {
        let cfg = PerceptronCeConfig::sized(entries, wbits, hist);
        let (mean, _) = baselines.evaluate(baselines.pipe().gated(1), || {
            controller(
                PredictorKind::BimodalGshare,
                Box::new(PerceptronCe::new(cfg)),
            )
        });
        rows.push(Table6Row {
            label: cfg.label(),
            size_bits: u64::from(entries) * u64::from(hist + 1) * u64::from(wbits),
            outcome: mean,
        });
    }
    Table6 { rows }
}

impl Table6 {
    /// Renders the table with paper values alongside.
    #[must_use]
    pub fn render(&self) -> String {
        let mut t = Table::with_headers(&[
            "config",
            "size",
            "U(exec)%",
            "U(fetch)%",
            "U(paper)%",
            "P%",
            "P(paper)%",
        ]);
        t.numeric();
        for row in &self.rows {
            let p = paper::TABLE6.iter().find(|r| r.0 == row.label);
            t.row(vec![
                row.label.clone(),
                format!("{:.1}KB", row.size_bits as f64 / 8192.0),
                format!("{:.1}", row.outcome.u_executed * 100.0),
                format!("{:.1}", row.outcome.u_fetched * 100.0),
                p.map_or("-".into(), |p| format!("{:.0}", p.3)),
                format!("{:.1}", row.outcome.perf_loss * 100.0),
                p.map_or("-".into(), |p| format!("{:.0}", p.2)),
            ]);
        }
        format!(
            "Table 6: perceptron size sensitivity (PL1 gating, 40-cycle pipeline)\n{}",
            t.render()
        )
    }

    /// The paper's finding: shrinking to 2 KB by narrowing weights to
    /// 4 bits hurts performance more than any other 2 KB option.
    #[must_use]
    pub fn narrow_weights_hurt_most(&self) -> bool {
        let loss = |label: &str| {
            self.rows
                .iter()
                .find(|r| r.label == label)
                .map(|r| r.outcome.perf_loss)
        };
        match (loss("P128W4H32"), loss("P64W8H32"), loss("P128W8H16")) {
            (Some(w4), Some(e64), Some(h16)) => w4 >= e64 && w4 >= h16,
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configs_match_paper_labels() {
        for ((e, w, h), p) in CONFIGS.iter().zip(paper::TABLE6) {
            assert_eq!(format!("P{e}W{w}H{h}"), p.0);
        }
    }
}
