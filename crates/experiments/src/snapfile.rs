//! Versioned, checksummed on-disk container for simulator snapshots.
//!
//! A snapshot file wraps one serialized [`Value`] tree (as produced by
//! [`perconf_bpred::Snapshot::save_state`]) in a small binary header
//! so a half-written or bit-rotted checkpoint is *detected* rather
//! than silently deserialized into nonsense:
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"PSNAP001"
//! 8       4     format version, u32 LE (currently 1)
//! 12      8     FNV-1a 64 digest of the payload bytes, u64 LE
//! 20      8     payload length in bytes, u64 LE
//! 28      n     payload: the snapshot Value rendered as JSON
//! ```
//!
//! Writes are atomic (temp file + rename in the destination
//! directory), so a crash mid-write leaves either the previous
//! checkpoint or none — never a truncated one under the final name.
//! Readers distinguish every failure mode ([`SnapfileError`]) so
//! callers can log *why* a checkpoint was discarded and fall back to
//! a from-scratch rerun.

use serde::Value;
use std::fmt;
use std::io::{self, Read, Write};
use std::path::Path;

/// Leading magic of every snapshot file.
pub const MAGIC: [u8; 8] = *b"PSNAP001";

/// Current format version. Bumped when the header or payload encoding
/// changes incompatibly; readers reject versions they don't know.
pub const VERSION: u32 = 1;

/// Why a snapshot file could not be read back.
#[derive(Debug)]
pub enum SnapfileError {
    /// The underlying read or write failed.
    Io(io::Error),
    /// The file does not start with [`MAGIC`] — not a snapshot file.
    BadMagic {
        /// The eight bytes actually found.
        found: [u8; 8],
    },
    /// The header names a format version this reader doesn't support.
    UnsupportedVersion {
        /// Version found in the header.
        found: u32,
    },
    /// The file ends before the header-declared payload length.
    Truncated {
        /// Bytes the header promised.
        expected: u64,
        /// Bytes actually present.
        got: u64,
    },
    /// The payload digest does not match the header — bit rot or a
    /// torn write.
    DigestMismatch {
        /// Digest recorded in the header.
        stored: u64,
        /// Digest of the payload as read.
        computed: u64,
    },
    /// The payload is not valid snapshot JSON.
    Malformed(String),
}

impl fmt::Display for SnapfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapfileError::Io(e) => write!(f, "i/o error: {e}"),
            SnapfileError::BadMagic { found } => {
                write!(f, "not a snapshot file (magic {found:02x?})")
            }
            SnapfileError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "unsupported snapshot version {found} (reader knows {VERSION})"
                )
            }
            SnapfileError::Truncated { expected, got } => {
                write!(
                    f,
                    "truncated snapshot: header promises {expected} payload bytes, file has {got}"
                )
            }
            SnapfileError::DigestMismatch { stored, computed } => {
                write!(f, "snapshot payload digest mismatch: header {stored:#018x}, computed {computed:#018x}")
            }
            SnapfileError::Malformed(m) => write!(f, "malformed snapshot payload: {m}"),
        }
    }
}

impl std::error::Error for SnapfileError {}

impl From<io::Error> for SnapfileError {
    fn from(e: io::Error) -> Self {
        SnapfileError::Io(e)
    }
}

/// FNV-1a 64 over a byte slice — [`perconf_bpred::digest_bytes`], the
/// same hash every state digest uses, applied here to the serialized
/// payload.
#[must_use]
pub fn payload_digest(bytes: &[u8]) -> u64 {
    perconf_bpred::digest_bytes(bytes)
}

/// Writes `state` to `path` atomically: serialize, digest, write to a
/// sibling temp file, fsync, rename over the destination.
///
/// # Errors
///
/// Returns [`SnapfileError::Io`] on any filesystem failure and
/// [`SnapfileError::Malformed`] if the value cannot be serialized.
pub fn write(path: &Path, state: &Value) -> Result<(), SnapfileError> {
    let payload = serde_json::to_string(state)
        .map_err(|e| SnapfileError::Malformed(e.to_string()))?
        .into_bytes();
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    // Pid-unique temp name: two processes racing to checkpoint the
    // same cell (e.g. a reaped worker's successor) must not tear each
    // other's in-flight writes; the final rename is last-writer-wins
    // over byte-identical content.
    let tmp = path.with_extension(format!("psnap.tmp{}", std::process::id()));
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&MAGIC)?;
        f.write_all(&VERSION.to_le_bytes())?;
        f.write_all(&payload_digest(&payload).to_le_bytes())?;
        f.write_all(&(payload.len() as u64).to_le_bytes())?;
        f.write_all(&payload)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Reads a snapshot back, verifying magic, version, length and digest
/// before parsing the payload.
///
/// # Errors
///
/// Any [`SnapfileError`] variant; all of them mean "this checkpoint is
/// unusable, rerun from scratch" to a resuming caller.
pub fn read(path: &Path) -> Result<Value, SnapfileError> {
    let mut f = std::fs::File::open(path)?;
    let mut header = [0u8; 28];
    f.read_exact(&mut header).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            SnapfileError::Truncated {
                expected: 28,
                got: std::fs::metadata(path).map(|m| m.len()).unwrap_or(0),
            }
        } else {
            SnapfileError::Io(e)
        }
    })?;
    let mut magic = [0u8; 8];
    magic.copy_from_slice(&header[..8]);
    if magic != MAGIC {
        return Err(SnapfileError::BadMagic { found: magic });
    }
    let version = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes"));
    if version != VERSION {
        return Err(SnapfileError::UnsupportedVersion { found: version });
    }
    let stored = u64::from_le_bytes(header[12..20].try_into().expect("8 bytes"));
    let len = u64::from_le_bytes(header[20..28].try_into().expect("8 bytes"));
    let mut payload = Vec::new();
    f.read_to_end(&mut payload)?;
    if (payload.len() as u64) != len {
        return Err(SnapfileError::Truncated {
            expected: len,
            got: payload.len() as u64,
        });
    }
    let computed = payload_digest(&payload);
    if computed != stored {
        return Err(SnapfileError::DigestMismatch { stored, computed });
    }
    let text = String::from_utf8(payload).map_err(|e| SnapfileError::Malformed(e.to_string()))?;
    serde_json::from_str(&text).map_err(|e| SnapfileError::Malformed(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "perconf-snapfile-{name}-{}.psnap",
            std::process::id()
        ))
    }

    fn sample() -> Value {
        Value::Object(vec![
            // `Int`, not `UInt`: JSON re-parses in-range non-negative
            // integers as `Int`, and the round-trip test compares
            // variants exactly.
            ("now".into(), Value::Int(12345)),
            (
                "weights".into(),
                Value::Array(vec![Value::Int(-3), Value::Int(7)]),
            ),
        ])
    }

    #[test]
    fn round_trips_a_value() {
        let p = tmp("roundtrip");
        write(&p, &sample()).unwrap();
        let back = read(&p).unwrap();
        assert_eq!(back, sample());
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn rejects_wrong_magic() {
        let p = tmp("magic");
        write(&p, &sample()).unwrap();
        let mut bytes = std::fs::read(&p).unwrap();
        bytes[0] ^= 0xFF;
        std::fs::write(&p, &bytes).unwrap();
        assert!(matches!(read(&p), Err(SnapfileError::BadMagic { .. })));
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn rejects_unknown_version() {
        let p = tmp("version");
        write(&p, &sample()).unwrap();
        let mut bytes = std::fs::read(&p).unwrap();
        bytes[8] = 0xEE;
        std::fs::write(&p, &bytes).unwrap();
        assert!(matches!(
            read(&p),
            Err(SnapfileError::UnsupportedVersion { .. })
        ));
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn detects_a_single_flipped_payload_bit() {
        let p = tmp("bitrot");
        write(&p, &sample()).unwrap();
        let mut bytes = std::fs::read(&p).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        std::fs::write(&p, &bytes).unwrap();
        match read(&p) {
            Err(SnapfileError::DigestMismatch { stored, computed }) => {
                assert_ne!(stored, computed);
            }
            other => panic!("expected DigestMismatch, got {other:?}"),
        }
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn detects_truncation() {
        let p = tmp("truncated");
        write(&p, &sample()).unwrap();
        let bytes = std::fs::read(&p).unwrap();
        std::fs::write(&p, &bytes[..bytes.len() - 5]).unwrap();
        assert!(matches!(read(&p), Err(SnapfileError::Truncated { .. })));
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn missing_file_reports_io() {
        let p = tmp("nonexistent-never-written");
        let _ = std::fs::remove_file(&p);
        assert!(matches!(read(&p), Err(SnapfileError::Io(_))));
    }

    #[test]
    fn no_temp_file_survives_a_write() {
        let p = tmp("atomic");
        write(&p, &sample()).unwrap();
        assert!(!p
            .with_extension(format!("psnap.tmp{}", std::process::id()))
            .exists());
        let _ = std::fs::remove_file(&p);
    }
}
