//! Figures 4–7 — density functions of the perceptron output on gcc,
//! for correctly predicted (CB) and mispredicted (MB) branches:
//!
//! * Figure 4: `perceptron_cic` (correct/incorrect training), full range;
//! * Figure 5: same, zoomed to `[-70, 200]` — exposing the three
//!   regions (reversal / gating / high confidence);
//! * Figure 6: `perceptron_tnt` (direction training), full range;
//! * Figure 7: same, zoomed to `[-50, 50]` — showing that no region
//!   separates MB from CB.
//!
//! Both figures plot the **signed** perceptron output `y` (for `tnt`
//! that is the direction-perceptron's output, not the confidence
//! margin), exactly as in the paper.

use crate::common::{PredictorKind, Scale};
use perconf_core::{
    ConfidenceEstimator, EstimateCtx, PerceptronCe, PerceptronCeConfig, PerceptronTnt,
    PerceptronTntConfig,
};
use perconf_metrics::DensityPair;
use perconf_workload::WorkloadGenerator;
use serde::{Deserialize, Serialize};

/// Which training scheme a figure plots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Training {
    /// Correct/incorrect training (the paper's scheme, Figs 4–5).
    CorrectIncorrect,
    /// Taken/not-taken training (the Jimenez–Lin straw man, Figs 6–7).
    TakenNotTaken,
}

/// One density-figure result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FigDensity {
    /// Benchmark used (the paper uses gcc).
    pub bench: String,
    /// Training scheme.
    pub training: Training,
    /// Density over the full output range.
    pub full: DensityPair,
    /// Density over the zoom range (Fig 5 / Fig 7).
    pub zoom: DensityPair,
}

enum Estimator {
    Cic(PerceptronCe),
    Tnt(PerceptronTnt),
}

impl Estimator {
    fn signed_output(&self, pc: u64, hist: u64) -> i32 {
        match self {
            Estimator::Cic(ce) => ce.output(pc, hist),
            Estimator::Tnt(ce) => ce.output(pc, hist),
        }
    }

    fn step(&mut self, ctx: &EstimateCtx, mispredicted: bool) {
        match self {
            Estimator::Cic(ce) => {
                let est = ce.estimate(ctx);
                ce.train(ctx, est, mispredicted);
            }
            Estimator::Tnt(ce) => {
                let est = ce.estimate(ctx);
                ce.train(ctx, est, mispredicted);
            }
        }
    }
}

/// Runs the density experiment for one training scheme on `bench`.
///
/// # Panics
///
/// Panics if `bench` is not one of the SPECint2000 names.
#[must_use]
pub fn run(training: Training, bench: &str, scale: Scale) -> FigDensity {
    let wl = perconf_workload::spec2000_config(bench).expect("known benchmark");
    let (full_range, zoom_range) = match training {
        Training::CorrectIncorrect => ((-350i64, 260i64, 10u32), (-70i64, 200i64, 10u32)),
        Training::TakenNotTaken => ((-350, 260, 10), (-50, 50, 10)),
    };
    let mut gen = WorkloadGenerator::new(&wl);
    let mut predictor = PredictorKind::BimodalGshare.build();
    let mut est = match training {
        Training::CorrectIncorrect => {
            Estimator::Cic(PerceptronCe::new(PerceptronCeConfig::default()))
        }
        Training::TakenNotTaken => {
            Estimator::Tnt(PerceptronTnt::new(PerceptronTntConfig::default()))
        }
    };
    let mut full = DensityPair::new(full_range.0, full_range.1, full_range.2);
    let mut zoom = DensityPair::new(zoom_range.0, zoom_range.1, zoom_range.2);
    let mut hist = 0u64;
    let mut seen = 0u64;
    while seen < scale.warmup_branches + scale.run_branches {
        let u = gen.next_uop();
        let Some(b) = u.branch else { continue };
        seen += 1;
        let predicted_taken = predictor.predict(b.pc, hist);
        let ctx = EstimateCtx {
            pc: b.pc,
            history: hist,
            predicted_taken,
        };
        let mispredicted = predicted_taken != b.taken;
        if seen > scale.warmup_branches {
            let y = i64::from(est.signed_output(b.pc, hist));
            full.add(y, mispredicted);
            zoom.add(y, mispredicted);
        }
        est.step(&ctx, mispredicted);
        predictor.train(b.pc, hist, b.taken);
        hist = (hist << 1) | u64::from(b.taken);
    }
    FigDensity {
        bench: bench.to_owned(),
        training,
        full,
        zoom,
    }
}

impl FigDensity {
    /// Renders CSV + ASCII art + the Figure 5 region analysis.
    #[must_use]
    pub fn render(&self) -> String {
        let title = match self.training {
            Training::CorrectIncorrect => "Figures 4-5: perceptron_cic output density",
            Training::TakenNotTaken => "Figures 6-7: perceptron_tnt output density",
        };
        let mut out = format!("{title} ({})\n\nfull range:\n", self.bench);
        out.push_str(&self.full.to_ascii(40));
        out.push_str("\nzoom:\n");
        out.push_str(&self.zoom.to_ascii(40));
        out.push('\n');
        out.push_str(&self.region_analysis());
        out
    }

    /// The Figure 5 three-region analysis: MB/CB ratio above the
    /// reversal threshold, in the gating band, and below it.
    #[must_use]
    pub fn region_analysis(&self) -> String {
        let r = |from, to| {
            self.full
                .mb_cb_ratio(from, to)
                .map_or("n/a".to_owned(), |x| format!("{x:.2}"))
        };
        format!(
            "MB/CB ratio by region: y>30: {}   -30..30: {}   y<-30: {}\n",
            r(30, 260),
            r(-30, 30),
            r(-350, -30)
        )
    }

    /// Figure 5's key property for `cic`: mispredicted branches
    /// outnumber correct ones above the reversal threshold.
    #[must_use]
    pub fn reversal_region_mb_dominates(&self) -> bool {
        self.full.mb_cb_ratio(30, 260).is_none_or(|r| r > 1.0)
    }

    /// CSV bodies `(full, zoom)` for external plotting.
    #[must_use]
    pub fn to_csv(&self) -> (String, String) {
        (self.full.to_csv(), self.zoom.to_csv())
    }

    /// SVG renderings `(full, zoom)` of the density pair, in the
    /// paper's dual-scale style.
    #[must_use]
    pub fn to_svg(&self) -> (String, String) {
        let (t_full, t_zoom) = match self.training {
            Training::CorrectIncorrect => (
                "Figure 4: perceptron_cic output density (gcc)",
                "Figure 5: perceptron_cic output density, zoom (gcc)",
            ),
            Training::TakenNotTaken => (
                "Figure 6: perceptron_tnt output density (gcc)",
                "Figure 7: perceptron_tnt output density, zoom (gcc)",
            ),
        };
        (
            perconf_metrics::svg::density_svg(&self.full, t_full),
            perconf_metrics::svg::density_svg(&self.zoom, t_zoom),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_at_tiny_scale() {
        let f = run(Training::CorrectIncorrect, "gcc", Scale::tiny());
        assert!(f.full.correct.count() > 0);
        assert_eq!(f.bench, "gcc");
        let s = f.render();
        assert!(s.contains("Figures 4-5"));
    }

    #[test]
    fn tnt_plots_signed_direction_output() {
        // Direction-trained outputs on a mostly-taken workload should
        // have substantial mass at strongly positive y (strong taken),
        // unlike the confidence margin λ−|y| which is capped at λ.
        let f = run(Training::TakenNotTaken, "gcc", Scale::tiny());
        assert!(f.full.correct.mass_in(50, 260) > 0);
    }
}
