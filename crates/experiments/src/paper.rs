//! The paper's published numbers, embedded so every driver can print
//! paper-vs-measured side by side. All values transcribed from the
//! HPCA 2004 text (Tables 2–6, Figures 8–9 and §5.4–5.5 prose).

/// Table 2: per-benchmark branch mispredicts per 1000 uops and the
/// percentage increase in uops executed due to branch mispredictions
/// on the three pipeline shapes `(mpku, w20x4, w20x8, w40x4)`.
pub const TABLE2: [(&str, f64, f64, f64, f64); 12] = [
    ("gzip", 5.2, 30.0, 66.0, 61.0),
    ("vpr", 6.6, 35.0, 75.0, 78.0),
    ("gcc", 2.3, 11.0, 19.0, 24.0),
    ("mcf", 16.0, 110.0, 225.0, 226.0),
    ("crafty", 3.4, 13.0, 38.0, 31.0),
    ("link", 4.6, 28.0, 60.0, 65.0),
    ("eon", 0.5, 2.0, 4.0, 6.0),
    ("perlbmk", 0.7, 3.0, 7.0, 7.0),
    ("gap", 1.7, 9.0, 16.0, 19.0),
    ("vortex", 0.2, 1.0, 2.0, 2.0),
    ("bzip", 1.1, 5.0, 14.0, 13.0),
    ("twolf", 6.3, 30.0, 49.0, 64.0),
];

/// Table 2 bottom row: the paper's averages.
pub const TABLE2_AVG: (f64, f64, f64, f64) = (4.1, 24.0, 48.0, 50.0);

/// Table 3, enhanced JRS: `(lambda, pvn_pct, spec_pct)`.
pub const TABLE3_JRS: [(u8, f64, f64); 4] = [
    (3, 36.0, 85.0),
    (7, 28.0, 92.0),
    (11, 24.0, 94.0),
    (15, 22.0, 96.0),
];

/// Table 3, perceptron: `(lambda, pvn_pct, spec_pct)`.
pub const TABLE3_PERCEPTRON: [(i32, f64, f64); 4] = [
    (25, 77.0, 34.0),
    (0, 74.0, 43.0),
    (-25, 69.0, 54.0),
    (-50, 61.0, 66.0),
];

/// A `(U%, P%)` pair as printed in the paper's tables.
pub type UopPerf = (f64, f64);

/// Table 4, JRS gating: `(lambda, (u_pl1, p_pl1), (u_pl2, p_pl2),
/// (u_pl3, p_pl3))`, percentages.
pub const TABLE4_JRS: [(u8, UopPerf, UopPerf, UopPerf); 4] = [
    (3, (26.0, 17.0), (14.0, 4.0), (9.0, 2.0)),
    (7, (29.0, 25.0), (19.0, 9.0), (13.0, 4.0)),
    (11, (31.0, 29.0), (21.0, 12.0), (14.0, 5.0)),
    (15, (31.0, 32.0), (22.0, 14.0), (15.0, 7.0)),
];

/// Table 4, perceptron gating at PL1: `(lambda, u, p)`, percentages.
pub const TABLE4_PERCEPTRON: [(i32, f64, f64); 4] = [
    (25, 8.0, 0.0),
    (0, 11.0, 1.0),
    (-25, 14.0, 2.0),
    (-50, 18.0, 3.0),
];

/// Table 5, gating with the bimodal-gshare baseline: `(lambda, u, p)`.
pub const TABLE5_BIMODAL_GSHARE: [(i32, f64, f64); 4] = [
    (25, 8.0, 0.0),
    (0, 11.0, 1.0),
    (-25, 14.0, 2.0),
    (-50, 18.0, 3.0),
];

/// Table 5, gating with the gshare-perceptron baseline:
/// `(lambda, u, p)`.
pub const TABLE5_GSHARE_PERCEPTRON: [(i32, f64, f64); 4] = [
    (0, 4.0, 0.0),
    (-25, 8.0, 1.0),
    (-50, 12.0, 2.0),
    (-60, 14.0, 3.0),
];

/// Table 6: `(label, size_kb, p_pct, u_pct)`.
pub const TABLE6: [(&str, f64, f64, f64); 7] = [
    ("P128W8H32", 4.0, 1.0, 11.0),
    ("P96W8H32", 3.0, 1.0, 11.0),
    ("P128W6H32", 3.0, 2.0, 10.0),
    ("P128W8H24", 3.0, 1.0, 10.0),
    ("P64W8H32", 2.0, 1.0, 10.0),
    ("P128W4H32", 2.0, 6.0, 8.0),
    ("P128W8H16", 2.0, 1.0, 8.0),
];

/// §5.5: combined reversal + gating thresholds (reverse above 0, gate
/// in `[-75, 0]` with PL2) and the paper's average outcomes.
pub const FIG8_AVG_UOP_REDUCTION: f64 = 10.0;
/// Figure 8's average performance change (none).
pub const FIG8_AVG_PERF_LOSS: f64 = 0.0;
/// Figure 9 (8-wide 20-cycle): average reduction ≈ 7%, no loss.
pub const FIG9_AVG_UOP_REDUCTION: f64 = 7.0;

/// §5.3 / Figure 5: the three output regions of `perceptron_cic` on
/// gcc — reversal above, gating band, high-confidence below.
pub const FIG5_REVERSAL_THRESHOLD: i64 = 30;
/// Lower edge of the gating band in Figure 5.
pub const FIG5_GATE_LOW: i64 = -30;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_matches_benchmark_order() {
        let names: Vec<&str> = TABLE2.iter().map(|r| r.0).collect();
        assert_eq!(names, perconf_workload::SPEC2000_NAMES.to_vec());
    }

    #[test]
    fn jrs_pvn_decreases_with_lambda_in_paper() {
        for w in TABLE3_JRS.windows(2) {
            assert!(w[0].1 > w[1].1);
            assert!(w[0].2 < w[1].2);
        }
    }

    #[test]
    fn perceptron_dominates_jrs_pvn_in_paper() {
        let best_jrs = TABLE3_JRS.iter().map(|r| r.1).fold(0.0, f64::max);
        let worst_perc = TABLE3_PERCEPTRON.iter().map(|r| r.1).fold(100.0, f64::min);
        assert!(worst_perc > best_jrs * 1.5);
    }
}
