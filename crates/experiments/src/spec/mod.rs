//! Declarative experiment specs: versioned TOML/JSON documents that
//! describe a machine, workload mixture, estimator stack, fault plan
//! or sweep grid — lowered onto the exact same engines the hard-coded
//! experiment modules use, so `repro run spec.toml` is byte-identical
//! to the equivalent compiled-in path.
//!
//! The contract has three legs:
//!
//! 1. **Strictness.** Unknown keys, misplaced sections, unknown
//!    benchmark/estimator names, and malformed values are rejected at
//!    parse time with a `file:line:`-quality message (the TOML parser
//!    in [`toml`] records a source line for every key). A typo can
//!    never silently change what simulates.
//! 2. **Versioning.** `spec_version` is required and must equal
//!    [`SPEC_VERSION`]; a mismatch is its own error class
//!    ([`SpecError::Version`]) mapped to its own exit code
//!    ([`crate::exitcode::SPEC_VERSION`]), so scripts can distinguish
//!    "wrong spec era" from "bad spec".
//! 3. **Equivalence.** [`RunSpec::lower`] resolves a parsed spec onto
//!    [`crate::faults::Grid`] / the table drivers — never onto a
//!    parallel reimplementation — which is what the CI `specs` lane's
//!    byte-diff gate (spec output vs hard-coded output, `.psnap`
//!    checkpoints included) enforces.
//!
//! See `EXPERIMENTS.md` for the full field reference and an annotated
//! example, and `specs/` for the checked-in spec files mirroring the
//! golden-table experiments.

pub mod toml;

use crate::common::Scale;
use crate::{faults, fig89, table4};
use serde::Value;
use std::collections::BTreeMap;
use std::path::Path;

/// The spec format version this build reads and writes.
pub const SPEC_VERSION: i64 = 1;

/// How a spec failed to parse or validate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// `spec_version` present but not [`SPEC_VERSION`] — a different
    /// spec era, distinct from a malformed spec (own exit code).
    Version {
        /// The version the document declared.
        found: i64,
        /// Rendered `file:line: ...` diagnostic.
        message: String,
    },
    /// Everything else: syntax, unknown key, bad name, bad shape.
    Invalid(String),
}

impl SpecError {
    /// The rendered diagnostic.
    #[must_use]
    pub fn message(&self) -> &str {
        match self {
            SpecError::Version { message, .. } => message,
            SpecError::Invalid(m) => m,
        }
    }
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message())
    }
}

impl std::error::Error for SpecError {}

/// `[experiment]` — what to run and at what scale.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentSection {
    /// `table2` | `table4` | `fig8` | `fig9` | `faults`.
    pub kind: String,
    /// `tiny` | `quick` | `full`.
    pub scale: String,
    /// Campaign seed (faults only; default 42).
    pub seed: Option<u64>,
}

/// `[workload]` — benchmark mixture for the table/figure experiments.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSection {
    /// SPECint2000 benchmark names, in run order.
    pub benchmarks: Vec<String>,
}

/// `[machine]` — pipeline selection for `fig8`/`fig9`.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineSection {
    /// `deep` (40-cycle/4-wide) or `wide` (20-cycle/8-wide).
    pub pipeline: String,
}

/// `[estimator]` — Table 4 design points.
#[derive(Debug, Clone, PartialEq)]
pub struct EstimatorSection {
    /// JRS (λ, PL) pairs; `None` = the module's default sweep.
    pub jrs_points: Option<Vec<(i64, i64)>>,
    /// Perceptron thresholds at PL 1; `None` = the module's default.
    pub perceptron_lambdas: Option<Vec<i64>>,
}

/// `[faults]` — the fault-injection sweep grid: either a named preset
/// or explicit axes.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultsSection {
    /// Preset grid name (`full` | `small`), exclusive with the axes.
    pub grid: Option<String>,
    /// Estimator axis (`perceptron` | `jrs`).
    pub estimators: Option<Vec<String>>,
    /// Benchmark axis.
    pub benchmarks: Option<Vec<String>>,
    /// Per-access fault-rate axis (each in `[0, 1]`).
    pub rates: Option<Vec<f64>>,
}

/// `[output]` — where results land when the CLI gives no flags.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OutputSection {
    /// Directory for the result JSON (CLI `--json` overrides).
    pub json: Option<String>,
    /// Timing-report file for the faults sweep (CLI `--timing`
    /// overrides).
    pub timing: Option<String>,
}

/// One parsed, validated experiment spec.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSpec {
    /// Format version (always [`SPEC_VERSION`] after a successful
    /// parse).
    pub spec_version: i64,
    /// What to run.
    pub experiment: ExperimentSection,
    /// Benchmark mixture (table/figure kinds).
    pub workload: Option<WorkloadSection>,
    /// Machine selection (`fig8`/`fig9`).
    pub machine: Option<MachineSection>,
    /// Table 4 design points.
    pub estimator: Option<EstimatorSection>,
    /// Fault sweep grid (`faults` kind).
    pub faults: Option<FaultsSection>,
    /// Default output destinations.
    pub output: Option<OutputSection>,
}

/// A spec lowered onto the executable experiment machinery.
#[derive(Debug)]
pub enum Lowered {
    /// Table 2 over a benchmark list.
    Table2 {
        /// Simulation scale.
        scale: Scale,
        /// Benchmarks in run order.
        benchmarks: Vec<perconf_workload::WorkloadConfig>,
    },
    /// Table 4 design points over a benchmark list.
    Table4 {
        /// Simulation scale.
        scale: Scale,
        /// Benchmarks in run order.
        benchmarks: Vec<perconf_workload::WorkloadConfig>,
        /// JRS (λ, PL) points.
        jrs_points: Vec<(u8, u32)>,
        /// Perceptron thresholds at PL 1.
        perceptron_lambdas: Vec<i32>,
    },
    /// Figure 8/9: combined gating + reversal on one machine.
    Fig89 {
        /// Deep or wide machine.
        machine: fig89::Machine,
        /// Simulation scale.
        scale: Scale,
        /// Benchmarks in run order.
        benchmarks: Vec<perconf_workload::WorkloadConfig>,
        /// Output name (`fig8` or `fig9`), preserved from the kind.
        name: String,
    },
    /// The fault-injection resilience sweep.
    Faults {
        /// Simulation scale.
        scale: Scale,
        /// Campaign seed.
        seed: u64,
        /// The sweep grid.
        grid: faults::Grid,
    },
}

impl Lowered {
    /// Number of scheduler cells the lowered experiment submits.
    #[must_use]
    pub fn cell_count(&self) -> usize {
        match self {
            // One cell per (benchmark × pipeline shape).
            Lowered::Table2 { benchmarks, .. } => benchmarks.len() * crate::table2::shapes().len(),
            Lowered::Table4 {
                benchmarks,
                jrs_points,
                perceptron_lambdas,
                ..
            } => {
                // Baselines + one gated run per design point, per
                // benchmark (the table driver's own accounting).
                benchmarks.len() * (1 + jrs_points.len() + perceptron_lambdas.len())
            }
            Lowered::Fig89 { benchmarks, .. } => benchmarks.len(),
            Lowered::Faults { grid, .. } => grid.cell_count(),
        }
    }

    /// One-line human description for `repro run --check`.
    #[must_use]
    pub fn describe(&self) -> String {
        match self {
            Lowered::Table2 { benchmarks, .. } => {
                format!("table2 over {} benchmark(s)", benchmarks.len())
            }
            Lowered::Table4 {
                benchmarks,
                jrs_points,
                perceptron_lambdas,
                ..
            } => format!(
                "table4: {} JRS + {} perceptron point(s) over {} benchmark(s)",
                jrs_points.len(),
                perceptron_lambdas.len(),
                benchmarks.len()
            ),
            Lowered::Fig89 {
                name, benchmarks, ..
            } => format!("{name} over {} benchmark(s)", benchmarks.len()),
            Lowered::Faults { seed, grid, .. } => format!(
                "faults sweep: seed {seed}, {}×{}×{} grid ({} cells)",
                grid.estimators.len(),
                grid.benchmarks.len(),
                grid.rates.len(),
                grid.cell_count()
            ),
        }
    }
}

// ------------------------------------------------------------------ //
// Source locations.
// ------------------------------------------------------------------ //

/// Source context for diagnostics: the display name plus (for TOML)
/// the per-key line map.
struct Src {
    file: String,
    lines: BTreeMap<String, u32>,
}

impl Src {
    /// `file:line:` prefix for a dotted key path, degrading to just
    /// `file:` when the path has no recorded line (JSON input, or a
    /// missing-key diagnostic pointing at the enclosing section).
    fn at(&self, path: &str) -> String {
        match self.lines.get(path) {
            Some(l) => format!("{}:{l}", self.file),
            None => match path.rsplit_once('.') {
                // Fall back to the enclosing table's header line.
                Some((parent, _)) => self.at(parent),
                None => self.file.clone(),
            },
        }
    }

    fn err(&self, path: &str, msg: impl std::fmt::Display) -> SpecError {
        SpecError::Invalid(format!("{}: {msg}", self.at(path)))
    }
}

// ------------------------------------------------------------------ //
// Strict tree walking.
// ------------------------------------------------------------------ //

fn fields<'v>(v: &'v Value, path: &str, src: &Src) -> Result<&'v [(String, Value)], SpecError> {
    match v {
        Value::Object(f) => Ok(f),
        other => Err(src.err(
            path,
            format!("`{path}` must be a table, got {}", kind_name(other)),
        )),
    }
}

fn kind_name(v: &Value) -> &'static str {
    match v {
        Value::Null => "null",
        Value::Bool(_) => "bool",
        Value::Int(_) | Value::UInt(_) | Value::Float(_) => "number",
        Value::Str(_) => "string",
        Value::Array(_) => "array",
        Value::Object(_) => "table",
    }
}

/// Rejects the first key not in `allowed`, citing its source line.
fn check_keys(
    obj: &[(String, Value)],
    prefix: &str,
    allowed: &[&str],
    src: &Src,
) -> Result<(), SpecError> {
    for (k, _) in obj {
        if !allowed.contains(&k.as_str()) {
            let dotted = if prefix.is_empty() {
                k.clone()
            } else {
                format!("{prefix}.{k}")
            };
            return Err(src.err(
                &dotted,
                format!(
                    "unknown key `{dotted}` (known keys: {})",
                    allowed.join(", ")
                ),
            ));
        }
    }
    Ok(())
}

fn dotted(prefix: &str, key: &str) -> String {
    if prefix.is_empty() {
        key.to_owned()
    } else {
        format!("{prefix}.{key}")
    }
}

fn get_str(
    obj: &[(String, Value)],
    prefix: &str,
    key: &str,
    src: &Src,
) -> Result<Option<String>, SpecError> {
    let path = dotted(prefix, key);
    match obj.iter().find(|(k, _)| k == key) {
        None => Ok(None),
        Some((_, Value::Str(s))) => Ok(Some(s.clone())),
        Some((_, other)) => Err(src.err(
            &path,
            format!("`{path}` must be a string, got {}", kind_name(other)),
        )),
    }
}

fn get_int(
    obj: &[(String, Value)],
    prefix: &str,
    key: &str,
    src: &Src,
) -> Result<Option<i128>, SpecError> {
    let path = dotted(prefix, key);
    match obj.iter().find(|(k, _)| k == key) {
        None => Ok(None),
        Some((_, v)) => match v.as_int() {
            Some(i) => Ok(Some(i)),
            None => Err(src.err(
                &path,
                format!("`{path}` must be an integer, got {}", kind_name(v)),
            )),
        },
    }
}

fn get_str_array(
    obj: &[(String, Value)],
    prefix: &str,
    key: &str,
    src: &Src,
) -> Result<Option<Vec<String>>, SpecError> {
    let path = dotted(prefix, key);
    match obj.iter().find(|(k, _)| k == key) {
        None => Ok(None),
        Some((_, Value::Array(items))) => {
            let mut out = Vec::with_capacity(items.len());
            for it in items {
                match it {
                    Value::Str(s) => out.push(s.clone()),
                    other => {
                        return Err(src.err(
                            &path,
                            format!(
                                "`{path}` must be an array of strings, found {}",
                                kind_name(other)
                            ),
                        ))
                    }
                }
            }
            Ok(Some(out))
        }
        Some((_, other)) => Err(src.err(
            &path,
            format!("`{path}` must be an array, got {}", kind_name(other)),
        )),
    }
}

fn get_f64_array(
    obj: &[(String, Value)],
    prefix: &str,
    key: &str,
    src: &Src,
) -> Result<Option<Vec<f64>>, SpecError> {
    let path = dotted(prefix, key);
    match obj.iter().find(|(k, _)| k == key) {
        None => Ok(None),
        Some((_, Value::Array(items))) => {
            let mut out = Vec::with_capacity(items.len());
            for it in items {
                match it.as_f64() {
                    Some(f) => out.push(f),
                    None => {
                        return Err(src.err(
                            &path,
                            format!(
                                "`{path}` must be an array of numbers, found {}",
                                kind_name(it)
                            ),
                        ))
                    }
                }
            }
            Ok(Some(out))
        }
        Some((_, other)) => Err(src.err(
            &path,
            format!("`{path}` must be an array, got {}", kind_name(other)),
        )),
    }
}

fn get_int_array(
    obj: &[(String, Value)],
    prefix: &str,
    key: &str,
    src: &Src,
) -> Result<Option<Vec<i64>>, SpecError> {
    let path = dotted(prefix, key);
    match obj.iter().find(|(k, _)| k == key) {
        None => Ok(None),
        Some((_, Value::Array(items))) => {
            let mut out = Vec::with_capacity(items.len());
            for it in items {
                match it.as_int().and_then(|i| i64::try_from(i).ok()) {
                    Some(i) => out.push(i),
                    None => {
                        return Err(src.err(
                            &path,
                            format!(
                                "`{path}` must be an array of integers, found {}",
                                kind_name(it)
                            ),
                        ))
                    }
                }
            }
            Ok(Some(out))
        }
        Some((_, other)) => Err(src.err(
            &path,
            format!("`{path}` must be an array, got {}", kind_name(other)),
        )),
    }
}

/// Array of `[int, int]` pairs (`jrs_points = [[7, 1], [7, 2]]`).
fn get_pair_array(
    obj: &[(String, Value)],
    prefix: &str,
    key: &str,
    src: &Src,
) -> Result<Option<Vec<(i64, i64)>>, SpecError> {
    let path = dotted(prefix, key);
    match obj.iter().find(|(k, _)| k == key) {
        None => Ok(None),
        Some((_, Value::Array(items))) => {
            let mut out = Vec::with_capacity(items.len());
            for it in items {
                let pair = match it {
                    Value::Array(p) if p.len() == 2 => {
                        match (
                            p[0].as_int().and_then(|i| i64::try_from(i).ok()),
                            p[1].as_int().and_then(|i| i64::try_from(i).ok()),
                        ) {
                            (Some(a), Some(b)) => Some((a, b)),
                            _ => None,
                        }
                    }
                    _ => None,
                };
                match pair {
                    Some(p) => out.push(p),
                    None => {
                        return Err(src.err(
                            &path,
                            format!("`{path}` must be an array of `[int, int]` pairs"),
                        ))
                    }
                }
            }
            Ok(Some(out))
        }
        Some((_, other)) => Err(src.err(
            &path,
            format!("`{path}` must be an array, got {}", kind_name(other)),
        )),
    }
}

// ------------------------------------------------------------------ //
// Parsing and validation.
// ------------------------------------------------------------------ //

const KINDS: [&str; 5] = ["table2", "table4", "fig8", "fig9", "faults"];
const SCALES: [&str; 3] = ["tiny", "quick", "full"];

fn scale_by_name(name: &str) -> Option<Scale> {
    match name {
        "tiny" => Some(Scale::tiny()),
        "quick" => Some(Scale::quick()),
        "full" => Some(Scale::full()),
        _ => None,
    }
}

fn reject_duplicates(items: &[String], path: &str, src: &Src) -> Result<(), SpecError> {
    for (i, a) in items.iter().enumerate() {
        if items[i + 1..].contains(a) {
            return Err(src.err(path, format!("`{path}` lists `{a}` more than once")));
        }
    }
    Ok(())
}

impl RunSpec {
    /// Parses and validates a TOML spec. `file` is the display name
    /// used in diagnostics.
    ///
    /// # Errors
    ///
    /// [`SpecError::Version`] on a `spec_version` from another era,
    /// [`SpecError::Invalid`] for everything else — both rendered with
    /// `file:line:` positions.
    pub fn parse_toml(text: &str, file: &str) -> Result<Self, SpecError> {
        let (tree, lines) = toml::parse(text)
            .map_err(|e| SpecError::Invalid(format!("{file}:{}: {}", e.line, e.message)))?;
        Self::from_tree(
            &tree,
            &Src {
                file: file.to_owned(),
                lines,
            },
        )
    }

    /// Parses and validates a JSON spec (same schema; diagnostics cite
    /// key paths instead of lines, which JSON input cannot provide).
    ///
    /// # Errors
    ///
    /// Same classes as [`Self::parse_toml`].
    pub fn parse_json(text: &str, file: &str) -> Result<Self, SpecError> {
        let tree: Value =
            serde_json::from_str(text).map_err(|e| SpecError::Invalid(format!("{file}: {e}")))?;
        Self::from_tree(
            &tree,
            &Src {
                file: file.to_owned(),
                lines: BTreeMap::new(),
            },
        )
    }

    /// Reads and parses a spec file, picking the format from the
    /// extension (`.json` = JSON, anything else = TOML).
    ///
    /// # Errors
    ///
    /// I/O failures surface as [`SpecError::Invalid`]; parse failures
    /// as in [`Self::parse_toml`] / [`Self::parse_json`].
    pub fn load(path: &Path) -> Result<Self, SpecError> {
        let name = path.display().to_string();
        let text = std::fs::read_to_string(path)
            .map_err(|e| SpecError::Invalid(format!("cannot read {name}: {e}")))?;
        if path.extension().is_some_and(|e| e == "json") {
            Self::parse_json(&text, &name)
        } else {
            Self::parse_toml(&text, &name)
        }
    }

    fn from_tree(tree: &Value, src: &Src) -> Result<Self, SpecError> {
        let root = fields(tree, "", src)
            .map_err(|_| SpecError::Invalid(format!("{}: spec root must be a table", src.file)))?;
        // Version gate first: a future-version spec may legitimately
        // use keys this build has never heard of, so "wrong era" must
        // win over "unknown key".
        let version = get_int(root, "", "spec_version", src)?.ok_or_else(|| {
            src.err(
                "spec_version",
                format!("missing required `spec_version` (current version is {SPEC_VERSION})"),
            )
        })?;
        if version != i128::from(SPEC_VERSION) {
            return Err(SpecError::Version {
                found: i64::try_from(version).unwrap_or(i64::MAX),
                message: format!(
                    "{}: spec_version {version} is not supported (this build reads version \
                     {SPEC_VERSION})",
                    src.at("spec_version")
                ),
            });
        }
        check_keys(
            root,
            "",
            &[
                "spec_version",
                "experiment",
                "workload",
                "machine",
                "estimator",
                "faults",
                "output",
            ],
            src,
        )?;

        // [experiment]
        let exp_v = root
            .iter()
            .find(|(k, _)| k == "experiment")
            .map(|(_, v)| v)
            .ok_or_else(|| src.err("experiment", "missing required `[experiment]` section"))?;
        let exp = fields(exp_v, "experiment", src)?;
        check_keys(exp, "experiment", &["kind", "scale", "seed"], src)?;
        let kind = get_str(exp, "experiment", "kind", src)?
            .ok_or_else(|| src.err("experiment", "missing required `experiment.kind`"))?;
        if !KINDS.contains(&kind.as_str()) {
            return Err(src.err(
                "experiment.kind",
                format!(
                    "unknown experiment kind `{kind}` (known kinds: {})",
                    KINDS.join(", ")
                ),
            ));
        }
        let scale = get_str(exp, "experiment", "scale", src)?.unwrap_or_else(|| "quick".to_owned());
        if !SCALES.contains(&scale.as_str()) {
            return Err(src.err(
                "experiment.scale",
                format!(
                    "unknown scale `{scale}` (known scales: {})",
                    SCALES.join(", ")
                ),
            ));
        }
        let seed =
            match get_int(exp, "experiment", "seed", src)? {
                None => None,
                Some(s) => Some(u64::try_from(s).map_err(|_| {
                    src.err("experiment.seed", "`experiment.seed` must fit in a u64")
                })?),
            };
        if seed.is_some() && kind != "faults" {
            return Err(src.err(
                "experiment.seed",
                "`experiment.seed` only applies to kind = \"faults\" (the table and figure \
                 experiments are seedless)",
            ));
        }

        let spec = RunSpec {
            spec_version: SPEC_VERSION,
            experiment: ExperimentSection { kind, scale, seed },
            workload: Self::parse_workload(root, src)?,
            machine: Self::parse_machine(root, src)?,
            estimator: Self::parse_estimator(root, src)?,
            faults: Self::parse_faults(root, src)?,
            output: Self::parse_output(root, src)?,
        };
        spec.validate(src)?;
        Ok(spec)
    }

    fn parse_workload(
        root: &[(String, Value)],
        src: &Src,
    ) -> Result<Option<WorkloadSection>, SpecError> {
        let Some((_, v)) = root.iter().find(|(k, _)| k == "workload") else {
            return Ok(None);
        };
        let obj = fields(v, "workload", src)?;
        check_keys(obj, "workload", &["benchmarks"], src)?;
        let benchmarks = get_str_array(obj, "workload", "benchmarks", src)?
            .ok_or_else(|| src.err("workload", "`[workload]` needs a `benchmarks` array"))?;
        Ok(Some(WorkloadSection { benchmarks }))
    }

    fn parse_machine(
        root: &[(String, Value)],
        src: &Src,
    ) -> Result<Option<MachineSection>, SpecError> {
        let Some((_, v)) = root.iter().find(|(k, _)| k == "machine") else {
            return Ok(None);
        };
        let obj = fields(v, "machine", src)?;
        check_keys(obj, "machine", &["pipeline"], src)?;
        let pipeline = get_str(obj, "machine", "pipeline", src)?
            .ok_or_else(|| src.err("machine", "`[machine]` needs a `pipeline` name"))?;
        Ok(Some(MachineSection { pipeline }))
    }

    fn parse_estimator(
        root: &[(String, Value)],
        src: &Src,
    ) -> Result<Option<EstimatorSection>, SpecError> {
        let Some((_, v)) = root.iter().find(|(k, _)| k == "estimator") else {
            return Ok(None);
        };
        let obj = fields(v, "estimator", src)?;
        check_keys(obj, "estimator", &["jrs_points", "perceptron_lambdas"], src)?;
        Ok(Some(EstimatorSection {
            jrs_points: get_pair_array(obj, "estimator", "jrs_points", src)?,
            perceptron_lambdas: get_int_array(obj, "estimator", "perceptron_lambdas", src)?,
        }))
    }

    fn parse_faults(
        root: &[(String, Value)],
        src: &Src,
    ) -> Result<Option<FaultsSection>, SpecError> {
        let Some((_, v)) = root.iter().find(|(k, _)| k == "faults") else {
            return Ok(None);
        };
        let obj = fields(v, "faults", src)?;
        check_keys(
            obj,
            "faults",
            &["grid", "estimators", "benchmarks", "rates"],
            src,
        )?;
        Ok(Some(FaultsSection {
            grid: get_str(obj, "faults", "grid", src)?,
            estimators: get_str_array(obj, "faults", "estimators", src)?,
            benchmarks: get_str_array(obj, "faults", "benchmarks", src)?,
            rates: get_f64_array(obj, "faults", "rates", src)?,
        }))
    }

    fn parse_output(
        root: &[(String, Value)],
        src: &Src,
    ) -> Result<Option<OutputSection>, SpecError> {
        let Some((_, v)) = root.iter().find(|(k, _)| k == "output") else {
            return Ok(None);
        };
        let obj = fields(v, "output", src)?;
        check_keys(obj, "output", &["json", "timing"], src)?;
        Ok(Some(OutputSection {
            json: get_str(obj, "output", "json", src)?,
            timing: get_str(obj, "output", "timing", src)?,
        }))
    }

    /// Cross-field validation: section applicability per kind, known
    /// names, well-formed grids.
    #[allow(clippy::too_many_lines)]
    fn validate(&self, src: &Src) -> Result<(), SpecError> {
        let kind = self.experiment.kind.as_str();
        let known_benches = perconf_workload::SPEC2000_NAMES;

        // Section applicability.
        if self.workload.is_some() && kind == "faults" {
            return Err(src.err(
                "workload",
                "`[workload]` does not apply to kind = \"faults\" — the sweep's benchmark \
                 axis lives in `faults.benchmarks`",
            ));
        }
        if self.machine.is_some() && !matches!(kind, "fig8" | "fig9") {
            return Err(src.err(
                "machine",
                format!("`[machine]` does not apply to kind = \"{kind}\" (fig8/fig9 only)"),
            ));
        }
        if self.estimator.is_some() && kind != "table4" {
            return Err(src.err(
                "estimator",
                format!("`[estimator]` does not apply to kind = \"{kind}\" (table4 only)"),
            ));
        }
        if self.faults.is_some() && kind != "faults" {
            return Err(src.err(
                "faults",
                format!("`[faults]` does not apply to kind = \"{kind}\""),
            ));
        }
        if kind == "faults" && self.faults.is_none() {
            return Err(src.err(
                "experiment.kind",
                "kind = \"faults\" needs a `[faults]` section naming a preset `grid` or \
                 explicit `estimators`/`benchmarks`/`rates` axes",
            ));
        }
        if let Some(out) = &self.output {
            if out.timing.is_some() && kind != "faults" {
                return Err(src.err(
                    "output.timing",
                    "`output.timing` only applies to kind = \"faults\" (only the sweep \
                     produces a per-cell timing report)",
                ));
            }
        }

        // Workload names.
        if let Some(w) = &self.workload {
            if w.benchmarks.is_empty() {
                return Err(src.err("workload.benchmarks", "`workload.benchmarks` is empty"));
            }
            reject_duplicates(&w.benchmarks, "workload.benchmarks", src)?;
            for b in &w.benchmarks {
                if !known_benches.iter().any(|k| k == b) {
                    return Err(src.err(
                        "workload.benchmarks",
                        format!(
                            "unknown benchmark `{b}` (known: {})",
                            known_benches.join(", ")
                        ),
                    ));
                }
            }
        }

        // Machine names.
        if let Some(m) = &self.machine {
            if !matches!(m.pipeline.as_str(), "deep" | "wide") {
                return Err(src.err(
                    "machine.pipeline",
                    format!("unknown pipeline `{}` (known: deep, wide)", m.pipeline),
                ));
            }
        }

        // Table 4 point ranges.
        if let Some(e) = &self.estimator {
            if let Some(points) = &e.jrs_points {
                if points.is_empty() {
                    return Err(src.err("estimator.jrs_points", "`estimator.jrs_points` is empty"));
                }
                for &(l, pl) in points {
                    if u8::try_from(l).is_err() {
                        return Err(src.err(
                            "estimator.jrs_points",
                            format!("JRS λ {l} is out of range (0..=255)"),
                        ));
                    }
                    if !(1..=8).contains(&pl) {
                        return Err(src.err(
                            "estimator.jrs_points",
                            format!("pipeline-gating level {pl} is out of range (1..=8)"),
                        ));
                    }
                }
            }
            if let Some(ls) = &e.perceptron_lambdas {
                if ls.is_empty() {
                    return Err(src.err(
                        "estimator.perceptron_lambdas",
                        "`estimator.perceptron_lambdas` is empty",
                    ));
                }
                for &l in ls {
                    if i32::try_from(l).is_err() {
                        return Err(src.err(
                            "estimator.perceptron_lambdas",
                            format!("perceptron λ {l} is out of range (i32)"),
                        ));
                    }
                }
            }
        }

        // Fault grid.
        if let Some(f) = &self.faults {
            let explicit = f.estimators.is_some() || f.benchmarks.is_some() || f.rates.is_some();
            match (&f.grid, explicit) {
                (Some(_), true) => {
                    return Err(src.err(
                        "faults.grid",
                        "`faults.grid` (preset) and explicit axes are mutually exclusive — \
                         name one or spell out all three",
                    ));
                }
                (Some(name), false) => {
                    if faults::Grid::by_name(name).is_none() {
                        return Err(src.err(
                            "faults.grid",
                            format!("unknown grid preset `{name}` (known: full, small)"),
                        ));
                    }
                }
                (None, _) => {
                    let (Some(ests), Some(benches), Some(rates)) =
                        (&f.estimators, &f.benchmarks, &f.rates)
                    else {
                        return Err(src.err(
                            "faults",
                            "an explicit grid needs all three axes: `estimators`, \
                             `benchmarks` and `rates` (or use a `grid` preset)",
                        ));
                    };
                    if ests.is_empty() || benches.is_empty() || rates.is_empty() {
                        return Err(src.err("faults", "grid axes must be non-empty"));
                    }
                    reject_duplicates(ests, "faults.estimators", src)?;
                    reject_duplicates(benches, "faults.benchmarks", src)?;
                    for e in ests {
                        if !faults::ESTIMATORS.contains(&e.as_str()) {
                            return Err(src.err(
                                "faults.estimators",
                                format!(
                                    "unknown estimator `{e}` (known: {})",
                                    faults::ESTIMATORS.join(", ")
                                ),
                            ));
                        }
                    }
                    for b in benches {
                        if !known_benches.iter().any(|k| k == b) {
                            return Err(src.err(
                                "faults.benchmarks",
                                format!(
                                    "unknown benchmark `{b}` (known: {})",
                                    known_benches.join(", ")
                                ),
                            ));
                        }
                    }
                    for (i, &r) in rates.iter().enumerate() {
                        if !r.is_finite() || !(0.0..=1.0).contains(&r) {
                            return Err(src.err(
                                "faults.rates",
                                format!("rate {r} is not a probability in [0, 1]"),
                            ));
                        }
                        if rates[i + 1..].iter().any(|&o| o.to_bits() == r.to_bits()) {
                            return Err(src.err(
                                "faults.rates",
                                format!("`faults.rates` lists {r} more than once"),
                            ));
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Lowers the validated spec onto the executable machinery:
    /// resolved workload configs, the concrete [`faults::Grid`], and
    /// the table drivers' native design-point types.
    ///
    /// # Errors
    ///
    /// Only on internal inconsistency (every name was validated at
    /// parse time); callers can treat a failure as a bug.
    pub fn lower(&self) -> Result<Lowered, String> {
        let scale = scale_by_name(&self.experiment.scale)
            .ok_or_else(|| format!("unknown scale {}", self.experiment.scale))?;
        let resolve_benches = |names: Option<&Vec<String>>| -> Result<Vec<_>, String> {
            match names {
                None => Ok(crate::common::benchmarks()),
                Some(ns) => ns
                    .iter()
                    .map(|n| {
                        perconf_workload::spec2000_config(n)
                            .ok_or_else(|| format!("unknown benchmark {n}"))
                    })
                    .collect(),
            }
        };
        match self.experiment.kind.as_str() {
            "table2" => Ok(Lowered::Table2 {
                scale,
                benchmarks: resolve_benches(self.workload.as_ref().map(|w| &w.benchmarks))?,
            }),
            "table4" => {
                let est = self.estimator.as_ref();
                let jrs_points = match est.and_then(|e| e.jrs_points.as_ref()) {
                    None => table4::default_jrs_points(),
                    Some(ps) => ps
                        .iter()
                        .map(|&(l, pl)| {
                            Ok((
                                u8::try_from(l).map_err(|_| format!("JRS λ {l} out of range"))?,
                                u32::try_from(pl).map_err(|_| format!("PL {pl} out of range"))?,
                            ))
                        })
                        .collect::<Result<Vec<_>, String>>()?,
                };
                let perceptron_lambdas = match est.and_then(|e| e.perceptron_lambdas.as_ref()) {
                    None => table4::default_perceptron_lambdas(),
                    Some(ls) => ls
                        .iter()
                        .map(|&l| {
                            i32::try_from(l).map_err(|_| format!("perceptron λ {l} out of range"))
                        })
                        .collect::<Result<Vec<_>, String>>()?,
                };
                Ok(Lowered::Table4 {
                    scale,
                    benchmarks: resolve_benches(self.workload.as_ref().map(|w| &w.benchmarks))?,
                    jrs_points,
                    perceptron_lambdas,
                })
            }
            kind @ ("fig8" | "fig9") => {
                let default = if kind == "fig8" { "deep" } else { "wide" };
                let pipeline = self
                    .machine
                    .as_ref()
                    .map_or(default, |m| m.pipeline.as_str());
                let machine = match pipeline {
                    "deep" => fig89::Machine::Deep,
                    "wide" => fig89::Machine::Wide,
                    other => return Err(format!("unknown pipeline {other}")),
                };
                Ok(Lowered::Fig89 {
                    machine,
                    scale,
                    benchmarks: resolve_benches(self.workload.as_ref().map(|w| &w.benchmarks))?,
                    name: kind.to_owned(),
                })
            }
            "faults" => {
                let f = self.faults.as_ref().ok_or("faults spec without [faults]")?;
                let grid = match &f.grid {
                    Some(name) => faults::Grid::by_name(name)
                        .ok_or_else(|| format!("unknown grid preset {name}"))?,
                    None => faults::Grid {
                        estimators: f.estimators.clone().unwrap_or_default(),
                        benchmarks: f.benchmarks.clone().unwrap_or_default(),
                        rates: f.rates.clone().unwrap_or_default(),
                    },
                };
                Ok(Lowered::Faults {
                    scale,
                    seed: self.experiment.seed.unwrap_or(42),
                    grid,
                })
            }
            other => Err(format!("unknown experiment kind {other}")),
        }
    }

    /// Renders the spec as canonical TOML: fixed section and key
    /// order, `None` fields omitted. `parse_toml(to_toml(s)) == s`
    /// for every valid spec (pinned by the round-trip suite).
    #[must_use]
    #[allow(clippy::too_many_lines)]
    pub fn to_toml(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "spec_version = {}", self.spec_version);
        let _ = writeln!(out, "\n[experiment]");
        let _ = writeln!(
            out,
            "kind = {}",
            toml::render_value(&Value::Str(self.experiment.kind.clone()))
        );
        let _ = writeln!(
            out,
            "scale = {}",
            toml::render_value(&Value::Str(self.experiment.scale.clone()))
        );
        if let Some(seed) = self.experiment.seed {
            let _ = writeln!(out, "seed = {seed}");
        }
        if let Some(w) = &self.workload {
            let _ = writeln!(out, "\n[workload]");
            let _ = writeln!(
                out,
                "benchmarks = {}",
                toml::render_value(&Value::Array(
                    w.benchmarks.iter().map(|b| Value::Str(b.clone())).collect()
                ))
            );
        }
        if let Some(m) = &self.machine {
            let _ = writeln!(out, "\n[machine]");
            let _ = writeln!(
                out,
                "pipeline = {}",
                toml::render_value(&Value::Str(m.pipeline.clone()))
            );
        }
        if let Some(e) = &self.estimator {
            let _ = writeln!(out, "\n[estimator]");
            if let Some(points) = &e.jrs_points {
                let _ = writeln!(
                    out,
                    "jrs_points = {}",
                    toml::render_value(&Value::Array(
                        points
                            .iter()
                            .map(|&(l, pl)| Value::Array(vec![Value::Int(l), Value::Int(pl)]))
                            .collect()
                    ))
                );
            }
            if let Some(ls) = &e.perceptron_lambdas {
                let _ = writeln!(
                    out,
                    "perceptron_lambdas = {}",
                    toml::render_value(&Value::Array(ls.iter().map(|&l| Value::Int(l)).collect()))
                );
            }
        }
        if let Some(f) = &self.faults {
            let _ = writeln!(out, "\n[faults]");
            if let Some(g) = &f.grid {
                let _ = writeln!(out, "grid = {}", toml::render_value(&Value::Str(g.clone())));
            }
            if let Some(es) = &f.estimators {
                let _ = writeln!(
                    out,
                    "estimators = {}",
                    toml::render_value(&Value::Array(
                        es.iter().map(|e| Value::Str(e.clone())).collect()
                    ))
                );
            }
            if let Some(bs) = &f.benchmarks {
                let _ = writeln!(
                    out,
                    "benchmarks = {}",
                    toml::render_value(&Value::Array(
                        bs.iter().map(|b| Value::Str(b.clone())).collect()
                    ))
                );
            }
            if let Some(rs) = &f.rates {
                let _ = writeln!(
                    out,
                    "rates = {}",
                    toml::render_value(&Value::Array(
                        rs.iter().map(|&r| Value::Float(r)).collect()
                    ))
                );
            }
        }
        if let Some(o) = &self.output {
            let _ = writeln!(out, "\n[output]");
            if let Some(j) = &o.json {
                let _ = writeln!(out, "json = {}", toml::render_value(&Value::Str(j.clone())));
            }
            if let Some(t) = &o.timing {
                let _ = writeln!(
                    out,
                    "timing = {}",
                    toml::render_value(&Value::Str(t.clone()))
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FAULTS_SPEC: &str = r#"
spec_version = 1

[experiment]
kind = "faults"
scale = "tiny"
seed = 7

[faults]
estimators = ["jrs"]
benchmarks = ["gcc", "twolf"]
rates = [0.0, 1e-2]
"#;

    #[test]
    fn parses_and_lowers_an_explicit_faults_grid() {
        let spec = RunSpec::parse_toml(FAULTS_SPEC, "t.toml").expect("parses");
        let Lowered::Faults { seed, grid, .. } = spec.lower().expect("lowers") else {
            panic!("not a faults lowering");
        };
        assert_eq!(seed, 7);
        assert_eq!(grid, faults::Grid::small());
    }

    #[test]
    fn version_mismatch_is_its_own_error_class() {
        let text = FAULTS_SPEC.replace("spec_version = 1", "spec_version = 99");
        match RunSpec::parse_toml(&text, "t.toml") {
            Err(SpecError::Version { found, message }) => {
                assert_eq!(found, 99);
                assert!(message.starts_with("t.toml:2:"), "{message}");
            }
            other => panic!("expected a version error, got {other:?}"),
        }
        // Missing entirely is Invalid, not Version.
        let text = FAULTS_SPEC.replace("spec_version = 1", "");
        assert!(matches!(
            RunSpec::parse_toml(&text, "t.toml"),
            Err(SpecError::Invalid(_))
        ));
    }

    #[test]
    fn unknown_keys_cite_file_and_line() {
        let text = FAULTS_SPEC.replace("seed = 7", "sede = 7");
        let e = RunSpec::parse_toml(&text, "bad.toml").unwrap_err();
        let msg = e.message();
        assert!(msg.starts_with("bad.toml:7:"), "{msg}");
        assert!(msg.contains("unknown key `experiment.sede`"), "{msg}");
    }

    #[test]
    fn misplaced_sections_are_rejected() {
        let text = format!("{FAULTS_SPEC}\n[machine]\npipeline = \"deep\"\n");
        let e = RunSpec::parse_toml(&text, "t.toml").unwrap_err();
        assert!(e.message().contains("does not apply"), "{e}");
        let table2_with_faults = r#"
spec_version = 1
[experiment]
kind = "table2"
[faults]
grid = "small"
"#;
        let e = RunSpec::parse_toml(table2_with_faults, "t.toml").unwrap_err();
        assert!(e.message().contains("`[faults]` does not apply"), "{e}");
    }

    #[test]
    fn grid_preset_and_axes_are_exclusive_and_validated() {
        let both = FAULTS_SPEC.replace("estimators = ", "grid = \"small\"\nestimators = ");
        assert!(RunSpec::parse_toml(&both, "t.toml")
            .unwrap_err()
            .message()
            .contains("mutually exclusive"));
        let bad_rate = FAULTS_SPEC.replace("rates = [0.0, 1e-2]", "rates = [0.0, 1.5]");
        assert!(RunSpec::parse_toml(&bad_rate, "t.toml")
            .unwrap_err()
            .message()
            .contains("not a probability"));
        let bad_est = FAULTS_SPEC.replace("[\"jrs\"]", "[\"oracle\"]");
        assert!(RunSpec::parse_toml(&bad_est, "t.toml")
            .unwrap_err()
            .message()
            .contains("unknown estimator"));
        let bad_bench = FAULTS_SPEC.replace("\"twolf\"", "\"doom\"");
        assert!(RunSpec::parse_toml(&bad_bench, "t.toml")
            .unwrap_err()
            .message()
            .contains("unknown benchmark"));
    }

    #[test]
    fn canonical_toml_round_trips() {
        let spec = RunSpec::parse_toml(FAULTS_SPEC, "t.toml").expect("parses");
        let rendered = spec.to_toml();
        let back = RunSpec::parse_toml(&rendered, "t.toml").expect("reparses");
        assert_eq!(spec, back);
    }

    #[test]
    fn json_specs_parse_with_the_same_schema() {
        let json = r#"{
            "spec_version": 1,
            "experiment": {"kind": "table2", "scale": "tiny"},
            "workload": {"benchmarks": ["gcc", "mcf"]}
        }"#;
        let spec = RunSpec::parse_json(json, "t.json").expect("parses");
        let Lowered::Table2 { benchmarks, .. } = spec.lower().expect("lowers") else {
            panic!("not table2");
        };
        assert_eq!(benchmarks.len(), 2);
        // Unknown keys are rejected in JSON too (path-quality message).
        let bad = json.replace("\"benchmarks\"", "\"benchmark\"");
        let e = RunSpec::parse_json(&bad, "t.json").unwrap_err();
        assert!(
            e.message().contains("unknown key `workload.benchmark`"),
            "{e}"
        );
    }

    #[test]
    fn defaults_fill_scale_seed_and_benchmarks() {
        let minimal = "spec_version = 1\n[experiment]\nkind = \"table2\"\n";
        let spec = RunSpec::parse_toml(minimal, "t.toml").expect("parses");
        assert_eq!(spec.experiment.scale, "quick");
        let Lowered::Table2 { benchmarks, .. } = spec.lower().expect("lowers") else {
            panic!("not table2");
        };
        assert_eq!(benchmarks.len(), crate::common::benchmarks().len());
    }
}
