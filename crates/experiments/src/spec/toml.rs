//! Minimal TOML-subset parser for experiment specs.
//!
//! The build environment vendors its dependencies, and no TOML crate
//! is among them — which turns out to be a feature: spec diagnostics
//! need per-key source lines (`spec.toml:12: unknown key ...`), and a
//! hand-rolled parser can record them for free where an off-the-shelf
//! value tree would have dropped them.
//!
//! Supported grammar (a strict subset of TOML 1.0):
//!
//! - `# comments`, blank lines
//! - `[table]` and `[table.subtable]` headers (each at most once)
//! - `key = value` with bare keys (`[A-Za-z0-9_-]+`)
//! - values: basic strings (`"..."` with `\\ \" \n \t \r` escapes),
//!   booleans, integers (`_` separators allowed), floats (decimal
//!   point and/or exponent), and single-line arrays — nestable, e.g.
//!   `[[7, 1], [7, 2]]`
//!
//! Out of scope (rejected with an error, never misparsed): dotted
//! keys, inline tables, multi-line strings and arrays, dates, and
//! array-of-tables headers. Specs are small; every construct they
//! need fits on one line.
//!
//! [`parse`] returns the document as a vendored [`serde::Value`]
//! object tree plus a [`SourceMap`] from dotted key paths to the
//! 1-based source line each key (or table header) appeared on.

use serde::Value;
use std::collections::BTreeMap;

/// Dotted key path (`"faults.rates"`) → 1-based source line.
pub type SourceMap = BTreeMap<String, u32>;

/// A parse failure, with the line it happened on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TomlError {
    /// 1-based source line.
    pub line: u32,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for TomlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

fn err<T>(line: u32, message: impl Into<String>) -> Result<T, TomlError> {
    Err(TomlError {
        line,
        message: message.into(),
    })
}

fn is_bare_key_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_' || c == '-'
}

/// Parses a spec document into a value tree plus the per-key line map.
///
/// # Errors
///
/// Returns a [`TomlError`] naming the offending line for any syntax
/// error, duplicate key, or construct outside the supported subset.
pub fn parse(text: &str) -> Result<(Value, SourceMap), TomlError> {
    let mut root: Vec<(String, Value)> = Vec::new();
    let mut lines_map: SourceMap = BTreeMap::new();
    // Dotted path of the currently open `[table]` (empty = root).
    let mut current: Vec<String> = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let lineno = u32::try_from(idx + 1).unwrap_or(u32::MAX);
        let line = strip_comment(raw, lineno)?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('[') {
            if rest.starts_with('[') {
                return err(lineno, "array-of-tables `[[...]]` is not supported");
            }
            let Some(inner) = rest.strip_suffix(']') else {
                return err(lineno, "table header is missing the closing `]`");
            };
            let path = parse_header_path(inner.trim(), lineno)?;
            let dotted = path.join(".");
            if lines_map.contains_key(&dotted) {
                return err(lineno, format!("duplicate table `[{dotted}]`"));
            }
            lines_map.insert(dotted, lineno);
            open_table(&mut root, &path, lineno)?;
            current = path;
            continue;
        }
        let Some(eq) = find_top_level_eq(line) else {
            return err(
                lineno,
                "expected `key = value` or a `[table]` header".to_owned(),
            );
        };
        let key = line[..eq].trim();
        if key.is_empty() || !key.chars().all(is_bare_key_char) {
            return err(
                lineno,
                format!("`{key}` is not a bare key (dotted and quoted keys are not supported)"),
            );
        }
        let (value, rest) = parse_value(line[eq + 1..].trim(), lineno)?;
        if !rest.trim().is_empty() {
            return err(lineno, format!("trailing content after value: `{rest}`"));
        }
        let dotted = if current.is_empty() {
            key.to_owned()
        } else {
            format!("{}.{key}", current.join("."))
        };
        if lines_map.contains_key(&dotted) {
            return err(lineno, format!("duplicate key `{dotted}`"));
        }
        lines_map.insert(dotted, lineno);
        insert_key(&mut root, &current, key, value, lineno)?;
    }
    Ok((Value::Object(root), lines_map))
}

/// Removes a trailing `# comment`, respecting string literals.
fn strip_comment(line: &str, lineno: u32) -> Result<&str, TomlError> {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            _ if escaped => escaped = false,
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            '#' if !in_str => return Ok(&line[..i]),
            _ => {}
        }
    }
    if in_str {
        return err(lineno, "unterminated string literal");
    }
    Ok(line)
}

fn parse_header_path(inner: &str, lineno: u32) -> Result<Vec<String>, TomlError> {
    if inner.is_empty() {
        return err(lineno, "empty table header `[]`");
    }
    let mut path = Vec::new();
    for part in inner.split('.') {
        let part = part.trim();
        if part.is_empty() || !part.chars().all(is_bare_key_char) {
            return err(lineno, format!("`[{inner}]` is not a bare table header"));
        }
        path.push(part.to_owned());
    }
    Ok(path)
}

/// Finds the `=` separating key from value (specs never quote keys,
/// so the first `=` outside a string is it).
fn find_top_level_eq(line: &str) -> Option<usize> {
    line.find('=')
}

/// Walks/creates the nested object path for a `[table]` header.
fn open_table(
    root: &mut Vec<(String, Value)>,
    path: &[String],
    lineno: u32,
) -> Result<(), TomlError> {
    let mut fields = root;
    for part in path {
        let pos = fields.iter().position(|(k, _)| k == part);
        let slot = match pos {
            Some(p) => p,
            None => {
                fields.push((part.clone(), Value::Object(Vec::new())));
                fields.len() - 1
            }
        };
        match &mut fields[slot].1 {
            Value::Object(inner) => fields = inner,
            _ => return err(lineno, format!("`{part}` is already a value, not a table")),
        }
    }
    Ok(())
}

fn insert_key(
    root: &mut Vec<(String, Value)>,
    table: &[String],
    key: &str,
    value: Value,
    lineno: u32,
) -> Result<(), TomlError> {
    let mut fields = root;
    for part in table {
        let pos = fields
            .iter()
            .position(|(k, _)| k == part)
            .expect("table opened by header");
        match &mut fields[pos].1 {
            Value::Object(inner) => fields = inner,
            _ => return err(lineno, format!("`{part}` is not a table")),
        }
    }
    if fields.iter().any(|(k, _)| k == key) {
        return err(lineno, format!("duplicate key `{key}`"));
    }
    fields.push((key.to_owned(), value));
    Ok(())
}

/// Parses one value from the front of `s`; returns it and the unread
/// remainder (so array elements can recurse).
fn parse_value(s: &str, lineno: u32) -> Result<(Value, &str), TomlError> {
    let s = s.trim_start();
    let Some(first) = s.chars().next() else {
        return err(lineno, "missing value after `=`");
    };
    match first {
        '"' => parse_string(s, lineno),
        '[' => parse_array(s, lineno),
        't' | 'f' => {
            if let Some(rest) = s.strip_prefix("true") {
                Ok((Value::Bool(true), rest))
            } else if let Some(rest) = s.strip_prefix("false") {
                Ok((Value::Bool(false), rest))
            } else {
                err(lineno, format!("unrecognised value `{s}`"))
            }
        }
        c if c == '+' || c == '-' || c.is_ascii_digit() => parse_number(s, lineno),
        _ => err(lineno, format!("unrecognised value `{s}`")),
    }
}

fn parse_string(s: &str, lineno: u32) -> Result<(Value, &str), TomlError> {
    let mut out = String::new();
    let mut chars = s.char_indices().skip(1);
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => return Ok((Value::Str(out), &s[i + 1..])),
            '\\' => match chars.next() {
                Some((_, '\\')) => out.push('\\'),
                Some((_, '"')) => out.push('"'),
                Some((_, 'n')) => out.push('\n'),
                Some((_, 't')) => out.push('\t'),
                Some((_, 'r')) => out.push('\r'),
                Some((_, other)) => return err(lineno, format!("unsupported escape `\\{other}`")),
                None => return err(lineno, "unterminated string literal"),
            },
            other => out.push(other),
        }
    }
    err(lineno, "unterminated string literal")
}

fn parse_array(s: &str, lineno: u32) -> Result<(Value, &str), TomlError> {
    let mut rest = s[1..].trim_start();
    let mut items = Vec::new();
    loop {
        if let Some(after) = rest.strip_prefix(']') {
            return Ok((Value::Array(items), after));
        }
        if rest.is_empty() {
            return err(
                lineno,
                "unterminated array (arrays must close on the same line)",
            );
        }
        let (v, after) = parse_value(rest, lineno)?;
        items.push(v);
        rest = after.trim_start();
        if let Some(after) = rest.strip_prefix(',') {
            rest = after.trim_start();
        } else if !rest.starts_with(']') {
            return err(lineno, "expected `,` or `]` in array");
        }
    }
}

fn parse_number(s: &str, lineno: u32) -> Result<(Value, &str), TomlError> {
    // The token runs until a delimiter; underscores are separators.
    let end = s
        .char_indices()
        .find(|&(i, c)| {
            !(c.is_ascii_digit()
                || c == '_'
                || c == '.'
                || c == 'e'
                || c == 'E'
                || ((c == '+' || c == '-')
                    && (i == 0 || matches!(s.as_bytes()[i - 1], b'e' | b'E'))))
        })
        .map_or(s.len(), |(i, _)| i);
    let tok = &s[..end];
    let rest = &s[end..];
    let clean: String = tok.chars().filter(|&c| c != '_').collect();
    if clean.contains('.') || clean.contains('e') || clean.contains('E') {
        match clean.parse::<f64>() {
            Ok(f) if f.is_finite() => Ok((Value::Float(f), rest)),
            _ => err(lineno, format!("`{tok}` is not a finite float")),
        }
    } else if let Ok(i) = clean.parse::<i64>() {
        Ok((Value::Int(i), rest))
    } else if let Ok(u) = clean.parse::<u64>() {
        Ok((Value::UInt(u), rest))
    } else {
        err(lineno, format!("`{tok}` is not an integer"))
    }
}

/// Renders a value as a single-line TOML value (the serialization
/// counterpart of [`parse_value`]; used by the spec's canonical
/// writer).
#[must_use]
pub fn render_value(v: &Value) -> String {
    match v {
        Value::Null => "\"\"".to_owned(), // never produced by specs
        Value::Bool(b) => b.to_string(),
        Value::Int(i) => i.to_string(),
        Value::UInt(u) => u.to_string(),
        Value::Float(f) => render_float(*f),
        Value::Str(s) => render_string(s),
        Value::Array(items) => {
            let inner: Vec<String> = items.iter().map(render_value).collect();
            format!("[{}]", inner.join(", "))
        }
        Value::Object(_) => "{}".to_owned(), // inline tables unsupported
    }
}

/// Shortest float form that re-parses to the same bits, with TOML's
/// requirement of a `.` or exponent kept intact.
#[must_use]
pub fn render_float(f: f64) -> String {
    let s = format!("{f:?}");
    if s.contains('.') || s.contains('e') || s.contains('E') {
        s
    } else {
        format!("{s}.0")
    }
}

fn render_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            other => out.push(other),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(v: &Value, key: &str) -> Value {
        v.get(key).expect(key).clone()
    }

    #[test]
    fn parses_scalars_tables_and_arrays() {
        let text = r#"
# a spec
spec_version = 1

[experiment]
kind = "faults"     # trailing comment
seed = 42
enabled = true
ratio = 0.5

[faults]
rates = [0.0, 1e-4, 1e-2]
points = [[7, 1], [7, 2]]
names = ["a", "b"]
"#;
        let (v, lines) = parse(text).expect("parses");
        assert_eq!(obj(&v, "spec_version"), Value::Int(1));
        let exp = obj(&v, "experiment");
        assert_eq!(obj(&exp, "kind"), Value::Str("faults".into()));
        assert_eq!(obj(&exp, "seed"), Value::Int(42));
        assert_eq!(obj(&exp, "enabled"), Value::Bool(true));
        assert_eq!(obj(&exp, "ratio"), Value::Float(0.5));
        let f = obj(&v, "faults");
        assert_eq!(
            obj(&f, "rates"),
            Value::Array(vec![
                Value::Float(0.0),
                Value::Float(1e-4),
                Value::Float(1e-2)
            ])
        );
        assert_eq!(
            obj(&f, "points"),
            Value::Array(vec![
                Value::Array(vec![Value::Int(7), Value::Int(1)]),
                Value::Array(vec![Value::Int(7), Value::Int(2)]),
            ])
        );
        assert_eq!(lines["spec_version"], 3);
        assert_eq!(lines["experiment"], 5);
        assert_eq!(lines["experiment.kind"], 6);
        assert_eq!(lines["faults.rates"], 12);
    }

    #[test]
    fn rejects_duplicates_with_the_second_line() {
        let e = parse("a = 1\na = 2\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("duplicate key `a`"), "{e}");
        let e = parse("[t]\n[t]\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("duplicate table"), "{e}");
    }

    #[test]
    fn rejects_unsupported_constructs() {
        assert!(parse("[[t]]\n").is_err());
        assert!(parse("a.b = 1\n").is_err());
        assert!(parse("a = {x = 1}\n").is_err());
        assert!(parse("a = [1,\n2]\n").is_err());
        assert!(parse("a = \"unterminated\n").is_err());
        assert!(parse("just words\n").is_err());
        assert!(parse("a = 1 garbage\n").is_err());
    }

    #[test]
    fn strings_escape_and_round_trip() {
        let (v, _) = parse(r#"s = "a \"b\"\n\t\\c""#).expect("parses");
        let Value::Str(s) = obj(&v, "s") else {
            panic!("not a string")
        };
        assert_eq!(s, "a \"b\"\n\t\\c");
        let rendered = render_value(&Value::Str(s.clone()));
        let (v2, _) = parse(&format!("s = {rendered}")).expect("reparses");
        assert_eq!(obj(&v2, "s"), Value::Str(s));
    }

    #[test]
    fn floats_render_and_reparse_bit_exactly() {
        for f in [0.0, 1e-4, 0.5, -1.25, 3.0, 1e300, 42.0] {
            let s = render_float(f);
            let (v, _) = parse(&format!("x = {s}")).expect("reparses");
            let Value::Float(back) = obj(&v, "x") else {
                panic!("{s} did not parse as a float")
            };
            assert_eq!(back.to_bits(), f.to_bits(), "{s}");
        }
    }

    #[test]
    fn integers_support_underscores_and_u64_range() {
        let (v, _) = parse("a = 1_000_000\nb = 18446744073709551615\n").unwrap();
        assert_eq!(obj(&v, "a"), Value::Int(1_000_000));
        assert_eq!(obj(&v, "b"), Value::UInt(u64::MAX));
    }
}
