//! Deterministic-replay verification and divergence self-checks.
//!
//! The simulator's reproducibility claim — same workload, same
//! configuration, same stream of retired uops, bit for bit — is only
//! worth something if it is *checked*. This module provides three
//! probes, surfaced by `repro verify`:
//!
//! * [`lockstep`] runs two independently constructed simulations of
//!   the same cell side by side, comparing 64-bit state digests every
//!   `interval` retired uops. Any nondeterminism (unseeded randomness,
//!   iteration-order dependence, uninitialised state) shows up as a
//!   digest divergence with the cycle it first appeared at. The same
//!   probe doubles as a fault detector: with an [`Inject`] it flips
//!   one state bit in the second machine mid-run and must report the
//!   divergence — a self-test that the digest actually covers the
//!   state it claims to.
//! * [`replay`] exercises the full checkpoint chain: run a machine to
//!   a snapshot point, persist the snapshot through the checksummed
//!   [`snapfile`](crate::snapfile) container, restore it into a fresh
//!   machine, and verify the restored machine tracks the original
//!   digest-for-digest to the end of the run.
//! * [`check_trace`] scans an on-disk uop trace through
//!   [`TraceReader`], optionally in tolerant mode, reporting record
//!   and resync counts.

use crate::common::Scale;
use perconf_bpred::Snapshot;
use perconf_pipeline::{Controller, PipelineConfig, SimError, Simulation};
use perconf_workload::{TraceReader, WorkloadConfig};
use serde::{Serialize, Value};
use std::io;
use std::path::Path;

/// A deliberate single-bit state fault, injected into the second
/// machine of a [`lockstep`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Inject {
    /// Retired-uop mark after which the bit is flipped. Rounded up to
    /// the next digest interval boundary.
    pub at_uops: u64,
    /// Which bit of the fetch-history register to flip.
    pub bit: u32,
}

/// One digest comparison point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct IntervalRecord {
    /// Retired correct-path uops at this point.
    pub retired: u64,
    /// Cycle count of machine A at this point.
    pub cycle: u64,
    /// State digest of machine A.
    pub digest_a: u64,
    /// State digest of machine B.
    pub digest_b: u64,
}

/// Where two machines first stopped agreeing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct Divergence {
    /// Retired-uop mark of the first mismatching digest.
    pub retired: u64,
    /// Machine A's cycle count at that mark.
    pub cycle_a: u64,
    /// Machine B's cycle count at that mark (may already differ).
    pub cycle_b: u64,
}

/// Result of one verification probe.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct VerifyReport {
    /// Probe name (`lockstep`, `lockstep+inject`, `replay`).
    pub probe: String,
    /// Benchmark the probe ran on.
    pub benchmark: String,
    /// Every digest comparison point, in order.
    pub intervals: Vec<IntervalRecord>,
    /// First mismatch, if any.
    pub first_divergence: Option<Divergence>,
}

impl VerifyReport {
    /// Whether the two machines ever disagreed.
    #[must_use]
    pub fn diverged(&self) -> bool {
        self.first_divergence.is_some()
    }

    /// Renders the probe outcome with the digest trail.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = format!(
            "{} on {}: {} digest comparisons, ",
            self.probe,
            self.benchmark,
            self.intervals.len()
        );
        match &self.first_divergence {
            Some(d) => out.push_str(&format!(
                "DIVERGED at {} retired uops (cycle {} vs {})\n",
                d.retired, d.cycle_a, d.cycle_b
            )),
            None => out.push_str("identical throughout\n"),
        }
        for r in &self.intervals {
            let mark = if r.digest_a == r.digest_b { "  " } else { "!=" };
            out.push_str(&format!(
                "  {mark} {:>10} uops  cycle {:>10}  A {:#018x}  B {:#018x}\n",
                r.retired, r.cycle, r.digest_a, r.digest_b
            ));
        }
        out
    }
}

fn drive(
    a: &mut Simulation,
    b: &mut Simulation,
    probe: &str,
    benchmark: &str,
    total_uops: u64,
    interval: u64,
    inject: Option<Inject>,
) -> Result<VerifyReport, SimError> {
    let interval = interval.max(1);
    let mut intervals = Vec::new();
    let mut first_divergence = None;
    let mut injected = inject.is_none();
    while a.stats().retired < total_uops {
        let chunk = interval.min(total_uops - a.stats().retired);
        a.try_run(chunk)?;
        b.try_run(chunk)?;
        if let Some(f) = inject {
            if !injected && a.stats().retired >= f.at_uops {
                flip_history_bit(b, f.bit)?;
                injected = true;
            }
        }
        let rec = IntervalRecord {
            retired: a.stats().retired,
            cycle: a.stats().cycles,
            digest_a: a.state_digest(),
            digest_b: b.state_digest(),
        };
        if rec.digest_a != rec.digest_b && first_divergence.is_none() {
            first_divergence = Some(Divergence {
                retired: rec.retired,
                cycle_a: a.stats().cycles,
                cycle_b: b.stats().cycles,
            });
        }
        intervals.push(rec);
    }
    Ok(VerifyReport {
        probe: probe.to_owned(),
        benchmark: benchmark.to_owned(),
        intervals,
        first_divergence,
    })
}

/// Flips one bit of a simulation's global fetch-history register by
/// round-tripping its snapshot — a minimal, surgical single-bit state
/// fault injected from outside the crate boundary.
fn flip_history_bit(sim: &mut Simulation, bit: u32) -> Result<(), SimError> {
    let mut state = sim.save_state();
    let Value::Object(fields) = &mut state else {
        return Err(SimError::Stalled {
            retired: 0,
            target: 0,
            cycle: 0,
        });
    };
    let mut flipped = false;
    for (k, v) in fields.iter_mut() {
        if k == "fetch_history" {
            // The in-memory snapshot holds `UInt`, but a snapshot that
            // passed through JSON re-parses small values as `Int`.
            match v {
                Value::UInt(h) => {
                    *h ^= 1u64 << (bit % 64);
                    flipped = true;
                }
                Value::Int(h) => {
                    *v = Value::UInt((*h as u64) ^ (1u64 << (bit % 64)));
                    flipped = true;
                }
                _ => {}
            }
        }
    }
    assert!(flipped, "simulation snapshot lost its fetch_history field");
    sim.restore_state(&state)
        .expect("tampered snapshot keeps its own schema");
    Ok(())
}

/// Runs two independently built machines of the same cell in lockstep,
/// digesting both every `interval` retired uops. With `inject`, flips
/// a fetch-history bit in machine B at the requested mark; the probe
/// then *must* report a divergence (verified by the caller).
///
/// # Errors
///
/// Propagates [`SimError`] from either machine.
pub fn lockstep(
    wl: &WorkloadConfig,
    cfg: PipelineConfig,
    mk_ctl: impl Fn() -> Controller,
    scale: Scale,
    interval: u64,
    inject: Option<Inject>,
) -> Result<VerifyReport, SimError> {
    let mut a = Simulation::new(cfg, wl, mk_ctl());
    let mut b = Simulation::new(cfg, wl, mk_ctl());
    let probe = if inject.is_some() {
        "lockstep+inject"
    } else {
        "lockstep"
    };
    drive(
        &mut a,
        &mut b,
        probe,
        &wl.name,
        scale.run_uops,
        interval,
        inject,
    )
}

/// Replays a cell from a mid-run snapshot: machine A runs to
/// `snapshot_at` retired uops, its snapshot travels through the
/// on-disk [`snapfile`](crate::snapfile) container at `snap_path`,
/// machine B restores from the file, and both run to `scale.run_uops`
/// comparing digests every `interval`.
///
/// # Errors
///
/// Propagates [`SimError`]; snapshot-container failures surface as
/// [`SimError::Stalled`] is never used for them — they panic, because
/// a snapshot this function itself just wrote must read back.
///
/// # Panics
///
/// Panics if the just-written snapshot file fails to read back or
/// restore — that is the bug this probe exists to catch.
pub fn replay(
    wl: &WorkloadConfig,
    cfg: PipelineConfig,
    mk_ctl: impl Fn() -> Controller,
    scale: Scale,
    snapshot_at: u64,
    interval: u64,
    snap_path: &Path,
) -> Result<VerifyReport, SimError> {
    let mut a = Simulation::new(cfg, wl, mk_ctl());
    a.try_run(snapshot_at.min(scale.run_uops))?;
    crate::snapfile::write(snap_path, &a.save_state())
        .unwrap_or_else(|e| panic!("cannot write verify snapshot: {e}"));
    let restored = crate::snapfile::read(snap_path)
        .unwrap_or_else(|e| panic!("just-written snapshot failed to read back: {e}"));
    let mut b = Simulation::new(cfg, wl, mk_ctl());
    b.restore_state(&restored)
        .unwrap_or_else(|e| panic!("just-written snapshot failed to restore: {e}"));
    drive(
        &mut a,
        &mut b,
        "replay",
        &wl.name,
        scale.run_uops,
        interval,
        None,
    )
}

/// Outcome of scanning an on-disk uop trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct TraceCheck {
    /// Records successfully decoded.
    pub records: u64,
    /// Resync events (tolerant mode only; 0 in strict mode).
    pub resyncs: u64,
    /// Bytes skipped while resyncing.
    pub skipped_bytes: u64,
}

/// Scans a trace file end to end. In strict mode any checksum failure
/// aborts with the I/O error; in tolerant mode corrupt records are
/// skipped, the reader resynchronises on the next valid record, and
/// the skip counts are reported.
///
/// # Errors
///
/// Propagates [`io::Error`] from opening or (in strict mode) reading
/// the trace.
pub fn check_trace(path: &Path, tolerant: bool) -> io::Result<TraceCheck> {
    let reader = TraceReader::open(path)?;
    let mut reader = if tolerant { reader.tolerant() } else { reader };
    let mut records = 0u64;
    for uop in reader.by_ref() {
        uop?;
        records += 1;
    }
    Ok(TraceCheck {
        records,
        resyncs: reader.skipped(),
        skipped_bytes: reader.skipped_bytes(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{controller, perceptron, PredictorKind};

    fn cfg() -> PipelineConfig {
        PipelineConfig::with_depth_width(20, 4)
    }

    fn mk() -> Controller {
        controller(PredictorKind::BimodalGshare, perceptron(14))
    }

    fn small_scale() -> Scale {
        Scale {
            warmup_uops: 0,
            run_uops: 60_000,
            warmup_branches: 0,
            run_branches: 0,
        }
    }

    #[test]
    fn identical_machines_never_diverge() {
        let wl = perconf_workload::spec2000_config("gcc").unwrap();
        let r = lockstep(&wl, cfg(), mk, small_scale(), 15_000, None).unwrap();
        assert!(!r.diverged(), "{}", r.render());
        assert_eq!(r.intervals.len(), 4);
        assert!(r.render().contains("identical throughout"));
    }

    #[test]
    fn injected_bit_flip_is_detected_with_its_cycle() {
        let wl = perconf_workload::spec2000_config("gcc").unwrap();
        let inject = Inject {
            at_uops: 30_000,
            bit: 3,
        };
        let r = lockstep(&wl, cfg(), mk, small_scale(), 15_000, Some(inject)).unwrap();
        let d = r.first_divergence.expect("single-bit fault must be seen");
        assert!(
            d.retired > inject.at_uops,
            "divergence {} must postdate the injection at {}",
            d.retired,
            inject.at_uops
        );
        assert!(d.cycle_a > 0);
        assert!(r.render().contains("DIVERGED"));
    }

    #[test]
    fn replay_from_snapfile_tracks_the_original() {
        let wl = perconf_workload::spec2000_config("twolf").unwrap();
        let path = std::env::temp_dir().join(format!(
            "perconf-verify-replay-{}.psnap",
            std::process::id()
        ));
        let r = replay(&wl, cfg(), mk, small_scale(), 20_000, 10_000, &path).unwrap();
        assert!(!r.diverged(), "{}", r.render());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn trace_check_strict_and_tolerant_agree_on_clean_traces() {
        use perconf_workload::{TraceWriter, WorkloadGenerator};
        let wl = perconf_workload::spec2000_config("gzip").unwrap();
        let path =
            std::env::temp_dir().join(format!("perconf-verify-trace-{}.trc", std::process::id()));
        let mut gen = WorkloadGenerator::new(&wl);
        TraceWriter::record(&mut gen, 500, &path).unwrap();
        let strict = check_trace(&path, false).unwrap();
        let tolerant = check_trace(&path, true).unwrap();
        assert_eq!(strict.records, 500);
        assert_eq!(strict, tolerant);
        assert_eq!(tolerant.resyncs, 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn trace_check_tolerant_counts_resyncs_on_damage() {
        use perconf_workload::{TraceWriter, WorkloadGenerator};
        let wl = perconf_workload::spec2000_config("gzip").unwrap();
        let path = std::env::temp_dir().join(format!(
            "perconf-verify-trace-dmg-{}.trc",
            std::process::id()
        ));
        let mut gen = WorkloadGenerator::new(&wl);
        TraceWriter::record(&mut gen, 200, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Corrupt one record's checksum region mid-file (header is 16
        // bytes, records are 27).
        let off = 16 + 27 * 100 + 5;
        bytes[off] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(check_trace(&path, false).is_err(), "strict mode must fail");
        let t = check_trace(&path, true).unwrap();
        assert!(t.resyncs >= 1);
        assert!(t.records >= 198);
        let _ = std::fs::remove_file(&path);
    }
}
