//! Reproduction drivers for every table and figure in the evaluation
//! of *Perceptron-Based Branch Confidence Estimation* (HPCA 2004).
//!
//! Each experiment is a function returning a serialisable result
//! struct with a `render()` method that prints rows in the same shape
//! the paper reports, side by side with the paper's numbers where
//! available. The `repro` binary dispatches to them:
//!
//! ```text
//! cargo run --release -p perconf-experiments --bin repro -- table3
//! cargo run --release -p perconf-experiments --bin repro -- all --full
//! ```
//!
//! | ID | Paper content | Module |
//! |---|---|---|
//! | `table2` | workload speculation-waste characteristics | [`table2`] |
//! | `table3` | PVN/Spec: enhanced JRS vs perceptron | [`table3`] |
//! | `table4` | pipeline gating: uop reduction vs perf loss | [`table4`] |
//! | `table5` | effect of a better baseline predictor | [`table5`] |
//! | `table6` | perceptron size sensitivity | [`table6`] |
//! | `fig4`–`fig7` | perceptron output densities (cic vs tnt) | [`figs`] |
//! | `latency` | §5.4.2 estimator-latency sensitivity | [`latency`] |
//! | `fig8`/`fig9` | combined gating + reversal per benchmark | [`fig89`] |
//! | `energy` | energy / energy×delay of gating (extension) | [`energy`] |
//! | `faults` | resilience under fault injection (extension) | [`faults`] |
//! | `sweep` | distributed (multi-process) fault sweep | [`distrib`] |
//! | `run <spec>` | any of the above from a declarative spec file | [`spec`] |
//!
//! Long sweeps run their cells through [`runner::Runner`] (one cell
//! at a time) or [`runner::Scheduler`] (`--jobs N` worker threads
//! over a shared queue); both drive the same per-cell engine, which
//! isolates panics, applies watchdog timeouts, and checkpoints
//! completed cells so `repro --resume <dir>` skips finished work.
//! Scheduler output is byte-identical for any job count: results
//! merge in canonical sweep order and every cell seeds from its grid
//! coordinates, never from scheduling order. [`distrib`] extends the
//! same contract across worker *processes* via a filesystem lease
//! queue: `repro sweep --workers N` is byte-identical to `--workers
//! 1`, even when workers are killed and respawned mid-sweep.
//!
//! Absolute numbers differ from the paper (the substrate is a
//! synthetic-trace simulator, not Intel's LIT testbed — see
//! `DESIGN.md` §2); the drivers exist to reproduce the *shape* of
//! each result.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod common;
pub mod distrib;
pub mod energy;
pub mod exitcode;
pub mod faults;
pub mod fig89;
pub mod figs;
pub mod latency;
pub mod paper;
pub mod runner;
pub mod snapfile;
pub mod spec;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod table5;
pub mod table6;
pub mod verify;

pub use common::Scale;
/// Compatibility alias: the exit-code taxonomy used to live inline
/// here as `exit`; it is now the shared [`exitcode`] module.
pub use exitcode as exit;
