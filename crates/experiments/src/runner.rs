//! Panic-isolated, watchdogged, resumable sweep execution —
//! sequential ([`Runner`]) and parallel ([`Scheduler`]).
//!
//! Large sweeps ((benchmark × estimator × config) grids) used to be
//! all-or-nothing: one panicking or hanging cell killed hours of
//! finished work. [`Runner`] executes each cell on a worker thread
//! under `catch_unwind` with a watchdog timeout and bounded
//! retry-with-backoff; completed cells are checkpointed as JSON so a
//! rerun with `resume` enabled skips everything already done and only
//! re-executes cells that failed (their `*.failed.json` markers are
//! cleared on resume).
//!
//! A failed cell produces a [`RunError`] value — the sweep continues
//! and the driver reports which cells are missing rather than dying.
//!
//! [`Scheduler`] fans a whole cell list out across a bounded pool of
//! worker threads (`--jobs` in the binaries) while keeping the exact
//! per-cell semantics above — both frontends share one cell-execution
//! engine ([`execute_cell`]). Its determinism contract: the merged
//! [`SweepReport`] lists cells in **submission (canonical) order**
//! regardless of worker count or completion order, per-cell checkpoint
//! files depend only on the cell key, and nothing a cell computes may
//! depend on scheduling (derive per-cell RNG seeds from the cell
//! coordinates, never from execution order). Wall-clock timings are
//! the one intentionally nondeterministic output and live in the
//! separate [`CellTiming`] report.

use crate::snapfile;
use serde::{Deserialize, DeserializeOwned, Serialize, Value};
use std::panic::{self, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// Why a sweep cell failed, after exhausting its retry budget.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RunError {
    /// The cell's code panicked; the payload message is preserved.
    Panic {
        /// Panic payload rendered to text.
        message: String,
    },
    /// The watchdog expired before the cell finished.
    Timeout {
        /// Configured timeout that elapsed, in seconds.
        seconds: f64,
    },
    /// Checkpoint or marker I/O failed.
    Io {
        /// The underlying I/O error, rendered.
        message: String,
    },
    /// A simulator invariant surfaced as a recoverable error
    /// (see `perconf_pipeline::SimError`).
    Invariant {
        /// The invariant violation, rendered.
        message: String,
    },
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Panic { message } => write!(f, "panicked: {message}"),
            RunError::Timeout { seconds } => write!(f, "timed out after {seconds}s"),
            RunError::Io { message } => write!(f, "i/o error: {message}"),
            RunError::Invariant { message } => write!(f, "invariant violated: {message}"),
        }
    }
}

impl RunError {
    /// Stable lowercase tag for the error class, used in timing rows
    /// and exit-code classification.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            RunError::Panic { .. } => "panic",
            RunError::Timeout { .. } => "timeout",
            RunError::Io { .. } => "io",
            RunError::Invariant { .. } => "invariant",
        }
    }
}

impl std::error::Error for RunError {}

/// Process-wide count of corrupt or unusable persisted inputs that
/// were *discarded and recomputed* instead of aborting the run —
/// checkpoints failing integrity checks, unreadable queue or result
/// files, and the like. The binaries map a nonzero count on an
/// otherwise successful run to the documented "degraded" exit code so
/// CI and the distributed coordinator can tell "clean" from
/// "recovered" without parsing stderr.
static DEGRADED: AtomicUsize = AtomicUsize::new(0);

/// Records one degraded-input event (and warns on stderr at the call
/// site — this only does the accounting).
pub fn note_degraded() {
    DEGRADED.fetch_add(1, Ordering::Relaxed);
}

/// How many corrupt inputs this process has discarded and recomputed.
#[must_use]
pub fn degraded_count() -> usize {
    DEGRADED.load(Ordering::Relaxed)
}

impl From<std::io::Error> for RunError {
    fn from(e: std::io::Error) -> Self {
        RunError::Io {
            message: e.to_string(),
        }
    }
}

impl From<perconf_pipeline::SimError> for RunError {
    fn from(e: perconf_pipeline::SimError) -> Self {
        RunError::Invariant {
            message: e.to_string(),
        }
    }
}

/// Isolation and checkpointing policy for a [`Runner`].
#[derive(Debug, Clone)]
pub struct RunnerConfig {
    /// Directory for per-cell checkpoints and failure markers. `None`
    /// disables persistence (cells still get isolation and retries).
    pub checkpoint_dir: Option<PathBuf>,
    /// When `true`, cells whose checkpoint already exists are loaded
    /// instead of re-executed, and stale failure markers are cleared
    /// so failed cells run again.
    pub resume: bool,
    /// Watchdog: maximum wall-clock time one attempt may take. `None`
    /// waits forever. On expiry the worker thread is abandoned (it
    /// cannot be killed safely) and the attempt counts as failed.
    pub timeout: Option<Duration>,
    /// Extra attempts after the first failure.
    pub retries: u32,
    /// Sleep before retry `n` is `backoff << (n - 1)` (exponential),
    /// stretched by up to [`jitter`](Self::jitter).
    pub backoff: Duration,
    /// Jitter fraction in `0.0..=1.0`: each retry sleep is multiplied
    /// by `1 + jitter * u` where `u` derives from an FNV digest of
    /// `(key, attempt)` — deterministic per cell, decorrelated across
    /// cells, so a fleet of actors retrying the same transient fault
    /// does not thunder back in lockstep. `0.0` (the default) keeps
    /// the historical exact-exponential schedule.
    pub jitter: f64,
}

impl Default for RunnerConfig {
    fn default() -> Self {
        Self {
            checkpoint_dir: None,
            resume: false,
            timeout: Some(Duration::from_secs(600)),
            retries: 1,
            backoff: Duration::from_millis(200),
            jitter: 0.0,
        }
    }
}

impl RunnerConfig {
    /// Checkpoint into (and resume from) `dir` with default isolation
    /// settings.
    #[must_use]
    pub fn resuming<P: Into<PathBuf>>(dir: P) -> Self {
        Self {
            checkpoint_dir: Some(dir.into()),
            resume: true,
            ..Self::default()
        }
    }
}

/// A handle through which a sweep cell persists mid-run state, so an
/// interrupted (timed-out, panicked, killed) cell can resume from its
/// last in-flight checkpoint instead of from scratch.
///
/// The handle is inert when the owning [`Runner`] has no checkpoint
/// directory: [`load`](Self::load) returns `None` and
/// [`store`](Self::store) is a no-op, so cell code can checkpoint
/// unconditionally. State travels through the versioned, checksummed
/// [`snapfile`] container; a corrupt or truncated partial checkpoint
/// is discarded (with a warning naming the reason) and the cell reruns
/// from scratch — never deserialized into nonsense.
#[derive(Debug, Clone)]
pub struct CheckpointCell {
    path: Option<PathBuf>,
}

impl CheckpointCell {
    /// A handle that never persists anything (no checkpoint dir).
    #[must_use]
    pub fn disabled() -> Self {
        Self { path: None }
    }

    /// A handle writing to (and resuming from) `path`.
    #[must_use]
    pub fn at<P: Into<PathBuf>>(path: P) -> Self {
        Self {
            path: Some(path.into()),
        }
    }

    /// Where the partial checkpoint lives, if persistence is on.
    #[must_use]
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    /// Loads the last stored mid-run state. `None` when persistence is
    /// off, nothing was stored yet, or the stored file fails its
    /// integrity checks (in which case it is deleted and the caller
    /// starts from scratch).
    #[must_use]
    pub fn load(&self) -> Option<Value> {
        let path = self.path.as_ref()?;
        if !path.exists() {
            return None;
        }
        match snapfile::read(path) {
            Ok(v) => Some(v),
            Err(e) => {
                eprintln!(
                    "warning: discarding unusable partial checkpoint {}: {e}",
                    path.display()
                );
                note_degraded();
                let _ = std::fs::remove_file(path);
                None
            }
        }
    }

    /// Stores mid-run state, replacing any previous store atomically.
    /// Best-effort: an I/O failure warns and continues (losing a
    /// checkpoint must never kill the run it exists to protect).
    pub fn store(&self, state: &Value) {
        let Some(path) = &self.path else { return };
        if let Err(e) = snapfile::write(path, state) {
            eprintln!(
                "warning: cannot write partial checkpoint {}: {e}",
                path.display()
            );
        }
    }

    /// Removes the partial checkpoint (called after the cell finishes
    /// and its *final* result is persisted).
    pub fn clear(&self) {
        if let Some(path) = &self.path {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// Worker threads abandoned by the watchdog, shared between the
/// sequential and parallel frontends. They cannot be killed, but they
/// are *kept* (not leaked detached) and joined as soon as they finish,
/// bounding the number of live stray threads.
type Zombies = Arc<Mutex<Vec<thread::JoinHandle<()>>>>;

/// A sweep cell's work function: receives its mid-run checkpoint
/// handle, returns the cell result.
type WorkFn<T> = Arc<dyn Fn(&CheckpointCell) -> T + Send + Sync>;

/// Work function of a [`BatchSpec`]: receives the indices of the
/// members that still need computing plus every member's checkpoint
/// cell, and returns one value per requested index, in order.
type BatchWorkFn<T> = Arc<dyn Fn(&[usize], &[CheckpointCell]) -> Vec<T> + Send + Sync>;

/// The worker-thread count "use every core" resolves to.
#[must_use]
pub fn default_jobs() -> usize {
    thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Joins every abandoned worker that has since run to completion and
/// returns how many are still alive.
fn reap_zombie_list(zombies: &Zombies) -> usize {
    let mut z = zombies.lock().expect("zombie list lock");
    let mut live = Vec::new();
    for handle in z.drain(..) {
        if handle.is_finished() {
            let _ = handle.join();
        } else {
            live.push(handle);
        }
    }
    *z = live;
    z.len()
}

/// What happened to one sweep cell, as reported by the shared
/// cell-execution engine. Every submitted cell produces exactly one
/// report with a terminal outcome.
#[derive(Debug)]
pub struct CellReport<T> {
    /// The cell key.
    pub key: String,
    /// Terminal outcome: the cell value, or the last error after the
    /// retry budget was exhausted.
    pub outcome: Result<T, RunError>,
    /// The value was loaded from a *final* checkpoint; the cell did
    /// not execute at all.
    pub resumed: bool,
    /// A mid-run (`*.part.psnap`) checkpoint existed when the cell
    /// started, so its first attempt continued mid-cell rather than
    /// from scratch. Continuing from a partial checkpoint is **not** a
    /// retry: it does not increment [`attempts`](Self::attempts).
    pub resumed_mid_cell: bool,
    /// In-process executions of the work function (0 when `resumed`).
    pub attempts: u32,
    /// Wall-clock time spent on this cell (loading, attempts, backoff).
    /// Nondeterministic by nature — excluded from merged result files.
    pub wall: Duration,
}

impl<T> CellReport<T> {
    /// Attempts beyond the first, i.e. actual re-executions. A cell
    /// that resumed from a partial checkpoint and finished on its
    /// first attempt has 0 retries.
    #[must_use]
    pub fn retries(&self) -> u32 {
        self.attempts.saturating_sub(1)
    }

    /// The serializable timing/accounting row for this cell.
    #[must_use]
    pub fn timing(&self) -> CellTiming {
        CellTiming {
            key: self.key.clone(),
            wall_s: self.wall.as_secs_f64(),
            attempts: self.attempts,
            retries: self.retries(),
            resumed: self.resumed,
            resumed_mid_cell: self.resumed_mid_cell,
            ok: self.outcome.is_ok(),
            error_kind: self.outcome.as_ref().err().map(|e| e.kind().to_owned()),
        }
    }
}

/// Per-cell wall-time and retry accounting, published by the binaries
/// (`--timing`) so sweep speedups and flaky cells are observable.
/// Wall time is wall-clock: keep this out of byte-compared outputs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellTiming {
    /// The cell key.
    pub key: String,
    /// Wall-clock seconds spent on the cell.
    pub wall_s: f64,
    /// In-process executions (0 = served from a final checkpoint).
    pub attempts: u32,
    /// Re-executions beyond the first attempt. Resuming from a
    /// mid-cell checkpoint does not count.
    pub retries: u32,
    /// Result was loaded from a final checkpoint.
    pub resumed: bool,
    /// First attempt continued from a mid-cell checkpoint.
    pub resumed_mid_cell: bool,
    /// The cell reached a successful terminal status.
    pub ok: bool,
    /// Error class of the terminal failure (`panic`, `timeout`, `io`,
    /// `invariant`); `None` when the cell succeeded.
    pub error_kind: Option<String>,
}

/// The shared per-cell engine: final-checkpoint resume, failure-marker
/// clearing, mid-cell checkpoint wiring, panic-isolated watchdogged
/// attempts with exponential backoff, checkpoint/marker persistence.
/// Both [`Runner::run_cell_resumable`] and [`Scheduler::run_cells`]
/// funnel through here, so the two frontends cannot drift.
fn execute_cell<T>(
    cfg: &RunnerConfig,
    zombies: &Zombies,
    key: &str,
    work: WorkFn<T>,
) -> CellReport<T>
where
    T: Serialize + DeserializeOwned + Send + 'static,
{
    // A single cell is exactly a width-1 batch; keeping one engine
    // means resume/retry/marker semantics cannot drift between the
    // sequential and batched paths.
    let spec = BatchSpec {
        keys: vec![key.to_owned()],
        work: Arc::new(move |pending: &[usize], cells: &[CheckpointCell]| {
            debug_assert_eq!(pending, [0]);
            vec![work(&cells[0])]
        }),
    };
    execute_batch(cfg, zombies, &spec)
        .pop()
        .expect("width-1 batch yields exactly one report")
}

/// Runs one batch group through the shared cell-execution engine:
/// per-member final-checkpoint resume and failure markers, one
/// watchdog + retry budget around the grouped work function.
///
/// Per-member semantics match [`execute_cell`] exactly (which *is*
/// the width-1 case): members whose final checkpoint exists resume
/// without running; stale failure markers clear; a pre-existing
/// partial checkpoint records `resumed_mid_cell` without counting as
/// a retry. The remaining members execute together in one attempt
/// thread — the work function receives their indices plus every
/// member's [`CheckpointCell`] — under a watchdog scaled by the
/// pending member count. An attempt failure (panic or timeout) is
/// charged to every pending member; mid-run checkpoints written
/// before the failure still bound the rework on retry.
fn execute_batch<T>(
    cfg: &RunnerConfig,
    zombies: &Zombies,
    spec: &BatchSpec<T>,
) -> Vec<CellReport<T>>
where
    T: Serialize + DeserializeOwned + Send + 'static,
{
    #[allow(clippy::disallowed_methods)]
    // lint: allow(nondeterminism-sources) — elapsed-time progress logging only
    let start = Instant::now();
    reap_zombie_list(zombies);
    let n = spec.keys.len();
    let cells: Vec<CheckpointCell> = spec
        .keys
        .iter()
        .map(|k| match partial_file(cfg, k) {
            Some(p) => CheckpointCell::at(p),
            None => CheckpointCell::disabled(),
        })
        .collect();
    let mut reports: Vec<Option<CellReport<T>>> = (0..n).map(|_| None).collect();
    let mut resumed_mid = vec![false; n];
    for i in 0..n {
        let key = &spec.keys[i];
        if cfg.resume {
            if let Some(v) = load_final_checkpoint(cfg, key) {
                // The final result exists; any leftover partial state
                // is stale.
                cells[i].clear();
                reports[i] = Some(CellReport {
                    key: key.clone(),
                    outcome: Ok(v),
                    resumed: true,
                    resumed_mid_cell: false,
                    attempts: 0,
                    wall: start.elapsed(),
                });
                continue;
            }
            // A stale failure marker means this cell is being retried.
            if let Some(p) = failed_file(cfg, key) {
                let _ = std::fs::remove_file(p);
            }
            // Recorded *before* any attempt runs: continuing a killed
            // cell's mid-run state is a resume, not a retry, and must
            // not inflate the aggregate retry count.
            resumed_mid[i] = cells[i].path().is_some_and(Path::exists);
        } else {
            // A fresh (non-resume) sweep must not silently continue
            // from some earlier run's mid-cell state.
            cells[i].clear();
        }
    }
    let pending: Vec<usize> = (0..n).filter(|&i| reports[i].is_none()).collect();
    if pending.is_empty() {
        return reports
            .into_iter()
            .map(|r| r.expect("all members resumed"))
            .collect();
    }
    let thunk: Arc<dyn Fn() -> Vec<T> + Send + Sync> = {
        let work = Arc::clone(&spec.work);
        let work_cells = cells.clone();
        let idxs = pending.clone();
        Arc::new(move || work(&idxs, &work_cells))
    };
    // The watchdog guards the whole grouped attempt, so its budget
    // scales with how many members actually run.
    #[allow(clippy::cast_possible_truncation)]
    let timeout = cfg.timeout.map(|t| t * pending.len().max(1) as u32);
    let mut attempts = 0u32;
    let mut last = RunError::Panic {
        message: "cell never ran".to_owned(),
    };
    for attempt in 0..=cfg.retries {
        if attempt > 0 {
            let t = crate::common::tracer();
            if t.enabled() {
                // Keys are free-form strings; the event carries their
                // FNV digest so records stay fixed-width.
                for &i in &pending {
                    t.record(perconf_obs::TraceEvent::Retry {
                        key: perconf_bpred::digest_bytes(spec.keys[i].as_bytes()),
                        attempt: u64::from(attempt),
                    });
                }
            }
            // Backoff is keyed on the first pending key so reruns of
            // the same batch wait the same, deterministic time.
            thread::sleep(retry_backoff(cfg, &spec.keys[pending[0]], attempt));
        }
        attempts += 1;
        match run_attempt(timeout, zombies, Arc::clone(&thunk)) {
            Ok(values) => {
                assert_eq!(
                    values.len(),
                    pending.len(),
                    "batch work must yield one value per pending member"
                );
                for (&i, v) in pending.iter().zip(values) {
                    let key = &spec.keys[i];
                    if let Err(e) = write_final_checkpoint(cfg, key, &v) {
                        eprintln!("warning: cell {key}: {e}");
                    }
                    cells[i].clear();
                    reports[i] = Some(CellReport {
                        key: key.clone(),
                        outcome: Ok(v),
                        resumed: false,
                        resumed_mid_cell: resumed_mid[i],
                        attempts,
                        wall: start.elapsed(),
                    });
                }
                return reports
                    .into_iter()
                    .map(|r| r.expect("every member reported"))
                    .collect();
            }
            Err(e) => {
                eprintln!(
                    "warning: batch [{}] attempt {attempt}: {e}",
                    spec.keys[pending[0]]
                );
                last = e;
            }
        }
    }
    for &i in &pending {
        let key = &spec.keys[i];
        write_failure_marker(cfg, key, &last);
        reports[i] = Some(CellReport {
            key: key.clone(),
            outcome: Err(last.clone()),
            resumed: false,
            resumed_mid_cell: resumed_mid[i],
            attempts,
            wall: start.elapsed(),
        });
    }
    reports
        .into_iter()
        .map(|r| r.expect("every member reported"))
        .collect()
}

/// Sleep before retry `attempt` (1-based): exponential base stretched
/// by a jitter factor hashed from `(key, attempt)`. Purely a function
/// of its inputs — reruns of the same cell wait the same time, which
/// keeps wall-clock reports comparable — while distinct keys spread
/// across the jitter window instead of retrying in lockstep.
fn retry_backoff(cfg: &RunnerConfig, key: &str, attempt: u32) -> Duration {
    let base = cfg.backoff * (1 << (attempt - 1));
    let jitter = cfg.jitter.clamp(0.0, 1.0);
    if jitter == 0.0 {
        return base;
    }
    let h = perconf_bpred::digest_bytes(format!("{key}#retry{attempt}").as_bytes());
    // Low 10 digest bits → uniform fraction in [0, 1).
    #[allow(clippy::cast_precision_loss)]
    let u = (h & 0x3ff) as f64 / 1024.0;
    base.mul_f64(1.0 + jitter * u)
}

/// One isolated attempt: worker thread + `catch_unwind` + watchdog.
fn run_attempt<T>(
    timeout: Option<Duration>,
    zombies: &Zombies,
    work: Arc<dyn Fn() -> T + Send + Sync>,
) -> Result<T, RunError>
where
    T: Send + 'static,
{
    let (tx, rx) = mpsc::channel();
    let handle = thread::Builder::new()
        .name("sweep-cell".to_owned())
        .spawn(move || {
            let result = panic::catch_unwind(AssertUnwindSafe(|| work()));
            // Receiver gone = watchdog already gave up on us.
            let _ = tx.send(result);
        })
        .map_err(|e| RunError::Io {
            message: format!("cannot spawn worker: {e}"),
        })?;
    let outcome = match timeout {
        Some(t) => match rx.recv_timeout(t) {
            Ok(r) => {
                // The worker has reported; it exits imminently.
                let _ = handle.join();
                r
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                // The worker cannot be killed. Keep its handle so it
                // is joined as soon as it finishes (reaped at the next
                // cell) instead of leaking detached.
                zombies.lock().expect("zombie list lock").push(handle);
                return Err(RunError::Timeout {
                    seconds: t.as_secs_f64(),
                });
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                let _ = handle.join();
                Err(Box::new(String::from("worker vanished without reporting"))
                    as Box<dyn std::any::Any + Send>)
            }
        },
        None => {
            let r = rx.recv().unwrap_or_else(|_| {
                Err(Box::new(String::from("worker vanished without reporting"))
                    as Box<dyn std::any::Any + Send>)
            });
            let _ = handle.join();
            r
        }
    };
    outcome.map_err(|payload| RunError::Panic {
        message: panic_message(payload.as_ref()),
    })
}

fn checkpoint_file(cfg: &RunnerConfig, key: &str) -> Option<PathBuf> {
    cfg.checkpoint_dir
        .as_ref()
        .map(|d| d.join(format!("{}.json", sanitize(key))))
}

fn failed_file(cfg: &RunnerConfig, key: &str) -> Option<PathBuf> {
    cfg.checkpoint_dir
        .as_ref()
        .map(|d| d.join(format!("{}.failed.json", sanitize(key))))
}

fn partial_file(cfg: &RunnerConfig, key: &str) -> Option<PathBuf> {
    cfg.checkpoint_dir
        .as_ref()
        .map(|d| d.join(format!("{}.part.psnap", sanitize(key))))
}

fn load_final_checkpoint<T: DeserializeOwned>(cfg: &RunnerConfig, key: &str) -> Option<T> {
    let path = checkpoint_file(cfg, key)?;
    let text = std::fs::read_to_string(&path).ok()?;
    match serde_json::from_str(&text) {
        Ok(v) => Some(v),
        Err(e) => {
            // Corrupt checkpoint: drop it and recompute the cell.
            eprintln!(
                "warning: discarding unreadable checkpoint {}: {e}",
                path.display()
            );
            note_degraded();
            let _ = std::fs::remove_file(&path);
            None
        }
    }
}

fn write_final_checkpoint<T: Serialize>(
    cfg: &RunnerConfig,
    key: &str,
    value: &T,
) -> Result<(), RunError> {
    let Some(path) = checkpoint_file(cfg, key) else {
        return Ok(());
    };
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let text = serde_json::to_string_pretty(value).map_err(|e| RunError::Io {
        message: format!("cannot serialize checkpoint: {e}"),
    })?;
    // Atomic (pid-unique temp + rename): in a distributed sweep two
    // worker processes may finish the same cell, and the loser must
    // replace the winner's byte-identical file whole, never tear it.
    let tmp = path.with_extension(format!("json.tmp{}", std::process::id()));
    std::fs::write(&tmp, text)?;
    std::fs::rename(&tmp, &path)?;
    Ok(())
}

/// What [`gc_dir`] removed from a checkpoint directory.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GcReport {
    /// `<key>.part.psnap` partials whose cell already has its final
    /// `<key>.json` result — dead weight a crash window left behind.
    pub partials_removed: usize,
    /// Leftover atomic-write temp files (`*.tmp*`) from interrupted
    /// writers.
    pub temps_removed: usize,
}

impl GcReport {
    /// Total files removed.
    #[must_use]
    pub fn total(&self) -> usize {
        self.partials_removed + self.temps_removed
    }
}

/// Garbage-collects a checkpoint directory: removes mid-cell partial
/// checkpoints whose final result already landed (a kill between
/// "final checkpoint written" and "partial cleared" leaves them
/// behind, and they would otherwise linger forever in resume dirs)
/// and stray atomic-write temp files. Final checkpoints and failure
/// markers are never touched — they carry state a resume needs.
///
/// Best-effort by design: unreadable directory entries are skipped,
/// and a missing directory is an empty report, so callers can invoke
/// it unconditionally on clean completion.
#[must_use]
pub fn gc_dir(dir: &Path) -> GcReport {
    let mut report = GcReport::default();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return report;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if let Some(stem) = name.strip_suffix(".part.psnap") {
            if dir.join(format!("{stem}.json")).is_file() && std::fs::remove_file(&path).is_ok() {
                report.partials_removed += 1;
            }
        } else if name.contains(".tmp") && std::fs::remove_file(&path).is_ok() {
            report.temps_removed += 1;
        }
    }
    report
}

fn write_failure_marker(cfg: &RunnerConfig, key: &str, err: &RunError) {
    let Some(path) = failed_file(cfg, key) else {
        return;
    };
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    if let Ok(text) = serde_json::to_string_pretty(err) {
        if let Err(e) = std::fs::write(&path, text) {
            eprintln!("warning: cannot write failure marker for {key}: {e}");
        }
    }
}

/// Executes sweep cells with panic isolation, a watchdog, retries and
/// JSON checkpointing. See the module docs.
#[derive(Debug)]
pub struct Runner {
    cfg: RunnerConfig,
    failures: Vec<(String, RunError)>,
    executed: u64,
    resumed: u64,
    zombies: Zombies,
}

impl Runner {
    /// Builds a runner. The checkpoint directory is created lazily on
    /// first use.
    #[must_use]
    pub fn new(cfg: RunnerConfig) -> Self {
        Self {
            cfg,
            failures: Vec::new(),
            executed: 0,
            resumed: 0,
            zombies: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// A runner with no persistence and no watchdog: plain panic
    /// isolation with the default retry budget.
    #[must_use]
    pub fn in_memory() -> Self {
        Self::new(RunnerConfig {
            timeout: None,
            ..RunnerConfig::default()
        })
    }

    /// Cells that exhausted their retries, with the last error each.
    #[must_use]
    pub fn failures(&self) -> &[(String, RunError)] {
        &self.failures
    }

    /// Cells actually executed (not loaded from checkpoints).
    #[must_use]
    pub fn cells_executed(&self) -> u64 {
        self.executed
    }

    /// Cells satisfied from checkpoints.
    #[must_use]
    pub fn cells_resumed(&self) -> u64 {
        self.resumed
    }

    /// The checkpoint file a cell key maps to, if persistence is on.
    #[must_use]
    pub fn checkpoint_path(&self, key: &str) -> Option<PathBuf> {
        checkpoint_file(&self.cfg, key)
    }

    /// The failure-marker file a cell key maps to.
    #[must_use]
    pub fn failed_path(&self, key: &str) -> Option<PathBuf> {
        failed_file(&self.cfg, key)
    }

    /// The mid-run (partial) checkpoint file a cell key maps to.
    #[must_use]
    pub fn partial_path(&self, key: &str) -> Option<PathBuf> {
        partial_file(&self.cfg, key)
    }

    /// Watchdog-abandoned workers still running right now. Joins (and
    /// forgets) any that have finished since the last check.
    pub fn zombie_count(&mut self) -> usize {
        reap_zombie_list(&self.zombies)
    }

    /// Runs one sweep cell.
    ///
    /// With resume enabled and a checkpoint present, returns the
    /// checkpointed value without executing `work`. Otherwise runs
    /// `work` on a worker thread under `catch_unwind` and the
    /// configured watchdog, retrying with exponential backoff up to
    /// the retry budget. Success is checkpointed; exhaustion writes a
    /// `<key>.failed.json` marker, records the failure, and returns
    /// the final error.
    ///
    /// # Errors
    ///
    /// Returns the last [`RunError`] when every attempt failed.
    pub fn run_cell<T, F>(&mut self, key: &str, work: F) -> Result<T, RunError>
    where
        T: Serialize + DeserializeOwned + Send + 'static,
        F: Fn() -> T + Send + Sync + 'static,
    {
        self.run_cell_resumable(key, move |_| work())
    }

    /// Runs one sweep cell whose work can checkpoint mid-run.
    ///
    /// Like [`run_cell`](Self::run_cell), but `work` receives a
    /// [`CheckpointCell`] it may [`load`](CheckpointCell::load) on
    /// entry and [`store`](CheckpointCell::store) periodically. If an
    /// attempt dies (panic, watchdog timeout) the *retry* — in the same
    /// process or a later `--resume` run — picks up from the last
    /// stored state rather than from scratch. The partial checkpoint is
    /// cleared once the cell's final result is persisted, and survives
    /// a recorded failure so the next resume continues mid-cell.
    ///
    /// # Errors
    ///
    /// Returns the last [`RunError`] when every attempt failed.
    pub fn run_cell_resumable<T, F>(&mut self, key: &str, work: F) -> Result<T, RunError>
    where
        T: Serialize + DeserializeOwned + Send + 'static,
        F: Fn(&CheckpointCell) -> T + Send + Sync + 'static,
    {
        self.run_cell_report(key, work).outcome
    }

    /// Like [`run_cell_resumable`](Self::run_cell_resumable) but
    /// returns the full [`CellReport`], exposing the resume/attempt
    /// accounting a distributed worker needs (did this cell continue
    /// from a dead peer's orphaned partial checkpoint?) alongside the
    /// outcome.
    pub fn run_cell_report<T, F>(&mut self, key: &str, work: F) -> CellReport<T>
    where
        T: Serialize + DeserializeOwned + Send + 'static,
        F: Fn(&CheckpointCell) -> T + Send + Sync + 'static,
    {
        let report = execute_cell(&self.cfg, &self.zombies, key, Arc::new(work) as WorkFn<T>);
        self.executed += u64::from(report.attempts);
        if report.resumed {
            self.resumed += 1;
        }
        if let Err(e) = &report.outcome {
            self.failures.push((report.key.clone(), e.clone()));
        }
        report
    }
}

/// A sweep cell prepared for the [`Scheduler`]: a key plus the work
/// function, submitted in canonical order.
pub struct CellSpec<T> {
    key: String,
    work: WorkFn<T>,
}

impl<T> CellSpec<T> {
    /// Packages a cell. `work` receives the cell's [`CheckpointCell`]
    /// exactly as in [`Runner::run_cell_resumable`].
    #[must_use]
    pub fn new<F>(key: impl Into<String>, work: F) -> Self
    where
        F: Fn(&CheckpointCell) -> T + Send + Sync + 'static,
    {
        Self {
            key: key.into(),
            work: Arc::new(work),
        }
    }

    /// The cell key.
    #[must_use]
    pub fn key(&self) -> &str {
        &self.key
    }
}

impl<T> std::fmt::Debug for CellSpec<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CellSpec").field("key", &self.key).finish()
    }
}

/// An ordered group of sweep cells executed together as one batched
/// work unit (one attempt thread, one watchdog, shared retry budget),
/// typically backed by a `BatchSim` interleaving their pipeline legs.
///
/// Resume/retry/marker semantics stay per member — see
/// `execute_batch` — so the on-disk artifacts (final checkpoints,
/// partials, failure markers) and the merged report are byte-identical
/// to running the same cells through [`CellSpec`]s individually.
pub struct BatchSpec<T> {
    keys: Vec<String>,
    work: BatchWorkFn<T>,
}

impl<T> BatchSpec<T> {
    /// Packages a batch group. `work` is called with the indices (into
    /// `keys`) of the members that were not served from final
    /// checkpoints, plus every member's [`CheckpointCell`], and must
    /// return one value per requested index, in order.
    ///
    /// # Panics
    ///
    /// Panics if `keys` is empty.
    #[must_use]
    pub fn new<F>(keys: Vec<String>, work: F) -> Self
    where
        F: Fn(&[usize], &[CheckpointCell]) -> Vec<T> + Send + Sync + 'static,
    {
        assert!(!keys.is_empty(), "batch group needs at least one member");
        Self {
            keys,
            work: Arc::new(work),
        }
    }

    /// The member cell keys, in member order.
    #[must_use]
    pub fn keys(&self) -> &[String] {
        &self.keys
    }
}

impl<T> std::fmt::Debug for BatchSpec<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchSpec")
            .field("keys", &self.keys)
            .finish()
    }
}

/// Isolation + parallelism policy for a [`Scheduler`].
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Per-cell isolation and checkpointing (shared with [`Runner`]).
    pub runner: RunnerConfig,
    /// Worker threads. `0` means [`default_jobs`] (every core).
    pub jobs: usize,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        Self {
            runner: RunnerConfig::default(),
            jobs: 1,
        }
    }
}

impl SchedulerConfig {
    /// The CLI shape: `jobs` worker threads, resuming from `dir` when
    /// one is given and running without persistence — or a watchdog,
    /// since a one-shot run has no checkpoint to fall back on — when
    /// not. Shared by every `repro` subcommand that schedules cells,
    /// so spec-driven and hard-coded runs build byte-identical
    /// schedulers.
    #[must_use]
    pub fn for_run(jobs: usize, resume_dir: Option<&std::path::Path>) -> Self {
        Self {
            runner: resume_dir.map_or_else(
                || RunnerConfig {
                    timeout: None,
                    ..RunnerConfig::default()
                },
                RunnerConfig::resuming,
            ),
            jobs,
        }
    }
}

/// The merged result of a parallel sweep: one [`CellReport`] per
/// submitted cell, **in submission order** — byte-identical aggregate
/// output no matter how many workers ran it or in what order cells
/// finished.
#[derive(Debug)]
pub struct SweepReport<T> {
    /// Per-cell reports, in the order the cells were submitted.
    pub cells: Vec<CellReport<T>>,
}

impl<T> SweepReport<T> {
    /// Total in-process work-function executions (attempts), summed.
    #[must_use]
    pub fn executed(&self) -> u64 {
        self.cells.iter().map(|c| u64::from(c.attempts)).sum()
    }

    /// Cells served from final checkpoints without executing.
    #[must_use]
    pub fn resumed(&self) -> u64 {
        self.cells.iter().filter(|c| c.resumed).count() as u64
    }

    /// Total retries (attempts beyond each cell's first). Mid-cell
    /// checkpoint resumes do not count — see [`CellReport::retries`].
    #[must_use]
    pub fn retries(&self) -> u64 {
        self.cells.iter().map(|c| u64::from(c.retries())).sum()
    }

    /// Cells whose retry budget was exhausted, in submission order.
    #[must_use]
    pub fn failures(&self) -> Vec<(&str, &RunError)> {
        self.cells
            .iter()
            .filter_map(|c| c.outcome.as_ref().err().map(|e| (c.key.as_str(), e)))
            .collect()
    }

    /// Per-cell timing/accounting rows, in submission order.
    #[must_use]
    pub fn timings(&self) -> Vec<CellTiming> {
        self.cells.iter().map(CellReport::timing).collect()
    }
}

/// Bounded-concurrency parallel sweep scheduler.
///
/// Fans a canonical list of [`CellSpec`]s out across
/// [`jobs`](Self::jobs) coordinator threads pulling from a shared
/// atomic work queue. Each coordinator runs its claimed cell through
/// the same engine as [`Runner`] — per-cell watchdog, panic isolation
/// via a separate attempt thread, bounded retry with backoff, final
/// and mid-run ([`CheckpointCell`]) checkpoints — so `--jobs N` never
/// changes failure semantics, only wall-clock time.
///
/// # Determinism contract
///
/// * Reports are merged by submission index, never completion order.
/// * Checkpoint files are a pure function of the cell key.
/// * Cell work must seed any randomness from its own coordinates
///   (e.g. `faults::cell_seed`), never from scheduling state.
///
/// Under that contract the merged [`SweepReport`] — and anything
/// serialized from it except [`CellTiming::wall_s`] — is byte-stable
/// across `jobs = 1..=N` and across mid-sweep kills + resumes.
#[derive(Debug)]
pub struct Scheduler {
    cfg: SchedulerConfig,
    zombies: Zombies,
}

impl Scheduler {
    /// Builds a scheduler.
    #[must_use]
    pub fn new(cfg: SchedulerConfig) -> Self {
        Self {
            cfg,
            zombies: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// The effective worker count (`0` in the config resolves to
    /// [`default_jobs`]).
    #[must_use]
    pub fn jobs(&self) -> usize {
        if self.cfg.jobs == 0 {
            default_jobs()
        } else {
            self.cfg.jobs
        }
    }

    /// Watchdog-abandoned attempt threads still running; joins any
    /// that have finished since the last check.
    pub fn zombie_count(&mut self) -> usize {
        reap_zombie_list(&self.zombies)
    }

    /// Runs every cell and returns the deterministically merged
    /// report. Blocks until all coordinator threads have drained the
    /// queue and joined; only watchdog-abandoned attempt threads can
    /// outlive this call (tracked via [`zombie_count`](Self::zombie_count)).
    pub fn run_cells<T>(&mut self, cells: Vec<CellSpec<T>>) -> SweepReport<T>
    where
        T: Serialize + DeserializeOwned + Send + 'static,
    {
        let n = cells.len();
        let workers = self.jobs().clamp(1, n.max(1));
        let slots: Vec<Mutex<Option<CellReport<T>>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let cfg = &self.cfg.runner;
        let (cells_ref, slots_ref, next_ref) = (&cells, &slots, &next);
        thread::scope(|s| {
            for _ in 0..workers {
                let zombies = Arc::clone(&self.zombies);
                s.spawn(move || loop {
                    let i = next_ref.fetch_add(1, Ordering::SeqCst);
                    if i >= n {
                        break;
                    }
                    let spec = &cells_ref[i];
                    let report = execute_cell(cfg, &zombies, &spec.key, Arc::clone(&spec.work));
                    *slots_ref[i].lock().expect("result slot lock") = Some(report);
                });
            }
        });
        SweepReport {
            cells: slots
                .into_iter()
                .map(|m| {
                    m.into_inner()
                        .expect("result slot lock")
                        .expect("every submitted cell reports exactly once")
                })
                .collect(),
        }
    }

    /// Runs every batch group and returns the deterministically merged
    /// report, one [`CellReport`] per member cell, flattened in
    /// submission order (group by group, member by member). The same
    /// determinism contract as [`run_cells`](Self::run_cells) applies:
    /// the merged report is byte-stable across `jobs`, batch widths,
    /// and mid-sweep kills + resumes, because every on-disk artifact
    /// and result slot is keyed per member cell, never per group.
    pub fn run_batches<T>(&mut self, batches: Vec<BatchSpec<T>>) -> SweepReport<T>
    where
        T: Serialize + DeserializeOwned + Send + 'static,
    {
        let n = batches.len();
        let workers = self.jobs().clamp(1, n.max(1));
        let slots: Vec<Mutex<Option<Vec<CellReport<T>>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let cfg = &self.cfg.runner;
        let (batches_ref, slots_ref, next_ref) = (&batches, &slots, &next);
        thread::scope(|s| {
            for _ in 0..workers {
                let zombies = Arc::clone(&self.zombies);
                s.spawn(move || loop {
                    let i = next_ref.fetch_add(1, Ordering::SeqCst);
                    if i >= n {
                        break;
                    }
                    let reports = execute_batch(cfg, &zombies, &batches_ref[i]);
                    *slots_ref[i].lock().expect("result slot lock") = Some(reports);
                });
            }
        });
        SweepReport {
            cells: slots
                .into_iter()
                .flat_map(|m| {
                    m.into_inner()
                        .expect("result slot lock")
                        .expect("every submitted batch reports exactly once")
                })
                .collect(),
        }
    }
}

/// Maps a cell key to a filesystem-safe stem.
fn sanitize(key: &str) -> String {
    key.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' || c == '.' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Renders a panic payload (the `&str`/`String` cases panics actually
/// carry) into text.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitize_keeps_safe_chars_and_replaces_the_rest() {
        assert_eq!(sanitize("faults/gcc r=1e-4"), "faults_gcc_r_1e-4");
        assert_eq!(sanitize("table3"), "table3");
    }

    #[test]
    fn retry_backoff_is_exponential_and_deterministically_jittered() {
        let plain = RunnerConfig {
            backoff: Duration::from_millis(100),
            ..RunnerConfig::default()
        };
        // jitter = 0.0 (default) reproduces the exact historical schedule.
        assert_eq!(retry_backoff(&plain, "k", 1), Duration::from_millis(100));
        assert_eq!(retry_backoff(&plain, "k", 2), Duration::from_millis(200));
        assert_eq!(retry_backoff(&plain, "k", 3), Duration::from_millis(400));

        let jittered = RunnerConfig {
            jitter: 0.5,
            ..plain.clone()
        };
        for attempt in 1..=3 {
            let base = plain.backoff * (1 << (attempt - 1));
            let d = retry_backoff(&jittered, "cell-a", attempt);
            // Stretch only, bounded by the jitter fraction...
            assert!(
                d >= base && d <= base.mul_f64(1.5),
                "attempt {attempt}: {d:?}"
            );
            // ...and a pure function of (key, attempt).
            assert_eq!(d, retry_backoff(&jittered, "cell-a", attempt));
        }
        // Distinct keys land at distinct offsets (decorrelated retries).
        let offsets: Vec<Duration> = ["cell-a", "cell-b", "cell-c", "cell-d"]
            .iter()
            .map(|k| retry_backoff(&jittered, k, 1))
            .collect();
        assert!(offsets.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn run_error_display_and_json_round_trip() {
        let variants = [
            RunError::Timeout { seconds: 1.5 },
            RunError::Panic {
                message: "boom".to_owned(),
            },
            RunError::Io {
                message: "disk full".to_owned(),
            },
            RunError::Invariant {
                message: "ROB overflow".to_owned(),
            },
        ];
        for e in &variants {
            let text = serde_json::to_string(e).unwrap();
            let back: RunError = serde_json::from_str(&text).unwrap();
            assert_eq!(&back, e);
        }
        assert_eq!(variants[0].to_string(), "timed out after 1.5s");
        assert_eq!(variants[1].to_string(), "panicked: boom");
        assert_eq!(variants[2].to_string(), "i/o error: disk full");
        assert_eq!(variants[3].to_string(), "invariant violated: ROB overflow");
    }

    #[test]
    fn sim_error_converts_to_invariant() {
        let e: RunError = perconf_pipeline::SimError::RobOverflow { len: 9, cap: 8 }.into();
        assert!(matches!(e, RunError::Invariant { .. }));
        assert!(e.to_string().contains("ROB overflow"));
    }

    #[test]
    fn in_memory_runner_isolates_panics_and_retries() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let mut r = Runner::new(RunnerConfig {
            timeout: None,
            retries: 2,
            backoff: Duration::from_millis(1),
            ..RunnerConfig::default()
        });
        let calls = Arc::new(AtomicU32::new(0));
        let c = Arc::clone(&calls);
        // Fails twice, then succeeds on the third attempt.
        let out = r.run_cell("flaky", move || {
            if c.fetch_add(1, Ordering::SeqCst) < 2 {
                panic!("transient");
            }
            7u32
        });
        assert_eq!(out.unwrap(), 7);
        assert_eq!(calls.load(Ordering::SeqCst), 3);
        assert!(r.failures().is_empty());
        assert_eq!(r.cells_executed(), 3);
    }

    #[test]
    fn exhausted_retries_record_the_failure() {
        let mut r = Runner::new(RunnerConfig {
            timeout: None,
            retries: 1,
            backoff: Duration::from_millis(1),
            ..RunnerConfig::default()
        });
        let out: Result<u32, RunError> = r.run_cell("doomed", || panic!("always"));
        let err = out.unwrap_err();
        assert_eq!(
            err,
            RunError::Panic {
                message: "always".to_owned()
            }
        );
        assert_eq!(r.failures().len(), 1);
        assert_eq!(r.failures()[0].0, "doomed");
    }

    #[test]
    fn watchdog_times_out_hung_cells() {
        let mut r = Runner::new(RunnerConfig {
            timeout: Some(Duration::from_millis(50)),
            retries: 0,
            backoff: Duration::from_millis(1),
            ..RunnerConfig::default()
        });
        let out: Result<u32, RunError> = r.run_cell("hung", || loop {
            thread::sleep(Duration::from_millis(20));
        });
        assert!(matches!(out.unwrap_err(), RunError::Timeout { .. }));
    }

    #[test]
    fn timed_out_workers_are_reaped_once_they_finish() {
        let mut r = Runner::new(RunnerConfig {
            timeout: Some(Duration::from_millis(20)),
            retries: 0,
            backoff: Duration::from_millis(1),
            ..RunnerConfig::default()
        });
        // Outlives its watchdog but terminates on its own.
        let out: Result<u32, RunError> = r.run_cell("slow", || {
            thread::sleep(Duration::from_millis(120));
            1
        });
        assert!(matches!(out.unwrap_err(), RunError::Timeout { .. }));
        assert_eq!(r.zombie_count(), 1, "abandoned worker is tracked");
        // Once the stray worker exits, the next check joins it.
        thread::sleep(Duration::from_millis(250));
        assert_eq!(r.zombie_count(), 0, "finished worker is reaped");
    }

    fn fresh_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("perconf-runner-unit-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn retry_resumes_from_the_mid_cell_checkpoint() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let dir = fresh_dir("midcell");
        let mut r = Runner::new(RunnerConfig {
            retries: 1,
            backoff: Duration::from_millis(1),
            timeout: None,
            ..RunnerConfig::resuming(&dir)
        });
        let steps = Arc::new(AtomicU32::new(0));
        let attempts = Arc::new(AtomicU32::new(0));
        let (s, a) = (Arc::clone(&steps), Arc::clone(&attempts));
        // Counts to 10 in checkpointed steps; the first attempt dies
        // at 5. The retry must start from 5, not 0.
        let out = r.run_cell_resumable("counter", move |cell| {
            let first = a.fetch_add(1, Ordering::SeqCst) == 0;
            // JSON round-trips non-negative integers as `Int`.
            let mut n = match cell.load() {
                Some(Value::UInt(n)) => n,
                Some(Value::Int(n)) if n >= 0 => n as u64,
                _ => 0,
            };
            while n < 10 {
                n += 1;
                s.fetch_add(1, Ordering::SeqCst);
                cell.store(&Value::UInt(n));
                if first && n == 5 {
                    panic!("injected mid-cell death");
                }
            }
            n
        });
        assert_eq!(out.unwrap(), 10);
        assert_eq!(
            steps.load(Ordering::SeqCst),
            10,
            "5 steps before the death + 5 after resuming, no redone work"
        );
        // Success cleared the partial checkpoint alongside the final one.
        assert!(!r.partial_path("counter").unwrap().exists());
        assert!(r.checkpoint_path("counter").unwrap().is_file());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_partial_checkpoint_falls_back_to_scratch() {
        let dir = fresh_dir("corrupt-partial");
        std::fs::create_dir_all(&dir).unwrap();
        let mut r = Runner::new(RunnerConfig {
            retries: 0,
            timeout: None,
            ..RunnerConfig::resuming(&dir)
        });
        // Plant garbage where the partial checkpoint would live.
        std::fs::write(r.partial_path("cell").unwrap(), b"PSNAPxxx not a snapshot").unwrap();
        let out = r.run_cell_resumable("cell", |cell| {
            // The corrupt file must not surface as state.
            assert!(cell.load().is_none(), "corrupt partial must be discarded");
            42u32
        });
        assert_eq!(out.unwrap(), 42);
        assert!(!r.partial_path("cell").unwrap().exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fresh_run_ignores_stale_partial_state() {
        let dir = fresh_dir("stale-partial");
        std::fs::create_dir_all(&dir).unwrap();
        // resume = false: a leftover partial from some earlier sweep
        // must be cleared, not consumed.
        let mut r = Runner::new(RunnerConfig {
            checkpoint_dir: Some(dir.clone()),
            resume: false,
            retries: 0,
            timeout: None,
            ..RunnerConfig::default()
        });
        snapfile::write(&r.partial_path("cell").unwrap(), &Value::UInt(999)).unwrap();
        let out = r.run_cell_resumable("cell", |cell| match cell.load() {
            Some(Value::UInt(n)) => n,
            Some(Value::Int(n)) if n >= 0 => n as u64,
            _ => 0u64,
        });
        assert_eq!(out.unwrap(), 0, "stale partial state must not leak in");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disabled_checkpoint_cell_is_inert() {
        let cell = CheckpointCell::disabled();
        assert!(cell.load().is_none());
        cell.store(&Value::UInt(7));
        cell.clear();
        assert!(cell.path().is_none());
    }

    #[test]
    fn scheduler_merges_in_submission_order_regardless_of_jobs() {
        for jobs in [1usize, 2, 7] {
            let mut s = Scheduler::new(SchedulerConfig {
                runner: RunnerConfig {
                    timeout: None,
                    retries: 0,
                    ..RunnerConfig::default()
                },
                jobs,
            });
            let cells: Vec<CellSpec<u64>> = (0..20u64)
                .map(|i| {
                    CellSpec::new(format!("cell-{i:02}"), move |_| {
                        // Stagger finish times so completion order and
                        // submission order genuinely differ.
                        thread::sleep(Duration::from_millis((20 - i) % 5));
                        i * 10
                    })
                })
                .collect();
            let report = s.run_cells(cells);
            assert_eq!(report.cells.len(), 20);
            for (i, c) in report.cells.iter().enumerate() {
                assert_eq!(c.key, format!("cell-{i:02}"), "jobs={jobs}");
                assert_eq!(*c.outcome.as_ref().unwrap(), i as u64 * 10);
            }
            assert_eq!(report.executed(), 20);
            assert_eq!(report.retries(), 0);
            assert!(report.failures().is_empty());
        }
    }

    #[test]
    fn scheduler_isolates_failures_per_cell() {
        let mut s = Scheduler::new(SchedulerConfig {
            runner: RunnerConfig {
                timeout: None,
                retries: 1,
                backoff: Duration::from_millis(1),
                ..RunnerConfig::default()
            },
            jobs: 4,
        });
        let cells: Vec<CellSpec<u32>> = (0..8u32)
            .map(|i| {
                CellSpec::new(format!("c{i}"), move |_| {
                    assert!(i % 3 != 0, "injected failure in c{i}");
                    i
                })
            })
            .collect();
        let report = s.run_cells(cells);
        let failed: Vec<&str> = report.failures().iter().map(|(k, _)| *k).collect();
        assert_eq!(
            failed,
            ["c0", "c3", "c6"],
            "canonical order, only the poisoned cells"
        );
        // Each failing cell burned 1 retry; the healthy ones none.
        assert_eq!(report.retries(), 3);
        assert_eq!(report.executed(), 5 + 3 * 2);
    }

    #[test]
    fn resume_from_partial_checkpoint_is_not_a_retry() {
        // Regression: a cell continuing from a `.part.psnap` mid-run
        // checkpoint (e.g. after a mid-sweep kill) must report 0
        // retries — the resume is not a re-execution, and aggregate
        // stats must not double-count it.
        let dir = fresh_dir("sched-partial");
        std::fs::create_dir_all(&dir).unwrap();
        let cfg = RunnerConfig {
            retries: 2,
            timeout: None,
            backoff: Duration::from_millis(1),
            ..RunnerConfig::resuming(&dir)
        };
        // Plant the mid-cell state a killed run would have left.
        snapfile::write(&partial_file(&cfg, "cell").unwrap(), &Value::UInt(5)).unwrap();
        let mut s = Scheduler::new(SchedulerConfig {
            runner: cfg,
            jobs: 2,
        });
        let report = s.run_cells(vec![CellSpec::new("cell", |cell: &CheckpointCell| {
            let n = match cell.load() {
                Some(Value::UInt(n)) => n,
                Some(Value::Int(n)) if n >= 0 => n as u64,
                _ => 0,
            };
            assert_eq!(n, 5, "must continue from the planted mid-cell state");
            n + 5
        })]);
        let c = &report.cells[0];
        assert_eq!(*c.outcome.as_ref().unwrap(), 10);
        assert!(c.resumed_mid_cell);
        assert!(!c.resumed);
        assert_eq!(c.attempts, 1);
        assert_eq!(c.retries(), 0, "mid-cell resume must not count as a retry");
        assert_eq!(report.retries(), 0);
        assert_eq!(report.executed(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn in_process_mid_cell_resume_counts_the_retry_exactly_once() {
        // First attempt checkpoints progress then dies; the in-process
        // retry continues from the partial state. That is exactly one
        // retry — not two (resume + retry double-count).
        use std::sync::atomic::AtomicU32;
        let dir = fresh_dir("sched-retry-once");
        let mut s = Scheduler::new(SchedulerConfig {
            runner: RunnerConfig {
                retries: 2,
                timeout: None,
                backoff: Duration::from_millis(1),
                ..RunnerConfig::resuming(&dir)
            },
            jobs: 1,
        });
        let attempts = Arc::new(AtomicU32::new(0));
        let a = Arc::clone(&attempts);
        let report = s.run_cells(vec![CellSpec::new("cell", move |cell: &CheckpointCell| {
            let first = a.fetch_add(1, Ordering::SeqCst) == 0;
            let mut n = match cell.load() {
                Some(Value::UInt(n)) => n,
                Some(Value::Int(n)) if n >= 0 => n as u64,
                _ => 0,
            };
            while n < 10 {
                n += 1;
                cell.store(&Value::UInt(n));
                if first && n == 6 {
                    panic!("injected mid-cell death");
                }
            }
            n
        })]);
        let c = &report.cells[0];
        assert_eq!(*c.outcome.as_ref().unwrap(), 10);
        assert_eq!(c.attempts, 2);
        assert_eq!(c.retries(), 1, "one death, one retry — no double count");
        assert_eq!(report.retries(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn scheduler_resumes_final_checkpoints_without_executing() {
        let dir = fresh_dir("sched-resume");
        let mk = || {
            Scheduler::new(SchedulerConfig {
                runner: RunnerConfig {
                    retries: 0,
                    timeout: None,
                    ..RunnerConfig::resuming(&dir)
                },
                jobs: 3,
            })
        };
        let cells = |calls: &Arc<std::sync::atomic::AtomicU32>| -> Vec<CellSpec<u64>> {
            (0..6u64)
                .map(|i| {
                    let c = Arc::clone(calls);
                    CellSpec::new(format!("k{i}"), move |_| {
                        c.fetch_add(1, Ordering::SeqCst);
                        i
                    })
                })
                .collect()
        };
        let calls = Arc::new(std::sync::atomic::AtomicU32::new(0));
        let first = mk().run_cells(cells(&calls));
        assert_eq!(first.executed(), 6);
        assert_eq!(calls.load(Ordering::SeqCst), 6);

        let calls = Arc::new(std::sync::atomic::AtomicU32::new(0));
        let second = mk().run_cells(cells(&calls));
        assert_eq!(
            calls.load(Ordering::SeqCst),
            0,
            "all cells come from checkpoints"
        );
        assert_eq!(second.resumed(), 6);
        assert_eq!(second.executed(), 0);
        for (i, c) in second.cells.iter().enumerate() {
            assert_eq!(*c.outcome.as_ref().unwrap(), i as u64);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
        let s = Scheduler::new(SchedulerConfig {
            runner: RunnerConfig::default(),
            jobs: 0,
        });
        assert_eq!(s.jobs(), default_jobs());
    }

    #[test]
    fn cell_timing_reflects_the_report() {
        let mut s = Scheduler::new(SchedulerConfig {
            runner: RunnerConfig {
                timeout: None,
                retries: 1,
                backoff: Duration::from_millis(1),
                ..RunnerConfig::default()
            },
            jobs: 2,
        });
        let report = s.run_cells(vec![
            CellSpec::new("ok", |_| 1u32),
            CellSpec::new("bad", |_| -> u32 { panic!("always") }),
        ]);
        let t = report.timings();
        assert_eq!(t.len(), 2);
        assert!(t[0].ok && t[0].retries == 0);
        assert!(!t[1].ok && t[1].retries == 1 && t[1].attempts == 2);
        // Timing rows survive the JSON round trip (they are published
        // as build artifacts).
        let text = serde_json::to_string(&t).unwrap();
        let back: Vec<CellTiming> = serde_json::from_str(&text).unwrap();
        assert_eq!(back, t);
    }
}
