//! Panic-isolated, watchdogged, resumable sweep runner.
//!
//! Large sweeps ((benchmark × estimator × config) grids) used to be
//! all-or-nothing: one panicking or hanging cell killed hours of
//! finished work. [`Runner`] executes each cell on a worker thread
//! under `catch_unwind` with a watchdog timeout and bounded
//! retry-with-backoff; completed cells are checkpointed as JSON so a
//! rerun with `resume` enabled skips everything already done and only
//! re-executes cells that failed (their `*.failed.json` markers are
//! cleared on resume).
//!
//! A failed cell produces a [`RunError`] value — the sweep continues
//! and the driver reports which cells are missing rather than dying.

use serde::{Deserialize, DeserializeOwned, Serialize};
use std::panic::{self, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::Duration;

/// Why a sweep cell failed, after exhausting its retry budget.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RunError {
    /// The cell's code panicked; the payload message is preserved.
    Panic {
        /// Panic payload rendered to text.
        message: String,
    },
    /// The watchdog expired before the cell finished.
    Timeout {
        /// Configured timeout that elapsed, in seconds.
        seconds: f64,
    },
    /// Checkpoint or marker I/O failed.
    Io {
        /// The underlying I/O error, rendered.
        message: String,
    },
    /// A simulator invariant surfaced as a recoverable error
    /// (see `perconf_pipeline::SimError`).
    Invariant {
        /// The invariant violation, rendered.
        message: String,
    },
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Panic { message } => write!(f, "panicked: {message}"),
            RunError::Timeout { seconds } => write!(f, "timed out after {seconds}s"),
            RunError::Io { message } => write!(f, "i/o error: {message}"),
            RunError::Invariant { message } => write!(f, "invariant violated: {message}"),
        }
    }
}

impl std::error::Error for RunError {}

impl From<std::io::Error> for RunError {
    fn from(e: std::io::Error) -> Self {
        RunError::Io {
            message: e.to_string(),
        }
    }
}

impl From<perconf_pipeline::SimError> for RunError {
    fn from(e: perconf_pipeline::SimError) -> Self {
        RunError::Invariant {
            message: e.to_string(),
        }
    }
}

/// Isolation and checkpointing policy for a [`Runner`].
#[derive(Debug, Clone)]
pub struct RunnerConfig {
    /// Directory for per-cell checkpoints and failure markers. `None`
    /// disables persistence (cells still get isolation and retries).
    pub checkpoint_dir: Option<PathBuf>,
    /// When `true`, cells whose checkpoint already exists are loaded
    /// instead of re-executed, and stale failure markers are cleared
    /// so failed cells run again.
    pub resume: bool,
    /// Watchdog: maximum wall-clock time one attempt may take. `None`
    /// waits forever. On expiry the worker thread is abandoned (it
    /// cannot be killed safely) and the attempt counts as failed.
    pub timeout: Option<Duration>,
    /// Extra attempts after the first failure.
    pub retries: u32,
    /// Sleep before retry `n` is `backoff << (n - 1)` (exponential).
    pub backoff: Duration,
}

impl Default for RunnerConfig {
    fn default() -> Self {
        Self {
            checkpoint_dir: None,
            resume: false,
            timeout: Some(Duration::from_secs(600)),
            retries: 1,
            backoff: Duration::from_millis(200),
        }
    }
}

impl RunnerConfig {
    /// Checkpoint into (and resume from) `dir` with default isolation
    /// settings.
    #[must_use]
    pub fn resuming<P: Into<PathBuf>>(dir: P) -> Self {
        Self {
            checkpoint_dir: Some(dir.into()),
            resume: true,
            ..Self::default()
        }
    }
}

/// Executes sweep cells with panic isolation, a watchdog, retries and
/// JSON checkpointing. See the module docs.
#[derive(Debug)]
pub struct Runner {
    cfg: RunnerConfig,
    failures: Vec<(String, RunError)>,
    executed: u64,
    resumed: u64,
}

impl Runner {
    /// Builds a runner. The checkpoint directory is created lazily on
    /// first use.
    #[must_use]
    pub fn new(cfg: RunnerConfig) -> Self {
        Self {
            cfg,
            failures: Vec::new(),
            executed: 0,
            resumed: 0,
        }
    }

    /// A runner with no persistence and no watchdog: plain panic
    /// isolation with the default retry budget.
    #[must_use]
    pub fn in_memory() -> Self {
        Self::new(RunnerConfig {
            timeout: None,
            ..RunnerConfig::default()
        })
    }

    /// Cells that exhausted their retries, with the last error each.
    #[must_use]
    pub fn failures(&self) -> &[(String, RunError)] {
        &self.failures
    }

    /// Cells actually executed (not loaded from checkpoints).
    #[must_use]
    pub fn cells_executed(&self) -> u64 {
        self.executed
    }

    /// Cells satisfied from checkpoints.
    #[must_use]
    pub fn cells_resumed(&self) -> u64 {
        self.resumed
    }

    /// The checkpoint file a cell key maps to, if persistence is on.
    #[must_use]
    pub fn checkpoint_path(&self, key: &str) -> Option<PathBuf> {
        self.cfg
            .checkpoint_dir
            .as_ref()
            .map(|d| d.join(format!("{}.json", sanitize(key))))
    }

    /// The failure-marker file a cell key maps to.
    #[must_use]
    pub fn failed_path(&self, key: &str) -> Option<PathBuf> {
        self.cfg
            .checkpoint_dir
            .as_ref()
            .map(|d| d.join(format!("{}.failed.json", sanitize(key))))
    }

    /// Runs one sweep cell.
    ///
    /// With resume enabled and a checkpoint present, returns the
    /// checkpointed value without executing `work`. Otherwise runs
    /// `work` on a worker thread under `catch_unwind` and the
    /// configured watchdog, retrying with exponential backoff up to
    /// the retry budget. Success is checkpointed; exhaustion writes a
    /// `<key>.failed.json` marker, records the failure, and returns
    /// the final error.
    ///
    /// # Errors
    ///
    /// Returns the last [`RunError`] when every attempt failed.
    pub fn run_cell<T, F>(&mut self, key: &str, work: F) -> Result<T, RunError>
    where
        T: Serialize + DeserializeOwned + Send + 'static,
        F: Fn() -> T + Send + Sync + 'static,
    {
        if self.cfg.resume {
            if let Some(v) = self.load_checkpoint(key) {
                self.resumed += 1;
                return Ok(v);
            }
            // A stale failure marker means this cell is being retried.
            if let Some(p) = self.failed_path(key) {
                let _ = std::fs::remove_file(p);
            }
        }
        let work = Arc::new(work);
        let mut last = RunError::Panic {
            message: "cell never ran".to_owned(),
        };
        for attempt in 0..=self.cfg.retries {
            if attempt > 0 {
                thread::sleep(self.cfg.backoff * (1 << (attempt - 1)));
            }
            self.executed += 1;
            match self.attempt(Arc::clone(&work)) {
                Ok(v) => {
                    if let Err(e) = self.write_checkpoint(key, &v) {
                        eprintln!("warning: cell {key}: {e}");
                    }
                    return Ok(v);
                }
                Err(e) => {
                    eprintln!("warning: cell {key} attempt {attempt}: {e}");
                    last = e;
                }
            }
        }
        self.mark_failed(key, &last);
        self.failures.push((key.to_owned(), last.clone()));
        Err(last)
    }

    /// One isolated attempt: worker thread + catch_unwind + watchdog.
    fn attempt<T, F>(&self, work: Arc<F>) -> Result<T, RunError>
    where
        T: Send + 'static,
        F: Fn() -> T + Send + Sync + 'static,
    {
        let (tx, rx) = mpsc::channel();
        let handle = thread::Builder::new()
            .name("sweep-cell".to_owned())
            .spawn(move || {
                let result = panic::catch_unwind(AssertUnwindSafe(|| work()));
                // Receiver gone = watchdog already gave up on us.
                let _ = tx.send(result);
            })
            .map_err(|e| RunError::Io {
                message: format!("cannot spawn worker: {e}"),
            })?;
        let outcome = match self.cfg.timeout {
            Some(t) => match rx.recv_timeout(t) {
                Ok(r) => r,
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    // The worker cannot be killed; it is abandoned and
                    // will exit (detached) whenever its cell returns.
                    return Err(RunError::Timeout {
                        seconds: t.as_secs_f64(),
                    });
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    Err(Box::new(String::from("worker vanished without reporting"))
                        as Box<dyn std::any::Any + Send>)
                }
            },
            None => {
                let r = rx.recv().unwrap_or_else(|_| {
                    Err(Box::new(String::from("worker vanished without reporting"))
                        as Box<dyn std::any::Any + Send>)
                });
                let _ = handle.join();
                r
            }
        };
        outcome.map_err(|payload| RunError::Panic {
            message: panic_message(payload.as_ref()),
        })
    }

    fn load_checkpoint<T: DeserializeOwned>(&mut self, key: &str) -> Option<T> {
        let path = self.checkpoint_path(key)?;
        let text = std::fs::read_to_string(&path).ok()?;
        match serde_json::from_str(&text) {
            Ok(v) => Some(v),
            Err(e) => {
                // Corrupt checkpoint: drop it and recompute the cell.
                eprintln!(
                    "warning: discarding unreadable checkpoint {}: {e}",
                    path.display()
                );
                let _ = std::fs::remove_file(&path);
                None
            }
        }
    }

    fn write_checkpoint<T: Serialize>(&self, key: &str, value: &T) -> Result<(), RunError> {
        let Some(path) = self.checkpoint_path(key) else {
            return Ok(());
        };
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let text = serde_json::to_string_pretty(value).map_err(|e| RunError::Io {
            message: format!("cannot serialize checkpoint: {e}"),
        })?;
        std::fs::write(&path, text)?;
        Ok(())
    }

    fn mark_failed(&self, key: &str, err: &RunError) {
        let Some(path) = self.failed_path(key) else {
            return;
        };
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        if let Ok(text) = serde_json::to_string_pretty(err) {
            if let Err(e) = std::fs::write(&path, text) {
                eprintln!("warning: cannot write failure marker for {key}: {e}");
            }
        }
    }
}

/// Maps a cell key to a filesystem-safe stem.
fn sanitize(key: &str) -> String {
    key.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' || c == '.' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Renders a panic payload (the `&str`/`String` cases panics actually
/// carry) into text.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitize_keeps_safe_chars_and_replaces_the_rest() {
        assert_eq!(sanitize("faults/gcc r=1e-4"), "faults_gcc_r_1e-4");
        assert_eq!(sanitize("table3"), "table3");
    }

    #[test]
    fn run_error_display_and_json_round_trip() {
        let e = RunError::Timeout { seconds: 1.5 };
        assert_eq!(e.to_string(), "timed out after 1.5s");
        let text = serde_json::to_string(&e).unwrap();
        let back: RunError = serde_json::from_str(&text).unwrap();
        assert_eq!(back, e);
        let p = RunError::Panic {
            message: "boom".to_owned(),
        };
        assert_eq!(p.to_string(), "panicked: boom");
    }

    #[test]
    fn sim_error_converts_to_invariant() {
        let e: RunError = perconf_pipeline::SimError::RobOverflow { len: 9, cap: 8 }.into();
        assert!(matches!(e, RunError::Invariant { .. }));
        assert!(e.to_string().contains("ROB overflow"));
    }

    #[test]
    fn in_memory_runner_isolates_panics_and_retries() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let mut r = Runner::new(RunnerConfig {
            timeout: None,
            retries: 2,
            backoff: Duration::from_millis(1),
            ..RunnerConfig::default()
        });
        let calls = Arc::new(AtomicU32::new(0));
        let c = Arc::clone(&calls);
        // Fails twice, then succeeds on the third attempt.
        let out = r.run_cell("flaky", move || {
            if c.fetch_add(1, Ordering::SeqCst) < 2 {
                panic!("transient");
            }
            7u32
        });
        assert_eq!(out.unwrap(), 7);
        assert_eq!(calls.load(Ordering::SeqCst), 3);
        assert!(r.failures().is_empty());
        assert_eq!(r.cells_executed(), 3);
    }

    #[test]
    fn exhausted_retries_record_the_failure() {
        let mut r = Runner::new(RunnerConfig {
            timeout: None,
            retries: 1,
            backoff: Duration::from_millis(1),
            ..RunnerConfig::default()
        });
        let out: Result<u32, RunError> = r.run_cell("doomed", || panic!("always"));
        let err = out.unwrap_err();
        assert_eq!(
            err,
            RunError::Panic {
                message: "always".to_owned()
            }
        );
        assert_eq!(r.failures().len(), 1);
        assert_eq!(r.failures()[0].0, "doomed");
    }

    #[test]
    fn watchdog_times_out_hung_cells() {
        let mut r = Runner::new(RunnerConfig {
            timeout: Some(Duration::from_millis(50)),
            retries: 0,
            backoff: Duration::from_millis(1),
            ..RunnerConfig::default()
        });
        let out: Result<u32, RunError> = r.run_cell("hung", || loop {
            thread::sleep(Duration::from_millis(20));
        });
        assert!(matches!(out.unwrap_err(), RunError::Timeout { .. }));
    }
}
