//! Panic-isolated, watchdogged, resumable sweep runner.
//!
//! Large sweeps ((benchmark × estimator × config) grids) used to be
//! all-or-nothing: one panicking or hanging cell killed hours of
//! finished work. [`Runner`] executes each cell on a worker thread
//! under `catch_unwind` with a watchdog timeout and bounded
//! retry-with-backoff; completed cells are checkpointed as JSON so a
//! rerun with `resume` enabled skips everything already done and only
//! re-executes cells that failed (their `*.failed.json` markers are
//! cleared on resume).
//!
//! A failed cell produces a [`RunError`] value — the sweep continues
//! and the driver reports which cells are missing rather than dying.

use crate::snapfile;
use serde::{Deserialize, DeserializeOwned, Serialize, Value};
use std::panic::{self, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::Duration;

/// Why a sweep cell failed, after exhausting its retry budget.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RunError {
    /// The cell's code panicked; the payload message is preserved.
    Panic {
        /// Panic payload rendered to text.
        message: String,
    },
    /// The watchdog expired before the cell finished.
    Timeout {
        /// Configured timeout that elapsed, in seconds.
        seconds: f64,
    },
    /// Checkpoint or marker I/O failed.
    Io {
        /// The underlying I/O error, rendered.
        message: String,
    },
    /// A simulator invariant surfaced as a recoverable error
    /// (see `perconf_pipeline::SimError`).
    Invariant {
        /// The invariant violation, rendered.
        message: String,
    },
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Panic { message } => write!(f, "panicked: {message}"),
            RunError::Timeout { seconds } => write!(f, "timed out after {seconds}s"),
            RunError::Io { message } => write!(f, "i/o error: {message}"),
            RunError::Invariant { message } => write!(f, "invariant violated: {message}"),
        }
    }
}

impl std::error::Error for RunError {}

impl From<std::io::Error> for RunError {
    fn from(e: std::io::Error) -> Self {
        RunError::Io {
            message: e.to_string(),
        }
    }
}

impl From<perconf_pipeline::SimError> for RunError {
    fn from(e: perconf_pipeline::SimError) -> Self {
        RunError::Invariant {
            message: e.to_string(),
        }
    }
}

/// Isolation and checkpointing policy for a [`Runner`].
#[derive(Debug, Clone)]
pub struct RunnerConfig {
    /// Directory for per-cell checkpoints and failure markers. `None`
    /// disables persistence (cells still get isolation and retries).
    pub checkpoint_dir: Option<PathBuf>,
    /// When `true`, cells whose checkpoint already exists are loaded
    /// instead of re-executed, and stale failure markers are cleared
    /// so failed cells run again.
    pub resume: bool,
    /// Watchdog: maximum wall-clock time one attempt may take. `None`
    /// waits forever. On expiry the worker thread is abandoned (it
    /// cannot be killed safely) and the attempt counts as failed.
    pub timeout: Option<Duration>,
    /// Extra attempts after the first failure.
    pub retries: u32,
    /// Sleep before retry `n` is `backoff << (n - 1)` (exponential).
    pub backoff: Duration,
}

impl Default for RunnerConfig {
    fn default() -> Self {
        Self {
            checkpoint_dir: None,
            resume: false,
            timeout: Some(Duration::from_secs(600)),
            retries: 1,
            backoff: Duration::from_millis(200),
        }
    }
}

impl RunnerConfig {
    /// Checkpoint into (and resume from) `dir` with default isolation
    /// settings.
    #[must_use]
    pub fn resuming<P: Into<PathBuf>>(dir: P) -> Self {
        Self {
            checkpoint_dir: Some(dir.into()),
            resume: true,
            ..Self::default()
        }
    }
}

/// A handle through which a sweep cell persists mid-run state, so an
/// interrupted (timed-out, panicked, killed) cell can resume from its
/// last in-flight checkpoint instead of from scratch.
///
/// The handle is inert when the owning [`Runner`] has no checkpoint
/// directory: [`load`](Self::load) returns `None` and
/// [`store`](Self::store) is a no-op, so cell code can checkpoint
/// unconditionally. State travels through the versioned, checksummed
/// [`snapfile`] container; a corrupt or truncated partial checkpoint
/// is discarded (with a warning naming the reason) and the cell reruns
/// from scratch — never deserialized into nonsense.
#[derive(Debug, Clone)]
pub struct CheckpointCell {
    path: Option<PathBuf>,
}

impl CheckpointCell {
    /// A handle that never persists anything (no checkpoint dir).
    #[must_use]
    pub fn disabled() -> Self {
        Self { path: None }
    }

    /// A handle writing to (and resuming from) `path`.
    #[must_use]
    pub fn at<P: Into<PathBuf>>(path: P) -> Self {
        Self {
            path: Some(path.into()),
        }
    }

    /// Where the partial checkpoint lives, if persistence is on.
    #[must_use]
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    /// Loads the last stored mid-run state. `None` when persistence is
    /// off, nothing was stored yet, or the stored file fails its
    /// integrity checks (in which case it is deleted and the caller
    /// starts from scratch).
    #[must_use]
    pub fn load(&self) -> Option<Value> {
        let path = self.path.as_ref()?;
        if !path.exists() {
            return None;
        }
        match snapfile::read(path) {
            Ok(v) => Some(v),
            Err(e) => {
                eprintln!(
                    "warning: discarding unusable partial checkpoint {}: {e}",
                    path.display()
                );
                let _ = std::fs::remove_file(path);
                None
            }
        }
    }

    /// Stores mid-run state, replacing any previous store atomically.
    /// Best-effort: an I/O failure warns and continues (losing a
    /// checkpoint must never kill the run it exists to protect).
    pub fn store(&self, state: &Value) {
        let Some(path) = &self.path else { return };
        if let Err(e) = snapfile::write(path, state) {
            eprintln!(
                "warning: cannot write partial checkpoint {}: {e}",
                path.display()
            );
        }
    }

    /// Removes the partial checkpoint (called after the cell finishes
    /// and its *final* result is persisted).
    pub fn clear(&self) {
        if let Some(path) = &self.path {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// Executes sweep cells with panic isolation, a watchdog, retries and
/// JSON checkpointing. See the module docs.
#[derive(Debug)]
pub struct Runner {
    cfg: RunnerConfig,
    failures: Vec<(String, RunError)>,
    executed: u64,
    resumed: u64,
    /// Workers abandoned by the watchdog. They cannot be killed, but
    /// they are *kept* (not leaked detached) and joined as soon as
    /// they finish, bounding the number of live stray threads.
    zombies: Vec<thread::JoinHandle<()>>,
}

impl Runner {
    /// Builds a runner. The checkpoint directory is created lazily on
    /// first use.
    #[must_use]
    pub fn new(cfg: RunnerConfig) -> Self {
        Self {
            cfg,
            failures: Vec::new(),
            executed: 0,
            resumed: 0,
            zombies: Vec::new(),
        }
    }

    /// A runner with no persistence and no watchdog: plain panic
    /// isolation with the default retry budget.
    #[must_use]
    pub fn in_memory() -> Self {
        Self::new(RunnerConfig {
            timeout: None,
            ..RunnerConfig::default()
        })
    }

    /// Cells that exhausted their retries, with the last error each.
    #[must_use]
    pub fn failures(&self) -> &[(String, RunError)] {
        &self.failures
    }

    /// Cells actually executed (not loaded from checkpoints).
    #[must_use]
    pub fn cells_executed(&self) -> u64 {
        self.executed
    }

    /// Cells satisfied from checkpoints.
    #[must_use]
    pub fn cells_resumed(&self) -> u64 {
        self.resumed
    }

    /// The checkpoint file a cell key maps to, if persistence is on.
    #[must_use]
    pub fn checkpoint_path(&self, key: &str) -> Option<PathBuf> {
        self.cfg
            .checkpoint_dir
            .as_ref()
            .map(|d| d.join(format!("{}.json", sanitize(key))))
    }

    /// The failure-marker file a cell key maps to.
    #[must_use]
    pub fn failed_path(&self, key: &str) -> Option<PathBuf> {
        self.cfg
            .checkpoint_dir
            .as_ref()
            .map(|d| d.join(format!("{}.failed.json", sanitize(key))))
    }

    /// The mid-run (partial) checkpoint file a cell key maps to.
    #[must_use]
    pub fn partial_path(&self, key: &str) -> Option<PathBuf> {
        self.cfg
            .checkpoint_dir
            .as_ref()
            .map(|d| d.join(format!("{}.part.psnap", sanitize(key))))
    }

    /// Watchdog-abandoned workers still running right now. Joins (and
    /// forgets) any that have finished since the last check.
    pub fn zombie_count(&mut self) -> usize {
        self.reap_zombies();
        self.zombies.len()
    }

    /// Joins every abandoned worker that has since run to completion.
    fn reap_zombies(&mut self) {
        let mut live = Vec::new();
        for handle in self.zombies.drain(..) {
            if handle.is_finished() {
                let _ = handle.join();
            } else {
                live.push(handle);
            }
        }
        self.zombies = live;
    }

    /// Runs one sweep cell.
    ///
    /// With resume enabled and a checkpoint present, returns the
    /// checkpointed value without executing `work`. Otherwise runs
    /// `work` on a worker thread under `catch_unwind` and the
    /// configured watchdog, retrying with exponential backoff up to
    /// the retry budget. Success is checkpointed; exhaustion writes a
    /// `<key>.failed.json` marker, records the failure, and returns
    /// the final error.
    ///
    /// # Errors
    ///
    /// Returns the last [`RunError`] when every attempt failed.
    pub fn run_cell<T, F>(&mut self, key: &str, work: F) -> Result<T, RunError>
    where
        T: Serialize + DeserializeOwned + Send + 'static,
        F: Fn() -> T + Send + Sync + 'static,
    {
        self.run_cell_resumable(key, move |_| work())
    }

    /// Runs one sweep cell whose work can checkpoint mid-run.
    ///
    /// Like [`run_cell`](Self::run_cell), but `work` receives a
    /// [`CheckpointCell`] it may [`load`](CheckpointCell::load) on
    /// entry and [`store`](CheckpointCell::store) periodically. If an
    /// attempt dies (panic, watchdog timeout) the *retry* — in the same
    /// process or a later `--resume` run — picks up from the last
    /// stored state rather than from scratch. The partial checkpoint is
    /// cleared once the cell's final result is persisted, and survives
    /// a recorded failure so the next resume continues mid-cell.
    ///
    /// # Errors
    ///
    /// Returns the last [`RunError`] when every attempt failed.
    pub fn run_cell_resumable<T, F>(&mut self, key: &str, work: F) -> Result<T, RunError>
    where
        T: Serialize + DeserializeOwned + Send + 'static,
        F: Fn(&CheckpointCell) -> T + Send + Sync + 'static,
    {
        self.reap_zombies();
        let cell = match self.partial_path(key) {
            Some(p) => CheckpointCell::at(p),
            None => CheckpointCell::disabled(),
        };
        if self.cfg.resume {
            if let Some(v) = self.load_checkpoint(key) {
                self.resumed += 1;
                // The final result exists; any leftover partial state
                // is stale.
                cell.clear();
                return Ok(v);
            }
            // A stale failure marker means this cell is being retried.
            if let Some(p) = self.failed_path(key) {
                let _ = std::fs::remove_file(p);
            }
        } else {
            // A fresh (non-resume) sweep must not silently continue
            // from some earlier run's mid-cell state.
            cell.clear();
        }
        let work_cell = cell.clone();
        let work = Arc::new(move || work(&work_cell));
        let mut last = RunError::Panic {
            message: "cell never ran".to_owned(),
        };
        for attempt in 0..=self.cfg.retries {
            if attempt > 0 {
                thread::sleep(self.cfg.backoff * (1 << (attempt - 1)));
            }
            self.executed += 1;
            match self.attempt(Arc::clone(&work)) {
                Ok(v) => {
                    if let Err(e) = self.write_checkpoint(key, &v) {
                        eprintln!("warning: cell {key}: {e}");
                    }
                    cell.clear();
                    return Ok(v);
                }
                Err(e) => {
                    eprintln!("warning: cell {key} attempt {attempt}: {e}");
                    last = e;
                }
            }
        }
        self.mark_failed(key, &last);
        self.failures.push((key.to_owned(), last.clone()));
        Err(last)
    }

    /// One isolated attempt: worker thread + catch_unwind + watchdog.
    fn attempt<T, F>(&mut self, work: Arc<F>) -> Result<T, RunError>
    where
        T: Send + 'static,
        F: Fn() -> T + Send + Sync + 'static,
    {
        let (tx, rx) = mpsc::channel();
        let handle = thread::Builder::new()
            .name("sweep-cell".to_owned())
            .spawn(move || {
                let result = panic::catch_unwind(AssertUnwindSafe(|| work()));
                // Receiver gone = watchdog already gave up on us.
                let _ = tx.send(result);
            })
            .map_err(|e| RunError::Io {
                message: format!("cannot spawn worker: {e}"),
            })?;
        let outcome = match self.cfg.timeout {
            Some(t) => match rx.recv_timeout(t) {
                Ok(r) => {
                    // The worker has reported; it exits imminently.
                    let _ = handle.join();
                    r
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    // The worker cannot be killed. Keep its handle so
                    // it is joined as soon as it finishes (reaped at
                    // the next cell) instead of leaking detached.
                    self.zombies.push(handle);
                    return Err(RunError::Timeout {
                        seconds: t.as_secs_f64(),
                    });
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    let _ = handle.join();
                    Err(Box::new(String::from("worker vanished without reporting"))
                        as Box<dyn std::any::Any + Send>)
                }
            },
            None => {
                let r = rx.recv().unwrap_or_else(|_| {
                    Err(Box::new(String::from("worker vanished without reporting"))
                        as Box<dyn std::any::Any + Send>)
                });
                let _ = handle.join();
                r
            }
        };
        outcome.map_err(|payload| RunError::Panic {
            message: panic_message(payload.as_ref()),
        })
    }

    fn load_checkpoint<T: DeserializeOwned>(&mut self, key: &str) -> Option<T> {
        let path = self.checkpoint_path(key)?;
        let text = std::fs::read_to_string(&path).ok()?;
        match serde_json::from_str(&text) {
            Ok(v) => Some(v),
            Err(e) => {
                // Corrupt checkpoint: drop it and recompute the cell.
                eprintln!(
                    "warning: discarding unreadable checkpoint {}: {e}",
                    path.display()
                );
                let _ = std::fs::remove_file(&path);
                None
            }
        }
    }

    fn write_checkpoint<T: Serialize>(&self, key: &str, value: &T) -> Result<(), RunError> {
        let Some(path) = self.checkpoint_path(key) else {
            return Ok(());
        };
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let text = serde_json::to_string_pretty(value).map_err(|e| RunError::Io {
            message: format!("cannot serialize checkpoint: {e}"),
        })?;
        std::fs::write(&path, text)?;
        Ok(())
    }

    fn mark_failed(&self, key: &str, err: &RunError) {
        let Some(path) = self.failed_path(key) else {
            return;
        };
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        if let Ok(text) = serde_json::to_string_pretty(err) {
            if let Err(e) = std::fs::write(&path, text) {
                eprintln!("warning: cannot write failure marker for {key}: {e}");
            }
        }
    }
}

/// Maps a cell key to a filesystem-safe stem.
fn sanitize(key: &str) -> String {
    key.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' || c == '.' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Renders a panic payload (the `&str`/`String` cases panics actually
/// carry) into text.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitize_keeps_safe_chars_and_replaces_the_rest() {
        assert_eq!(sanitize("faults/gcc r=1e-4"), "faults_gcc_r_1e-4");
        assert_eq!(sanitize("table3"), "table3");
    }

    #[test]
    fn run_error_display_and_json_round_trip() {
        let variants = [
            RunError::Timeout { seconds: 1.5 },
            RunError::Panic {
                message: "boom".to_owned(),
            },
            RunError::Io {
                message: "disk full".to_owned(),
            },
            RunError::Invariant {
                message: "ROB overflow".to_owned(),
            },
        ];
        for e in &variants {
            let text = serde_json::to_string(e).unwrap();
            let back: RunError = serde_json::from_str(&text).unwrap();
            assert_eq!(&back, e);
        }
        assert_eq!(variants[0].to_string(), "timed out after 1.5s");
        assert_eq!(variants[1].to_string(), "panicked: boom");
        assert_eq!(variants[2].to_string(), "i/o error: disk full");
        assert_eq!(variants[3].to_string(), "invariant violated: ROB overflow");
    }

    #[test]
    fn sim_error_converts_to_invariant() {
        let e: RunError = perconf_pipeline::SimError::RobOverflow { len: 9, cap: 8 }.into();
        assert!(matches!(e, RunError::Invariant { .. }));
        assert!(e.to_string().contains("ROB overflow"));
    }

    #[test]
    fn in_memory_runner_isolates_panics_and_retries() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let mut r = Runner::new(RunnerConfig {
            timeout: None,
            retries: 2,
            backoff: Duration::from_millis(1),
            ..RunnerConfig::default()
        });
        let calls = Arc::new(AtomicU32::new(0));
        let c = Arc::clone(&calls);
        // Fails twice, then succeeds on the third attempt.
        let out = r.run_cell("flaky", move || {
            if c.fetch_add(1, Ordering::SeqCst) < 2 {
                panic!("transient");
            }
            7u32
        });
        assert_eq!(out.unwrap(), 7);
        assert_eq!(calls.load(Ordering::SeqCst), 3);
        assert!(r.failures().is_empty());
        assert_eq!(r.cells_executed(), 3);
    }

    #[test]
    fn exhausted_retries_record_the_failure() {
        let mut r = Runner::new(RunnerConfig {
            timeout: None,
            retries: 1,
            backoff: Duration::from_millis(1),
            ..RunnerConfig::default()
        });
        let out: Result<u32, RunError> = r.run_cell("doomed", || panic!("always"));
        let err = out.unwrap_err();
        assert_eq!(
            err,
            RunError::Panic {
                message: "always".to_owned()
            }
        );
        assert_eq!(r.failures().len(), 1);
        assert_eq!(r.failures()[0].0, "doomed");
    }

    #[test]
    fn watchdog_times_out_hung_cells() {
        let mut r = Runner::new(RunnerConfig {
            timeout: Some(Duration::from_millis(50)),
            retries: 0,
            backoff: Duration::from_millis(1),
            ..RunnerConfig::default()
        });
        let out: Result<u32, RunError> = r.run_cell("hung", || loop {
            thread::sleep(Duration::from_millis(20));
        });
        assert!(matches!(out.unwrap_err(), RunError::Timeout { .. }));
    }

    #[test]
    fn timed_out_workers_are_reaped_once_they_finish() {
        let mut r = Runner::new(RunnerConfig {
            timeout: Some(Duration::from_millis(20)),
            retries: 0,
            backoff: Duration::from_millis(1),
            ..RunnerConfig::default()
        });
        // Outlives its watchdog but terminates on its own.
        let out: Result<u32, RunError> = r.run_cell("slow", || {
            thread::sleep(Duration::from_millis(120));
            1
        });
        assert!(matches!(out.unwrap_err(), RunError::Timeout { .. }));
        assert_eq!(r.zombie_count(), 1, "abandoned worker is tracked");
        // Once the stray worker exits, the next check joins it.
        thread::sleep(Duration::from_millis(250));
        assert_eq!(r.zombie_count(), 0, "finished worker is reaped");
    }

    fn fresh_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("perconf-runner-unit-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn retry_resumes_from_the_mid_cell_checkpoint() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let dir = fresh_dir("midcell");
        let mut r = Runner::new(RunnerConfig {
            retries: 1,
            backoff: Duration::from_millis(1),
            timeout: None,
            ..RunnerConfig::resuming(&dir)
        });
        let steps = Arc::new(AtomicU32::new(0));
        let attempts = Arc::new(AtomicU32::new(0));
        let (s, a) = (Arc::clone(&steps), Arc::clone(&attempts));
        // Counts to 10 in checkpointed steps; the first attempt dies
        // at 5. The retry must start from 5, not 0.
        let out = r.run_cell_resumable("counter", move |cell| {
            let first = a.fetch_add(1, Ordering::SeqCst) == 0;
            // JSON round-trips non-negative integers as `Int`.
            let mut n = match cell.load() {
                Some(Value::UInt(n)) => n,
                Some(Value::Int(n)) if n >= 0 => n as u64,
                _ => 0,
            };
            while n < 10 {
                n += 1;
                s.fetch_add(1, Ordering::SeqCst);
                cell.store(&Value::UInt(n));
                if first && n == 5 {
                    panic!("injected mid-cell death");
                }
            }
            n
        });
        assert_eq!(out.unwrap(), 10);
        assert_eq!(
            steps.load(Ordering::SeqCst),
            10,
            "5 steps before the death + 5 after resuming, no redone work"
        );
        // Success cleared the partial checkpoint alongside the final one.
        assert!(!r.partial_path("counter").unwrap().exists());
        assert!(r.checkpoint_path("counter").unwrap().is_file());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_partial_checkpoint_falls_back_to_scratch() {
        let dir = fresh_dir("corrupt-partial");
        std::fs::create_dir_all(&dir).unwrap();
        let mut r = Runner::new(RunnerConfig {
            retries: 0,
            timeout: None,
            ..RunnerConfig::resuming(&dir)
        });
        // Plant garbage where the partial checkpoint would live.
        std::fs::write(r.partial_path("cell").unwrap(), b"PSNAPxxx not a snapshot").unwrap();
        let out = r.run_cell_resumable("cell", |cell| {
            // The corrupt file must not surface as state.
            assert!(cell.load().is_none(), "corrupt partial must be discarded");
            42u32
        });
        assert_eq!(out.unwrap(), 42);
        assert!(!r.partial_path("cell").unwrap().exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fresh_run_ignores_stale_partial_state() {
        let dir = fresh_dir("stale-partial");
        std::fs::create_dir_all(&dir).unwrap();
        // resume = false: a leftover partial from some earlier sweep
        // must be cleared, not consumed.
        let mut r = Runner::new(RunnerConfig {
            checkpoint_dir: Some(dir.clone()),
            resume: false,
            retries: 0,
            timeout: None,
            ..RunnerConfig::default()
        });
        snapfile::write(&r.partial_path("cell").unwrap(), &Value::UInt(999)).unwrap();
        let out = r.run_cell_resumable("cell", |cell| match cell.load() {
            Some(Value::UInt(n)) => n,
            Some(Value::Int(n)) if n >= 0 => n as u64,
            _ => 0u64,
        });
        assert_eq!(out.unwrap(), 0, "stale partial state must not leak in");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disabled_checkpoint_cell_is_inert() {
        let cell = CheckpointCell::disabled();
        assert!(cell.load().is_none());
        cell.store(&Value::UInt(7));
        cell.clear();
        assert!(cell.path().is_none());
    }
}
