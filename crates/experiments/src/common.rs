//! Shared infrastructure for the experiment drivers: run scales,
//! controller construction, trace-level estimator evaluation, and
//! full-pipeline gating runs.

use crate::runner::CheckpointCell;
use perconf_bpred::{
    baseline_bimodal_gshare, gshare_perceptron, BranchPredictor, SimPredictor, Snapshot,
};
use perconf_core::{
    ConfidenceEstimator, EstimateCtx, JrsConfig, JrsEstimator, PerceptronCe, PerceptronCeConfig,
    PerceptronTnt, PerceptronTntConfig, SimEstimator, SpeculationController,
};
use perconf_metrics::{ConfusionMatrix, DensityPair};
use perconf_obs::{Profiler, TraceEvent, Tracer};
use perconf_pipeline::{BatchSim, Controller, PipelineConfig, SimError, SimStats, Simulation};
use perconf_workload::{spec2000, WorkloadConfig, WorkloadGenerator};
use serde::{Deserialize, Serialize, Value};

/// How much work each experiment does. The paper runs 2 × 30M-uop
/// traces per benchmark; the default scale here is chosen so the full
/// experiment suite finishes in minutes while staying past the
/// predictors' warm-up knee.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Scale {
    /// Pipeline-run warm-up uops (stats reset afterwards).
    pub warmup_uops: u64,
    /// Pipeline-run measured uops.
    pub run_uops: u64,
    /// Trace-level (no pipeline) warm-up branches.
    pub warmup_branches: u64,
    /// Trace-level measured branches.
    pub run_branches: u64,
}

impl Scale {
    /// Fast scale for interactive runs and benches.
    #[must_use]
    pub fn quick() -> Self {
        Self {
            warmup_uops: 150_000,
            run_uops: 350_000,
            warmup_branches: 150_000,
            run_branches: 400_000,
        }
    }

    /// Full scale, closer to the paper's trace lengths.
    #[must_use]
    pub fn full() -> Self {
        Self {
            warmup_uops: 1_000_000,
            run_uops: 3_000_000,
            warmup_branches: 500_000,
            run_branches: 2_000_000,
        }
    }

    /// Tiny scale for unit tests of the drivers themselves.
    #[must_use]
    pub fn tiny() -> Self {
        Self {
            warmup_uops: 20_000,
            run_uops: 40_000,
            warmup_branches: 20_000,
            run_branches: 40_000,
        }
    }
}

impl Default for Scale {
    fn default() -> Self {
        Self::quick()
    }
}

/// Process-wide worker-thread count for the data-parallel experiment
/// stages ([`BaselineSet`], [`par_map_ordered`] call sites). The
/// binaries set it once from `--jobs`; the default of 1 keeps library
/// and test behaviour single-threaded unless explicitly raised.
static JOBS: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(1);

/// Sets the process-wide experiment parallelism (clamped to ≥ 1).
pub fn set_jobs(n: usize) {
    JOBS.store(n.max(1), std::sync::atomic::Ordering::SeqCst);
}

/// The current process-wide experiment parallelism.
#[must_use]
pub fn jobs() -> usize {
    JOBS.load(std::sync::atomic::Ordering::SeqCst)
}

/// Process-wide observability context: one [`Tracer`] ring and one
/// [`Profiler`] table shared by every simulation the experiment
/// drivers build, whatever worker thread it runs on. Both start
/// disabled (level `Off`, profiling off), so library and test runs pay
/// one relaxed atomic load per guard and nothing else; the binaries
/// turn them on from `--trace-out` / `--profile`.
static OBS: std::sync::OnceLock<(Tracer, Profiler)> = std::sync::OnceLock::new();

fn obs() -> &'static (Tracer, Profiler) {
    OBS.get_or_init(|| (Tracer::new(), Profiler::default()))
}

/// The process-wide tracer every driver-built simulation records into.
#[must_use]
pub fn tracer() -> &'static Tracer {
    &obs().0
}

/// An owned handle on the process-wide tracer, for attaching to a
/// simulation.
// With the `trace` feature off the handle is a `Copy` ZST and this
// clone is flagged as redundant; with the feature on it is an `Arc`
// clone and required. One allow here keeps the call sites identical
// in both builds.
#[allow(clippy::clone_on_copy)]
fn tracer_handle() -> Tracer {
    tracer().clone()
}

/// The process-wide profiler every driver-built simulation and
/// experiment phase reports into.
#[must_use]
pub fn profiler() -> &'static Profiler {
    &obs().1
}

/// Maps `f` over `items` on up to `jobs` scoped worker threads and
/// returns the outputs **in input order** — the parallel analogue of
/// `items.iter().map(f).collect()`, deterministic by construction:
/// output slot `i` only ever holds `f(&items[i])`, whatever order the
/// workers claim indices in. A panic in `f` propagates to the caller
/// (use the [`runner::Scheduler`](crate::runner::Scheduler) when cells
/// need isolation instead).
pub fn par_map_ordered<I, O, F>(jobs: usize, items: &[I], f: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    let jobs = jobs.clamp(1, items.len().max(1));
    if jobs <= 1 {
        return items.iter().map(f).collect();
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let slots: Vec<std::sync::Mutex<Option<O>>> =
        items.iter().map(|_| std::sync::Mutex::new(None)).collect();
    let (f, next, slots_ref) = (&f, &next, &slots);
    std::thread::scope(|s| {
        for _ in 0..jobs {
            s.spawn(move || loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                if i >= items.len() {
                    break;
                }
                let out = f(&items[i]);
                *slots_ref[i].lock().expect("slot lock") = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("slot lock")
                .expect("every index is produced exactly once")
        })
        .collect()
}

/// Which baseline branch predictor a run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PredictorKind {
    /// Table 1 baseline: 16K bimodal + 64K gshare + 64K meta.
    BimodalGshare,
    /// §5.2: 64K gshare + perceptron + 64K meta.
    GsharePerceptron,
}

impl PredictorKind {
    /// Builds the predictor.
    #[must_use]
    pub fn build(self) -> Box<dyn SimPredictor> {
        match self {
            PredictorKind::BimodalGshare => Box::new(baseline_bimodal_gshare()),
            PredictorKind::GsharePerceptron => Box::new(gshare_perceptron()),
        }
    }
}

/// Builds a pipeline controller from a predictor kind and estimator.
#[must_use]
pub fn controller(kind: PredictorKind, est: Box<dyn SimEstimator>) -> Controller {
    SpeculationController::new(kind.build(), est)
}

/// The paper's 4 KB enhanced-JRS estimator at threshold λ.
#[must_use]
pub fn jrs(lambda: u8) -> Box<dyn SimEstimator> {
    Box::new(JrsEstimator::new(JrsConfig {
        lambda,
        ..JrsConfig::default()
    }))
}

/// The paper's 4 KB perceptron estimator (`perceptron_cic`) at
/// threshold λ, binary classification (no reversal region).
#[must_use]
pub fn perceptron(lambda: i32) -> Box<dyn SimEstimator> {
    Box::new(PerceptronCe::new(PerceptronCeConfig {
        lambda,
        ..PerceptronCeConfig::default()
    }))
}

/// The §5.3 straw man: confidence from a direction-trained perceptron.
#[must_use]
pub fn perceptron_tnt(lambda: i32) -> Box<dyn SimEstimator> {
    Box::new(PerceptronTnt::new(PerceptronTntConfig {
        lambda,
        ..PerceptronTntConfig::default()
    }))
}

/// The twelve benchmark workloads.
#[must_use]
pub fn benchmarks() -> Vec<WorkloadConfig> {
    spec2000()
}

/// A reseeded copy of a workload: same calibrated structure, fresh
/// program instantiation and outcome randomness. Used for multi-seed
/// variance estimates (the `seed_variance` example).
#[must_use]
pub fn reseed(cfg: &WorkloadConfig, run: u64) -> WorkloadConfig {
    let mut c = cfg.clone();
    c.seed ^= 0xA5A5_0000 ^ (run.wrapping_mul(0x9E37_79B9));
    c
}

/// Trace-level evaluation of a (predictor, estimator) pair: runs the
/// branch stream without the pipeline, training both structures
/// in order (equivalent to the simulator's non-speculative retirement
/// training). Returns the PVN/Spec confusion quadrants and, when a
/// range is given, the estimator-output density pair of Figures 4–7.
pub fn trace_eval(
    wl: &WorkloadConfig,
    predictor: &mut dyn BranchPredictor,
    estimator: &mut dyn ConfidenceEstimator,
    warmup_branches: u64,
    run_branches: u64,
    density: Option<(i64, i64, u32)>,
) -> (ConfusionMatrix, Option<DensityPair>) {
    let mut gen = WorkloadGenerator::new(wl);
    let mut cm = ConfusionMatrix::new();
    let mut dens = density.map(|(lo, hi, bin)| DensityPair::new(lo, hi, bin));
    let mut hist = 0u64;
    let mut seen = 0u64;
    while seen < warmup_branches + run_branches {
        let u = gen.next_uop();
        let Some(b) = u.branch else { continue };
        seen += 1;
        let predicted_taken = predictor.predict(b.pc, hist);
        let ctx = EstimateCtx {
            pc: b.pc,
            history: hist,
            predicted_taken,
        };
        let est = estimator.estimate(&ctx);
        let mispredicted = predicted_taken != b.taken;
        if seen > warmup_branches {
            cm.record(mispredicted, est.is_low());
            if let Some(d) = &mut dens {
                d.add(i64::from(est.raw), mispredicted);
            }
        }
        predictor.train(b.pc, hist, b.taken);
        estimator.train(&ctx, est, mispredicted);
        hist = (hist << 1) | u64::from(b.taken);
    }
    (cm, dens)
}

/// Result of one (baseline, variant) pipeline comparison.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GatingOutcome {
    /// Fractional reduction in total uops *executed* (issued to
    /// functional units), the paper's `U`.
    pub u_executed: f64,
    /// Fractional reduction in total uops *fetched* — the quantity
    /// gating controls directly; reported alongside `U` because our
    /// substrate's backend is more drain-limited than the paper's
    /// (see EXPERIMENTS.md).
    pub u_fetched: f64,
    /// Fractional performance loss (positive = slower), the paper's
    /// `P`. Negative values are speed-ups (possible with reversal).
    pub perf_loss: f64,
}

/// Precomputed ungated baseline runs, one per benchmark, reusable
/// across the many gated design points of Tables 4–6.
#[derive(Debug, Clone)]
pub struct BaselineSet {
    pipe: PipelineConfig,
    scale: Scale,
    runs: Vec<(WorkloadConfig, SimStats)>,
}

impl BaselineSet {
    /// Runs the ungated baseline (given predictor, no estimator) for
    /// every benchmark on `pipe`.
    #[must_use]
    pub fn build(kind: PredictorKind, pipe: PipelineConfig, scale: Scale) -> Self {
        Self::build_on(kind, pipe, scale, benchmarks())
    }

    /// Like [`build`](Self::build) but over an explicit benchmark
    /// subset (reduced-scale golden tests, focused studies). Baselines
    /// run on up to [`jobs`] worker threads; results keep the given
    /// benchmark order.
    #[must_use]
    pub fn build_on(
        kind: PredictorKind,
        pipe: PipelineConfig,
        scale: Scale,
        benchmarks: Vec<WorkloadConfig>,
    ) -> Self {
        let stats = par_map_ordered(jobs(), &benchmarks, |wl| {
            let ctl = controller(kind, Box::new(perconf_core::AlwaysHigh));
            run_pipeline(wl, pipe, ctl, scale)
        });
        let runs = benchmarks.into_iter().zip(stats).collect();
        Self { pipe, scale, runs }
    }

    /// The pipeline configuration the baselines ran on.
    #[must_use]
    pub fn pipe(&self) -> PipelineConfig {
        self.pipe
    }

    /// Baseline stats per benchmark.
    #[must_use]
    pub fn runs(&self) -> &[(WorkloadConfig, SimStats)] {
        &self.runs
    }

    /// Runs one gated/variant configuration for every benchmark and
    /// returns the mean outcome against the cached baselines, plus the
    /// per-benchmark outcomes and variant stats. Per-benchmark runs
    /// fan out over [`jobs`] worker threads; the returned vectors keep
    /// benchmark order, so the result is identical at any job count
    /// (`mk_variant` builds a fresh controller per benchmark and must
    /// not depend on call order).
    pub fn evaluate(
        &self,
        variant_cfg: PipelineConfig,
        mk_variant: impl Fn() -> Controller + Sync,
    ) -> (GatingOutcome, Vec<(GatingOutcome, SimStats)>) {
        let per: Vec<(GatingOutcome, SimStats)> =
            par_map_ordered(jobs(), &self.runs, |(wl, base)| {
                let var = run_pipeline(wl, variant_cfg, mk_variant(), self.scale);
                (outcome(base, &var), var)
            });
        let m = |f: &dyn Fn(&GatingOutcome) -> f64| {
            let xs: Vec<f64> = per.iter().map(|(o, _)| f(o)).collect();
            xs.iter().sum::<f64>() / xs.len().max(1) as f64
        };
        (
            GatingOutcome {
                u_executed: m(&|o| o.u_executed),
                u_fetched: m(&|o| o.u_fetched),
                perf_loss: m(&|o| o.perf_loss),
            },
            per,
        )
    }
}

/// Runs one benchmark under `baseline_cfg` and `variant_cfg` with
/// independently constructed controllers and compares them.
pub fn compare_runs(
    wl: &WorkloadConfig,
    baseline_cfg: PipelineConfig,
    variant_cfg: PipelineConfig,
    mk_baseline: impl FnOnce() -> Controller,
    mk_variant: impl FnOnce() -> Controller,
    scale: Scale,
) -> (GatingOutcome, SimStats, SimStats) {
    let base = run_pipeline(wl, baseline_cfg, mk_baseline(), scale);
    let var = run_pipeline(wl, variant_cfg, mk_variant(), scale);
    (outcome(&base, &var), base, var)
}

/// Runs one benchmark through the pipeline at the given scale.
#[must_use]
pub fn run_pipeline(
    wl: &WorkloadConfig,
    cfg: PipelineConfig,
    ctl: Controller,
    scale: Scale,
) -> SimStats {
    let mut sim = Simulation::new(cfg, wl, ctl);
    sim.set_tracer(tracer_handle());
    sim.set_profiler(profiler().clone());
    {
        let _s = profiler().scope("phase/warmup");
        sim.warmup(scale.warmup_uops);
    }
    let _s = profiler().scope("phase/run");
    sim.run(scale.run_uops).clone()
}

/// Phases a checkpointed pipeline run moves through, recorded in the
/// mid-run snapshot so a resume knows where it was.
const PHASE_WARMUP: u64 = 0;
const PHASE_RUN: u64 = 1;

/// Like [`run_pipeline`], but snapshotting the entire simulation into
/// `cell` every `interval` retired uops, and resuming from whatever
/// the cell last stored.
///
/// The run is bit-identical to an uninterrupted [`run_pipeline`] of
/// the same workload and scale: the snapshot captures the full machine
/// (workload cursor, predictor/estimator, caches, ROB, stats), so a
/// cell killed at any point and re-entered through this function
/// produces the same final stats and state digest. A checkpoint that
/// fails integrity checks or was taken under a different pipeline
/// configuration is discarded and the run starts from scratch.
///
/// `mk_ctl` builds the controller — called once for the initial
/// simulation and again if a bad checkpoint forces a rebuild.
///
/// Returns the finished [`Simulation`] so callers can read both the
/// stats and the final state digest.
///
/// # Errors
///
/// Propagates [`SimError`] from the underlying simulation instead of
/// panicking, so runner cells can record it as a typed failure.
pub fn run_pipeline_checkpointed(
    wl: &WorkloadConfig,
    cfg: PipelineConfig,
    mk_ctl: impl Fn() -> Controller,
    scale: Scale,
    cell: &CheckpointCell,
    interval: u64,
) -> Result<Simulation, SimError> {
    let interval = interval.max(1);
    let mut sim = Simulation::new(cfg, wl, mk_ctl());
    sim.set_tracer(tracer_handle());
    sim.set_profiler(profiler().clone());
    let mut phase = PHASE_WARMUP;
    if let Some(saved) = cell.load() {
        let restored = (|| -> Result<u64, String> {
            let p: u64 = serde::field(&saved, "phase").map_err(|e| e.to_string())?;
            let state = saved
                .get("sim")
                .ok_or_else(|| "checkpoint missing `sim`".to_owned())?;
            sim.restore_state(state).map_err(|e| e.to_string())?;
            Ok(p)
        })();
        match restored {
            Ok(p) => phase = p,
            Err(e) => {
                // A restore can die partway and leave mixed state;
                // rebuild rather than trust it.
                eprintln!("warning: discarding unusable mid-run checkpoint: {e}");
                sim = Simulation::new(cfg, wl, mk_ctl());
                sim.set_tracer(tracer_handle());
                sim.set_profiler(profiler().clone());
            }
        }
    }
    let checkpoint = |sim: &Simulation, phase: u64| {
        if tracer().enabled() {
            tracer().record(TraceEvent::CheckpointWrite {
                retired: sim.stats().retired,
                phase,
            });
        }
        let _s = profiler().scope("phase/checkpoint");
        cell.store(&Value::Object(vec![
            ("phase".into(), Value::UInt(phase)),
            ("sim".into(), sim.save_state()),
        ]));
    };
    if phase == PHASE_WARMUP {
        let _s = profiler().scope("phase/warmup");
        while sim.stats().retired < scale.warmup_uops {
            let chunk = interval.min(scale.warmup_uops - sim.stats().retired);
            sim.try_run(chunk)?;
            checkpoint(&sim, PHASE_WARMUP);
        }
        // Ends the warmup phase: resets stats (uops argument is 0).
        sim.try_warmup(0)?;
        checkpoint(&sim, PHASE_RUN);
    }
    {
        let _s = profiler().scope("phase/run");
        while sim.stats().retired < scale.run_uops {
            let chunk = interval.min(scale.run_uops - sim.stats().retired);
            sim.try_run(chunk)?;
            if sim.stats().retired < scale.run_uops {
                checkpoint(&sim, PHASE_RUN);
            }
        }
    }
    cell.clear();
    Ok(sim)
}

/// One member of a batched checkpointed pipeline run: the workload,
/// its controller factory, and the checkpoint cell that persists its
/// mid-run state (pass [`CheckpointCell::disabled`] for none).
pub struct BatchMember<'a> {
    /// Workload to simulate.
    pub wl: &'a WorkloadConfig,
    /// Controller factory — called once up front and again if a bad
    /// checkpoint forces a rebuild (same contract as `mk_ctl` on
    /// [`run_pipeline_checkpointed`]).
    pub mk_ctl: Box<dyn Fn() -> Controller + 'a>,
    /// Per-member mid-run checkpoint store.
    pub cell: &'a CheckpointCell,
}

/// Batched [`run_pipeline_checkpointed`]: advances every member
/// through one interleaved cycle loop ([`BatchSim`]), while each
/// member's phase transitions, checkpoint boundaries, and stored
/// checkpoint bytes replicate the sequential function exactly.
///
/// # Determinism contract
///
/// Member `i`'s final stats, state digest, and every intermediate
/// checkpoint it stores are byte-identical to
/// `run_pipeline_checkpointed(members[i].wl, cfg, …, scale,
/// members[i].cell, interval)` run alone — for every batch width and
/// member order, with faults injected and counters/tracing enabled.
/// In particular a batch killed mid-flight leaves per-member `.part`
/// checkpoints a *sequential* resume can continue from, and vice
/// versa.
///
/// Errors are isolated per member: a member that stalls or breaks an
/// invariant carries `Err` in its slot while the rest run to
/// completion.
pub fn run_pipeline_checkpointed_batch(
    members: &[BatchMember<'_>],
    cfg: PipelineConfig,
    scale: Scale,
    interval: u64,
) -> Vec<Result<Simulation, SimError>> {
    let interval = interval.max(1);
    let n = members.len();
    let mut phases = Vec::with_capacity(n);
    let mut sims = Vec::with_capacity(n);
    for m in members {
        let mut sim = Simulation::new(cfg, m.wl, (m.mk_ctl)());
        sim.set_tracer(tracer_handle());
        sim.set_profiler(profiler().clone());
        let mut phase = PHASE_WARMUP;
        if let Some(saved) = m.cell.load() {
            let restored = (|| -> Result<u64, String> {
                let p: u64 = serde::field(&saved, "phase").map_err(|e| e.to_string())?;
                let state = saved
                    .get("sim")
                    .ok_or_else(|| "checkpoint missing `sim`".to_owned())?;
                sim.restore_state(state).map_err(|e| e.to_string())?;
                Ok(p)
            })();
            match restored {
                Ok(p) => phase = p,
                Err(e) => {
                    eprintln!("warning: discarding unusable mid-run checkpoint: {e}");
                    sim = Simulation::new(cfg, m.wl, (m.mk_ctl)());
                    sim.set_tracer(tracer_handle());
                    sim.set_profiler(profiler().clone());
                }
            }
        }
        phases.push(phase);
        sims.push(sim);
    }
    let checkpoint = |sim: &Simulation, cell: &CheckpointCell, phase: u64| {
        if tracer().enabled() {
            tracer().record(TraceEvent::CheckpointWrite {
                retired: sim.stats().retired,
                phase,
            });
        }
        let _s = profiler().scope("phase/checkpoint");
        cell.store(&Value::Object(vec![
            ("phase".into(), Value::UInt(phase)),
            ("sim".into(), sim.save_state()),
        ]));
    };
    let mut batch = BatchSim::new(sims);
    let mut outcome: Vec<Option<SimError>> = (0..n).map(|_| None).collect();
    let mut done = vec![false; n];
    loop {
        // One interleaved leg: each live member advances by its next
        // chunk — the same `interval.min(remaining)` the sequential
        // loop computes — then checkpoints at the same boundary.
        let mut uops = vec![0u64; n];
        for i in 0..n {
            if done[i] || outcome[i].is_some() {
                continue;
            }
            let retired = batch.get(i).stats().retired;
            let target = if phases[i] == PHASE_WARMUP {
                scale.warmup_uops
            } else {
                scale.run_uops
            };
            uops[i] = interval.min(target.saturating_sub(retired));
        }
        let mut progressed = false;
        let results = {
            let _s = profiler().scope("phase/batch_run");
            batch.try_run_each(&uops)
        };
        for i in 0..n {
            if done[i] || outcome[i].is_some() {
                continue;
            }
            if let Err(e) = &results[i] {
                outcome[i] = Some(*e);
                continue;
            }
            progressed = true;
            let m = &members[i];
            if phases[i] == PHASE_WARMUP {
                // A zero-size leg (member restored at or past its
                // warmup target) stores nothing — the sequential loop
                // never runs a zero chunk — but still owes the phase
                // transition below.
                if uops[i] > 0 {
                    checkpoint(batch.get(i), m.cell, PHASE_WARMUP);
                }
                if batch.get(i).stats().retired >= scale.warmup_uops {
                    // Ends the warmup phase: resets stats.
                    if let Err(e) = batch.get_mut(i).try_warmup(0) {
                        outcome[i] = Some(e);
                        continue;
                    }
                    checkpoint(batch.get(i), m.cell, PHASE_RUN);
                    phases[i] = PHASE_RUN;
                }
            } else if batch.get(i).stats().retired < scale.run_uops {
                checkpoint(batch.get(i), m.cell, PHASE_RUN);
            } else {
                m.cell.clear();
                done[i] = true;
            }
        }
        if (0..n).all(|i| done[i] || outcome[i].is_some()) {
            break;
        }
        assert!(progressed, "batched run loop made no progress");
    }
    batch
        .into_sims()
        .into_iter()
        .zip(outcome)
        .map(|(sim, err)| match err {
            None => Ok(sim),
            Some(e) => Err(e),
        })
        .collect()
}

/// Derives the paper's `U`/`P` metrics from a baseline and a variant
/// run of the same workload amount.
#[must_use]
pub fn outcome(base: &SimStats, var: &SimStats) -> GatingOutcome {
    let fetched = |s: &SimStats| (s.fetched_correct + s.fetched_wrong) as f64;
    GatingOutcome {
        u_executed: 1.0 - var.executed_total() as f64 / base.executed_total() as f64,
        u_fetched: 1.0 - fetched(var) / fetched(base),
        perf_loss: var.cycles as f64 / base.cycles as f64 - 1.0,
    }
}

/// Formats a fraction as a signed percentage with one decimal.
#[must_use]
pub fn pct(x: f64) -> String {
    format!("{:.1}", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_ordered() {
        assert!(Scale::tiny().run_uops < Scale::quick().run_uops);
        assert!(Scale::quick().run_uops < Scale::full().run_uops);
    }

    #[test]
    fn trace_eval_counts_requested_branches() {
        let wl = perconf_workload::spec2000_config("gcc").unwrap();
        let mut p = baseline_bimodal_gshare();
        let mut ce = JrsEstimator::new(JrsConfig::default());
        let (cm, d) = trace_eval(&wl, &mut p, &mut ce, 1_000, 5_000, Some((-10, 10, 5)));
        assert_eq!(cm.total(), 5_000);
        let d = d.unwrap();
        assert_eq!(d.correct.count() + d.mispredicted.count(), cm.total());
        assert_eq!(d.mispredicted.count(), cm.mispredicted());
    }

    #[test]
    fn outcome_signs() {
        let base = SimStats {
            executed_correct: 1000,
            executed_wrong: 500,
            fetched_correct: 1000,
            fetched_wrong: 800,
            cycles: 1000,
            ..SimStats::default()
        };
        let mut var = base.clone();
        var.executed_wrong = 200;
        var.fetched_wrong = 300;
        var.cycles = 1050;
        let o = outcome(&base, &var);
        assert!(o.u_executed > 0.0);
        assert!(o.u_fetched > 0.0);
        assert!((o.perf_loss - 0.05).abs() < 1e-12);
    }

    #[test]
    fn estimator_factories_have_expected_storage() {
        assert_eq!(jrs(7).storage_bits(), 8 * 1024 * 4);
        assert_eq!(perceptron(0).storage_bits(), 128 * 33 * 8);
        assert_eq!(perceptron_tnt(30).storage_bits(), 128 * 33 * 8);
    }

    fn tmp_cell(tag: &str) -> (std::path::PathBuf, CheckpointCell) {
        let dir =
            std::env::temp_dir().join(format!("perconf-common-chk-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cell = CheckpointCell::at(dir.join("cell.part.psnap"));
        (dir, cell)
    }

    #[test]
    fn checkpointed_run_matches_the_plain_run() {
        let wl = perconf_workload::spec2000_config("gcc").unwrap();
        let scale = Scale::tiny();
        let cfg = PipelineConfig::with_depth_width(20, 4);
        let mk = || controller(PredictorKind::BimodalGshare, perceptron(14));
        let plain = run_pipeline(&wl, cfg, mk(), scale);
        let (dir, cell) = tmp_cell("match");
        let sim = run_pipeline_checkpointed(&wl, cfg, mk, scale, &cell, 7_000).unwrap();
        assert_eq!(sim.stats(), &plain, "chunked run must be bit-identical");
        assert!(
            cell.path().is_none_or(|p| !p.exists()),
            "completed run clears its partial checkpoint"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn killed_mid_cell_run_resumes_to_identical_stats_and_digest() {
        let wl = perconf_workload::spec2000_config("twolf").unwrap();
        let scale = Scale::tiny();
        let cfg = PipelineConfig::with_depth_width(20, 4);
        let mk = || controller(PredictorKind::BimodalGshare, perceptron(14));

        // Reference: one uninterrupted checkpointed run.
        let (dir_a, cell_a) = tmp_cell("ref");
        let reference = run_pipeline_checkpointed(&wl, cfg, mk, scale, &cell_a, 9_000).unwrap();

        // "Killed" run: advance part-way through the measured phase,
        // store a mid-run checkpoint exactly as the driver does, then
        // drop the simulation — the moral equivalent of SIGKILL.
        let (dir_b, cell_b) = tmp_cell("killed");
        {
            let mut sim = Simulation::new(cfg, &wl, mk());
            sim.warmup(scale.warmup_uops);
            sim.try_run(scale.run_uops / 3).unwrap();
            cell_b.store(&Value::Object(vec![
                ("phase".into(), Value::UInt(super::PHASE_RUN)),
                ("sim".into(), sim.save_state()),
            ]));
        }
        let resumed = run_pipeline_checkpointed(&wl, cfg, mk, scale, &cell_b, 9_000).unwrap();
        assert_eq!(resumed.stats(), reference.stats());
        assert_eq!(resumed.state_digest(), reference.state_digest());
        let _ = std::fs::remove_dir_all(&dir_a);
        let _ = std::fs::remove_dir_all(&dir_b);
    }

    #[test]
    fn corrupt_mid_run_checkpoint_degrades_to_a_from_scratch_run() {
        let wl = perconf_workload::spec2000_config("gcc").unwrap();
        let scale = Scale::tiny();
        let cfg = PipelineConfig::with_depth_width(20, 4);
        let mk = || controller(PredictorKind::BimodalGshare, jrs(7));
        let plain = run_pipeline(&wl, cfg, mk(), scale);
        let (dir, cell) = tmp_cell("corrupt");
        // A syntactically valid snapfile whose payload is not a
        // simulation snapshot: survives the container checks, fails
        // restore, and must trigger the rebuild path.
        crate::snapfile::write(
            cell.path().unwrap(),
            &Value::Object(vec![
                ("phase".into(), Value::UInt(super::PHASE_RUN)),
                (
                    "sim".into(),
                    Value::Object(vec![("bogus".into(), Value::Null)]),
                ),
            ]),
        )
        .unwrap();
        let sim = run_pipeline_checkpointed(&wl, cfg, mk, scale, &cell, 11_000).unwrap();
        assert_eq!(sim.stats(), &plain);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
