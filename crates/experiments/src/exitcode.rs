//! Documented exit-code taxonomy shared by the `repro`, `validate`
//! and `serve` binaries, so scripts and CI can branch on *why* a run
//! ended:
//!
//! | code | meaning |
//! |---|---|
//! | 0 | success |
//! | 1 | unclassified error (I/O, setup) |
//! | 2 | usage error (bad flag, unknown experiment, bad combination) |
//! | 3 | success, but corrupt input was discarded and recomputed |
//! | 4 | sweep finished with terminally failed cells / failed checks |
//! | 5 | sweep failed and *every* failure was a watchdog timeout |
//! | 6 | spec file declares an unsupported `spec_version` |
//!
//! Code 3 is the "degraded" contract: corrupt checkpoints, queue
//! entries, cache entries, or result files never abort a run — they
//! degrade to recompute ([`note_degraded`](crate::runner::note_degraded)
//! counts each event) and the binary admits it happened through its
//! exit status. Codes 4 and 5 distinguish "some cells are genuinely
//! broken" from "the time budget was too tight" (rerun with a longer
//! `--cell-timeout`).
//!
//! These values are load-bearing: CI scripts, the distributed
//! coordinator, and the experiment server's `submit` client all branch
//! on them, so they are pinned by a drift test and must never change.

/// Success.
pub const OK: u8 = 0;
/// Unclassified failure.
pub const FAILURE: u8 = 1;
/// Command-line usage error.
pub const USAGE: u8 = 2;
/// Success after degrading corrupt input to recomputation.
pub const DEGRADED: u8 = 3;
/// One or more cells (or validation checks) failed terminally.
pub const FAILED_CELLS: u8 = 4;
/// Every terminal failure was a watchdog timeout.
pub const WATCHDOG: u8 = 5;
/// A spec file declared a `spec_version` this build does not read —
/// distinct from [`USAGE`] so automation can tell "regenerate or
/// upgrade" apart from "fix your spec".
pub const SPEC_VERSION: u8 = 6;

/// Classifies a sweep that ended with terminally failed cells: when
/// every failure class is `timeout` the whole run maps to [`WATCHDOG`]
/// (the budget was too tight — retry with a longer watchdog), anything
/// else maps to [`FAILED_CELLS`]. Shared by `repro`, the distributed
/// coordinator, and the experiment server so the three frontends can
/// never disagree about what a failed sweep means.
#[must_use]
pub fn classify_failed_kinds<S: AsRef<str>>(kinds: &[S]) -> u8 {
    if !kinds.is_empty() && kinds.iter().all(|k| k.as_ref() == "timeout") {
        WATCHDOG
    } else {
        FAILED_CELLS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_values_never_drift() {
        // The taxonomy is part of the public contract (CI scripts and
        // the serve client branch on the raw numbers). If this test
        // fails you are breaking every consumer — don't renumber, add.
        assert_eq!(OK, 0);
        assert_eq!(FAILURE, 1);
        assert_eq!(USAGE, 2);
        assert_eq!(DEGRADED, 3);
        assert_eq!(FAILED_CELLS, 4);
        assert_eq!(WATCHDOG, 5);
        assert_eq!(SPEC_VERSION, 6);
    }

    #[test]
    fn codes_are_distinct() {
        let all = [
            OK,
            FAILURE,
            USAGE,
            DEGRADED,
            FAILED_CELLS,
            WATCHDOG,
            SPEC_VERSION,
        ];
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn all_timeout_failures_classify_as_watchdog() {
        assert_eq!(classify_failed_kinds(&["timeout", "timeout"]), WATCHDOG);
        assert_eq!(classify_failed_kinds(&["timeout", "panic"]), FAILED_CELLS);
        assert_eq!(classify_failed_kinds(&["io"]), FAILED_CELLS);
        // No failures at all is not a watchdog situation.
        assert_eq!(classify_failed_kinds::<&str>(&[]), FAILED_CELLS);
    }

    #[test]
    fn compat_alias_points_at_the_same_module() {
        // `crate::exit` remains valid spelling for older call sites.
        assert_eq!(crate::exit::WATCHDOG, WATCHDOG);
    }
}
