//! Energy accounting for pipeline gating — the paper's motivation
//! quantified. For each perceptron λ the driver reports the change in
//! total energy and in energy×delay versus the ungated baseline, using
//! the front-end/execute/static decomposition of
//! [`perconf_pipeline::EnergyModel`].

use crate::common::{controller, perceptron, BaselineSet, PredictorKind, Scale};
use perconf_metrics::{stats, Table};
use perconf_pipeline::{EnergyModel, PipelineConfig};
use serde::{Deserialize, Serialize};

/// One λ design point's energy outcome (means across benchmarks).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyRow {
    /// Estimator threshold λ.
    pub lambda: i32,
    /// Mean fractional change in total energy (negative = saved).
    pub d_energy: f64,
    /// Mean fractional change in energy×delay.
    pub d_energy_delay: f64,
    /// Mean fractional performance loss.
    pub perf_loss: f64,
    /// Mean wasted-energy fraction of the *baseline* run.
    pub baseline_wasted_frac: f64,
}

/// Full energy study result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyStudy {
    /// Rows for each λ.
    pub rows: Vec<EnergyRow>,
}

/// The λ sweep (same as Table 4's perceptron column).
pub const LAMBDAS: [i32; 4] = [25, 0, -25, -50];

/// Runs the energy study (perceptron estimator, PL1, 40-cycle pipe).
#[must_use]
pub fn run(scale: Scale) -> EnergyStudy {
    let model = EnergyModel::default();
    let baselines = BaselineSet::build(PredictorKind::BimodalGshare, PipelineConfig::deep(), scale);
    let baseline_wasted: Vec<f64> = baselines
        .runs()
        .iter()
        .map(|(_, s)| model.evaluate(s).wasted_frac())
        .collect();
    let rows = LAMBDAS
        .iter()
        .map(|&l| {
            let (mean, per) = baselines.evaluate(baselines.pipe().gated(1), || {
                controller(PredictorKind::BimodalGshare, perceptron(l))
            });
            let mut de = Vec::new();
            let mut dedp = Vec::new();
            for ((_, base), (_, var)) in baselines.runs().iter().zip(&per) {
                let (e, ed) = model.compare(base, var);
                de.push(e);
                dedp.push(ed);
            }
            EnergyRow {
                lambda: l,
                d_energy: stats::mean(&de).unwrap_or(0.0),
                d_energy_delay: stats::mean(&dedp).unwrap_or(0.0),
                perf_loss: mean.perf_loss,
                baseline_wasted_frac: stats::mean(&baseline_wasted).unwrap_or(0.0),
            }
        })
        .collect();
    EnergyStudy { rows }
}

impl EnergyStudy {
    /// Renders the study.
    #[must_use]
    pub fn render(&self) -> String {
        let mut t = Table::with_headers(&["λ", "ΔE%", "ΔE·D%", "P%"]);
        t.numeric();
        for r in &self.rows {
            t.row(vec![
                r.lambda.to_string(),
                format!("{:+.1}", r.d_energy * 100.0),
                format!("{:+.1}", r.d_energy_delay * 100.0),
                format!("{:+.1}", r.perf_loss * 100.0),
            ]);
        }
        let wasted = self
            .rows
            .first()
            .map_or(0.0, |r| r.baseline_wasted_frac * 100.0);
        format!(
            "Energy study: perceptron gating, PL1, 40-cycle pipeline\n\
             (baseline spends {wasted:.1}% of its energy on the wrong path)\n{}",
            t.render()
        )
    }

    /// The motivating claim: some gating point saves net energy.
    #[must_use]
    pub fn gating_saves_energy(&self) -> bool {
        self.rows.iter().any(|r| r.d_energy < 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lambda_sweep_matches_table4() {
        assert_eq!(LAMBDAS, crate::table3::PERCEPTRON_LAMBDAS);
    }
}
