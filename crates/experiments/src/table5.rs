//! Table 5 — effect of a better baseline branch predictor on
//! perceptron-estimator pipeline gating: the bimodal–gshare baseline
//! versus the §5.2 gshare–perceptron hybrid, with λ chosen per
//! predictor to span the 0–3% performance-loss range.

use crate::common::{controller, perceptron, BaselineSet, GatingOutcome, PredictorKind, Scale};
use crate::paper;
use perconf_metrics::{stats, Table};
use perconf_pipeline::PipelineConfig;
use serde::{Deserialize, Serialize};

/// One (predictor, λ) gating point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Table5Row {
    /// Which baseline predictor.
    pub predictor: PredictorKind,
    /// Estimator threshold λ.
    pub lambda: i32,
    /// Mean outcome across benchmarks.
    pub outcome: GatingOutcome,
    /// Mean baseline branch MPKu under this predictor (the paper
    /// quotes 4.1 vs 3.6).
    pub mpku: f64,
}

/// Full Table 5 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table5 {
    /// Rows for both predictors.
    pub rows: Vec<Table5Row>,
}

/// λ sweeps used per predictor (paper Table 5).
pub const BG_LAMBDAS: [i32; 4] = [25, 0, -25, -50];
/// λ sweep for the gshare–perceptron baseline.
pub const GP_LAMBDAS: [i32; 4] = [0, -25, -50, -60];

fn run_predictor(kind: PredictorKind, lambdas: &[i32], scale: Scale) -> Vec<Table5Row> {
    let baselines = BaselineSet::build(kind, PipelineConfig::deep(), scale);
    let mpku = stats::mean(
        &baselines
            .runs()
            .iter()
            .map(|(_, s)| s.mpku())
            .collect::<Vec<_>>(),
    )
    .unwrap_or(0.0);
    lambdas
        .iter()
        .map(|&l| {
            let (mean, _) = baselines.evaluate(baselines.pipe().gated(1), || {
                controller(kind, perceptron(l))
            });
            Table5Row {
                predictor: kind,
                lambda: l,
                outcome: mean,
                mpku,
            }
        })
        .collect()
}

/// Runs the Table 5 experiment.
#[must_use]
pub fn run(scale: Scale) -> Table5 {
    let mut rows = run_predictor(PredictorKind::BimodalGshare, &BG_LAMBDAS, scale);
    rows.extend(run_predictor(
        PredictorKind::GsharePerceptron,
        &GP_LAMBDAS,
        scale,
    ));
    Table5 { rows }
}

impl Table5 {
    /// Renders the table with paper values alongside.
    #[must_use]
    pub fn render(&self) -> String {
        let mut t = Table::with_headers(&[
            "baseline predictor",
            "λ",
            "mpku",
            "U(exec)%",
            "U(fetch)%",
            "U(paper)%",
            "P%",
            "P(paper)%",
        ]);
        t.numeric();
        for row in &self.rows {
            let (name, paper_rows): (&str, &[(i32, f64, f64)]) = match row.predictor {
                PredictorKind::BimodalGshare => ("bimodal-gshare", &paper::TABLE5_BIMODAL_GSHARE),
                PredictorKind::GsharePerceptron => {
                    ("gshare-perceptron", &paper::TABLE5_GSHARE_PERCEPTRON)
                }
            };
            let p = paper_rows.iter().find(|r| r.0 == row.lambda);
            t.row(vec![
                name.into(),
                row.lambda.to_string(),
                format!("{:.1}", row.mpku),
                format!("{:.1}", row.outcome.u_executed * 100.0),
                format!("{:.1}", row.outcome.u_fetched * 100.0),
                p.map_or("-".into(), |p| format!("{:.0}", p.1)),
                format!("{:.1}", row.outcome.perf_loss * 100.0),
                p.map_or("-".into(), |p| format!("{:.0}", p.2)),
            ]);
        }
        format!(
            "Table 5: gating with a better baseline predictor (perceptron estimator, PL1)\n{}",
            t.render()
        )
    }

    /// The paper's claim: the better baseline predictor leaves less
    /// reduction opportunity at matched λ.
    #[must_use]
    pub fn better_predictor_reduces_opportunity(&self) -> bool {
        let at = |kind: PredictorKind, l: i32| {
            self.rows
                .iter()
                .find(|r| r.predictor == kind && r.lambda == l)
                .map(|r| r.outcome.u_fetched)
        };
        match (
            at(PredictorKind::BimodalGshare, -50),
            at(PredictorKind::GsharePerceptron, -50),
        ) {
            (Some(bg), Some(gp)) => gp <= bg,
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lambda_sets_match_paper() {
        assert_eq!(BG_LAMBDAS, [25, 0, -25, -50]);
        assert_eq!(GP_LAMBDAS, [0, -25, -50, -60]);
    }
}
