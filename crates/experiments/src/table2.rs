//! Table 2 — benchmark speculation-waste characteristics: branch
//! mispredicts per 1000 uops, and the % increase in uops executed
//! (and fetched) due to branch mispredictions on the 20-cycle 4-wide,
//! 20-cycle 8-wide and 40-cycle 4-wide pipelines.

use crate::common::{run_pipeline, run_pipeline_checkpointed, PredictorKind, Scale};
use crate::paper;
use crate::runner::{CellSpec, CellTiming, CheckpointCell, Scheduler};
use perconf_core::{AlwaysHigh, SpeculationController};
use perconf_metrics::{stats, Table};
use perconf_pipeline::PipelineConfig;
use serde::{Deserialize, Serialize};

/// One benchmark's row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table2Row {
    /// Benchmark name.
    pub bench: String,
    /// Measured branch mispredicts per 1000 uops (on the deep pipe).
    pub mpku: f64,
    /// % extra uops executed / fetched on each shape.
    pub waste: [WastePair; 3],
}

/// Executed/fetched waste percentages for one pipeline shape.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WastePair {
    /// % increase in uops executed due to mispredictions.
    pub executed: f64,
    /// % increase in uops fetched due to mispredictions.
    pub fetched: f64,
}

/// Full Table 2 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table2 {
    /// Per-benchmark rows in the paper's order.
    pub rows: Vec<Table2Row>,
}

/// The three pipeline shapes of Table 2, in column order.
#[must_use]
pub fn shapes() -> [(&'static str, PipelineConfig); 3] {
    [
        ("20c/4w", PipelineConfig::shallow()),
        ("20c/8w", PipelineConfig::wide()),
        ("40c/4w", PipelineConfig::deep()),
    ]
}

/// Runs the Table 2 experiment over every benchmark.
#[must_use]
pub fn run(scale: Scale) -> Table2 {
    run_on(scale, &crate::common::benchmarks())
}

/// Runs Table 2 over an explicit benchmark list (reduced-scale golden
/// tests, focused studies). Benchmarks fan out over
/// [`common::jobs`](crate::common::jobs) worker threads; rows keep the
/// given order.
#[must_use]
pub fn run_on(scale: Scale, benchmarks: &[perconf_workload::WorkloadConfig]) -> Table2 {
    let rows = crate::common::par_map_ordered(crate::common::jobs(), benchmarks, |wl| {
        let mut waste = [WastePair {
            executed: 0.0,
            fetched: 0.0,
        }; 3];
        let mut mpku = 0.0;
        for (i, (_, cfg)) in shapes().into_iter().enumerate() {
            let ctl = SpeculationController::new(
                PredictorKind::BimodalGshare.build(),
                Box::new(AlwaysHigh) as Box<dyn perconf_core::SimEstimator>,
            );
            let s = run_pipeline(wl, cfg, ctl, scale);
            waste[i] = WastePair {
                executed: s.wasted_execution_frac() * 100.0,
                fetched: if s.fetched_correct == 0 {
                    0.0
                } else {
                    s.fetched_wrong as f64 * 100.0 / s.fetched_correct as f64
                },
            };
            if i == 2 {
                mpku = s.mpku();
            }
        }
        Table2Row {
            bench: wl.name.clone(),
            mpku,
            waste,
        }
    });
    Table2 { rows }
}

/// One scheduler cell of the Table 2 experiment: one benchmark on one
/// pipeline shape. Splitting per shape (rather than per benchmark)
/// keeps each cell's checkpoint a single simulation snapshot, so a
/// killed cell resumes mid-pipeline-run like a faults-sweep cell does.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShapeCell {
    /// Benchmark name.
    pub bench: String,
    /// Index into [`shapes`].
    pub shape: usize,
    /// % increase in uops executed due to mispredictions.
    pub executed: f64,
    /// % increase in uops fetched due to mispredictions.
    pub fetched: f64,
    /// Mispredicts per 1000 uops on this shape (the table reports the
    /// deep shape's value).
    pub mpku: f64,
}

/// Canonical checkpoint/queue key for one Table 2 cell. Scale is not
/// part of the key for the same reason the faults sweep omits it: a
/// resume directory is per-invocation, and mixing scales in one
/// directory is guarded at the CLI layer.
#[must_use]
pub fn cell_key(bench: &str, shape: usize) -> String {
    format!("table2-{bench}-s{shape}")
}

/// Computes one Table 2 cell, checkpointing through `cell` every ~50k
/// retired uops. At rate-limit: the measurement is exactly the
/// [`run_on`] inner loop for one (benchmark, shape) pair — the
/// checkpointed pipeline driver is bit-identical to the plain one.
#[must_use]
pub fn run_shape_cell(bench: &str, shape: usize, scale: Scale, cell: &CheckpointCell) -> ShapeCell {
    let wl = perconf_workload::spec2000_config(bench).expect("known benchmark");
    let (_, cfg) = shapes()[shape];
    let mk_ctl = || {
        SpeculationController::new(
            PredictorKind::BimodalGshare.build(),
            Box::new(AlwaysHigh) as Box<dyn perconf_core::SimEstimator>,
        )
    };
    let s = match run_pipeline_checkpointed(&wl, cfg, mk_ctl, scale, cell, 50_000) {
        Ok(sim) => sim.stats().clone(),
        // A SimError is an invariant failure; surface it as the panic
        // the runner's catch_unwind turns into a typed error.
        Err(e) => panic!("{e}"),
    };
    ShapeCell {
        bench: bench.to_owned(),
        shape,
        executed: s.wasted_execution_frac() * 100.0,
        fetched: if s.fetched_correct == 0 {
            0.0
        } else {
            s.fetched_wrong as f64 * 100.0 / s.fetched_correct as f64
        },
        mpku: s.mpku(),
    }
}

/// Builds the experiment's cell list in canonical order
/// (benchmark-major, then shape), ready for a
/// [`Scheduler`]. This is the path `repro table2` and spec-driven runs
/// share, which is what makes their outputs — checkpoint files
/// included — byte-identical.
#[must_use]
pub fn cell_specs(
    scale: Scale,
    benchmarks: &[perconf_workload::WorkloadConfig],
) -> Vec<CellSpec<ShapeCell>> {
    let mut specs = Vec::with_capacity(benchmarks.len() * shapes().len());
    for wl in benchmarks {
        for shape in 0..shapes().len() {
            let bench = wl.name.clone();
            specs.push(CellSpec::new(
                cell_key(&bench, shape),
                move |chk: &CheckpointCell| run_shape_cell(&bench, shape, scale, chk),
            ));
        }
    }
    specs
}

/// Assembles the table from completed cells (canonical order as built
/// by [`cell_specs`]).
#[must_use]
pub fn table_from_cells(cells: &[ShapeCell]) -> Table2 {
    let mut rows: Vec<Table2Row> = Vec::new();
    for c in cells {
        if rows.last().is_none_or(|r| r.bench != c.bench) {
            rows.push(Table2Row {
                bench: c.bench.clone(),
                mpku: 0.0,
                waste: [WastePair {
                    executed: 0.0,
                    fetched: 0.0,
                }; 3],
            });
        }
        let row = rows.last_mut().expect("just pushed");
        row.waste[c.shape] = WastePair {
            executed: c.executed,
            fetched: c.fetched,
        };
        if c.shape == 2 {
            row.mpku = c.mpku;
        }
    }
    Table2 { rows }
}

/// Runs Table 2 through a [`Scheduler`] — the resumable/parallel path
/// the `repro` binary uses. Returns `Err` with the failed cell keys if
/// any cell panicked or hung, plus the (wall-clock, hence
/// nondeterministic) per-cell timings either way. Results are
/// byte-identical to [`run_on`] at any job count (pinned by test).
pub fn run_scheduled(
    scale: Scale,
    benchmarks: &[perconf_workload::WorkloadConfig],
    scheduler: &mut Scheduler,
) -> (Result<Table2, Vec<String>>, Vec<CellTiming>) {
    let report = scheduler.run_cells(cell_specs(scale, benchmarks));
    let timings = report.timings();
    let mut cells = Vec::new();
    let mut failed = Vec::new();
    for r in report.cells {
        match r.outcome {
            Ok(c) => cells.push(c),
            Err(_) => failed.push(r.key),
        }
    }
    let table = if failed.is_empty() {
        Ok(table_from_cells(&cells))
    } else {
        Err(failed)
    };
    (table, timings)
}

impl Table2 {
    /// Renders the table with the paper's values alongside.
    #[must_use]
    pub fn render(&self) -> String {
        let mut t = Table::with_headers(&[
            "bench",
            "mpku",
            "mpku(paper)",
            "20c4w ex%",
            "20c4w fe%",
            "(paper)",
            "20c8w ex%",
            "20c8w fe%",
            "(paper)",
            "40c4w ex%",
            "40c4w fe%",
            "(paper)",
        ]);
        t.numeric();
        for (row, p) in self.rows.iter().zip(paper::TABLE2) {
            t.row(vec![
                row.bench.clone(),
                format!("{:.1}", row.mpku),
                format!("{:.1}", p.1),
                format!("{:.0}", row.waste[0].executed),
                format!("{:.0}", row.waste[0].fetched),
                format!("{:.0}", p.2),
                format!("{:.0}", row.waste[1].executed),
                format!("{:.0}", row.waste[1].fetched),
                format!("{:.0}", p.3),
                format!("{:.0}", row.waste[2].executed),
                format!("{:.0}", row.waste[2].fetched),
                format!("{:.0}", p.4),
            ]);
        }
        let avg = |f: &dyn Fn(&Table2Row) -> f64| {
            stats::mean(&self.rows.iter().map(f).collect::<Vec<_>>()).unwrap_or(0.0)
        };
        t.row(vec![
            "average".into(),
            format!("{:.1}", avg(&|r| r.mpku)),
            format!("{:.1}", paper::TABLE2_AVG.0),
            format!("{:.0}", avg(&|r| r.waste[0].executed)),
            format!("{:.0}", avg(&|r| r.waste[0].fetched)),
            format!("{:.0}", paper::TABLE2_AVG.1),
            format!("{:.0}", avg(&|r| r.waste[1].executed)),
            format!("{:.0}", avg(&|r| r.waste[1].fetched)),
            format!("{:.0}", paper::TABLE2_AVG.2),
            format!("{:.0}", avg(&|r| r.waste[2].executed)),
            format!("{:.0}", avg(&|r| r.waste[2].fetched)),
            format!("{:.0}", paper::TABLE2_AVG.3),
        ]);
        format!(
            "Table 2: speculation waste (ex = executed, fe = fetched; paper reports executed)\n{}",
            t.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_match_paper() {
        let s = shapes();
        assert_eq!(s[0].1.width, 4);
        assert_eq!(s[1].1.width, 8);
        assert_eq!(s[2].1.frontend_depth, 34);
    }

    /// The spec-vs-code equivalence contract at its root: the
    /// scheduled (resumable, spec-driven) path must be bit-identical
    /// to the direct path, row for row.
    #[test]
    fn scheduled_path_matches_direct_path_bit_exactly() {
        let scale = Scale::tiny();
        let benches = vec![perconf_workload::spec2000_config("gcc").unwrap()];
        let direct = run_on(scale, &benches);
        let mut scheduler = Scheduler::new(crate::runner::SchedulerConfig::for_run(2, None));
        let (scheduled, timings) = run_scheduled(scale, &benches, &mut scheduler);
        assert_eq!(timings.len(), shapes().len());
        assert_eq!(scheduled.expect("no failed cells"), direct);
    }
}
