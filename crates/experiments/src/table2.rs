//! Table 2 — benchmark speculation-waste characteristics: branch
//! mispredicts per 1000 uops, and the % increase in uops executed
//! (and fetched) due to branch mispredictions on the 20-cycle 4-wide,
//! 20-cycle 8-wide and 40-cycle 4-wide pipelines.

use crate::common::{run_pipeline, PredictorKind, Scale};
use crate::paper;
use perconf_core::{AlwaysHigh, SpeculationController};
use perconf_metrics::{stats, Table};
use perconf_pipeline::PipelineConfig;
use serde::{Deserialize, Serialize};

/// One benchmark's row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table2Row {
    /// Benchmark name.
    pub bench: String,
    /// Measured branch mispredicts per 1000 uops (on the deep pipe).
    pub mpku: f64,
    /// % extra uops executed / fetched on each shape.
    pub waste: [WastePair; 3],
}

/// Executed/fetched waste percentages for one pipeline shape.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WastePair {
    /// % increase in uops executed due to mispredictions.
    pub executed: f64,
    /// % increase in uops fetched due to mispredictions.
    pub fetched: f64,
}

/// Full Table 2 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table2 {
    /// Per-benchmark rows in the paper's order.
    pub rows: Vec<Table2Row>,
}

/// The three pipeline shapes of Table 2, in column order.
#[must_use]
pub fn shapes() -> [(&'static str, PipelineConfig); 3] {
    [
        ("20c/4w", PipelineConfig::shallow()),
        ("20c/8w", PipelineConfig::wide()),
        ("40c/4w", PipelineConfig::deep()),
    ]
}

/// Runs the Table 2 experiment over every benchmark.
#[must_use]
pub fn run(scale: Scale) -> Table2 {
    run_on(scale, &crate::common::benchmarks())
}

/// Runs Table 2 over an explicit benchmark list (reduced-scale golden
/// tests, focused studies). Benchmarks fan out over
/// [`common::jobs`](crate::common::jobs) worker threads; rows keep the
/// given order.
#[must_use]
pub fn run_on(scale: Scale, benchmarks: &[perconf_workload::WorkloadConfig]) -> Table2 {
    let rows = crate::common::par_map_ordered(crate::common::jobs(), benchmarks, |wl| {
        let mut waste = [WastePair {
            executed: 0.0,
            fetched: 0.0,
        }; 3];
        let mut mpku = 0.0;
        for (i, (_, cfg)) in shapes().into_iter().enumerate() {
            let ctl = SpeculationController::new(
                PredictorKind::BimodalGshare.build(),
                Box::new(AlwaysHigh) as Box<dyn perconf_core::SimEstimator>,
            );
            let s = run_pipeline(wl, cfg, ctl, scale);
            waste[i] = WastePair {
                executed: s.wasted_execution_frac() * 100.0,
                fetched: if s.fetched_correct == 0 {
                    0.0
                } else {
                    s.fetched_wrong as f64 * 100.0 / s.fetched_correct as f64
                },
            };
            if i == 2 {
                mpku = s.mpku();
            }
        }
        Table2Row {
            bench: wl.name.clone(),
            mpku,
            waste,
        }
    });
    Table2 { rows }
}

impl Table2 {
    /// Renders the table with the paper's values alongside.
    #[must_use]
    pub fn render(&self) -> String {
        let mut t = Table::with_headers(&[
            "bench",
            "mpku",
            "mpku(paper)",
            "20c4w ex%",
            "20c4w fe%",
            "(paper)",
            "20c8w ex%",
            "20c8w fe%",
            "(paper)",
            "40c4w ex%",
            "40c4w fe%",
            "(paper)",
        ]);
        t.numeric();
        for (row, p) in self.rows.iter().zip(paper::TABLE2) {
            t.row(vec![
                row.bench.clone(),
                format!("{:.1}", row.mpku),
                format!("{:.1}", p.1),
                format!("{:.0}", row.waste[0].executed),
                format!("{:.0}", row.waste[0].fetched),
                format!("{:.0}", p.2),
                format!("{:.0}", row.waste[1].executed),
                format!("{:.0}", row.waste[1].fetched),
                format!("{:.0}", p.3),
                format!("{:.0}", row.waste[2].executed),
                format!("{:.0}", row.waste[2].fetched),
                format!("{:.0}", p.4),
            ]);
        }
        let avg = |f: &dyn Fn(&Table2Row) -> f64| {
            stats::mean(&self.rows.iter().map(f).collect::<Vec<_>>()).unwrap_or(0.0)
        };
        t.row(vec![
            "average".into(),
            format!("{:.1}", avg(&|r| r.mpku)),
            format!("{:.1}", paper::TABLE2_AVG.0),
            format!("{:.0}", avg(&|r| r.waste[0].executed)),
            format!("{:.0}", avg(&|r| r.waste[0].fetched)),
            format!("{:.0}", paper::TABLE2_AVG.1),
            format!("{:.0}", avg(&|r| r.waste[1].executed)),
            format!("{:.0}", avg(&|r| r.waste[1].fetched)),
            format!("{:.0}", paper::TABLE2_AVG.2),
            format!("{:.0}", avg(&|r| r.waste[2].executed)),
            format!("{:.0}", avg(&|r| r.waste[2].fetched)),
            format!("{:.0}", paper::TABLE2_AVG.3),
        ]);
        format!(
            "Table 2: speculation waste (ex = executed, fe = fetched; paper reports executed)\n{}",
            t.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_match_paper() {
        let s = shapes();
        assert_eq!(s[0].1.width, 4);
        assert_eq!(s[1].1.width, 8);
        assert_eq!(s[2].1.frontend_depth, 34);
    }
}
