//! The distributed-sweep worker loop: claim, execute, publish.
//!
//! A worker is one OS process running this loop against a shared
//! [`Queue`]:
//!
//! 1. [`reap`](Queue::reap) expired leases (so dead peers' cells come
//!    back), then try to [`claim`](Queue::claim) a cell;
//! 2. execute it through [`Runner::run_cell_report`] — the same
//!    engine (watchdog, retries, mid-cell `.part.psnap` checkpoints)
//!    the single-process sweep uses, pointed at the queue's shared
//!    `cells/` directory so an orphaned partial from a dead peer is
//!    picked up by whoever claims the cell next;
//! 3. heartbeat the lease from a side thread while the cell runs;
//! 4. on success, [`complete`](Queue::complete) then
//!    [`publish_result`](Queue::publish_result) — in that order: a
//!    failed `complete` means the lease was reaped while we ran, the
//!    result is *late*, and publishing it could race the new owner,
//!    so it is dropped (and counted).
//!
//! The loop exits when a claim attempt finds nothing *and* nothing is
//! pending. Every decision the worker makes affects only scheduling;
//! cell bytes are fixed by `faults::cell_seed`, so any interleaving of
//! any number of workers merges to identical output.
//!
//! # Chaos
//!
//! A worker may carry a chaos script (`claim-index = action` pairs,
//! rendered by [`perconf_faults::process::render_script`]) injecting
//! process-level faults at claim points: exiting with [`CHAOS_EXIT`]
//! on claim, exiting as soon as the running cell writes a mid-cell
//! checkpoint, stalling past the lease without heartbeats, or plain
//! delay. This is how the chaos tests kill half the fleet mid-sweep
//! deterministically.

use super::queue::{Claim, Queue};
use super::timings::Timings;
use crate::faults::{cell_seed, run_cell};
use crate::runner::{CellReport, Runner, RunnerConfig};
use perconf_faults::ChaosAction;
use perconf_obs::{CounterSnapshot, Counters};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// Exit status of a chaos-scripted death, distinct from ordinary
/// failure codes so the coordinator can tell scripted kills from real
/// crashes in its accounting.
pub const CHAOS_EXIT: i32 = 137;

/// Configuration of one worker process.
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// Root of the shared queue directory.
    pub queue_root: PathBuf,
    /// This worker's id (appears in lease names and stats files; `@`
    /// and other exotic characters are sanitized away).
    pub worker_id: String,
    /// Chaos script: `(claim index, action)` pairs. Empty = run clean.
    pub script: Vec<(u64, ChaosAction)>,
    /// Pacing (claim poll, heartbeat cadence, queue-open retries);
    /// see [`Timings`]. The lease *duration* comes from the queue
    /// manifest — the coordinator's choice — never from here.
    pub timings: Timings,
    /// Per-attempt watchdog for cell execution (`None` waits forever).
    pub timeout: Option<Duration>,
}

impl WorkerConfig {
    /// A clean (chaos-free) worker with default pacing.
    #[must_use]
    pub fn new(queue_root: PathBuf, worker_id: impl Into<String>) -> Self {
        Self {
            queue_root,
            worker_id: worker_id.into(),
            script: Vec::new(),
            timings: Timings::from_env(),
            timeout: None,
        }
    }
}

/// Keeps a claim's lease fresh from a side thread while the cell runs.
/// Dropping (or [`stop`](Heartbeat::stop)ping) it ends the thread.
struct Heartbeat {
    stop: Arc<AtomicBool>,
    handle: Option<thread::JoinHandle<()>>,
}

impl Heartbeat {
    fn start(queue: &Queue, claim: &Claim, interval: Duration) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let queue = queue.clone();
        let claim = claim.clone();
        let handle = thread::spawn(move || {
            while !flag.load(Ordering::Relaxed) {
                // A false return means the lease was reaped; keep
                // looping anyway — the worker's `complete` call is the
                // authoritative late-result detector.
                let _ = queue.heartbeat(&claim);
                // Sleep in short slices so stop() returns promptly.
                let mut left = interval;
                while !flag.load(Ordering::Relaxed) && left > Duration::ZERO {
                    let step = left.min(Duration::from_millis(10));
                    thread::sleep(step);
                    left = left.saturating_sub(step);
                }
            }
        });
        Self {
            stop,
            handle: Some(handle),
        }
    }

    fn stop(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Heartbeat {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Arms a watcher that exits the process with [`CHAOS_EXIT`] as soon
/// as `partial` exists — i.e. as soon as the running cell has written
/// a mid-cell checkpoint some successor can resume from. The watcher
/// disarms when `stop` is set (cell finished before it fired).
fn arm_mid_cell_killer(partial: &Path, stop: &Arc<AtomicBool>) {
    let partial = partial.to_owned();
    let stop = Arc::clone(stop);
    thread::spawn(move || {
        while !stop.load(Ordering::Relaxed) {
            if partial.exists() {
                std::process::exit(CHAOS_EXIT);
            }
            thread::sleep(Duration::from_millis(2));
        }
    });
}

/// Runs the worker loop to queue exhaustion. Returns this worker's
/// scheduling counters (also persisted to `workers/<id>.json` in the
/// queue after every cell, so a killed worker's partial statistics
/// survive it).
///
/// # Errors
///
/// Only setup failures (unopenable queue) error out; per-cell failures
/// are recorded in the queue (failure markers, counters) and the loop
/// continues.
pub fn run_worker(cfg: &WorkerConfig) -> Result<CounterSnapshot, String> {
    // The coordinator creates the queue before spawning workers, but a
    // manually started worker may race it — retry briefly.
    let mut queue = Queue::open(&cfg.queue_root);
    for _ in 0..cfg.timings.open_retries {
        if queue.is_ok() {
            break;
        }
        thread::sleep(cfg.timings.open_retry_delay);
        queue = Queue::open(&cfg.queue_root);
    }
    let queue = queue?;
    let lease = Duration::from_millis(queue.manifest().lease_ms);
    let heartbeat_every = cfg.timings.heartbeat_interval(lease);
    let manifest = queue.manifest().clone();

    let mut counters = Counters::new();
    for name in [
        "cells_claimed",
        "cells_completed",
        "cells_failed",
        "cells_resumed_final",
        "cells_resumed_mid_cell",
        "cell_attempts",
        "late_results_ignored",
        "leases_reaped",
        "chaos_stalls",
        "chaos_delays",
    ] {
        counters.counter("distrib", name, 0);
    }

    let mut runner = Runner::new(RunnerConfig {
        checkpoint_dir: Some(queue.cells_dir()),
        resume: true,
        timeout: cfg.timeout,
        retries: 1,
        backoff: cfg.timings.cell_backoff,
        ..RunnerConfig::default()
    });

    let mut claim_index: u64 = 0;
    loop {
        let reaped = queue.reap();
        counters.counter("distrib", "leases_reaped", reaped as u64);

        let Some(claim) = queue.claim(&cfg.worker_id) else {
            if queue.pending() == 0 {
                break;
            }
            // Everything left is leased to peers; wait for them to
            // finish or for their leases to expire.
            thread::sleep(cfg.timings.claim_poll);
            continue;
        };
        counters.counter("distrib", "cells_claimed", 1);
        let action = cfg
            .script
            .iter()
            .find(|(at, _)| *at == claim_index)
            .map(|(_, a)| *a);
        claim_index += 1;

        if action == Some(ChaosAction::KillOnClaim) {
            queue.write_worker_stats(&cfg.worker_id, &counters.snapshot());
            std::process::exit(CHAOS_EXIT);
        }

        let desc = claim.desc.clone();
        let mid_cell_stop = Arc::new(AtomicBool::new(false));
        match action {
            Some(ChaosAction::Stall { ms }) => {
                // Deliberately no heartbeat: outlive the lease so the
                // cell is requeued under our feet and our eventual
                // completion arrives late.
                counters.counter("distrib", "chaos_stalls", 1);
                thread::sleep(Duration::from_millis(ms));
            }
            Some(ChaosAction::Delay { ms }) => {
                counters.counter("distrib", "chaos_delays", 1);
                let hb = Heartbeat::start(&queue, &claim, heartbeat_every);
                thread::sleep(Duration::from_millis(ms));
                hb.stop();
            }
            Some(ChaosAction::KillMidCell) => {
                if let Some(partial) = runner.partial_path(&desc.key) {
                    arm_mid_cell_killer(&partial, &mid_cell_stop);
                }
            }
            Some(ChaosAction::KillOnClaim) | None => {}
        }

        let hb = Heartbeat::start(&queue, &claim, heartbeat_every);
        let report: CellReport<crate::faults::FaultCell> = {
            let (bench, est) = (desc.benchmark.clone(), desc.estimator.clone());
            let (rate, scale) = (desc.rate, manifest.scale);
            let cs = cell_seed(manifest.seed, &bench, &est, desc.rate_idx);
            runner.run_cell_report(&desc.key, move |chk| {
                run_cell(&bench, &est, rate, cs, scale, chk)
            })
        };
        hb.stop();
        mid_cell_stop.store(true, Ordering::Relaxed);

        counters.counter("distrib", "cell_attempts", u64::from(report.attempts));
        if report.resumed {
            counters.counter("distrib", "cells_resumed_final", 1);
        }
        if report.resumed_mid_cell {
            counters.counter("distrib", "cells_resumed_mid_cell", 1);
        }
        match &report.outcome {
            Ok(cell) => {
                if queue.complete(&claim) {
                    queue.publish_result(&desc.key, cell);
                    counters.counter("distrib", "cells_completed", 1);
                } else {
                    // Reaped while we ran: the cell belongs to someone
                    // else now. Publishing would race the new owner —
                    // drop our (byte-identical, but late) result.
                    counters.counter("distrib", "late_results_ignored", 1);
                }
            }
            Err(e) => {
                eprintln!("worker {}: cell {} failed: {e}", cfg.worker_id, desc.key);
                counters.counter("distrib", "cells_failed", 1);
                // Mark the cell done even though it failed: the retry
                // budget is the runner's, not the queue's, and the
                // failure marker in cells/ carries the error to the
                // coordinator's merge. (If the lease was reaped, the
                // rename fails and a peer retries the cell instead.)
                let _ = queue.complete(&claim);
            }
        }
        queue.write_worker_stats(&cfg.worker_id, &counters.snapshot());
    }

    let snapshot = counters.snapshot();
    queue.write_worker_stats(&cfg.worker_id, &snapshot);
    Ok(snapshot)
}
