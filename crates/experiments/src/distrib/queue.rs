//! Filesystem-backed, lease-based cell queue for distributed sweeps.
//!
//! The queue is a directory tree; every protocol step is a single
//! atomic `rename`, so any number of worker processes can race on it
//! without locks and a `kill -9` at any instant leaves the queue in a
//! state some other worker can repair:
//!
//! ```text
//! <root>/
//!   manifest.json            what is being swept (seed, scale, grid, lease)
//!   todo/<key>               unclaimed cells (content: the CellDesc)
//!   lease/<key>@<wid>@<ms>   claimed cells; mtime + embedded ms = deadline
//!   done/<key>               completed cells (claim → done rename)
//!   cells/                   runner checkpoint dir (<key>.json,
//!                            <key>.part.psnap, <key>.failed.json)
//!   results/<key>.psnap      published results (checksummed snapfile)
//!   workers/<wid>.json       per-worker counter snapshots (not merged
//!                            into byte-compared output)
//!   report.json              coordinator's sweep report (wall-clock
//!                            and scheduling stats; never diffed)
//! ```
//!
//! * **claim** — `rename(todo/<key>, lease/<key>@<wid>@<ms>)`; the
//!   rename is the arbiter, exactly one racing worker wins. The lease
//!   file's mtime is refreshed to "now" on claim and by heartbeats.
//! * **complete** — `rename(lease-entry, done/<key>)`. If the lease
//!   was reaped in the meantime the source is gone, the rename fails,
//!   and the worker knows its result is *late*: it must not publish.
//!   That failure is the exactly-once guarantee.
//! * **reap** — a lease whose `mtime + ms` deadline has passed is
//!   renamed back to `todo/<key>` (content is still the `CellDesc`),
//!   making a dead or hung worker's cell claimable again. The next
//!   claimer resumes from the dead peer's orphaned `.part.psnap` in
//!   `cells/` through the ordinary runner resume path.
//!
//! Corrupt entries never abort a sweep: an unreadable `CellDesc` is
//! reconstructed from the manifest grid by key (or dropped if the key
//! is foreign), a corrupt result file is deleted and recomputed, and
//! every such event is counted via
//! [`note_degraded`](crate::runner::note_degraded) so the binaries can
//! exit with the documented "degraded" code.
//!
//! Determinism: nothing in this module influences cell *content*. A
//! cell's bytes depend only on `(seed, coordinates, scale)` via
//! [`faults::cell_seed`](crate::faults::cell_seed); the queue decides
//! only *which process* computes them. Merging reads results in
//! canonical grid order, so 1 worker, N workers, and
//! kill-half-the-workers all serialize to identical bytes.

use crate::common::Scale;
use crate::faults::{cell_key, FaultCell, Grid};
use crate::runner::note_degraded;
use crate::snapfile;
use perconf_obs::CounterSnapshot;
use serde::{Deserialize, Serialize};
use std::io;
use std::path::{Path, PathBuf};
use std::time::{Duration, SystemTime};

/// Current queue / manifest format version; readers reject others.
pub const MANIFEST_VERSION: u32 = 1;

/// What a queue is sweeping. Written once at queue creation; workers
/// read it instead of taking sweep parameters on their command line,
/// so a worker can never disagree with its coordinator about the grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Manifest {
    /// Queue format version ([`MANIFEST_VERSION`]).
    pub version: u32,
    /// Fault-injection campaign seed.
    pub seed: u64,
    /// Run scale for every cell.
    pub scale: Scale,
    /// The design-space grid being swept.
    pub grid: Grid,
    /// Lease duration in milliseconds: a claimed cell whose lease
    /// mtime is older than this is considered abandoned and requeued.
    pub lease_ms: u64,
}

impl Manifest {
    /// Cell descriptors in canonical grid order (estimator-major, then
    /// benchmark, then rate) — the order every merge walks.
    #[must_use]
    pub fn cells(&self) -> Vec<CellDesc> {
        let mut out = Vec::with_capacity(self.grid.cell_count());
        for est in &self.grid.estimators {
            for bench in &self.grid.benchmarks {
                for (ri, &rate) in self.grid.rates.iter().enumerate() {
                    out.push(CellDesc {
                        key: cell_key(self.seed, est, bench, ri),
                        estimator: est.clone(),
                        benchmark: bench.clone(),
                        rate,
                        rate_idx: ri,
                    });
                }
            }
        }
        out
    }

    /// Reconstructs a descriptor from its key alone — the degraded
    /// path for a todo entry whose JSON content was corrupted. The key
    /// *is* the identity (it encodes seed and coordinates), so a
    /// readable filename is enough to recompute the cell.
    #[must_use]
    pub fn desc_for_key(&self, key: &str) -> Option<CellDesc> {
        self.cells().into_iter().find(|c| c.key == key)
    }
}

/// One sweep cell as carried through the queue.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellDesc {
    /// Canonical cell key ([`cell_key`]); also the queue filename.
    pub key: String,
    /// Estimator name.
    pub estimator: String,
    /// Benchmark name.
    pub benchmark: String,
    /// Per-access fault rate.
    pub rate: f64,
    /// Index of `rate` in the grid's rate list (part of the seed).
    pub rate_idx: usize,
}

/// A successfully claimed cell: the descriptor plus the lease entry
/// the claim created. Completion and heartbeats go through the lease
/// path; once the lease disappears (reaped), both fail and the holder
/// knows it has been superseded.
#[derive(Debug, Clone)]
pub struct Claim {
    /// The claimed cell.
    pub desc: CellDesc,
    lease_path: PathBuf,
}

impl Claim {
    /// The lease file backing this claim (exists until completion or
    /// reaping).
    #[must_use]
    pub fn lease_path(&self) -> &Path {
        &self.lease_path
    }
}

/// Handle on one on-disk queue.
#[derive(Debug, Clone)]
pub struct Queue {
    root: PathBuf,
    manifest: Manifest,
}

/// Sets a file's mtime to now (used for lease claims and heartbeats).
// Lease heartbeats are wall-clock by design; mtimes never reach results.
#[allow(clippy::disallowed_methods)]
fn touch(path: &Path) -> io::Result<()> {
    std::fs::File::options()
        .write(true)
        .open(path)?
        .set_modified(SystemTime::now())
}

/// Writes `text` to `path` atomically via a pid-unique sibling temp
/// file, so concurrent writers can never leave a torn file under the
/// final name.
fn write_atomic(path: &Path, text: &str) -> io::Result<()> {
    let mut tmp_name = path
        .file_name()
        .map_or_else(|| "out".into(), std::ffi::OsStr::to_os_string);
    tmp_name.push(format!(".tmp{}", std::process::id()));
    let tmp = path.with_file_name(tmp_name);
    std::fs::write(&tmp, text)?;
    std::fs::rename(&tmp, path)
}

/// Maps a worker id to the restricted alphabet lease filenames parse
/// (`@` is the field separator, so it must never appear in an id).
fn sanitize_worker(id: &str) -> String {
    id.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

impl Queue {
    /// Creates (or re-creates) the queue directory tree and writes the
    /// manifest. Existing cell/lease/result state is left untouched,
    /// so re-creating over a partially executed queue resumes it.
    ///
    /// # Errors
    ///
    /// Any filesystem failure, rendered.
    pub fn create(root: &Path, manifest: &Manifest) -> Result<Self, String> {
        let q = Self {
            root: root.to_owned(),
            manifest: manifest.clone(),
        };
        for d in [
            q.todo_dir(),
            q.lease_dir(),
            q.done_dir(),
            q.cells_dir(),
            q.results_dir(),
            q.workers_dir(),
        ] {
            std::fs::create_dir_all(&d)
                .map_err(|e| format!("cannot create {}: {e}", d.display()))?;
        }
        let text = serde_json::to_string_pretty(manifest)
            .map_err(|e| format!("cannot serialize manifest: {e}"))?;
        write_atomic(&q.manifest_path(), &text)
            .map_err(|e| format!("cannot write {}: {e}", q.manifest_path().display()))?;
        Ok(q)
    }

    /// Opens an existing queue by reading its manifest.
    ///
    /// # Errors
    ///
    /// A missing, unreadable, corrupt, or version-mismatched manifest.
    /// Callers that can reconstruct the manifest (the coordinator)
    /// should treat a *corrupt* manifest as degraded input and
    /// [`create`](Self::create) over it.
    pub fn open(root: &Path) -> Result<Self, String> {
        let path = root.join("manifest.json");
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let manifest: Manifest = serde_json::from_str(&text)
            .map_err(|e| format!("corrupt manifest {}: {e}", path.display()))?;
        if manifest.version != MANIFEST_VERSION {
            return Err(format!(
                "manifest {} has version {} (this build knows {MANIFEST_VERSION})",
                path.display(),
                manifest.version
            ));
        }
        Ok(Self {
            root: root.to_owned(),
            manifest,
        })
    }

    /// The manifest this queue was created with.
    #[must_use]
    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    /// The queue root directory.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Path of the manifest file.
    #[must_use]
    pub fn manifest_path(&self) -> PathBuf {
        self.root.join("manifest.json")
    }

    fn todo_dir(&self) -> PathBuf {
        self.root.join("todo")
    }

    fn lease_dir(&self) -> PathBuf {
        self.root.join("lease")
    }

    fn done_dir(&self) -> PathBuf {
        self.root.join("done")
    }

    /// The runner checkpoint directory every worker shares — where
    /// final checkpoints, mid-cell partials, and failure markers live.
    #[must_use]
    pub fn cells_dir(&self) -> PathBuf {
        self.root.join("cells")
    }

    fn results_dir(&self) -> PathBuf {
        self.root.join("results")
    }

    fn workers_dir(&self) -> PathBuf {
        self.root.join("workers")
    }

    /// Path of a cell's published (checksummed) result file.
    #[must_use]
    pub fn result_path(&self, key: &str) -> PathBuf {
        self.results_dir().join(format!("{key}.psnap"))
    }

    fn sorted_names(dir: &Path) -> Vec<String> {
        let mut names: Vec<String> = std::fs::read_dir(dir)
            .map(|rd| {
                rd.flatten()
                    .filter_map(|e| e.file_name().into_string().ok())
                    .filter(|n| !n.contains(".tmp"))
                    .collect()
            })
            .unwrap_or_default();
        names.sort_unstable();
        names
    }

    /// Enqueues every manifest cell that is not already queued,
    /// leased, done, or published. Idempotent: safe to call on a
    /// half-finished queue (crash-and-restart of the coordinator).
    ///
    /// # Errors
    ///
    /// Any filesystem failure, rendered.
    pub fn enqueue_missing(&self) -> Result<usize, String> {
        let leased: Vec<String> = Self::sorted_names(&self.lease_dir())
            .iter()
            .filter_map(|n| n.split('@').next().map(str::to_owned))
            .collect();
        let mut added = 0;
        for desc in self.manifest.cells() {
            let todo = self.todo_dir().join(&desc.key);
            if todo.exists()
                || self.done_dir().join(&desc.key).exists()
                || self.result_path(&desc.key).exists()
                || leased.iter().any(|k| k == &desc.key)
            {
                continue;
            }
            let text = serde_json::to_string_pretty(&desc)
                .map_err(|e| format!("cannot serialize cell {}: {e}", desc.key))?;
            write_atomic(&todo, &text).map_err(|e| format!("cannot enqueue {}: {e}", desc.key))?;
            added += 1;
        }
        Ok(added)
    }

    /// Tries to claim one cell for `worker`. Walks the todo entries in
    /// sorted order and races on each with an atomic rename; the first
    /// rename that succeeds is the claim. Returns `None` when nothing
    /// is claimable right now (queue drained *or* everything currently
    /// leased — distinguish via [`pending`](Self::pending)).
    #[must_use]
    pub fn claim(&self, worker: &str) -> Option<Claim> {
        let worker = sanitize_worker(worker);
        for name in Self::sorted_names(&self.todo_dir()) {
            let src = self.todo_dir().join(&name);
            let dst = self
                .lease_dir()
                .join(format!("{name}@{worker}@{}", self.manifest.lease_ms));
            if std::fs::rename(&src, &dst).is_err() {
                continue; // lost the race for this cell; try the next
            }
            // The rename preserves the enqueue-time mtime; refresh it
            // or the fresh lease may be born expired.
            if let Err(e) = touch(&dst) {
                eprintln!("warning: cannot refresh lease {}: {e}", dst.display());
            }
            let desc = match std::fs::read_to_string(&dst)
                .ok()
                .and_then(|t| serde_json::from_str::<CellDesc>(&t).ok())
            {
                Some(d) if d.key == name => d,
                _ => {
                    // Corrupt or mismatched content: the filename is
                    // the identity, reconstruct from the manifest.
                    eprintln!(
                        "warning: corrupt queue entry for {name}; reconstructing from manifest"
                    );
                    note_degraded();
                    match self.manifest.desc_for_key(&name) {
                        Some(d) => {
                            // Repair the lease content so a later
                            // reap/claim cycle sees clean JSON.
                            if let Ok(text) = serde_json::to_string_pretty(&d) {
                                let _ = write_atomic(&dst, &text);
                            }
                            d
                        }
                        None => {
                            // A key foreign to this sweep: drop it so
                            // it cannot wedge the queue.
                            eprintln!("warning: dropping foreign queue entry {name}");
                            let _ = std::fs::remove_file(&dst);
                            continue;
                        }
                    }
                }
            };
            return Some(Claim {
                desc,
                lease_path: dst,
            });
        }
        None
    }

    /// Refreshes a claim's lease deadline. Returns `false` when the
    /// lease no longer exists — it was reaped, and the holder's
    /// eventual result will be late.
    pub fn heartbeat(&self, claim: &Claim) -> bool {
        touch(&claim.lease_path).is_ok()
    }

    /// Marks a claimed cell complete: `rename(lease, done/<key>)`.
    /// Returns `false` when the lease was already reaped — the
    /// exactly-once gate: a `false` here means another worker owns the
    /// cell now and this worker must **not** publish its result.
    pub fn complete(&self, claim: &Claim) -> bool {
        std::fs::rename(&claim.lease_path, self.done_dir().join(&claim.desc.key)).is_ok()
    }

    /// Requeues every expired lease (mtime + embedded duration in the
    /// past) and removes malformed lease entries that could otherwise
    /// wedge the queue forever. Returns the number of cells requeued.
    /// Safe to call concurrently from every worker: the rename back to
    /// `todo/` is atomic and only one reaper wins.
    // Lease expiry is wall-clock by design; mtimes never reach results.
    #[allow(clippy::disallowed_methods)]
    pub fn reap(&self) -> usize {
        let now = SystemTime::now();
        let mut requeued = 0;
        for name in Self::sorted_names(&self.lease_dir()) {
            let path = self.lease_dir().join(&name);
            let mut fields = name.rsplitn(3, '@');
            let (ms, _worker, key) = match (fields.next(), fields.next(), fields.next()) {
                (Some(ms), Some(w), Some(k)) => match ms.parse::<u64>() {
                    Ok(ms) => (ms, w, k),
                    Err(_) => {
                        eprintln!("warning: removing malformed lease entry {name}");
                        note_degraded();
                        let _ = std::fs::remove_file(&path);
                        continue;
                    }
                },
                _ => {
                    eprintln!("warning: removing malformed lease entry {name}");
                    note_degraded();
                    let _ = std::fs::remove_file(&path);
                    continue;
                }
            };
            let Ok(meta) = std::fs::metadata(&path) else {
                continue; // completed or reaped by someone else
            };
            let expired = meta
                .modified()
                .ok()
                .and_then(|m| now.duration_since(m).ok())
                .is_some_and(|age| age > Duration::from_millis(ms));
            if expired && std::fs::rename(&path, self.todo_dir().join(key)).is_ok() {
                requeued += 1;
            }
        }
        requeued
    }

    /// Cells not yet completed: todo entries plus live leases. Workers
    /// exit when this reaches zero.
    #[must_use]
    pub fn pending(&self) -> usize {
        Self::sorted_names(&self.todo_dir()).len() + Self::sorted_names(&self.lease_dir()).len()
    }

    /// Whether a cell has been marked complete.
    #[must_use]
    pub fn is_done(&self, key: &str) -> bool {
        self.done_dir().join(key).exists()
    }

    /// Publishes a cell result as a checksummed snapfile. Best-effort:
    /// a publish failure warns and continues (the coordinator's merge
    /// falls back to the runner checkpoint, then to recompute).
    pub fn publish_result(&self, key: &str, cell: &FaultCell) {
        let path = self.result_path(key);
        match serde_json::to_value(cell) {
            Ok(v) => {
                if let Err(e) = snapfile::write(&path, &v) {
                    eprintln!("warning: cannot publish result {}: {e}", path.display());
                }
            }
            Err(e) => eprintln!("warning: cannot serialize result {key}: {e}"),
        }
    }

    /// Reads a published result back, verifying the snapfile checksum.
    /// `None` when absent; a *corrupt* file is deleted, counted as
    /// degraded input, and also reported as `None` so the caller
    /// recomputes instead of aborting.
    #[must_use]
    pub fn read_result(&self, key: &str) -> Option<FaultCell> {
        let path = self.result_path(key);
        if !path.exists() {
            return None;
        }
        let parsed = snapfile::read(&path)
            .map_err(|e| e.to_string())
            .and_then(|v| serde_json::from_value(&v).map_err(|e| e.to_string()));
        match parsed {
            Ok(cell) => Some(cell),
            Err(e) => {
                eprintln!(
                    "warning: discarding unusable result {}: {e}",
                    path.display()
                );
                note_degraded();
                let _ = std::fs::remove_file(&path);
                None
            }
        }
    }

    /// Persists a worker's counter snapshot (overwrites the previous
    /// one for the same worker id). These are scheduling statistics —
    /// nondeterministic by nature — and are merged into the
    /// coordinator's report, never into the byte-compared sweep output.
    pub fn write_worker_stats(&self, worker: &str, snapshot: &CounterSnapshot) {
        let path = self
            .workers_dir()
            .join(format!("{}.json", sanitize_worker(worker)));
        match serde_json::to_string_pretty(snapshot) {
            Ok(text) => {
                if let Err(e) = write_atomic(&path, &text) {
                    eprintln!("warning: cannot write worker stats {}: {e}", path.display());
                }
            }
            Err(e) => eprintln!("warning: cannot serialize worker stats: {e}"),
        }
    }

    /// Reads every worker's counter snapshot (unreadable ones are
    /// skipped with a degraded-input note).
    #[must_use]
    pub fn read_worker_stats(&self) -> Vec<CounterSnapshot> {
        Self::sorted_names(&self.workers_dir())
            .iter()
            .filter(|n| n.ends_with(".json"))
            .filter_map(|n| {
                let path = self.workers_dir().join(n);
                let text = std::fs::read_to_string(&path).ok()?;
                match serde_json::from_str(&text) {
                    Ok(s) => Some(s),
                    Err(e) => {
                        eprintln!(
                            "warning: skipping unreadable worker stats {}: {e}",
                            path.display()
                        );
                        note_degraded();
                        None
                    }
                }
            })
            .collect()
    }
}
