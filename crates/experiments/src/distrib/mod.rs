//! Distributed sweep execution: a filesystem queue, lease-based work
//! claiming across worker *processes*, and a deterministic merge.
//!
//! The single-process sweep ([`faults::run_grid`](crate::faults::run_grid))
//! fans cells across threads; this module fans the same cells across
//! OS processes — possibly on a shared filesystem — while preserving
//! the project's determinism contract: **the merged output of a sweep
//! is byte-identical whether it ran in 1 process, N processes, or N
//! processes half of which were killed and respawned mid-sweep.**
//!
//! The pieces:
//!
//! * [`queue`] — the on-disk protocol: atomic-rename claims, mtime
//!   leases, reaping, checksummed result publication;
//! * [`worker`] — the per-process loop: claim, execute through the
//!   checkpointing [`Runner`](crate::runner::Runner), heartbeat,
//!   publish (with exactly-once late-result suppression);
//! * [`run_sweep`] — the coordinator: creates the queue, spawns and
//!   supervises workers (respawning dead ones with a bounded budget),
//!   drains stragglers inline, then merges results in canonical grid
//!   order with per-cell fallbacks (published result → runner final
//!   checkpoint → inline recompute, resuming any orphaned mid-cell
//!   checkpoint) so a crashed worker costs wall-clock, never bytes.
//!
//! Why the merge repairs the `results/` tree: CI diffs the result
//! *directories* of a clean run and a chaos run byte-for-byte. A
//! worker killed between marking a cell done and publishing its result
//! would otherwise leave a hole in `results/` that the merged table
//! papers over; the coordinator re-publishes every cell it recovers so
//! the trees converge too.
//!
//! Scheduling statistics (worker counters, respawn counts, chaos
//! exits) are inherently nondeterministic, so they live in the queue's
//! `report.json` and `workers/` — never in the byte-compared output.

pub mod queue;
pub mod timings;
pub mod worker;

pub use queue::{CellDesc, Claim, Manifest, Queue, MANIFEST_VERSION};
pub use timings::Timings;
pub use worker::{run_worker, WorkerConfig, CHAOS_EXIT};

use crate::common::Scale;
use crate::faults::{cell_seed, run_cell, table_from_cells, FaultCell, FaultTable, Grid};
use crate::runner::{gc_dir, note_degraded, GcReport, Runner, RunnerConfig};
use perconf_faults::process::render_script;
use perconf_faults::{ChaosConfig, ChaosPlan};
use perconf_obs::CounterSnapshot;
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Coordinator-side configuration of one distributed sweep.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Queue directory (created if missing; a partially executed queue
    /// is resumed, not restarted).
    pub queue_root: PathBuf,
    /// Worker processes to spawn. `0` and `1` run the worker loop
    /// inline in the coordinator (no subprocess) unless chaos is
    /// configured, since a chaos kill must not take the coordinator
    /// with it.
    pub workers: usize,
    /// Run scale for every cell.
    pub scale: Scale,
    /// Campaign seed.
    pub seed: u64,
    /// The grid to sweep.
    pub grid: Grid,
    /// Pacing: lease duration, heartbeat cadence, poll intervals and
    /// the respawn budget (defaults env-overridable via
    /// `PERCONF_DISTRIB_*`; `--lease-secs` wins over both).
    pub timings: Timings,
    /// Chaos campaign to script into the spawned workers.
    pub chaos: Option<ChaosConfig>,
    /// Per-attempt watchdog for cell execution.
    pub cell_timeout: Option<Duration>,
}

/// One cell that exhausted its retry budget, with the error class from
/// its failure marker (`panic`, `timeout`, `io`, `invariant`, or
/// `unknown` when the marker itself was unreadable).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FailedCell {
    /// Canonical cell key.
    pub key: String,
    /// Stable error-class tag ([`RunError::kind`](crate::runner::RunError::kind)).
    pub kind: String,
}

/// What the coordinator did to get the sweep finished — scheduling
/// and recovery accounting, all nondeterministic, all segregated from
/// the byte-compared sweep output (written to `report.json` in the
/// queue root).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DistribReport {
    /// Worker processes spawned initially.
    pub workers_spawned: u64,
    /// Dead workers replaced (within the respawn budget).
    pub workers_respawned: u64,
    /// Worker exits with the scripted chaos status ([`CHAOS_EXIT`]).
    pub chaos_exits: u64,
    /// Cells whose published result was missing but whose runner final
    /// checkpoint was intact — recovered and re-published without
    /// recomputation.
    pub cells_recovered_from_checkpoint: u64,
    /// Cells the coordinator had to recompute inline during the merge
    /// (no result, no checkpoint; any orphaned mid-cell partial is
    /// resumed).
    pub cells_recomputed_inline: u64,
    /// Cells that resumed from an orphaned mid-cell checkpoint —
    /// summed over every worker plus the coordinator's inline
    /// recomputes. Nonzero after a mid-cell kill proves the orphan
    /// resume path ran.
    pub cells_resumed_mid_cell: u64,
    /// Cells that failed terminally, with error classes.
    pub failed_cells: Vec<FailedCell>,
    /// Merged scheduling counters of every worker incarnation.
    pub worker_counters: CounterSnapshot,
}

fn manifest_for(cfg: &SweepConfig) -> Manifest {
    Manifest {
        version: MANIFEST_VERSION,
        seed: cfg.seed,
        scale: cfg.scale,
        grid: cfg.grid.clone(),
        lease_ms: u64::try_from(cfg.timings.lease.as_millis()).unwrap_or(u64::MAX),
    }
}

/// Opens the queue if it already matches this sweep, otherwise
/// (missing, corrupt, or stale manifest) creates it — degradation to
/// recompute, never an abort.
fn prepare_queue(cfg: &SweepConfig) -> Result<Queue, String> {
    let manifest = manifest_for(cfg);
    let manifest_path = cfg.queue_root.join("manifest.json");
    if manifest_path.exists() {
        match Queue::open(&cfg.queue_root) {
            Ok(q) if *q.manifest() == manifest => return Ok(q),
            Ok(_) => eprintln!(
                "note: queue {} belongs to a different sweep; rewriting its manifest \
                 (existing cell state for matching keys is kept)",
                cfg.queue_root.display()
            ),
            Err(e) => {
                eprintln!("warning: {e}; recreating queue (degraded to recompute)");
                note_degraded();
            }
        }
    }
    Queue::create(&cfg.queue_root, &manifest)
}

/// Spawns one worker process: the current executable re-invoked as
/// `repro sweep --queue <root> --worker-id <id>` (plus chaos script
/// and watchdog flags).
fn spawn_worker(
    queue_root: &Path,
    id: &str,
    chaos_script: &str,
    cell_timeout: Option<Duration>,
) -> Result<std::process::Child, String> {
    let exe = std::env::current_exe().map_err(|e| format!("cannot locate own executable: {e}"))?;
    let mut cmd = std::process::Command::new(exe);
    cmd.arg("sweep")
        .arg("--queue")
        .arg(queue_root)
        .arg("--worker-id")
        .arg(id);
    if !chaos_script.is_empty() {
        cmd.arg("--chaos-script").arg(chaos_script);
    }
    if let Some(t) = cell_timeout {
        cmd.arg("--cell-timeout").arg(t.as_secs().to_string());
    }
    cmd.spawn()
        .map_err(|e| format!("cannot spawn worker {id}: {e}"))
}

/// Runs a distributed sweep to completion and returns the
/// deterministically merged table plus the scheduling report.
///
/// # Errors
///
/// Only setup failures (queue creation, worker spawning when *no*
/// worker could ever be started). Cell failures, worker deaths, and
/// corrupt state all degrade to recompute and are reported, not
/// returned.
pub fn run_sweep(cfg: &SweepConfig) -> Result<(FaultTable, DistribReport), String> {
    let queue = prepare_queue(cfg)?;
    queue.enqueue_missing()?;
    let mut report = DistribReport::default();

    let plan = cfg.chaos.map(ChaosPlan::new);
    let spawned = if cfg.workers <= 1 && plan.is_none() {
        // Inline execution: same loop, same queue protocol, no
        // subprocess. This is the `--workers 1` baseline CI compares
        // the multi-process runs against.
        let wc = WorkerConfig {
            timeout: cfg.cell_timeout,
            timings: cfg.timings.clone(),
            ..WorkerConfig::new(cfg.queue_root.clone(), "w0i0")
        };
        run_worker(&wc)?;
        0
    } else {
        supervise_fleet(cfg, &queue, plan.as_ref(), &mut report)?
    };
    report.workers_spawned = spawned;

    // Whatever the fleet left behind (respawn budget exhausted, every
    // chaotic incarnation dead), drain inline so the sweep always
    // terminates with a full merge.
    if queue.pending() > 0 {
        let wc = WorkerConfig {
            timeout: cfg.cell_timeout,
            timings: cfg.timings.clone(),
            ..WorkerConfig::new(cfg.queue_root.clone(), "coordinator-drain")
        };
        run_worker(&wc)?;
    }

    let (table, gc) = merge(cfg, &queue, &mut report)?;
    if gc.total() > 0 {
        eprintln!(
            "gc: removed {} stale partial(s) and {} temp file(s) from {}",
            gc.partials_removed,
            gc.temps_removed,
            queue.cells_dir().display()
        );
    }

    report.worker_counters = CounterSnapshot::merge(queue.read_worker_stats().iter());
    report.cells_resumed_mid_cell += report
        .worker_counters
        .get("distrib", "cells_resumed_mid_cell")
        .unwrap_or(0);

    match serde_json::to_string_pretty(&report) {
        Ok(text) => {
            if let Err(e) = std::fs::write(queue.root().join("report.json"), text) {
                eprintln!("warning: cannot write sweep report: {e}");
            }
        }
        Err(e) => eprintln!("warning: cannot serialize sweep report: {e}"),
    }
    Ok((table, report))
}

/// Spawns the worker fleet, replaces the dead (within budget), and
/// returns once every child has exited. Never errors once at least
/// one worker started; a fleet that could not start at all is an
/// error.
fn supervise_fleet(
    cfg: &SweepConfig,
    queue: &Queue,
    plan: Option<&ChaosPlan>,
    report: &mut DistribReport,
) -> Result<u64, String> {
    let fleet_size = cfg.workers.max(1) as u64;
    let script_for = |ordinal: u64, incarnation: u32| -> String {
        plan.map(|p| render_script(&p.script(ordinal, incarnation)))
            .unwrap_or_default()
    };
    // `(ordinal, incarnation, child)` for every live worker.
    let mut live: Vec<(u64, u32, std::process::Child)> = Vec::new();
    let mut spawned = 0u64;
    for ordinal in 0..fleet_size {
        let id = format!("w{ordinal}i0");
        match spawn_worker(queue.root(), &id, &script_for(ordinal, 0), cfg.cell_timeout) {
            Ok(child) => {
                live.push((ordinal, 0, child));
                spawned += 1;
            }
            Err(e) => eprintln!("warning: {e}"),
        }
    }
    if live.is_empty() {
        return Err("could not start any worker process".to_owned());
    }

    let budget = fleet_size * cfg.timings.respawn_budget_per_worker;
    while !live.is_empty() {
        let mut still: Vec<(u64, u32, std::process::Child)> = Vec::new();
        for (ordinal, incarnation, mut child) in live.drain(..) {
            match child.try_wait() {
                Ok(None) => still.push((ordinal, incarnation, child)),
                Ok(Some(status)) => {
                    let chaotic = status.code() == Some(CHAOS_EXIT);
                    if chaotic {
                        report.chaos_exits += 1;
                    }
                    let clean = status.success();
                    if !clean && queue.pending() > 0 && report.workers_respawned < budget {
                        let next = incarnation + 1;
                        let id = format!("w{ordinal}i{next}");
                        match spawn_worker(
                            queue.root(),
                            &id,
                            &script_for(ordinal, next),
                            cfg.cell_timeout,
                        ) {
                            Ok(c) => {
                                report.workers_respawned += 1;
                                still.push((ordinal, next, c));
                            }
                            Err(e) => eprintln!("warning: {e}"),
                        }
                    } else if !clean && !chaotic {
                        eprintln!("warning: worker w{ordinal}i{incarnation} exited with {status}");
                    }
                }
                Err(e) => {
                    eprintln!("warning: cannot wait for worker w{ordinal}i{incarnation}: {e}");
                }
            }
        }
        live = still;
        if !live.is_empty() {
            std::thread::sleep(cfg.timings.supervise_poll);
        }
    }
    Ok(spawned)
}

/// Merges the sweep in canonical grid order. Per cell, in preference
/// order: published result file → runner final checkpoint (recovered
/// and re-published) → failure marker (reported as failed) → inline
/// recompute (resuming any orphaned partial). Returns the merged
/// table and the GC report for the checkpoint directory (GC runs only
/// when every cell succeeded, so failed cells keep their state for a
/// `--resume` retry).
fn merge(
    cfg: &SweepConfig,
    queue: &Queue,
    report: &mut DistribReport,
) -> Result<(FaultTable, GcReport), String> {
    let mut runner = Runner::new(RunnerConfig {
        timeout: cfg.cell_timeout,
        ..RunnerConfig::resuming(queue.cells_dir())
    });
    let manifest = queue.manifest().clone();
    let mut cells: Vec<FaultCell> = Vec::new();
    for desc in manifest.cells() {
        if let Some(cell) = queue.read_result(&desc.key) {
            cells.push(cell);
            continue;
        }
        // No (usable) published result. A worker may have died between
        // completing the lease and publishing — its final checkpoint
        // has the bytes.
        if let Some(path) = runner.checkpoint_path(&desc.key) {
            if let Some(cell) = read_checkpoint_cell(&path) {
                queue.publish_result(&desc.key, &cell);
                report.cells_recovered_from_checkpoint += 1;
                cells.push(cell);
                continue;
            }
        }
        // A failure marker means the retry budget was spent on this
        // cell; report it instead of burning the coordinator on it.
        if let Some(kind) = read_failure_kind(runner.failed_path(&desc.key).as_deref()) {
            report.failed_cells.push(FailedCell {
                key: desc.key.clone(),
                kind,
            });
            continue;
        }
        // Nothing anywhere: recompute inline (resume picks up an
        // orphaned mid-cell partial if one exists).
        let (bench, est) = (desc.benchmark.clone(), desc.estimator.clone());
        let (rate, scale) = (desc.rate, manifest.scale);
        let cs = cell_seed(manifest.seed, &bench, &est, desc.rate_idx);
        let r = runner.run_cell_report(&desc.key, move |chk| {
            run_cell(&bench, &est, rate, cs, scale, chk)
        });
        if r.resumed_mid_cell {
            report.cells_resumed_mid_cell += 1;
        }
        match r.outcome {
            Ok(cell) => {
                queue.publish_result(&desc.key, &cell);
                report.cells_recomputed_inline += 1;
                cells.push(cell);
            }
            Err(e) => report.failed_cells.push(FailedCell {
                key: desc.key.clone(),
                kind: e.kind().to_owned(),
            }),
        }
    }
    let failed_keys: Vec<String> = report.failed_cells.iter().map(|f| f.key.clone()).collect();
    let gc = if failed_keys.is_empty() {
        gc_dir(&queue.cells_dir())
    } else {
        GcReport::default()
    };
    Ok((
        table_from_cells(manifest.seed, &manifest.grid, cells, failed_keys),
        gc,
    ))
}

fn read_checkpoint_cell(path: &Path) -> Option<FaultCell> {
    let text = std::fs::read_to_string(path).ok()?;
    match serde_json::from_str(&text) {
        Ok(cell) => Some(cell),
        Err(e) => {
            eprintln!(
                "warning: discarding unusable checkpoint {}: {e}",
                path.display()
            );
            note_degraded();
            let _ = std::fs::remove_file(path);
            None
        }
    }
}

fn read_failure_kind(path: Option<&Path>) -> Option<String> {
    let path = path?;
    if !path.exists() {
        return None;
    }
    let kind = std::fs::read_to_string(path)
        .ok()
        .and_then(|t| serde_json::from_str::<crate::runner::RunError>(&t).ok())
        .map_or_else(|| "unknown".to_owned(), |e| e.kind().to_owned());
    Some(kind)
}
