//! Pacing knobs for the distributed sweep machinery, hoisted out of
//! scattered hard-coded constants so slow CI runners (and the
//! experiment server, which hosts sweeps in-process) can tune stall
//! detection without tripping false-positive lease reaps.
//!
//! Every field has an environment override (`PERCONF_DISTRIB_*`, see
//! [`Timings::from_env`]); command-line flags — `repro sweep
//! --lease-secs` — still win over the environment, which wins over the
//! built-in defaults. Workers inherit the coordinator's environment,
//! so one exported variable retunes the whole fleet coherently.
//!
//! These values affect *scheduling only*. Cell bytes derive from
//! `(seed, coordinates, scale)`; no timing knob can change the merged
//! sweep output, only how long it takes and how eagerly peers steal
//! work from the apparently dead.

use std::time::Duration;

/// Pacing configuration for queue claims, lease heartbeats, fleet
/// supervision and queue-open retries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Timings {
    /// Lease duration: a claimed cell idle this long is requeued.
    /// Flag override: `repro sweep --lease-secs`.
    pub lease: Duration,
    /// Heartbeat interval = `lease / heartbeat_divisor` (clamped to
    /// [`heartbeat_floor`](Self::heartbeat_floor)). A divisor of 4
    /// gives a lease 4 missed beats of slack before it is reaped.
    pub heartbeat_divisor: u32,
    /// Minimum heartbeat interval, so microscopic test leases do not
    /// spin a thread at 100% touching mtimes.
    pub heartbeat_floor: Duration,
    /// Worker sleep between claim attempts while peers hold the
    /// remaining leases.
    pub claim_poll: Duration,
    /// Coordinator sleep between fleet liveness checks.
    pub supervise_poll: Duration,
    /// Attempts a worker makes to open a queue the coordinator may not
    /// have created yet.
    pub open_retries: u32,
    /// Delay between queue-open attempts.
    pub open_retry_delay: Duration,
    /// Backoff base for a worker's in-cell retry (doubles per retry).
    pub cell_backoff: Duration,
    /// Worker respawns allowed, as a multiple of the fleet size:
    /// enough for every scripted chaos death plus real crashes, small
    /// enough that a systematically crashing cell cannot fork-bomb.
    pub respawn_budget_per_worker: u64,
}

impl Default for Timings {
    fn default() -> Self {
        Self {
            lease: Duration::from_secs(30),
            heartbeat_divisor: 4,
            heartbeat_floor: Duration::from_millis(5),
            claim_poll: Duration::from_millis(50),
            supervise_poll: Duration::from_millis(30),
            open_retries: 20,
            open_retry_delay: Duration::from_millis(50),
            cell_backoff: Duration::from_millis(100),
            respawn_budget_per_worker: 4,
        }
    }
}

impl Timings {
    /// Defaults overridden by `PERCONF_DISTRIB_*` environment
    /// variables:
    ///
    /// | variable | field | unit |
    /// |---|---|---|
    /// | `PERCONF_DISTRIB_LEASE_MS` | `lease` | ms |
    /// | `PERCONF_DISTRIB_HEARTBEAT_DIVISOR` | `heartbeat_divisor` | — |
    /// | `PERCONF_DISTRIB_HEARTBEAT_FLOOR_MS` | `heartbeat_floor` | ms |
    /// | `PERCONF_DISTRIB_CLAIM_POLL_MS` | `claim_poll` | ms |
    /// | `PERCONF_DISTRIB_SUPERVISE_POLL_MS` | `supervise_poll` | ms |
    /// | `PERCONF_DISTRIB_OPEN_RETRIES` | `open_retries` | — |
    /// | `PERCONF_DISTRIB_OPEN_RETRY_MS` | `open_retry_delay` | ms |
    /// | `PERCONF_DISTRIB_CELL_BACKOFF_MS` | `cell_backoff` | ms |
    /// | `PERCONF_DISTRIB_RESPAWN_BUDGET` | `respawn_budget_per_worker` | — |
    ///
    /// Unparseable or zero values warn on stderr and keep the default
    /// (a mistyped variable must degrade to the stock pacing, never
    /// wedge a sweep with a zero lease).
    #[must_use]
    pub fn from_env() -> Self {
        Self::from_lookup(|k| std::env::var(k).ok())
    }

    /// [`from_env`](Self::from_env) with an injectable variable source,
    /// so tests can exercise the parsing without racing on the
    /// process-global environment.
    #[must_use]
    pub fn from_lookup<F: Fn(&str) -> Option<String>>(lookup: F) -> Self {
        let mut t = Self::default();
        let ms = |name: &str, slot: &mut Duration| {
            if let Some(v) = parse_positive(&lookup, name) {
                *slot = Duration::from_millis(v);
            }
        };
        ms("PERCONF_DISTRIB_LEASE_MS", &mut t.lease);
        ms("PERCONF_DISTRIB_HEARTBEAT_FLOOR_MS", &mut t.heartbeat_floor);
        ms("PERCONF_DISTRIB_CLAIM_POLL_MS", &mut t.claim_poll);
        ms("PERCONF_DISTRIB_SUPERVISE_POLL_MS", &mut t.supervise_poll);
        ms("PERCONF_DISTRIB_OPEN_RETRY_MS", &mut t.open_retry_delay);
        ms("PERCONF_DISTRIB_CELL_BACKOFF_MS", &mut t.cell_backoff);
        if let Some(v) = parse_positive(&lookup, "PERCONF_DISTRIB_HEARTBEAT_DIVISOR") {
            t.heartbeat_divisor = u32::try_from(v).unwrap_or(u32::MAX);
        }
        if let Some(v) = parse_positive(&lookup, "PERCONF_DISTRIB_OPEN_RETRIES") {
            t.open_retries = u32::try_from(v).unwrap_or(u32::MAX);
        }
        if let Some(v) = parse_positive(&lookup, "PERCONF_DISTRIB_RESPAWN_BUDGET") {
            t.respawn_budget_per_worker = v;
        }
        t
    }

    /// The heartbeat interval keeping a lease of duration `lease`
    /// alive: `lease / heartbeat_divisor`, floored. Takes the lease as
    /// a parameter because workers heartbeat against the *manifest's*
    /// lease (the coordinator's choice), not their own default.
    #[must_use]
    pub fn heartbeat_interval(&self, lease: Duration) -> Duration {
        (lease / self.heartbeat_divisor.max(1)).max(self.heartbeat_floor)
    }
}

fn parse_positive<F: Fn(&str) -> Option<String>>(lookup: &F, name: &str) -> Option<u64> {
    let raw = lookup(name)?;
    match raw.trim().parse::<u64>() {
        Ok(0) => {
            eprintln!("warning: {name}=0 is not a usable pacing value; keeping the default");
            None
        }
        Ok(v) => Some(v),
        Err(e) => {
            eprintln!("warning: cannot parse {name}={raw:?}: {e}; keeping the default");
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_historical_constants() {
        let t = Timings::default();
        assert_eq!(t.lease, Duration::from_secs(30));
        assert_eq!(t.heartbeat_divisor, 4);
        assert_eq!(t.heartbeat_floor, Duration::from_millis(5));
        assert_eq!(t.claim_poll, Duration::from_millis(50));
        assert_eq!(t.supervise_poll, Duration::from_millis(30));
        assert_eq!(t.open_retries, 20);
        assert_eq!(t.open_retry_delay, Duration::from_millis(50));
        assert_eq!(t.cell_backoff, Duration::from_millis(100));
        assert_eq!(t.respawn_budget_per_worker, 4);
    }

    #[test]
    fn lookup_overrides_apply() {
        let t = Timings::from_lookup(|k| match k {
            "PERCONF_DISTRIB_LEASE_MS" => Some("250".to_owned()),
            "PERCONF_DISTRIB_HEARTBEAT_DIVISOR" => Some("10".to_owned()),
            "PERCONF_DISTRIB_CLAIM_POLL_MS" => Some("7".to_owned()),
            "PERCONF_DISTRIB_RESPAWN_BUDGET" => Some("9".to_owned()),
            _ => None,
        });
        assert_eq!(t.lease, Duration::from_millis(250));
        assert_eq!(t.heartbeat_divisor, 10);
        assert_eq!(t.claim_poll, Duration::from_millis(7));
        assert_eq!(t.respawn_budget_per_worker, 9);
        // Untouched fields keep their defaults.
        assert_eq!(t.supervise_poll, Duration::from_millis(30));
    }

    #[test]
    fn bad_values_degrade_to_defaults() {
        let t = Timings::from_lookup(|k| match k {
            "PERCONF_DISTRIB_LEASE_MS" => Some("not-a-number".to_owned()),
            "PERCONF_DISTRIB_CLAIM_POLL_MS" => Some("0".to_owned()),
            _ => None,
        });
        assert_eq!(t, Timings::default());
    }

    #[test]
    fn heartbeat_interval_divides_and_floors() {
        let t = Timings::default();
        assert_eq!(
            t.heartbeat_interval(Duration::from_secs(40)),
            Duration::from_secs(10)
        );
        // Tiny lease clamps to the floor instead of busy-spinning.
        assert_eq!(
            t.heartbeat_interval(Duration::from_millis(1)),
            t.heartbeat_floor
        );
        // A zero divisor must not panic.
        let z = Timings {
            heartbeat_divisor: 0,
            ..Timings::default()
        };
        assert_eq!(
            z.heartbeat_interval(Duration::from_secs(8)),
            Duration::from_secs(8)
        );
    }
}
