//! Table 3 — confidence-estimation metrics: PVN (accuracy) and Spec
//! (coverage) for the enhanced JRS estimator at λ ∈ {3, 7, 11, 15}
//! versus the perceptron estimator at λ ∈ {25, 0, −25, −50}, both at
//! 4 KB of storage, over all twelve benchmarks.

use crate::common::{benchmarks, jrs, perceptron, trace_eval, PredictorKind, Scale};
use crate::paper;
use perconf_metrics::{ConfusionMatrix, Table};
use serde::{Deserialize, Serialize};

/// One estimator design point's aggregated metrics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table3Row {
    /// Estimator threshold λ.
    pub lambda: i32,
    /// Measured PVN (%), aggregated across benchmarks.
    pub pvn: f64,
    /// Measured Spec (%), aggregated across benchmarks.
    pub spec: f64,
}

/// Full Table 3 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table3 {
    /// Enhanced JRS rows (λ = 3, 7, 11, 15).
    pub jrs: Vec<Table3Row>,
    /// Perceptron rows (λ = 25, 0, −25, −50).
    pub perceptron: Vec<Table3Row>,
}

/// The JRS thresholds swept by the paper.
pub const JRS_LAMBDAS: [u8; 4] = [3, 7, 11, 15];
/// The perceptron thresholds swept by the paper.
pub const PERCEPTRON_LAMBDAS: [i32; 4] = [25, 0, -25, -50];

fn eval(
    mk: &dyn Fn() -> Box<dyn perconf_core::ConfidenceEstimator>,
    scale: Scale,
) -> ConfusionMatrix {
    let mut total = ConfusionMatrix::new();
    for wl in benchmarks() {
        let mut p = PredictorKind::BimodalGshare.build();
        let mut ce = mk();
        let (cm, _) = trace_eval(
            &wl,
            p.as_mut(),
            ce.as_mut(),
            scale.warmup_branches,
            scale.run_branches,
            None,
        );
        total.merge(&cm);
    }
    total
}

/// Runs the Table 3 experiment.
#[must_use]
pub fn run(scale: Scale) -> Table3 {
    let jrs_rows = JRS_LAMBDAS
        .iter()
        .map(|&l| {
            let cm = eval(&|| jrs(l), scale);
            Table3Row {
                lambda: i32::from(l),
                pvn: cm.pvn() * 100.0,
                spec: cm.spec() * 100.0,
            }
        })
        .collect();
    let perc_rows = PERCEPTRON_LAMBDAS
        .iter()
        .map(|&l| {
            let cm = eval(&|| perceptron(l), scale);
            Table3Row {
                lambda: l,
                pvn: cm.pvn() * 100.0,
                spec: cm.spec() * 100.0,
            }
        })
        .collect();
    Table3 {
        jrs: jrs_rows,
        perceptron: perc_rows,
    }
}

impl Table3 {
    /// Renders both halves with the paper's numbers alongside.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::from(
            "Table 3: confidence estimation metrics (PVN = accuracy, Spec = coverage)\n",
        );
        let mut t = Table::with_headers(&[
            "estimator",
            "λ",
            "PVN%",
            "PVN(paper)",
            "Spec%",
            "Spec(paper)",
        ]);
        t.numeric();
        for (row, p) in self.jrs.iter().zip(paper::TABLE3_JRS) {
            t.row(vec![
                "enhanced-JRS".into(),
                row.lambda.to_string(),
                format!("{:.0}", row.pvn),
                format!("{:.0}", p.1),
                format!("{:.0}", row.spec),
                format!("{:.0}", p.2),
            ]);
        }
        for (row, p) in self.perceptron.iter().zip(paper::TABLE3_PERCEPTRON) {
            t.row(vec![
                "perceptron".into(),
                row.lambda.to_string(),
                format!("{:.0}", row.pvn),
                format!("{:.0}", p.1),
                format!("{:.0}", row.spec),
                format!("{:.0}", p.2),
            ]);
        }
        out.push_str(&t.render());
        out
    }

    /// The paper's headline claim: the perceptron's *worst* accuracy
    /// beats the JRS estimator's *best* accuracy.
    #[must_use]
    pub fn perceptron_pvn_dominates(&self) -> bool {
        let best_jrs = self.jrs.iter().map(|r| r.pvn).fold(0.0, f64::max);
        let worst_p = self.perceptron.iter().map(|r| r.pvn).fold(100.0, f64::min);
        worst_p > best_jrs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lambda_constants_match_paper() {
        assert_eq!(JRS_LAMBDAS, [3, 7, 11, 15]);
        assert_eq!(PERCEPTRON_LAMBDAS, [25, 0, -25, -50]);
    }
}
