//! Table 4 — pipeline gating on the 40-cycle pipeline: reduction in
//! total uops executed (`U`) and performance loss (`P`) for the
//! enhanced JRS estimator at branch-counter thresholds PL1–PL3 and the
//! perceptron estimator at PL1, each across its λ sweep.

use crate::common::{
    controller, jrs, perceptron, BaselineSet, GatingOutcome, PredictorKind, Scale,
};
use crate::paper;
use crate::table3::{JRS_LAMBDAS, PERCEPTRON_LAMBDAS};
use perconf_metrics::Table;
use perconf_pipeline::PipelineConfig;
use serde::{Deserialize, Serialize};

/// One gating design point, averaged across benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Table4Row {
    /// Estimator threshold λ.
    pub lambda: i32,
    /// Low-confidence branch counter threshold (PLn).
    pub pl: u32,
    /// Mean outcome across benchmarks.
    pub outcome: GatingOutcome,
}

/// Full Table 4 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table4 {
    /// JRS rows: λ × {PL1, PL2, PL3}.
    pub jrs: Vec<Table4Row>,
    /// Perceptron rows: λ × PL1.
    pub perceptron: Vec<Table4Row>,
}

/// Runs one gating design point over all benchmarks and averages,
/// against precomputed baselines.
pub fn run_point(
    baselines: &BaselineSet,
    mk_est: &(dyn Fn() -> Box<dyn perconf_core::SimEstimator> + Sync),
    pl: u32,
) -> GatingOutcome {
    let (mean, _) = baselines.evaluate(baselines.pipe().gated(pl), || {
        controller(PredictorKind::BimodalGshare, mk_est())
    });
    mean
}

/// The full JRS design-point sweep of the paper's Table 4:
/// PL-major ({PL1, PL2, PL3}), λ over [`JRS_LAMBDAS`] within each PL.
#[must_use]
pub fn default_jrs_points() -> Vec<(u8, u32)> {
    let mut points = Vec::with_capacity(3 * JRS_LAMBDAS.len());
    for pl in [1u32, 2, 3] {
        for &l in &JRS_LAMBDAS {
            points.push((l, pl));
        }
    }
    points
}

/// The perceptron threshold sweep of the paper's Table 4 (all at PL1).
#[must_use]
pub fn default_perceptron_lambdas() -> Vec<i32> {
    PERCEPTRON_LAMBDAS.to_vec()
}

/// Runs the Table 4 experiment on the deep (40-cycle) pipeline.
#[must_use]
pub fn run(scale: Scale) -> Table4 {
    run_points(
        scale,
        crate::common::benchmarks(),
        &default_jrs_points(),
        &default_perceptron_lambdas(),
    )
}

/// Runs an explicit set of Table 4 design points over an explicit
/// benchmark list (declarative specs, reduced-scale golden tests).
/// JRS points are (λ, PL) pairs evaluated in the given order;
/// perceptron thresholds all run at PL1 as in the paper.
/// [`run`] is exactly this with the paper's default point lists.
#[must_use]
pub fn run_points(
    scale: Scale,
    benchmarks: Vec<perconf_workload::WorkloadConfig>,
    jrs_points: &[(u8, u32)],
    perceptron_lambdas: &[i32],
) -> Table4 {
    let baselines = BaselineSet::build_on(
        PredictorKind::BimodalGshare,
        PipelineConfig::deep(),
        scale,
        benchmarks,
    );
    let jrs_rows = jrs_points
        .iter()
        .map(|&(l, pl)| Table4Row {
            lambda: i32::from(l),
            pl,
            outcome: run_point(&baselines, &|| jrs(l), pl),
        })
        .collect();
    let perc_rows = perceptron_lambdas
        .iter()
        .map(|&l| Table4Row {
            lambda: l,
            pl: 1,
            outcome: run_point(&baselines, &|| perceptron(l), 1),
        })
        .collect();
    Table4 {
        jrs: jrs_rows,
        perceptron: perc_rows,
    }
}

impl Table4 {
    /// Renders the table with paper values alongside.
    #[must_use]
    pub fn render(&self) -> String {
        let mut t = Table::with_headers(&[
            "estimator",
            "λ",
            "PL",
            "U(exec)%",
            "U(fetch)%",
            "U(paper)%",
            "P%",
            "P(paper)%",
        ]);
        t.numeric();
        for row in &self.jrs {
            let paper_row = paper::TABLE4_JRS
                .iter()
                .find(|r| i32::from(r.0) == row.lambda)
                .expect("paper row");
            let (pu, pp) = match row.pl {
                1 => paper_row.1,
                2 => paper_row.2,
                _ => paper_row.3,
            };
            t.row(vec![
                "enhanced-JRS".into(),
                row.lambda.to_string(),
                format!("PL{}", row.pl),
                format!("{:.1}", row.outcome.u_executed * 100.0),
                format!("{:.1}", row.outcome.u_fetched * 100.0),
                format!("{pu:.0}"),
                format!("{:.1}", row.outcome.perf_loss * 100.0),
                format!("{pp:.0}"),
            ]);
        }
        for row in &self.perceptron {
            let p = paper::TABLE4_PERCEPTRON
                .iter()
                .find(|r| r.0 == row.lambda)
                .expect("paper row");
            t.row(vec![
                "perceptron".into(),
                row.lambda.to_string(),
                "PL1".into(),
                format!("{:.1}", row.outcome.u_executed * 100.0),
                format!("{:.1}", row.outcome.u_fetched * 100.0),
                format!("{:.0}", p.1),
                format!("{:.1}", row.outcome.perf_loss * 100.0),
                format!("{:.0}", p.2),
            ]);
        }
        format!(
            "Table 4: pipeline gating on the 40-cycle pipeline (U = uop reduction, P = perf loss)\n{}",
            t.render()
        )
    }

    /// The paper's qualitative claim: within a performance-loss budget,
    /// the perceptron's best design point reduces at least as many
    /// uops as JRS's best point within the same budget.
    #[must_use]
    pub fn perceptron_dominates_at_low_loss(&self, loss_budget: f64) -> bool {
        let best = |rows: &[Table4Row]| {
            rows.iter()
                .filter(|r| r.outcome.perf_loss <= loss_budget)
                .map(|r| r.outcome.u_executed)
                .fold(f64::NEG_INFINITY, f64::max)
        };
        best(&self.perceptron) >= best(&self.jrs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_rows_cover_all_lambdas() {
        for &l in &JRS_LAMBDAS {
            assert!(crate::paper::TABLE4_JRS.iter().any(|r| r.0 == l));
        }
        for &l in &PERCEPTRON_LAMBDAS {
            assert!(crate::paper::TABLE4_PERCEPTRON.iter().any(|r| r.0 == l));
        }
    }
}
