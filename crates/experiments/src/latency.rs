//! §5.4.2 — effect of confidence-estimator latency: the paper
//! estimates 9 cycles to compute a 32-input perceptron output on a
//! 40-cycle pipeline and finds gating effectiveness barely changes
//! versus an ideal single-cycle estimator.

use crate::common::{controller, perceptron, BaselineSet, GatingOutcome, PredictorKind, Scale};
use perconf_metrics::Table;
use perconf_pipeline::PipelineConfig;
use serde::{Deserialize, Serialize};

/// One latency point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyRow {
    /// Estimator latency in cycles.
    pub ce_latency: u32,
    /// Mean outcome across benchmarks.
    pub outcome: GatingOutcome,
}

/// Full latency study result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyStudy {
    /// Rows for each latency evaluated.
    pub rows: Vec<LatencyRow>,
}

/// The latencies the paper contrasts (1 = ideal, 9 = realistic),
/// plus an extreme point for context.
pub const LATENCIES: [u32; 3] = [1, 9, 20];

/// Runs the latency sensitivity study (perceptron λ = 0, PL1, deep
/// pipeline).
#[must_use]
pub fn run(scale: Scale) -> LatencyStudy {
    let baselines = BaselineSet::build(PredictorKind::BimodalGshare, PipelineConfig::deep(), scale);
    let rows = LATENCIES
        .iter()
        .map(|&lat| {
            let (mean, _) = baselines
                .evaluate(baselines.pipe().gated(1).with_ce_latency(lat), || {
                    controller(PredictorKind::BimodalGshare, perceptron(0))
                });
            LatencyRow {
                ce_latency: lat,
                outcome: mean,
            }
        })
        .collect();
    LatencyStudy { rows }
}

impl LatencyStudy {
    /// Renders the study.
    #[must_use]
    pub fn render(&self) -> String {
        let mut t = Table::with_headers(&["CE latency", "U(exec)%", "U(fetch)%", "P%"]);
        t.numeric();
        for r in &self.rows {
            t.row(vec![
                format!("{} cycles", r.ce_latency),
                format!("{:.1}", r.outcome.u_executed * 100.0),
                format!("{:.1}", r.outcome.u_fetched * 100.0),
                format!("{:.1}", r.outcome.perf_loss * 100.0),
            ]);
        }
        format!(
            "§5.4.2: estimator latency sensitivity (perceptron λ=0, PL1, 40-cycle pipe)\n\
             (paper: 9-cycle latency costs very little versus 1-cycle)\n{}",
            t.render()
        )
    }

    /// The paper's finding: going from 1 to 9 cycles loses little of
    /// the uop reduction (we allow up to a 3-percentage-point drop).
    #[must_use]
    pub fn nine_cycles_is_cheap(&self) -> bool {
        let at = |lat: u32| {
            self.rows
                .iter()
                .find(|r| r.ce_latency == lat)
                .map(|r| r.outcome.u_fetched)
        };
        match (at(1), at(9)) {
            (Some(one), Some(nine)) => one - nine < 0.03,
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_points_include_papers() {
        assert!(LATENCIES.contains(&1));
        assert!(LATENCIES.contains(&9));
    }
}
