//! `sim` — drive the pipeline simulator directly: pick a benchmark,
//! machine shape, predictor, estimator and speculation-control policy,
//! and get the full statistics report.
//!
//! ```text
//! sim --bench twolf --depth 40 --width 4 \
//!     --predictor bimodal-gshare --estimator perceptron --lambda 0 \
//!     --gate 1 --uops 500000 [--reverse 90] [--energy] [--density] [--out DIR]
//! ```

#![forbid(unsafe_code)]

use perconf_bpred::{baseline_bimodal_gshare, gshare_perceptron, tage_hybrid, SimPredictor};
use perconf_core::{
    AlwaysHigh, CombineRule, CompositeCe, JrsConfig, JrsEstimator, PerceptronCe,
    PerceptronCeConfig, PerceptronTnt, PerceptronTntConfig, SimEstimator, SmithCe,
    SpeculationController, TysonCe,
};
use perconf_pipeline::{EnergyModel, PipelineConfig, SimStats, Simulation};
use std::process::ExitCode;

#[derive(Debug)]
struct Options {
    bench: String,
    depth: u32,
    width: u32,
    predictor: String,
    estimator: String,
    lambda: i32,
    reverse: Option<i32>,
    gate: Option<u32>,
    ce_latency: u32,
    uops: u64,
    warmup: u64,
    energy: bool,
    density: bool,
    out: Option<std::path::PathBuf>,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            bench: "gcc".to_owned(),
            depth: 40,
            width: 4,
            predictor: "bimodal-gshare".to_owned(),
            estimator: "none".to_owned(),
            lambda: 0,
            reverse: None,
            gate: None,
            ce_latency: 1,
            uops: 400_000,
            warmup: 150_000,
            energy: false,
            density: false,
            out: None,
        }
    }
}

fn parse() -> Result<Options, String> {
    let mut o = Options::default();
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |flag: &str| -> Result<String, String> {
            it.next().ok_or_else(|| format!("{flag} needs a value"))
        };
        match a.as_str() {
            "--bench" => o.bench = val("--bench")?,
            "--depth" => o.depth = val("--depth")?.parse().map_err(|e| format!("{e}"))?,
            "--width" => o.width = val("--width")?.parse().map_err(|e| format!("{e}"))?,
            "--predictor" => o.predictor = val("--predictor")?,
            "--estimator" => o.estimator = val("--estimator")?,
            "--lambda" => o.lambda = val("--lambda")?.parse().map_err(|e| format!("{e}"))?,
            "--reverse" => {
                o.reverse = Some(val("--reverse")?.parse().map_err(|e| format!("{e}"))?);
            }
            "--gate" => o.gate = Some(val("--gate")?.parse().map_err(|e| format!("{e}"))?),
            "--ce-latency" => {
                o.ce_latency = val("--ce-latency")?.parse().map_err(|e| format!("{e}"))?;
            }
            "--uops" => o.uops = val("--uops")?.parse().map_err(|e| format!("{e}"))?,
            "--warmup" => o.warmup = val("--warmup")?.parse().map_err(|e| format!("{e}"))?,
            "--energy" => o.energy = true,
            "--density" => o.density = true,
            "--out" => o.out = Some(val("--out")?.into()),
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(o)
}

fn build_predictor(name: &str) -> Result<Box<dyn SimPredictor>, String> {
    Ok(match name {
        "bimodal-gshare" => Box::new(baseline_bimodal_gshare()),
        "gshare-perceptron" => Box::new(gshare_perceptron()),
        "tage" => Box::new(tage_hybrid()),
        other => {
            return Err(format!(
                "unknown predictor {other} (bimodal-gshare | gshare-perceptron | tage)"
            ))
        }
    })
}

fn build_estimator(o: &Options) -> Result<Box<dyn SimEstimator>, String> {
    let perceptron_cfg = PerceptronCeConfig {
        lambda: o.lambda,
        reverse_lambda: o.reverse,
        ..PerceptronCeConfig::default()
    };
    Ok(match o.estimator.as_str() {
        "none" => Box::new(AlwaysHigh),
        "perceptron" => Box::new(PerceptronCe::new(perceptron_cfg)),
        "jrs" => Box::new(JrsEstimator::new(JrsConfig {
            lambda: u8::try_from(o.lambda.clamp(0, 15)).expect("clamped"),
            ..JrsConfig::default()
        })),
        "tnt" => Box::new(PerceptronTnt::new(PerceptronTntConfig {
            lambda: o.lambda,
            ..PerceptronTntConfig::default()
        })),
        "smith" => Box::new(SmithCe::new(13, 2)),
        "tyson" => Box::new(TysonCe::new(12, 8)),
        "composite-both" => Box::new(CompositeCe::new(
            PerceptronCe::new(perceptron_cfg),
            JrsEstimator::new(JrsConfig::default()),
            CombineRule::Both,
        )),
        "composite-either" => Box::new(CompositeCe::new(
            PerceptronCe::new(perceptron_cfg),
            JrsEstimator::new(JrsConfig::default()),
            CombineRule::Either,
        )),
        other => {
            return Err(format!(
                "unknown estimator {other} (none | perceptron | jrs | tnt | smith | tyson | composite-both | composite-either)"
            ))
        }
    })
}

fn report(stats: &SimStats, o: &Options) {
    let f = |name: &str, v: String| println!("{name:<28} {v}");
    f("cycles", stats.cycles.to_string());
    f("retired uops", stats.retired.to_string());
    f("IPC", format!("{:.3}", stats.ipc()));
    f(
        "fetched (correct / wrong)",
        format!("{} / {}", stats.fetched_correct, stats.fetched_wrong),
    );
    f(
        "executed (correct / wrong)",
        format!("{} / {}", stats.executed_correct, stats.executed_wrong),
    );
    f("branches retired", stats.branches_retired.to_string());
    f(
        "mispredicts (base / final)",
        format!(
            "{} / {}",
            stats.base_mispredicts, stats.speculated_mispredicts
        ),
    );
    f("MPKu", format!("{:.2}", stats.mpku()));
    f("squashes", stats.squashes.to_string());
    f("gated cycles", stats.gated_cycles.to_string());
    if stats.reversals > 0 {
        f(
            "reversals (good / bad)",
            format!("{} / {}", stats.reversals_good, stats.reversals_bad),
        );
    }
    if o.estimator != "none" {
        f(
            "estimator PVN",
            format!("{:.1}%", stats.confusion.pvn() * 100.0),
        );
        f(
            "estimator Spec",
            format!("{:.1}%", stats.confusion.spec() * 100.0),
        );
    }
    if o.energy {
        let e = EnergyModel::default().evaluate(stats);
        f("energy (arbitrary units)", format!("{:.0}", e.total));
        f("wasted energy", format!("{:.1}%", e.wasted_frac() * 100.0));
    }
}

fn run() -> Result<(), String> {
    let o = parse()?;
    let wl = perconf_workload::spec2000_config(&o.bench)
        .ok_or_else(|| format!("unknown benchmark {}", o.bench))?;
    let mut cfg = PipelineConfig::with_depth_width(o.depth, o.width);
    if let Some(pl) = o.gate {
        cfg = cfg.gated(pl).with_ce_latency(o.ce_latency);
    }
    if o.density {
        cfg = cfg.with_density(-350, 260, 10);
    }
    let ctl = SpeculationController::new(build_predictor(&o.predictor)?, build_estimator(&o)?);
    let mut sim = Simulation::new(cfg, &wl, ctl);
    sim.warmup(o.warmup);
    sim.run(o.uops);
    let stats = sim.stats().clone();

    println!(
        "perconf sim: {} on {}c/{}w, predictor {}, estimator {}{}\n",
        o.bench,
        o.depth,
        o.width,
        o.predictor,
        o.estimator,
        o.gate.map_or(String::new(), |g| format!(" (gated PL{g})"))
    );
    report(&stats, &o);

    if o.density {
        if let Some(d) = &stats.density {
            println!("\nestimator output density:\n{}", d.to_ascii(36));
            if let Some(dir) = &o.out {
                std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
                let svg = perconf_metrics::svg::density_svg(d, "estimator output density");
                write_staged(&dir.join("density.svg"), svg.as_bytes())?;
                write_staged(&dir.join("density.csv"), d.to_csv().as_bytes())?;
                println!("wrote density.svg / density.csv to {}", dir.display());
            }
        }
    }
    Ok(())
}

/// Stages to a `.tmp` sibling and renames, so an interrupted run
/// never leaves a torn artifact at the final path.
fn write_staged(path: &std::path::Path, bytes: &[u8]) -> Result<(), String> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, bytes)
        .and_then(|()| std::fs::rename(&tmp, path))
        .map_err(|e| format!("cannot write {}: {e}", path.display()))
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            if !e.is_empty() {
                eprintln!("error: {e}\n");
            }
            eprintln!(
                "usage: sim [--bench NAME] [--depth N] [--width N] [--predictor P] \
                 [--estimator E] [--lambda N] [--reverse N] [--gate PLn] [--ce-latency N] \
                 [--uops N] [--warmup N] [--energy] [--density] [--out DIR]"
            );
            ExitCode::FAILURE
        }
    }
}
