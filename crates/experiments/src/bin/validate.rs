//! `validate` — run the whole reproduction at reduced scale and check
//! every qualitative claim from the paper's evaluation (the
//! EXPERIMENTS.md checklist). Exits non-zero if any claim fails, so it
//! can serve as the repository's reproduction CI.
//!
//! ```text
//! validate [--tiny | --full] [--jobs <n>]
//! ```
//!
//! `--jobs <n>` fans the per-benchmark pipeline runs inside each
//! experiment across `n` worker threads (`0` = every core; default
//! every core). Claim outcomes are byte-identical at any job count.
//!
//! When run from the repository root, the checked-in declarative
//! specs under `specs/` are also validated (parse → lower) as one of
//! the claims.
//!
//! Exit codes follow the shared taxonomy
//! (`perconf_experiments::exitcode`): 0 every check passed, 2 usage
//! error, 3 all checks passed but corrupt input was degraded to
//! recomputation, 4 one or more checks failed.

#![forbid(unsafe_code)]

use perconf_experiments::runner::{default_jobs, degraded_count};
use perconf_experiments::{
    common, energy, exitcode as exit, fig89, figs, latency, spec, table2, table3, table4, table5,
    table6, Scale,
};
use std::process::ExitCode;

struct Checker {
    failures: u32,
}

impl Checker {
    fn check(&mut self, name: &str, ok: bool) {
        println!("{} {name}", if ok { "PASS" } else { "FAIL" });
        if !ok {
            self.failures += 1;
        }
    }
}

fn main() -> ExitCode {
    let mut scale = Scale::quick();
    let mut jobs = default_jobs();
    let mut argv = std::env::args().skip(1);
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--tiny" => scale = Scale::tiny(),
            "--full" => scale = Scale::full(),
            "--jobs" => {
                let n = argv
                    .next()
                    .and_then(|v| v.parse::<usize>().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--jobs needs a number");
                        std::process::exit(i32::from(exit::USAGE));
                    });
                jobs = if n == 0 { default_jobs() } else { n };
            }
            other => {
                eprintln!(
                    "unknown argument {other}; usage: validate [--tiny | --full] [--jobs <n>]"
                );
                return ExitCode::from(exit::USAGE);
            }
        }
    }
    common::set_jobs(jobs);
    let mut c = Checker { failures: 0 };
    #[allow(clippy::disallowed_methods)]
    // lint: allow(nondeterminism-sources) — wall-time banner only, never in results
    let t0 = std::time::Instant::now();

    // Table 2: waste grows with depth and width; mcf worst, in the
    // fetched metric.
    let t2 = table2::run(scale);
    let avg =
        |i: usize| t2.rows.iter().map(|r| r.waste[i].fetched).sum::<f64>() / t2.rows.len() as f64;
    c.check(
        "table2: deeper pipeline wastes more (fetched)",
        avg(2) > avg(0) * 1.2,
    );
    c.check(
        "table2: wider pipeline wastes more (fetched)",
        avg(1) > avg(0) * 1.2,
    );
    let mcf = t2.rows.iter().find(|r| r.bench == "mcf").expect("mcf row");
    c.check(
        "table2: mcf is the worst benchmark",
        t2.rows
            .iter()
            .all(|r| r.waste[2].fetched <= mcf.waste[2].fetched),
    );

    // Table 3: the headline accuracy claim and all four monotone trends.
    let t3 = table3::run(scale);
    c.check(
        "table3: perceptron PVN beats JRS at every λ",
        t3.perceptron_pvn_dominates(),
    );
    c.check(
        "table3: JRS coverage rises with λ",
        t3.jrs.windows(2).all(|w| w[1].spec >= w[0].spec),
    );
    c.check(
        "table3: perceptron coverage rises as λ falls",
        t3.perceptron.windows(2).all(|w| w[1].spec >= w[0].spec),
    );
    c.check(
        "table3: JRS coverage exceeds the perceptron's",
        t3.jrs.iter().map(|r| r.spec).fold(f64::MAX, f64::min)
            > t3.perceptron.iter().map(|r| r.spec).fold(0.0, f64::max) * 0.9,
    );

    // Table 4: perceptron dominates within a small loss budget and its
    // reduction grows as λ falls.
    let t4 = table4::run(scale);
    c.check(
        "table4: perceptron dominates JRS within a 2% loss budget",
        t4.perceptron_dominates_at_low_loss(0.02),
    );
    c.check(
        "table4: perceptron reduction grows as λ falls",
        t4.perceptron
            .windows(2)
            .all(|w| w[1].outcome.u_fetched >= w[0].outcome.u_fetched * 0.9),
    );

    // Table 5: the better predictor leaves less opportunity.
    let t5 = table5::run(scale);
    c.check(
        "table5: better predictor leaves less opportunity",
        t5.better_predictor_reduces_opportunity(),
    );

    // Table 6: narrow weights are the worst way to shrink.
    let t6 = table6::run(scale);
    c.check(
        "table6: 4-bit weights hurt most",
        t6.narrow_weights_hurt_most(),
    );

    // Figures 4–7: cic separates, tnt does not.
    let cic = figs::run(figs::Training::CorrectIncorrect, "gcc", scale);
    c.check(
        "fig5: MB outnumbers CB above the reversal threshold (cic)",
        cic.reversal_region_mb_dominates(),
    );
    let tnt = figs::run(figs::Training::TakenNotTaken, "gcc", scale);
    c.check(
        "fig7: tnt has no MB-dominant region",
        !tnt.full.mb_cb_ratio(30, 260).is_some_and(|r| r > 1.0)
            && !tnt.full.mb_cb_ratio(-30, 30).is_some_and(|r| r > 1.0),
    );

    // §5.4.2: estimator latency is cheap.
    let lat = latency::run(scale);
    c.check(
        "latency: 9-cycle estimator is cheap",
        lat.nine_cycles_is_cheap(),
    );

    // Figures 8–9: combined control at ~no loss; wide < deep.
    let f8 = fig89::run(fig89::Machine::Deep, scale);
    c.check(
        "fig8: combined gating+reversal at ~no average loss",
        f8.avg_speedup() > -2.0 && f8.avg_fetch_reduction() > 2.0,
    );
    let good: u64 = f8.rows.iter().map(|r| r.reversals_good).sum();
    let bad: u64 = f8.rows.iter().map(|r| r.reversals_bad).sum();
    c.check("fig8: reversals net positive", good > bad);
    let f9 = fig89::run(fig89::Machine::Wide, scale);
    c.check(
        "fig9: wide machine benefits less than deep",
        f9.avg_fetch_reduction() <= f8.avg_fetch_reduction() * 1.1,
    );

    // Extension: some gating point saves energy.
    let en = energy::run(scale);
    c.check(
        "energy: gating saves energy at some λ",
        en.gating_saves_energy(),
    );

    // The declarative spec surface: every checked-in `specs/*` file
    // must still parse, validate, and lower — the data files are part
    // of the reproduction, and a claim checker that ignored them
    // would let the spec twin of a table rot. Skipped (with a note)
    // when run outside the repository root.
    match std::fs::read_dir("specs") {
        Ok(entries) => {
            let mut ok = true;
            let mut n = 0u32;
            for path in entries.flatten().map(|e| e.path()) {
                if !path.extension().is_some_and(|x| x == "toml" || x == "json") {
                    continue;
                }
                n += 1;
                let lowered = spec::RunSpec::load(&path)
                    .map_err(|e| e.message().to_owned())
                    .and_then(|s| s.lower());
                if let Err(msg) = lowered {
                    eprintln!("  {}: {msg}", path.display());
                    ok = false;
                }
            }
            c.check("specs: every checked-in spec lowers", ok && n > 0);
        }
        Err(_) => eprintln!("[no specs/ directory here — spec check skipped]"),
    }

    println!(
        "\n{} checks failed [{:.0}s elapsed]",
        c.failures,
        t0.elapsed().as_secs_f64()
    );
    if c.failures == 0 {
        if degraded_count() > 0 {
            eprintln!(
                "[{} corrupt input(s) degraded to recomputation — exit {}]",
                degraded_count(),
                exit::DEGRADED
            );
            return ExitCode::from(exit::DEGRADED);
        }
        ExitCode::SUCCESS
    } else {
        // Failed checks map to the "failed cells" code: the run
        // finished, specific items within it did not.
        ExitCode::from(exit::FAILED_CELLS)
    }
}
