//! `repro` — regenerate any table or figure of the paper.
//!
//! ```text
//! repro <experiment> [--full | --tiny] [--json <dir>] [--csv <dir>]
//!                    [--resume <dir>] [--seed <u64>] [--jobs <n>]
//!                    [--batch <n>] [--timing <file>] [--profile]
//!                    [--metrics-out <file>] [--trace-out <file>] [--force]
//! repro run <spec.toml|spec.json> [--check] [--jobs <n>] [--batch <n>]
//!           [--resume <dir>] [--json <dir>] [--csv <dir>]
//!           [--timing <file>] [--force]
//! repro verify [--bench <name>] [--full | --tiny]
//!              [--trace <file> [--tolerant]]
//! repro obs <file.pobs> [--jsonl <file>] [--force]
//! repro sweep --queue <dir> [--workers <n>] [--grid full|small]
//!             [--lease-secs <s>] [--chaos <spec>] [--cell-timeout <s>]
//! repro faults --gc --resume <dir>
//! repro serve [--state <dir>] [--addr <ip:port>] [--queue <n>]
//!             [--restarts <n>] [--watchdog <s>]
//! repro submit [--state <dir> | --addr <ip:port>] --seed <u64>
//!              [--full | --tiny] [--grid full|small] [--json <dir>]
//!              [--chaos kill]
//!
//! experiments: table2 table3 table4 table5 table6
//!              fig4 fig5 fig6 fig7 fig8 fig9 latency energy faults
//!              sweep verify obs run all
//! ```
//!
//! `run` executes a declarative experiment spec
//! (`perconf_experiments::spec`, format reference in EXPERIMENTS.md):
//! the file names the experiment, scale, benchmarks, design points or
//! fault grid, and the run is **byte-identical** — result JSON and
//! `.psnap` checkpoints included — to the equivalent hard-coded
//! subcommand, because both lower onto the same cell machinery (CI's
//! `specs` lane diffs exactly that). `--check` parses, validates and
//! lowers the spec, prints what would run, and exits without
//! simulating. `--jobs`, `--batch` and `--resume` pass through
//! unchanged; the spec's `[output]` section supplies default `--json`
//! / `--timing` destinations, with explicit flags winning. A spec
//! whose `spec_version` is from another era exits with code 6,
//! distinct from ordinary usage errors.
//!
//! `--resume <dir>` checkpoints every sweep cell into `<dir>` and, on
//! a rerun, loads finished cells instead of recomputing them — only
//! failed or missing cells execute; cells with a mid-run partial
//! checkpoint continue from it instead of from scratch. `--seed` sets
//! the fault-injection campaign seed (default 42).
//!
//! `--jobs <n>` fans independent sweep cells (and per-benchmark
//! pipeline runs inside the table experiments) across `n` worker
//! threads; `--jobs 0` means every available core, and the default is
//! every core. Results are byte-identical at any job count — only
//! wall-clock time changes. `--batch <n>` additionally interleaves up
//! to `n` of the fault sweep's simulations through one cycle loop
//! (`BatchSim`); like `--jobs` it is purely a throughput knob — output
//! stays byte-identical for every width, including under `--resume`. `--timing <file>` writes the per-cell
//! wall-time/retry report of the `faults` sweep as JSON (wall time is
//! inherently nondeterministic, which is why it lives in its own file
//! rather than in the diffable result output).
//!
//! Observability (all derived outputs — none of them changes a single
//! simulated bit, see `perconf-obs`):
//!
//! * `--profile` turns on per-phase profiling and prints the
//!   self/child wall-time table to stderr after the run;
//! * `--metrics-out <file>` writes a JSON object with the run's merged
//!   hierarchical counter snapshot (for experiments that produce one;
//!   currently the `faults` sweep) and the profile rows;
//! * `--trace-out <file>` records structured events during the run and
//!   flushes them to a checksummed `.pobs` trace. In default builds
//!   the tracer is compiled out and the trace is empty; build with
//!   `--features trace` to capture events;
//! * `repro obs <file.pobs>` summarizes a recorded trace (event counts
//!   by kind, drops) and exports it as JSON lines with `--jsonl`.
//!
//! Output files named by `--timing`, `--metrics-out`, `--trace-out`
//! and `--jsonl` are written atomically (temp file + rename) and are
//! **refused** if the destination already exists, unless `--force` is
//! given.
//!
//! `verify` is the determinism self-check: a clean lockstep run of two
//! identical machines must stay digest-identical, a snapshot written
//! through the checksummed container and restored into a fresh machine
//! must replay identically, and an injected single-bit fault *must* be
//! reported as a divergence with the cycle it first appeared at. With
//! `--trace` it also integrity-scans an on-disk uop trace (add
//! `--tolerant` to skip corrupt records, resync and count them instead
//! of aborting).
//!
//! `sweep` runs the faults grid across `--workers <n>` worker
//! *processes* coordinated through a filesystem lease queue at
//! `--queue <dir>` (see `perconf_experiments::distrib`). Output is
//! byte-identical to a single-process run, including when workers are
//! killed mid-sweep (`--chaos kill-mid-cell=1.0,seed=3` scripts
//! deterministic process faults into the fleet). The coordinator
//! respawns dead workers, drains stragglers inline, and merges in
//! canonical grid order; scheduling statistics land in the queue's
//! `report.json`, never in the diffable output. `--worker-id` /
//! `--chaos-script` are the internal worker-mode flags the coordinator
//! uses when re-invoking this binary.
//!
//! `repro faults --gc --resume <dir>` garbage-collects a checkpoint
//! directory (orphaned mid-cell partials whose final result landed,
//! leftover atomic-write temp files) without running anything; clean
//! sweep completions run the same collection automatically.
//!
//! `serve` / `submit` delegate to the sibling `perconf-serve` binary:
//! a long-running supervised experiment server with a content-
//! addressed result cache (repeat submissions re-simulate nothing)
//! and actor-per-experiment fault tolerance. A waited `submit --json`
//! writes byte-identical output to the equivalent one-shot
//! `repro faults` run. See `perconf-serve --help`.
//!
//! Exit codes (see `perconf_experiments::exit`): 0 success, 1
//! unclassified error, 2 usage error, 3 success after degrading
//! corrupt input to recomputation, 4 failed sweep cells, 5 failed
//! cells where every failure was a watchdog timeout, 6 unsupported
//! `spec_version` in a `repro run` spec file.

#![forbid(unsafe_code)]

use perconf_experiments::runner::{
    default_jobs, degraded_count, gc_dir, Scheduler, SchedulerConfig,
};
use perconf_experiments::{
    common, distrib, energy, exit, faults, fig89, figs, latency, table2, table3, table4, table5,
    table6, verify, Scale,
};
use perconf_faults::{process::parse_script, ChaosConfig};
use perconf_obs::{pobs, CounterSnapshot, TraceLevel, Tracer};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Duration;

/// Why a run failed, classified for the documented exit-code taxonomy
/// (`perconf_experiments::exit`). `From<String>` keeps `?` working on
/// the many helpers that error with plain rendered strings — those
/// map to the unclassified code 1.
enum RunFailure {
    /// Bad flag combination or unknown experiment → exit 2.
    Usage(String),
    /// A `repro run` spec declared a `spec_version` this build does
    /// not read → exit 6 (distinct from exit 2 so automation can tell
    /// "upgrade or regenerate" apart from "fix your spec").
    SpecVersion(String),
    /// The sweep finished but cells failed terminally → exit 4, or 5
    /// when every failure class is `timeout`.
    FailedCells {
        keys: Vec<String>,
        kinds: Vec<String>,
    },
    /// Everything else → exit 1.
    Other(String),
}

impl From<String> for RunFailure {
    fn from(s: String) -> Self {
        RunFailure::Other(s)
    }
}

impl RunFailure {
    fn exit_code(&self) -> u8 {
        match self {
            RunFailure::Usage(_) => exit::USAGE,
            RunFailure::SpecVersion(_) => exit::SPEC_VERSION,
            RunFailure::FailedCells { kinds, .. } => exit::classify_failed_kinds(kinds),
            RunFailure::Other(_) => exit::FAILURE,
        }
    }

    fn render(&self) -> String {
        match self {
            RunFailure::Usage(m) | RunFailure::SpecVersion(m) | RunFailure::Other(m) => m.clone(),
            RunFailure::FailedCells { keys, kinds } => {
                let all_timeout = !kinds.is_empty() && kinds.iter().all(|k| k == "timeout");
                format!(
                    "{} sweep cell(s) failed{}: {}",
                    keys.len(),
                    if all_timeout {
                        " (all watchdog timeouts — consider a longer --cell-timeout)"
                    } else {
                        ""
                    },
                    keys.join(", ")
                )
            }
        }
    }
}

/// Writes `body` to `path` atomically (sibling temp file + rename),
/// refusing to replace an existing file unless `force` is set. The
/// temp file is fsynced before the rename, matching the snapshot
/// container's crash-safety conventions.
fn write_guarded(path: &Path, body: &str, force: bool) -> Result<(), String> {
    if path.exists() && !force {
        return Err(format!(
            "refusing to overwrite {} (pass --force to replace it)",
            path.display()
        ));
    }
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)
                .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
        }
    }
    let mut tmp_name = path
        .file_name()
        .map_or_else(|| "out".into(), std::ffi::OsStr::to_os_string);
    tmp_name.push(".tmp");
    let tmp = path.with_file_name(tmp_name);
    (|| -> std::io::Result<()> {
        use std::io::Write as _;
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(body.as_bytes())?;
        f.sync_all()?;
        drop(f);
        std::fs::rename(&tmp, path)
    })()
    .map_err(|e| format!("cannot write {}: {e}", path.display()))
}

/// Up-front collision check for every `--*-out` style destination, so
/// an hours-long sweep is not thrown away at write time.
fn check_output_paths(args: &Args) -> Result<(), String> {
    if args.force {
        return Ok(());
    }
    for path in [
        &args.timing,
        &args.metrics_out,
        &args.trace_out,
        &args.jsonl,
    ]
    .into_iter()
    .flatten()
    {
        if path.exists() {
            return Err(format!(
                "output file {} already exists (pass --force to replace it)",
                path.display()
            ));
        }
    }
    Ok(())
}

#[derive(Clone)]
struct Args {
    experiment: String,
    /// Second positional argument (the trace file for `repro obs`).
    input: Option<String>,
    scale: Scale,
    json_dir: Option<PathBuf>,
    csv_dir: Option<PathBuf>,
    resume_dir: Option<PathBuf>,
    seed: u64,
    jobs: usize,
    timing: Option<PathBuf>,
    /// Benchmark filter (`--bench`, repeatable). Empty = the full
    /// SPECint2000 set for table/figure experiments; `verify` uses the
    /// first entry (default `gcc`).
    bench: Vec<String>,
    trace: Option<PathBuf>,
    tolerant: bool,
    profile: bool,
    metrics_out: Option<PathBuf>,
    trace_out: Option<PathBuf>,
    jsonl: Option<PathBuf>,
    force: bool,
    /// Queue directory for the distributed `sweep` experiment.
    queue: Option<PathBuf>,
    /// Worker processes for `sweep` (1 = inline, no subprocess).
    workers: usize,
    /// Grid selector for `faults`/`sweep`: `full` or `small`.
    grid: String,
    /// Pipeline-leg batch width for `faults` (1 = unbatched).
    batch: usize,
    /// Lease duration for `sweep` queue claims. `None` falls back to
    /// the (env-overridable) `distrib::Timings` default.
    lease_secs: Option<u64>,
    /// Chaos campaign spec (`key=value,...`) for `sweep`.
    chaos: Option<String>,
    /// Per-attempt cell watchdog for `sweep` (`None` = no watchdog).
    cell_timeout: Option<u64>,
    /// Internal: run as a sweep worker with this id.
    worker_id: Option<String>,
    /// Internal: this worker's rendered chaos script.
    chaos_script: Option<String>,
    /// Garbage-collect the `--resume` directory instead of sweeping.
    gc: bool,
    /// `repro run --check`: validate and lower the spec, then exit
    /// without simulating.
    check: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut experiment = None;
    let mut input = None;
    let mut scale = Scale::quick();
    let mut json_dir = None;
    let mut csv_dir = None;
    let mut resume_dir = None;
    let mut seed = 42;
    let mut jobs = default_jobs();
    let mut batch = 1usize;
    let mut timing = None;
    let mut bench = Vec::new();
    let mut trace = None;
    let mut tolerant = false;
    let mut profile = false;
    let mut metrics_out = None;
    let mut trace_out = None;
    let mut jsonl = None;
    let mut force = false;
    let mut queue = None;
    let mut workers = 1;
    let mut grid = "full".to_owned();
    let mut lease_secs = None;
    let mut chaos = None;
    let mut cell_timeout = None;
    let mut worker_id = None;
    let mut chaos_script = None;
    let mut gc = false;
    let mut check = false;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--full" => scale = Scale::full(),
            "--tiny" => scale = Scale::tiny(),
            "--json" => {
                json_dir = Some(PathBuf::from(it.next().ok_or("--json needs a directory")?));
            }
            "--csv" => {
                csv_dir = Some(PathBuf::from(it.next().ok_or("--csv needs a directory")?));
            }
            "--resume" => {
                resume_dir = Some(PathBuf::from(
                    it.next().ok_or("--resume needs a directory")?,
                ));
            }
            "--seed" => {
                seed = it
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--jobs" => {
                let n: usize = it
                    .next()
                    .ok_or("--jobs needs a worker count")?
                    .parse()
                    .map_err(|e| format!("--jobs: {e}"))?;
                jobs = if n == 0 { default_jobs() } else { n };
            }
            "--timing" => {
                timing = Some(PathBuf::from(it.next().ok_or("--timing needs a file")?));
            }
            "--batch" => {
                let n: usize = it
                    .next()
                    .ok_or("--batch needs a width")?
                    .parse()
                    .map_err(|e| format!("--batch: {e}"))?;
                batch = n.max(1);
            }
            "--bench" => {
                bench.push(it.next().ok_or("--bench needs a benchmark name")?);
            }
            "--trace" => {
                trace = Some(PathBuf::from(it.next().ok_or("--trace needs a file")?));
            }
            "--tolerant" => tolerant = true,
            "--profile" => profile = true,
            "--metrics-out" => {
                metrics_out = Some(PathBuf::from(
                    it.next().ok_or("--metrics-out needs a file")?,
                ));
            }
            "--trace-out" => {
                trace_out = Some(PathBuf::from(it.next().ok_or("--trace-out needs a file")?));
            }
            "--jsonl" => {
                jsonl = Some(PathBuf::from(it.next().ok_or("--jsonl needs a file")?));
            }
            "--force" => force = true,
            "--queue" => {
                queue = Some(PathBuf::from(it.next().ok_or("--queue needs a directory")?));
            }
            "--workers" => {
                workers = it
                    .next()
                    .ok_or("--workers needs a process count")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
            }
            "--grid" => {
                grid = it.next().ok_or("--grid needs `full` or `small`")?;
                if grid != "full" && grid != "small" {
                    return Err(format!("--grid must be `full` or `small`, got `{grid}`"));
                }
            }
            "--lease-secs" => {
                let secs: u64 = it
                    .next()
                    .ok_or("--lease-secs needs a value")?
                    .parse()
                    .map_err(|e| format!("--lease-secs: {e}"))?;
                if secs == 0 {
                    return Err("--lease-secs must be at least 1".to_owned());
                }
                lease_secs = Some(secs);
            }
            "--chaos" => {
                chaos = Some(it.next().ok_or("--chaos needs a key=value,... spec")?);
            }
            "--cell-timeout" => {
                cell_timeout = Some(
                    it.next()
                        .ok_or("--cell-timeout needs seconds")?
                        .parse()
                        .map_err(|e| format!("--cell-timeout: {e}"))?,
                );
            }
            "--worker-id" => {
                worker_id = Some(it.next().ok_or("--worker-id needs an id")?);
            }
            "--chaos-script" => {
                chaos_script = Some(it.next().ok_or("--chaos-script needs a script")?);
            }
            "--gc" => gc = true,
            "--check" => check = true,
            "--help" | "-h" => {
                return Err(String::new());
            }
            other if experiment.is_none() && !other.starts_with('-') => {
                experiment = Some(other.to_owned());
            }
            other if experiment.is_some() && input.is_none() && !other.starts_with('-') => {
                input = Some(other.to_owned());
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(Args {
        experiment: experiment.ok_or("missing experiment name")?,
        input,
        scale,
        json_dir,
        csv_dir,
        resume_dir,
        seed,
        jobs,
        timing,
        bench,
        trace,
        tolerant,
        profile,
        metrics_out,
        trace_out,
        jsonl,
        force,
        queue,
        workers,
        grid,
        batch,
        lease_secs,
        chaos,
        cell_timeout,
        worker_id,
        chaos_script,
        gc,
        check,
    })
}

fn grid_by_name(name: &str) -> faults::Grid {
    if name == "small" {
        faults::Grid::small()
    } else {
        faults::Grid::full()
    }
}

/// The `verify` experiment: determinism, replay and fault-divergence
/// self-checks. Fails (returns `Err`) when a clean probe diverges or
/// the injected-fault probe does *not*.
fn run_verify(args: &Args) -> Result<(), String> {
    let bench = args.bench.first().map_or("gcc", String::as_str);
    let wl = perconf_workload::spec2000_config(bench)
        .ok_or_else(|| format!("unknown benchmark {bench}"))?;
    let cfg = perconf_pipeline::PipelineConfig::deep().gated(1);
    let mk = || common::controller(common::PredictorKind::BimodalGshare, common::perceptron(14));
    let scale = args.scale;
    let interval = (scale.run_uops / 8).max(1);

    let clean = verify::lockstep(&wl, cfg, mk, scale, interval, None)
        .map_err(|e| format!("lockstep probe failed: {e}"))?;
    println!("{}", clean.render());

    let snap = std::env::temp_dir().join(format!("repro-verify-{}.psnap", std::process::id()));
    let replayed = verify::replay(&wl, cfg, mk, scale, scale.run_uops / 3, interval, &snap)
        .map_err(|e| format!("replay probe failed: {e}"))?;
    let _ = std::fs::remove_file(&snap);
    println!("{}", replayed.render());

    let inject = verify::Inject {
        at_uops: scale.run_uops / 3,
        bit: 5,
    };
    let faulted = verify::lockstep(&wl, cfg, mk, scale, interval, Some(inject))
        .map_err(|e| format!("inject probe failed: {e}"))?;
    println!("{}", faulted.render());

    if let Some(path) = &args.trace {
        let t = verify::check_trace(path, args.tolerant)
            .map_err(|e| format!("trace scan of {}: {e}", path.display()))?;
        println!(
            "trace {}: {} records, {} resyncs, {} bytes skipped ({} mode)",
            path.display(),
            t.records,
            t.resyncs,
            t.skipped_bytes,
            if args.tolerant { "tolerant" } else { "strict" }
        );
    }

    if clean.diverged() {
        return Err("clean lockstep run diverged: the simulator is nondeterministic".into());
    }
    if replayed.diverged() {
        return Err("snapshot replay diverged from the original run".into());
    }
    match faulted.first_divergence {
        Some(d) => {
            println!(
                "self-check passed: injected single-bit fault detected at cycle {} ({} retired uops)",
                d.cycle_b, d.retired
            );
            Ok(())
        }
        None => Err("injected single-bit fault was NOT detected — digest coverage hole".into()),
    }
}

/// Saves a result struct as `<dir>/<name>.json` through the same
/// atomic temp+rename, refuse-to-overwrite-without-`--force` guard as
/// every other output writer. Best-effort (a failed save warns rather
/// than discarding the already-computed result from stdout).
fn save_json(dir: &Option<PathBuf>, name: &str, value: &impl serde::Serialize, force: bool) {
    if let Some(dir) = dir {
        let path = dir.join(format!("{name}.json"));
        match serde_json::to_string_pretty(value) {
            Ok(s) => {
                if let Err(e) = write_guarded(&path, &s, force) {
                    eprintln!("warning: {e}");
                }
            }
            Err(e) => eprintln!("warning: cannot serialize {name}: {e}"),
        }
    }
}

fn save_csv(dir: &Option<PathBuf>, name: &str, body: &str, force: bool) {
    save_file(dir, &format!("{name}.csv"), body, force);
}

fn save_file(dir: &Option<PathBuf>, file: &str, body: &str, force: bool) {
    if let Some(dir) = dir {
        if let Err(e) = write_guarded(&dir.join(file), body, force) {
            eprintln!("warning: {e}");
        }
    }
}

/// Prints the per-cell wall-time/retry report to stderr (so the
/// diffable table output on stdout stays deterministic) and, with
/// `--timing`, writes it as JSON for CI to publish as an artifact.
fn report_timings(
    timings: &[perconf_experiments::runner::CellTiming],
    jobs: usize,
    timing_file: &Option<PathBuf>,
    force: bool,
) {
    let total: f64 = timings.iter().map(|t| t.wall_s).sum();
    eprintln!(
        "[{} cells on {jobs} worker(s): {} executed, {} resumed, {} retries, {} failed; {total:.1} cell-seconds]",
        timings.len(),
        timings.iter().filter(|t| t.attempts > 0).count(),
        timings.iter().filter(|t| t.resumed).count(),
        timings.iter().map(|t| u64::from(t.retries)).sum::<u64>(),
        timings.iter().filter(|t| !t.ok).count(),
    );
    for t in timings {
        eprintln!(
            "  {:<40} {:>8.2}s attempts={} retries={}{}{}{}",
            t.key,
            t.wall_s,
            t.attempts,
            t.retries,
            if t.resumed { " resumed" } else { "" },
            if t.resumed_mid_cell { " mid-cell" } else { "" },
            if t.ok { "" } else { " FAILED" },
        );
    }
    if let Some(path) = timing_file {
        match serde_json::to_string_pretty(&timings.to_vec()) {
            Ok(s) => {
                if let Err(e) = write_guarded(path, &s, force) {
                    eprintln!("warning: {e}");
                }
            }
            Err(e) => eprintln!("warning: cannot serialize timing report: {e}"),
        }
    }
}

/// Summarizes a recorded `.pobs` trace and optionally exports it as
/// JSON lines (`--jsonl <file>`, guarded like every other output).
fn run_obs(args: &Args) -> Result<(), String> {
    let input = args
        .input
        .as_deref()
        .ok_or("obs needs a trace file argument: repro obs <file.pobs>")?;
    let path = Path::new(input);
    let t = pobs::read(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    println!(
        "trace {}: {} event(s), {} dropped at capture",
        path.display(),
        t.events.len(),
        t.dropped
    );
    for (kind, n) in t.counts_by_kind() {
        println!("  {kind:<20} {n:>10}");
    }
    if let Some(out) = &args.jsonl {
        let body = t
            .to_jsonl()
            .map_err(|e| format!("cannot export JSON lines: {e}"))?;
        write_guarded(out, &body, args.force)?;
        eprintln!("[jsonl -> {}]", out.display());
    }
    Ok(())
}

/// Runs one named experiment. `counters` is an out-parameter: the
/// experiments that produce a merged [`CounterSnapshot`] (currently the
/// `faults` sweep) deposit it there so `main` can include it in
/// `--metrics-out`.
fn run_one(
    name: &str,
    args: &Args,
    counters: &mut Option<CounterSnapshot>,
) -> Result<(), RunFailure> {
    let scale = args.scale;
    match name {
        "table2" => {
            let benches = bench_list(args)?;
            // Routed through the scheduler — not the plain in-process
            // path — so checkpoints, resume, and job fan-out behave
            // exactly like a spec-driven run (byte-identical outputs,
            // `.psnap` files included; pinned by test and CI).
            let mut scheduler = scheduler_for(args);
            let (t, timings) = table2::run_scheduled(scale, &benches, &mut scheduler);
            let t = t.map_err(|failed| failed_cells(failed, &timings))?;
            println!("{}", t.render());
            save_json(&args.json_dir, "table2", &t, args.force);
        }
        "table3" => {
            let t = table3::run(scale);
            println!("{}", t.render());
            println!(
                "headline (perceptron PVN beats JRS everywhere): {}",
                t.perceptron_pvn_dominates()
            );
            save_json(&args.json_dir, "table3", &t, args.force);
        }
        "table4" => {
            let t = table4::run_points(
                scale,
                bench_list(args)?,
                &table4::default_jrs_points(),
                &table4::default_perceptron_lambdas(),
            );
            println!("{}", t.render());
            save_json(&args.json_dir, "table4", &t, args.force);
        }
        "table5" => {
            let t = table5::run(scale);
            println!("{}", t.render());
            println!(
                "better predictor leaves less opportunity: {}",
                t.better_predictor_reduces_opportunity()
            );
            save_json(&args.json_dir, "table5", &t, args.force);
        }
        "table6" => {
            let t = table6::run(scale);
            println!("{}", t.render());
            println!("narrow weights hurt most: {}", t.narrow_weights_hurt_most());
            save_json(&args.json_dir, "table6", &t, args.force);
        }
        "fig4" | "fig5" => {
            let f = figs::run(figs::Training::CorrectIncorrect, "gcc", scale);
            println!("{}", f.render());
            let (full, zoom) = f.to_csv();
            save_csv(&args.csv_dir, "fig4_cic_full", &full, args.force);
            save_csv(&args.csv_dir, "fig5_cic_zoom", &zoom, args.force);
            let (svg_full, svg_zoom) = f.to_svg();
            save_file(&args.csv_dir, "fig4_cic_full.svg", &svg_full, args.force);
            save_file(&args.csv_dir, "fig5_cic_zoom.svg", &svg_zoom, args.force);
            save_json(&args.json_dir, "fig45", &f, args.force);
        }
        "fig6" | "fig7" => {
            let f = figs::run(figs::Training::TakenNotTaken, "gcc", scale);
            println!("{}", f.render());
            let (full, zoom) = f.to_csv();
            save_csv(&args.csv_dir, "fig6_tnt_full", &full, args.force);
            save_csv(&args.csv_dir, "fig7_tnt_zoom", &zoom, args.force);
            let (svg_full, svg_zoom) = f.to_svg();
            save_file(&args.csv_dir, "fig6_tnt_full.svg", &svg_full, args.force);
            save_file(&args.csv_dir, "fig7_tnt_zoom.svg", &svg_zoom, args.force);
            save_json(&args.json_dir, "fig67", &f, args.force);
        }
        "fig8" => {
            let f = fig89::run_on(fig89::Machine::Deep, scale, bench_list(args)?);
            println!("{}", f.render());
            save_file(&args.csv_dir, "fig8.svg", &f.to_svg(), args.force);
            save_json(&args.json_dir, "fig8", &f, args.force);
        }
        "fig9" => {
            let f = fig89::run_on(fig89::Machine::Wide, scale, bench_list(args)?);
            println!("{}", f.render());
            save_file(&args.csv_dir, "fig9.svg", &f.to_svg(), args.force);
            save_json(&args.json_dir, "fig9", &f, args.force);
        }
        "latency" => {
            let l = latency::run(scale);
            println!("{}", l.render());
            println!("9-cycle latency is cheap: {}", l.nine_cycles_is_cheap());
            save_json(&args.json_dir, "latency", &l, args.force);
        }
        "energy" => {
            let e = energy::run(scale);
            println!("{}", e.render());
            println!("gating saves energy: {}", e.gating_saves_energy());
            save_json(&args.json_dir, "energy", &e, args.force);
        }
        "faults" => {
            if args.gc {
                return run_gc(args);
            }
            run_faults_grid(args, &grid_by_name(&args.grid), scale, args.seed, counters)?;
        }
        "sweep" => {
            if let Some(id) = &args.worker_id {
                return run_sweep_worker(args, id);
            }
            let queue_root = args.queue.clone().ok_or_else(|| {
                RunFailure::Usage("sweep needs --queue <dir> (the shared queue directory)".into())
            })?;
            let chaos = match &args.chaos {
                Some(spec) => Some(ChaosConfig::parse(spec).map_err(RunFailure::Usage)?),
                None => None,
            };
            // Flag > environment > default, per the Timings contract.
            let mut timings = distrib::Timings::from_env();
            if let Some(secs) = args.lease_secs {
                timings.lease = Duration::from_secs(secs);
            }
            let cfg = distrib::SweepConfig {
                queue_root,
                workers: args.workers,
                scale,
                seed: args.seed,
                grid: grid_by_name(&args.grid),
                timings,
                chaos,
                cell_timeout: args.cell_timeout.map(Duration::from_secs),
            };
            let (t, d) = distrib::run_sweep(&cfg)?;
            println!("{}", t.render());
            println!(
                "faults degrade metrics monotonically: {}",
                t.degrades_monotonically()
            );
            *counters = Some(t.counters.clone());
            save_json(&args.json_dir, "faults", &t, args.force);
            eprintln!(
                "[sweep: {} worker(s) spawned, {} respawned, {} chaos exit(s); \
                 {} recovered from checkpoints, {} recomputed inline, {} mid-cell resume(s)]",
                d.workers_spawned,
                d.workers_respawned,
                d.chaos_exits,
                d.cells_recovered_from_checkpoint,
                d.cells_recomputed_inline,
                d.cells_resumed_mid_cell,
            );
            if !d.failed_cells.is_empty() {
                return Err(RunFailure::FailedCells {
                    keys: d.failed_cells.iter().map(|f| f.key.clone()).collect(),
                    kinds: d.failed_cells.iter().map(|f| f.kind.clone()).collect(),
                });
            }
        }
        "verify" => run_verify(args)?,
        "obs" => run_obs(args)?,
        "run" => run_spec(args, counters)?,
        other => return Err(RunFailure::Usage(format!("unknown experiment: {other}"))),
    }
    Ok(())
}

/// Resolves the `--bench` filter (empty = the full SPECint2000 set)
/// into workload configs, rejecting unknown names up front.
fn bench_list(args: &Args) -> Result<Vec<perconf_workload::WorkloadConfig>, RunFailure> {
    if args.bench.is_empty() {
        return Ok(common::benchmarks());
    }
    args.bench
        .iter()
        .map(|name| {
            perconf_workload::spec2000_config(name)
                .ok_or_else(|| RunFailure::Usage(format!("unknown benchmark {name}")))
        })
        .collect()
}

/// Builds the scheduler every cell-based experiment shares: `--jobs`
/// workers, resuming from `--resume <dir>` when given (with the
/// stale/empty-directory advisory).
fn scheduler_for(args: &Args) -> Scheduler {
    if let Some(dir) = &args.resume_dir {
        note_resume_dir_state(dir);
    }
    Scheduler::new(SchedulerConfig::for_run(
        args.jobs,
        args.resume_dir.as_deref(),
    ))
}

/// Maps failed cell keys to a [`RunFailure::FailedCells`], pulling
/// each cell's terminal failure class from its timing row.
fn failed_cells(
    keys: Vec<String>,
    timings: &[perconf_experiments::runner::CellTiming],
) -> RunFailure {
    let kinds = keys
        .iter()
        .map(|key| {
            timings
                .iter()
                .find(|row| &row.key == key)
                .and_then(|row| row.error_kind.clone())
                .unwrap_or_else(|| "unknown".to_owned())
        })
        .collect();
    RunFailure::FailedCells { keys, kinds }
}

/// The faults sweep on an explicit grid — shared by the `faults`
/// subcommand (preset via `--grid`) and spec-driven runs (preset or
/// explicit axes), so both produce byte-identical output.
fn run_faults_grid(
    args: &Args,
    grid: &faults::Grid,
    scale: Scale,
    seed: u64,
    counters: &mut Option<CounterSnapshot>,
) -> Result<(), RunFailure> {
    let mut scheduler = scheduler_for(args);
    // Width 1 runs the identical engine one cell per group; any width
    // produces byte-identical output (pinned by the batch determinism
    // suite), so batching is purely a throughput knob.
    let (t, timings) = faults::run_grid_batched(scale, seed, grid, &mut scheduler, args.batch);
    println!("{}", t.render());
    println!(
        "faults degrade metrics monotonically: {}",
        t.degrades_monotonically()
    );
    *counters = Some(t.counters.clone());
    report_timings(&timings, args.jobs, &args.timing, args.force);
    save_json(&args.json_dir, "faults", &t, args.force);
    if t.failed.is_empty() {
        // Clean completion: collect the stale partials and temp files
        // a killed earlier run may have left.
        if let Some(dir) = &args.resume_dir {
            let gc = gc_dir(dir);
            if gc.total() > 0 {
                eprintln!(
                    "[gc: removed {} stale partial(s), {} temp file(s) from {}]",
                    gc.partials_removed,
                    gc.temps_removed,
                    dir.display()
                );
            }
        }
        Ok(())
    } else {
        // Failure classes come from the timing rows, which carry each
        // failed cell's terminal error kind.
        Err(failed_cells(t.failed.clone(), &timings))
    }
}

/// `repro run <spec>`: execute (or, with `--check`, just validate) a
/// declarative experiment spec. The spec supplies experiment, scale,
/// seed, benchmarks/points/grid, and default output destinations;
/// `--jobs`, `--batch`, `--resume` and explicit output flags pass
/// through unchanged. Lowering lands on the *same* cell machinery as
/// the hard-coded subcommands, which is what makes the outputs —
/// checkpoint files included — byte-identical (CI's `specs` lane
/// gates on exactly that).
fn run_spec(args: &Args, counters: &mut Option<CounterSnapshot>) -> Result<(), RunFailure> {
    use perconf_experiments::spec::{Lowered, RunSpec, SpecError};
    let input = args
        .input
        .as_deref()
        .ok_or_else(|| RunFailure::Usage("run needs a spec file: repro run <spec.toml>".into()))?;
    let spec = RunSpec::load(Path::new(input)).map_err(|e| match e {
        SpecError::Version { message, .. } => RunFailure::SpecVersion(message),
        SpecError::Invalid(m) => RunFailure::Usage(m),
    })?;
    let lowered = spec
        .lower()
        .map_err(|e| RunFailure::Other(format!("{input}: cannot lower spec: {e}")))?;
    if args.check {
        println!(
            "spec OK: {input} — {} ({} cell(s), scale {})",
            lowered.describe(),
            lowered.cell_count(),
            spec.experiment.scale
        );
        return Ok(());
    }
    // The spec's [output] section supplies defaults; explicit CLI
    // flags win. The merged view is what the shared helpers see, so
    // guarding and atomicity are identical either way.
    let out = spec.output.clone().unwrap_or_default();
    let merged = Args {
        json_dir: args
            .json_dir
            .clone()
            .or_else(|| out.json.as_deref().map(PathBuf::from)),
        timing: args
            .timing
            .clone()
            .or_else(|| out.timing.as_deref().map(PathBuf::from)),
        ..args.clone()
    };
    let args = &merged;
    if let Some(path) = &args.timing {
        if path.exists() && !args.force {
            return Err(RunFailure::Usage(format!(
                "output file {} already exists (pass --force to replace it)",
                path.display()
            )));
        }
    }
    match lowered {
        Lowered::Table2 { scale, benchmarks } => {
            let mut scheduler = scheduler_for(args);
            let (t, timings) = table2::run_scheduled(scale, &benchmarks, &mut scheduler);
            let t = t.map_err(|failed| failed_cells(failed, &timings))?;
            println!("{}", t.render());
            save_json(&args.json_dir, "table2", &t, args.force);
        }
        Lowered::Table4 {
            scale,
            benchmarks,
            jrs_points,
            perceptron_lambdas,
        } => {
            let t = table4::run_points(scale, benchmarks, &jrs_points, &perceptron_lambdas);
            println!("{}", t.render());
            save_json(&args.json_dir, "table4", &t, args.force);
        }
        Lowered::Fig89 {
            machine,
            scale,
            benchmarks,
            name,
        } => {
            let f = fig89::run_on(machine, scale, benchmarks);
            println!("{}", f.render());
            save_file(
                &args.csv_dir,
                &format!("{name}.svg"),
                &f.to_svg(),
                args.force,
            );
            save_json(&args.json_dir, &name, &f, args.force);
        }
        Lowered::Faults { scale, seed, grid } => {
            run_faults_grid(args, &grid, scale, seed, counters)?;
        }
    }
    Ok(())
}

/// Warns (actionably) when `--resume` points at a directory that
/// cannot actually resume anything — a missing or empty checkpoint
/// dir silently behaving like a fresh run has burned people before.
/// The run still proceeds: the directory is created lazily and this
/// pass's checkpoints land in it.
fn note_resume_dir_state(dir: &Path) {
    if !dir.exists() {
        eprintln!(
            "note: --resume directory {} does not exist — nothing to resume from. \
             Starting fresh; this run will create it and checkpoint into it. \
             (Expected the <dir> passed to a previous `--resume <dir>` run.)",
            dir.display()
        );
    } else if std::fs::read_dir(dir)
        .map(|mut d| d.next().is_none())
        .unwrap_or(false)
    {
        eprintln!(
            "note: --resume directory {} is empty — nothing to resume from. \
             Starting fresh; checkpoints from this run will land there.",
            dir.display()
        );
    }
}

/// `repro faults --gc --resume <dir>`: collect stale checkpoint-dir
/// garbage and report, without running a sweep.
fn run_gc(args: &Args) -> Result<(), RunFailure> {
    let Some(dir) = &args.resume_dir else {
        return Err(RunFailure::Usage(
            "--gc needs --resume <dir> (the checkpoint directory to collect)".into(),
        ));
    };
    if !dir.exists() {
        eprintln!(
            "note: checkpoint directory {} does not exist — nothing to collect",
            dir.display()
        );
        return Ok(());
    }
    let gc = gc_dir(dir);
    println!(
        "gc {}: removed {} stale partial(s), {} temp file(s)",
        dir.display(),
        gc.partials_removed,
        gc.temps_removed
    );
    Ok(())
}

/// Internal worker mode: `repro sweep --queue <dir> --worker-id <id>`.
/// Everything else (grid, scale, seed, lease) comes from the queue's
/// manifest, so a worker can never disagree with its coordinator.
fn run_sweep_worker(args: &Args, id: &str) -> Result<(), RunFailure> {
    let queue_root = args
        .queue
        .clone()
        .ok_or_else(|| RunFailure::Usage("worker mode needs --queue <dir>".into()))?;
    let script = match &args.chaos_script {
        Some(s) => parse_script(s).map_err(RunFailure::Usage)?,
        None => Vec::new(),
    };
    let cfg = distrib::WorkerConfig {
        script,
        timeout: args.cell_timeout.map(Duration::from_secs),
        ..distrib::WorkerConfig::new(queue_root, id)
    };
    let stats = distrib::run_worker(&cfg)?;
    eprintln!("[worker {id} done]\n{}", stats.render());
    Ok(())
}

const ALL: [&str; 12] = [
    "table2", "table3", "table4", "table5", "table6", "fig4", "fig6", "fig8", "fig9", "latency",
    "energy", "faults",
];

/// Post-run observability output: the profile table on stderr, the
/// merged counters + profile rows as `--metrics-out` JSON, and the
/// drained event ring as a `--trace-out` `.pobs` file. Runs whether or
/// not the experiment itself succeeded — a profile of a failed run is
/// still a profile.
fn finish_obs(args: &Args, counters: &Option<CounterSnapshot>) -> Result<(), String> {
    if args.profile {
        eprint!("{}", common::profiler().report().render());
    }
    if let Some(path) = &args.metrics_out {
        let report = common::profiler().report();
        let metrics = serde::Value::Object(vec![
            (
                "counters".to_owned(),
                counters
                    .as_ref()
                    .and_then(|c| serde_json::to_value(c).ok())
                    .unwrap_or(serde::Value::Null),
            ),
            (
                "profile".to_owned(),
                serde_json::to_value(&report).unwrap_or(serde::Value::Null),
            ),
        ]);
        let body = serde_json::to_string_pretty(&metrics)
            .map_err(|e| format!("cannot serialize metrics: {e}"))?;
        write_guarded(path, &body, args.force)?;
        eprintln!("[metrics -> {}]", path.display());
    }
    if let Some(path) = &args.trace_out {
        let (events, dropped) = common::tracer().drain();
        // `pobs::write` is already atomic; existence was checked up
        // front by `check_output_paths`.
        pobs::write(path, &events, dropped)
            .map_err(|e| format!("cannot write trace {}: {e}", path.display()))?;
        eprintln!(
            "[trace: {} event(s), {} dropped -> {}]",
            events.len(),
            dropped,
            path.display()
        );
    }
    Ok(())
}

/// `repro serve` / `repro submit` are thin wrappers around the
/// sibling `perconf-serve` binary: the server lives in its own crate
/// (which depends on this one), so the delegation is a subprocess,
/// not a library call. Stdio is inherited and the child's exit code —
/// the same shared taxonomy — passes straight through.
fn delegate_serve(cmd: &str, rest: &[String]) -> ExitCode {
    let sub = if cmd == "serve" { "run" } else { "submit" };
    let bin = std::env::var_os("PERCONF_SERVE_BIN")
        .map(PathBuf::from)
        .or_else(|| {
            let sibling = std::env::current_exe()
                .ok()?
                .parent()?
                .join("perconf-serve");
            sibling.exists().then_some(sibling)
        });
    let Some(bin) = bin else {
        eprintln!(
            "error: cannot find the `perconf-serve` sibling binary next to `repro` \
             (build it with `cargo build -p perconf-serve`, or point PERCONF_SERVE_BIN at it)"
        );
        return ExitCode::from(exit::FAILURE);
    };
    match std::process::Command::new(&bin)
        .arg(sub)
        .args(rest)
        .status()
    {
        Ok(status) => match status.code() {
            Some(code) => ExitCode::from(u8::try_from(code).unwrap_or(exit::FAILURE)),
            None => {
                eprintln!("error: {} died on a signal", bin.display());
                ExitCode::from(exit::FAILURE)
            }
        },
        Err(e) => {
            eprintln!("error: cannot run {}: {e}", bin.display());
            ExitCode::from(exit::FAILURE)
        }
    }
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if let Some(first) = raw.first() {
        if first == "serve" || first == "submit" {
            return delegate_serve(first, &raw[1..]);
        }
    }
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            if !e.is_empty() {
                eprintln!("error: {e}\n");
            }
            eprintln!(
                "usage: repro <experiment> [--full | --tiny] [--json <dir>] [--csv <dir>] [--resume <dir>] [--seed <u64>] [--jobs <n>] [--batch <n>] [--timing <file>]\n\
                 \x20            [--grid full|small] [--profile] [--metrics-out <file>] [--trace-out <file>] [--force]\n\
                 \x20      repro run <spec.toml|spec.json> [--check] [--jobs <n>] [--batch <n>] [--resume <dir>] [--json <dir>] [--csv <dir>] [--timing <file>] [--force]\n\
                 \x20      repro verify [--bench <name>] [--full | --tiny] [--trace <file> [--tolerant]]\n\
                 \x20      repro obs <file.pobs> [--jsonl <file>] [--force]\n\
                 \x20      repro sweep --queue <dir> [--workers <n>] [--grid full|small] [--lease-secs <s>] [--chaos <spec>] [--cell-timeout <s>]\n\
                 \x20      repro faults --gc --resume <dir>\n\
                 \x20      repro serve [--state <dir>] [--addr <ip:port>] [--queue <n>] [--restarts <n>] [--watchdog <s>]\n\
                 \x20      repro submit [--state <dir> | --addr <ip:port>] --seed <u64> [--full | --tiny] [--grid full|small] [--json <dir>] [--chaos kill]\n\
                 experiments: table2 table3 table4 table5 table6 fig4 fig5 fig6 fig7 fig8 fig9 latency energy faults sweep verify obs run all\n\
                 exit codes: 0 ok | 1 error | 2 usage | 3 ok-but-degraded-input | 4 failed cells | 5 all failures were watchdog timeouts | 6 unsupported spec_version"
            );
            return ExitCode::from(exit::USAGE);
        }
    };
    if let Err(e) = check_output_paths(&args) {
        eprintln!("error: {e}");
        return ExitCode::from(exit::USAGE);
    }
    if args.profile {
        common::profiler().enable(true);
    }
    if args.trace_out.is_some() {
        if !Tracer::COMPILED {
            eprintln!(
                "warning: tracer is compiled out in this build — the trace will be empty \
                 (rebuild with `--features trace` to capture events)"
            );
        }
        common::tracer().set_level(TraceLevel::Standard);
    }
    // Table/figure experiments parallelize per benchmark through the
    // shared helper pool; the faults sweep parallelizes per cell via
    // its Scheduler. Both honour the same --jobs value.
    common::set_jobs(args.jobs);
    #[allow(clippy::disallowed_methods)]
    // lint: allow(nondeterminism-sources) — wall-time banner only, never in results
    let start = std::time::Instant::now();
    let mut counters = None;
    let result = if args.experiment == "all" {
        ALL.iter().try_for_each(|name| {
            println!("\n================ {name} ================\n");
            run_one(name, &args, &mut counters)
        })
    } else {
        run_one(&args.experiment, &args, &mut counters)
    };
    let result = result.and(finish_obs(&args, &counters).map_err(RunFailure::from));
    match result {
        Ok(()) => {
            eprintln!("\n[{:.1}s elapsed]", start.elapsed().as_secs_f64());
            let degraded = degraded_count();
            if degraded > 0 {
                // Success, but corrupt input was discarded and
                // recomputed along the way — admit it in the status.
                eprintln!(
                    "[{degraded} corrupt input(s) degraded to recomputation — exit {}]",
                    exit::DEGRADED
                );
                return ExitCode::from(exit::DEGRADED);
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {}", e.render());
            ExitCode::from(e.exit_code())
        }
    }
}
