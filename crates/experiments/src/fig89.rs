//! Figures 8 and 9 — combining pipeline gating and branch reversal
//! with a single perceptron estimator (§5.5): per-benchmark speedup
//! and reduction in executed uops, on the 40-cycle 4-wide pipeline
//! (Figure 8) and the 20-cycle 8-wide pipeline (Figure 9).
//!
//! Thresholds as in the paper: reverse when the output exceeds 0,
//! gate (PL2) when it falls in `[-75, 0]`, high confidence below −75.

use crate::common::{controller, BaselineSet, PredictorKind, Scale};
use perconf_core::{PerceptronCe, PerceptronCeConfig};
use perconf_metrics::{stats, Table};
use perconf_pipeline::PipelineConfig;
use serde::{Deserialize, Serialize};

/// Which machine shape the figure uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Machine {
    /// Figure 8: 40-cycle, 4-wide.
    Deep,
    /// Figure 9: 20-cycle, 8-wide.
    Wide,
}

/// One benchmark's bar pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig8Row {
    /// Benchmark name.
    pub bench: String,
    /// Speedup (%): positive = faster than the ungated baseline.
    pub speedup: f64,
    /// Reduction in executed uops (%).
    pub uop_reduction: f64,
    /// Reduction in fetched uops (%).
    pub fetch_reduction: f64,
    /// Reversals per 1000 retired uops and their quality.
    pub reversals_good: u64,
    /// Reversals that broke a correct prediction.
    pub reversals_bad: u64,
}

/// Full Figure 8/9 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig8 {
    /// Machine shape.
    pub machine: Machine,
    /// Per-benchmark rows.
    pub rows: Vec<Fig8Row>,
}

/// Runs the combined gating + reversal experiment.
#[must_use]
pub fn run(machine: Machine, scale: Scale) -> Fig8 {
    run_on(machine, scale, crate::common::benchmarks())
}

/// Like [`run`] but over an explicit benchmark list (reduced-scale
/// golden tests cover the combo cells this way).
#[must_use]
pub fn run_on(
    machine: Machine,
    scale: Scale,
    benchmarks: Vec<perconf_workload::WorkloadConfig>,
) -> Fig8 {
    let pipe = match machine {
        Machine::Deep => PipelineConfig::deep(),
        Machine::Wide => PipelineConfig::wide(),
    };
    let baselines = BaselineSet::build_on(PredictorKind::BimodalGshare, pipe, scale, benchmarks);
    let (_, per) = baselines.evaluate(pipe.gated(2), || {
        controller(
            PredictorKind::BimodalGshare,
            Box::new(PerceptronCe::new(PerceptronCeConfig::combined())),
        )
    });
    let rows = baselines
        .runs()
        .iter()
        .zip(per)
        .map(|((wl, _), (o, var))| Fig8Row {
            bench: wl.name.clone(),
            speedup: -o.perf_loss * 100.0,
            uop_reduction: o.u_executed * 100.0,
            fetch_reduction: o.u_fetched * 100.0,
            reversals_good: var.reversals_good,
            reversals_bad: var.reversals_bad,
        })
        .collect();
    Fig8 { machine, rows }
}

impl Fig8 {
    /// Mean speedup across benchmarks (%).
    #[must_use]
    pub fn avg_speedup(&self) -> f64 {
        stats::mean(&self.rows.iter().map(|r| r.speedup).collect::<Vec<_>>()).unwrap_or(0.0)
    }

    /// Mean executed-uop reduction across benchmarks (%).
    #[must_use]
    pub fn avg_uop_reduction(&self) -> f64 {
        stats::mean(
            &self
                .rows
                .iter()
                .map(|r| r.uop_reduction)
                .collect::<Vec<_>>(),
        )
        .unwrap_or(0.0)
    }

    /// Mean fetched-uop reduction across benchmarks (%).
    #[must_use]
    pub fn avg_fetch_reduction(&self) -> f64 {
        stats::mean(
            &self
                .rows
                .iter()
                .map(|r| r.fetch_reduction)
                .collect::<Vec<_>>(),
        )
        .unwrap_or(0.0)
    }

    /// SVG bar chart of the per-benchmark speedup and uop reductions.
    #[must_use]
    pub fn to_svg(&self) -> String {
        let title = match self.machine {
            Machine::Deep => "Figure 8: gating + reversal, 40-cycle 4-wide (%)",
            Machine::Wide => "Figure 9: gating + reversal, 8-wide 20-cycle (%)",
        };
        let rows: Vec<(String, Vec<f64>)> = self
            .rows
            .iter()
            .map(|r| {
                (
                    r.bench.clone(),
                    vec![r.speedup, r.uop_reduction, r.fetch_reduction],
                )
            })
            .collect();
        perconf_metrics::svg::bars_svg(title, &["speedup", "U(exec)", "U(fetch)"], &rows)
    }

    /// Renders per-benchmark bars plus the averages, with the paper's
    /// headline averages for comparison.
    #[must_use]
    pub fn render(&self) -> String {
        let (title, paper_u) = match self.machine {
            Machine::Deep => (
                "Figure 8: gating + reversal, 40-cycle 4-wide",
                crate::paper::FIG8_AVG_UOP_REDUCTION,
            ),
            Machine::Wide => (
                "Figure 9: gating + reversal, 8-wide 20-cycle",
                crate::paper::FIG9_AVG_UOP_REDUCTION,
            ),
        };
        let mut t = Table::with_headers(&[
            "bench",
            "speedup%",
            "U(exec)%",
            "U(fetch)%",
            "rev good",
            "rev bad",
        ]);
        t.numeric();
        for r in &self.rows {
            t.row(vec![
                r.bench.clone(),
                format!("{:.1}", r.speedup),
                format!("{:.1}", r.uop_reduction),
                format!("{:.1}", r.fetch_reduction),
                r.reversals_good.to_string(),
                r.reversals_bad.to_string(),
            ]);
        }
        t.row(vec![
            "average".into(),
            format!("{:.1}", self.avg_speedup()),
            format!("{:.1}", self.avg_uop_reduction()),
            format!("{:.1}", self.avg_fetch_reduction()),
            self.rows
                .iter()
                .map(|r| r.reversals_good)
                .sum::<u64>()
                .to_string(),
            self.rows
                .iter()
                .map(|r| r.reversals_bad)
                .sum::<u64>()
                .to_string(),
        ]);
        format!(
            "{title}\n(paper: avg uop reduction {paper_u:.0}%, no average performance loss)\n{}",
            t.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machines_map_to_shapes() {
        // Compile-time shape check via the public config constructors.
        assert_eq!(PipelineConfig::deep().width, 4);
        assert_eq!(PipelineConfig::wide().width, 8);
    }
}
