//! Resilience sweep (extension): how gracefully do the paper's
//! confidence estimators degrade under single-event upsets?
//!
//! For each (benchmark × estimator × fault-rate) cell, both the
//! baseline predictor and the estimator are wrapped in seeded
//! fault-injecting adapters ([`perconf_faults`]) and evaluated twice:
//! at trace level for the confidence metrics (PVN, Spec coverage,
//! misprediction rate) and through the gated pipeline for IPC. The
//! zero-rate column uses the same wrappers at rate 0, which are
//! bit-identical passthroughs — so it *is* the fault-free baseline.
//!
//! The two estimators fail differently. The perceptron CE holds ~4 KB
//! of trained weights, and upsets drag its outputs toward zero: Spec
//! creeps up, PVN collapses, spurious gating stalls the machine — a
//! clean monotone degradation on every axis. The JRS counters are
//! small and continuously re-trained, so persistent upsets mostly
//! knock *zero* counters non-zero: low-confidence marks disappear,
//! coverage collapses, and the machine actually speeds up because it
//! stops gating — while silently losing the wasted-work reduction it
//! was built for. [`FaultTable::degrades_monotonically`] encodes
//! exactly that shape.
//!
//! Cells run through the [`Scheduler`](crate::runner::Scheduler): a
//! panic or hang in one cell marks that cell failed and the sweep
//! continues; with `repro faults --resume <dir>` completed cells are
//! loaded from checkpoints instead of recomputed, and `--jobs N` fans
//! independent cells across worker threads. The sweep's output is
//! byte-identical at any job count: cells are submitted and merged in
//! canonical grid order ([`Grid`] iteration order), and every cell's
//! randomness derives from [`cell_seed`] — a pure function of the
//! campaign seed and the cell coordinates, never of scheduling order.

use crate::common::{
    run_pipeline_checkpointed, run_pipeline_checkpointed_batch, trace_eval, BatchMember, Scale,
};
use crate::runner::{BatchSpec, CellSpec, CellTiming, CheckpointCell, Scheduler};
use perconf_bpred::{baseline_bimodal_gshare, SimPredictor};
use perconf_core::{
    JrsConfig, JrsEstimator, PerceptronCe, PerceptronCeConfig, SimEstimator, SpeculationController,
};
use perconf_faults::{FaultConfig, FaultyEstimator, FaultyPredictor};
use perconf_metrics::Table;
use perconf_obs::CounterSnapshot;
use perconf_pipeline::PipelineConfig;
use serde::{Deserialize, Serialize};

/// Per-access fault rates swept, decade-spaced. Rate 0 is the exact
/// fault-free baseline; 1e-1 is far beyond any physical upset rate
/// and anchors the heavily-degraded end of the curve.
pub const RATES: [f64; 5] = [0.0, 1e-4, 1e-3, 1e-2, 1e-1];

/// Benchmarks in the sweep (a representative high/mid/low
/// mispredictability subset keeps the grid affordable).
pub const BENCHMARKS: [&str; 3] = ["mcf", "twolf", "gcc"];

/// Estimators compared under fault injection.
pub const ESTIMATORS: [&str; 2] = ["perceptron", "jrs"];

/// The (estimator × benchmark × rate) design space one sweep covers.
/// Canonical cell order is estimator-major, then benchmark, then rate
/// — the order [`cell_specs`] submits and every output reports in.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Grid {
    /// Estimator names (see [`ESTIMATORS`]).
    pub estimators: Vec<String>,
    /// Benchmark names.
    pub benchmarks: Vec<String>,
    /// Per-access fault rates.
    pub rates: Vec<f64>,
}

impl Grid {
    /// The paper-extension sweep: both estimators, the representative
    /// benchmark triple, all five decade-spaced rates.
    #[must_use]
    pub fn full() -> Self {
        Self {
            estimators: ESTIMATORS.iter().map(|s| (*s).to_owned()).collect(),
            benchmarks: BENCHMARKS.iter().map(|s| (*s).to_owned()).collect(),
            rates: RATES.to_vec(),
        }
    }

    /// A 4-cell subgrid (one estimator, two benchmarks, zero and a
    /// high fault rate) sized for CI's distributed-determinism checks,
    /// where the same sweep runs several times under different worker
    /// counts and chaos plans.
    #[must_use]
    pub fn small() -> Self {
        Self {
            estimators: vec!["jrs".to_owned()],
            benchmarks: vec!["gcc".to_owned(), "twolf".to_owned()],
            rates: vec![0.0, 1e-2],
        }
    }

    /// Number of cells in the grid.
    #[must_use]
    pub fn cell_count(&self) -> usize {
        self.estimators.len() * self.benchmarks.len() * self.rates.len()
    }

    /// Resolves a preset grid name (`full` | `small`) — the shared
    /// vocabulary of the `repro` CLI, declarative specs, and the
    /// experiment server's submit protocol.
    #[must_use]
    pub fn by_name(name: &str) -> Option<Self> {
        match name {
            "full" => Some(Self::full()),
            "small" => Some(Self::small()),
            _ => None,
        }
    }
}

/// One completed sweep cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultCell {
    /// Benchmark name.
    pub benchmark: String,
    /// Estimator name (`perceptron` or `jrs`).
    pub estimator: String,
    /// Per-access fault rate.
    pub rate: f64,
    /// Trace-level PVN (%) of the faulted estimator.
    pub pvn: f64,
    /// Trace-level Spec coverage (%) of the faulted estimator.
    pub spec: f64,
    /// Trace-level misprediction rate (%) of the faulted predictor.
    pub miss_rate: f64,
    /// Pipeline IPC with both structures faulted.
    pub ipc: f64,
    /// Faults injected into the predictor (trace + pipeline runs).
    pub faults_predictor: u64,
    /// Faults injected into the estimator (trace + pipeline runs).
    pub faults_estimator: u64,
    /// Hierarchical counter snapshot of the cell's pipeline run
    /// (fetch/rob/cache/predictor/estimator/gating groups). Derived
    /// from snapshotted simulator state, so a killed-and-resumed cell
    /// reports the same snapshot as an uninterrupted one.
    pub counters: CounterSnapshot,
}

/// One rendered row: a (estimator, rate) point aggregated over the
/// benchmarks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultRow {
    /// Estimator name.
    pub estimator: String,
    /// Per-access fault rate.
    pub rate: f64,
    /// Mean PVN (%).
    pub pvn: f64,
    /// Mean Spec coverage (%).
    pub spec: f64,
    /// Mean misprediction rate (%).
    pub miss_rate: f64,
    /// Mean fractional IPC loss vs the zero-rate cell (%).
    pub ipc_loss: f64,
}

/// Full resilience-sweep result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultTable {
    /// Campaign seed the per-cell fault plans derive from.
    pub seed: u64,
    /// Aggregated rows, grouped by estimator then rate.
    pub rows: Vec<FaultRow>,
    /// Every completed cell.
    pub cells: Vec<FaultCell>,
    /// Keys of cells that failed (panicked / hung / invariant).
    pub failed: Vec<String>,
    /// Deterministic merge of every completed cell's counters:
    /// monotonic counters sum, gauges keep their maximum — the
    /// sweep-wide activity totals, identical at any `--jobs` count.
    pub counters: CounterSnapshot,
}

/// Deterministic per-cell seed: mixes the campaign seed with the cell
/// coordinates so cells are independent but reproducible. This — not
/// anything scheduling-derived — is the only randomness source a cell
/// may use, which is what keeps parallel sweeps byte-identical to
/// sequential ones.
#[must_use]
pub fn cell_seed(seed: u64, bench: &str, estimator: &str, rate_idx: usize) -> u64 {
    let mut h = seed ^ 0x9E37_79B9_7F4A_7C15;
    for b in bench.bytes().chain(estimator.bytes()) {
        h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01B3);
    }
    h ^ (rate_idx as u64).wrapping_mul(0xD6E8_FEB8_6659_FD93)
}

/// Canonical checkpoint/queue key for one sweep cell. The campaign
/// seed is part of the key so resuming (or a distributed queue) with a
/// different `--seed` recomputes instead of serving another campaign's
/// checkpoints. Shared by [`cell_specs`] and the
/// [`distrib`](crate::distrib) queue so a worker's checkpoint files
/// and the coordinator's result files always agree on names.
#[must_use]
pub fn cell_key(seed: u64, estimator: &str, bench: &str, rate_idx: usize) -> String {
    format!("faults-s{seed}-{estimator}-{bench}-r{rate_idx}")
}

/// Content digest of everything that determines one cell's bytes: the
/// campaign seed, simulation scale, full coordinates, *and the rate
/// value itself* (via its exact bit pattern, so `1e-4` and a future
/// `1.0001e-4` can never alias). This is the experiment server's
/// cache key — two submissions whose cells digest equal are guaranteed
/// to simulate identically, so the second can legally be served from
/// the cache of the first. [`cell_key`] stays the human-readable
/// file/queue name; this digest is the collision-resistant identity.
#[must_use]
pub fn cell_content_digest(
    seed: u64,
    scale: Scale,
    estimator: &str,
    bench: &str,
    rate_idx: usize,
    rate: f64,
) -> u64 {
    let canon = format!(
        "faults-cell-v1|seed={seed}|scale={},{},{},{}|est={estimator}|bench={bench}\
         |ri={rate_idx}|rate_bits={:016x}",
        scale.warmup_uops,
        scale.run_uops,
        scale.warmup_branches,
        scale.run_branches,
        rate.to_bits()
    );
    perconf_bpred::digest_bytes(canon.as_bytes())
}

fn estimator_by_name(name: &str) -> Box<dyn perconf_core::FaultableEstimator> {
    match name {
        "perceptron" => Box::new(PerceptronCe::new(PerceptronCeConfig::default())),
        // λ=1 is the conservative gating point of Table 4: only
        // branches with a recent miss gate, so spurious low-confidence
        // marks from faults cost cycles instead of relaxing an already
        // saturated gate (λ=7 marks ~77% low and inverts the effect).
        "jrs" => Box::new(JrsEstimator::new(JrsConfig {
            lambda: 1,
            ..JrsConfig::default()
        })),
        other => panic!("unknown estimator {other}"),
    }
}

/// Computes one sweep cell (exposed for the driver's tests).
///
/// The pipeline-IPC leg of the cell snapshots the full simulation into
/// `cell` every ~50k retired uops, so a cell killed mid-pipeline-run
/// resumes from its last checkpoint on the next `--resume` pass
/// instead of recomputing. Pass [`CheckpointCell::disabled`] to run
/// without persistence.
#[must_use]
pub fn run_cell(
    bench: &str,
    estimator: &str,
    rate: f64,
    seed: u64,
    scale: Scale,
    cell: &CheckpointCell,
) -> FaultCell {
    let wl = perconf_workload::spec2000_config(bench).expect("known benchmark");
    // The predictor takes both persistent table upsets and transient
    // history-latch strikes at the same rate; without the latter, big
    // retrained tables absorb flips almost for free and the machine-
    // level effect vanishes. The estimator takes table upsets only so
    // its PVN/Spec shifts are attributable to its own state.
    let cfg_p = FaultConfig {
        rate,
        history_rate: rate,
        seed: seed ^ 0x11,
    };
    let cfg_e = FaultConfig::state_only(rate, seed ^ 0x22);

    // Trace-level confidence metrics.
    let mut p = FaultyPredictor::new(baseline_bimodal_gshare(), &cfg_p);
    let mut e = FaultyEstimator::new(estimator_by_name(estimator), &cfg_e);
    let (cm, _) = trace_eval(
        &wl,
        &mut p,
        &mut e,
        scale.warmup_branches,
        scale.run_branches,
        None,
    );
    // The pipeline controller consumes its wrappers, so the reported
    // injection counts cover the trace-level pass only.
    let faults_predictor = p.injected();
    let faults_estimator = e.injected();

    // Pipeline IPC with both structures faulted (gated deep machine,
    // the configuration the estimator actually protects). The faulted
    // controller snapshots like a clean one — the fault plan's RNG
    // cursor rides along — so resuming replays the same upsets.
    let mk_ctl = || {
        SpeculationController::new(
            Box::new(FaultyPredictor::new(baseline_bimodal_gshare(), &cfg_p))
                as Box<dyn SimPredictor>,
            Box::new(FaultyEstimator::new(estimator_by_name(estimator), &cfg_e))
                as Box<dyn SimEstimator>,
        )
    };
    let (stats, counters) = match run_pipeline_checkpointed(
        &wl,
        PipelineConfig::deep().gated(1),
        mk_ctl,
        scale,
        cell,
        50_000,
    ) {
        Ok(sim) => (sim.stats().clone(), sim.counters()),
        // A SimError is an invariant failure; surface it as the panic
        // the runner's catch_unwind already turns into a typed error.
        Err(e) => panic!("{e}"),
    };

    FaultCell {
        benchmark: bench.to_owned(),
        estimator: estimator.to_owned(),
        rate,
        pvn: cm.pvn() * 100.0,
        spec: cm.spec() * 100.0,
        miss_rate: cm.misprediction_rate() * 100.0,
        ipc: stats.ipc(),
        faults_predictor,
        faults_estimator,
        counters,
    }
}

/// One sweep-cell coordinate, resolved from the grid: everything
/// [`run_cell`] needs except the checkpoint cell.
#[derive(Debug, Clone)]
struct CellCoord {
    bench: String,
    estimator: String,
    rate: f64,
    seed: u64,
}

/// Computes a group of sweep cells with their pipeline legs
/// interleaved through one batched cycle loop
/// ([`run_pipeline_checkpointed_batch`]). The trace-level passes stay
/// sequential per member (they are cheap); only the dominant pipeline
/// leg batches. Per-member results, checkpoint bytes, and counters
/// are byte-identical to [`run_cell`] on the same coordinates.
///
/// `idxs` selects which members of `coords` to compute (the batch
/// engine skips members served from final checkpoints); returns one
/// [`FaultCell`] per requested index, in order.
fn run_cells_batched(
    coords: &[CellCoord],
    idxs: &[usize],
    cells: &[CheckpointCell],
    scale: Scale,
) -> Vec<FaultCell> {
    // Trace-level legs plus per-member fault configs, sequentially.
    struct TraceLeg {
        wl: perconf_workload::WorkloadConfig,
        cfg_p: FaultConfig,
        cfg_e: FaultConfig,
        cm: perconf_metrics::ConfusionMatrix,
        faults_predictor: u64,
        faults_estimator: u64,
    }
    let legs: Vec<TraceLeg> = idxs
        .iter()
        .map(|&i| {
            let c = &coords[i];
            let wl = perconf_workload::spec2000_config(&c.bench).expect("known benchmark");
            let cfg_p = FaultConfig {
                rate: c.rate,
                history_rate: c.rate,
                seed: c.seed ^ 0x11,
            };
            let cfg_e = FaultConfig::state_only(c.rate, c.seed ^ 0x22);
            let mut p = FaultyPredictor::new(baseline_bimodal_gshare(), &cfg_p);
            let mut e = FaultyEstimator::new(estimator_by_name(&c.estimator), &cfg_e);
            let (cm, _) = trace_eval(
                &wl,
                &mut p,
                &mut e,
                scale.warmup_branches,
                scale.run_branches,
                None,
            );
            let (faults_predictor, faults_estimator) = (p.injected(), e.injected());
            TraceLeg {
                wl,
                cfg_p,
                cfg_e,
                cm,
                faults_predictor,
                faults_estimator,
            }
        })
        .collect();
    // The batched pipeline leg: same controller factory, pipeline
    // config, and 50k-uop checkpoint interval as `run_cell`.
    let members: Vec<BatchMember<'_>> = idxs
        .iter()
        .zip(&legs)
        .map(|(&i, leg)| {
            let c = &coords[i];
            let (cfg_p, cfg_e, est) = (leg.cfg_p, leg.cfg_e, c.estimator.clone());
            BatchMember {
                wl: &leg.wl,
                mk_ctl: Box::new(move || {
                    SpeculationController::new(
                        Box::new(FaultyPredictor::new(baseline_bimodal_gshare(), &cfg_p))
                            as Box<dyn SimPredictor>,
                        Box::new(FaultyEstimator::new(estimator_by_name(&est), &cfg_e))
                            as Box<dyn SimEstimator>,
                    )
                }),
                cell: &cells[i],
            }
        })
        .collect();
    let sims =
        run_pipeline_checkpointed_batch(&members, PipelineConfig::deep().gated(1), scale, 50_000);
    drop(members);
    idxs.iter()
        .zip(legs)
        .zip(sims)
        .map(|((&i, leg), sim)| {
            let c = &coords[i];
            let sim = match sim {
                Ok(sim) => sim,
                // A SimError is an invariant failure; surface it as
                // the panic the runner's catch_unwind already turns
                // into a typed error (same contract as `run_cell`).
                Err(e) => panic!("{e}"),
            };
            FaultCell {
                benchmark: c.bench.clone(),
                estimator: c.estimator.clone(),
                rate: c.rate,
                pvn: leg.cm.pvn() * 100.0,
                spec: leg.cm.spec() * 100.0,
                miss_rate: leg.cm.misprediction_rate() * 100.0,
                ipc: sim.stats().ipc(),
                faults_predictor: leg.faults_predictor,
                faults_estimator: leg.faults_estimator,
                counters: sim.counters(),
            }
        })
        .collect()
}

/// Builds the sweep's batch groups: the canonical grid order chunked
/// into groups of `width` cells whose pipeline legs run interleaved.
/// `width = 1` degenerates to one group per cell — the exact
/// [`cell_specs`] work, through the same engine.
///
/// Grouping never changes output: member keys, seeds, checkpoint
/// artifacts, and results are all per cell, and the merged report
/// flattens back into canonical grid order whatever the width.
#[must_use]
pub fn batch_specs(
    scale: Scale,
    seed: u64,
    grid: &Grid,
    width: usize,
) -> Vec<BatchSpec<FaultCell>> {
    let width = width.max(1);
    let mut coords = Vec::with_capacity(grid.cell_count());
    let mut keys = Vec::with_capacity(grid.cell_count());
    for est in &grid.estimators {
        for bench in &grid.benchmarks {
            for (ri, &rate) in grid.rates.iter().enumerate() {
                keys.push(cell_key(seed, est, bench, ri));
                coords.push(CellCoord {
                    bench: bench.clone(),
                    estimator: est.clone(),
                    rate,
                    seed: cell_seed(seed, bench, est, ri),
                });
            }
        }
    }
    let mut specs = Vec::new();
    let mut start = 0;
    while start < coords.len() {
        let end = (start + width).min(coords.len());
        let group: Vec<CellCoord> = coords[start..end].to_vec();
        let group_keys: Vec<String> = keys[start..end].to_vec();
        specs.push(BatchSpec::new(group_keys, move |idxs, cells| {
            run_cells_batched(&group, idxs, cells, scale)
        }));
        start = end;
    }
    specs
}

/// [`run_grid`] with the cells' pipeline legs interleaved `width` at a
/// time through one batched cycle loop per group. Output is
/// byte-identical to [`run_grid`] for every width — the differential
/// suite in `tests/batch_determinism.rs` pins this.
#[must_use]
pub fn run_grid_batched(
    scale: Scale,
    seed: u64,
    grid: &Grid,
    scheduler: &mut Scheduler,
    width: usize,
) -> (FaultTable, Vec<CellTiming>) {
    let report = scheduler.run_batches(batch_specs(scale, seed, grid, width));
    let timings = report.timings();
    let mut cells = Vec::new();
    let mut failed = Vec::new();
    for r in report.cells {
        match r.outcome {
            Ok(c) => cells.push(c),
            Err(_) => failed.push(r.key),
        }
    }
    (table_from_cells(seed, grid, cells, failed), timings)
}

/// Builds the sweep's cell list in canonical grid order, ready for a
/// [`Scheduler`]. Exposed so tests can run arbitrary prefixes (the
/// moral equivalent of a sweep killed mid-way) through the same code
/// path the binaries use.
#[must_use]
pub fn cell_specs(scale: Scale, seed: u64, grid: &Grid) -> Vec<CellSpec<FaultCell>> {
    let mut specs = Vec::with_capacity(grid.cell_count());
    for est in &grid.estimators {
        for bench in &grid.benchmarks {
            for (ri, &rate) in grid.rates.iter().enumerate() {
                let key = cell_key(seed, est, bench, ri);
                let cs = cell_seed(seed, bench, est, ri);
                let (b, e) = (bench.clone(), est.clone());
                specs.push(CellSpec::new(key, move |chk: &CheckpointCell| {
                    run_cell(&b, &e, rate, cs, scale, chk)
                }));
            }
        }
    }
    specs
}

/// Runs the resilience sweep, one scheduler cell per
/// (estimator × benchmark × rate) point, fanned across the
/// scheduler's worker threads. Returns the deterministically merged
/// table plus the (wall-clock, hence nondeterministic) per-cell
/// timing rows.
#[must_use]
pub fn run_grid(
    scale: Scale,
    seed: u64,
    grid: &Grid,
    scheduler: &mut Scheduler,
) -> (FaultTable, Vec<CellTiming>) {
    let report = scheduler.run_cells(cell_specs(scale, seed, grid));
    let timings = report.timings();
    let mut cells = Vec::new();
    let mut failed = Vec::new();
    for r in report.cells {
        match r.outcome {
            Ok(c) => cells.push(c),
            Err(_) => failed.push(r.key),
        }
    }
    (table_from_cells(seed, grid, cells, failed), timings)
}

/// Assembles the deterministic sweep output from completed cells —
/// the aggregation/merge half of [`run_grid`], split out so the
/// distributed coordinator ([`crate::distrib`]) can feed it cells
/// gathered from per-worker result files. Callers must pass `cells`
/// in canonical grid order (estimator-major, then benchmark, then
/// rate); both `run_grid` and the distributed merge do, which is why
/// their outputs are byte-identical.
#[must_use]
pub fn table_from_cells(
    seed: u64,
    grid: &Grid,
    cells: Vec<FaultCell>,
    failed: Vec<String>,
) -> FaultTable {
    let rows = aggregate(grid, &cells);
    let counters = CounterSnapshot::merge(cells.iter().map(|c| &c.counters));
    FaultTable {
        seed,
        rows,
        cells,
        failed,
        counters,
    }
}

/// Means per (estimator, rate) over whatever benchmarks completed;
/// IPC loss is measured against the same benchmark's zero-rate cell.
fn aggregate(grid: &Grid, cells: &[FaultCell]) -> Vec<FaultRow> {
    let mut rows = Vec::new();
    for est in &grid.estimators {
        for &rate in &grid.rates {
            let in_point: Vec<&FaultCell> = cells
                .iter()
                .filter(|c| &c.estimator == est && c.rate == rate)
                .collect();
            if in_point.is_empty() {
                continue;
            }
            let mean = |f: &dyn Fn(&FaultCell) -> f64| {
                in_point.iter().map(|c| f(c)).sum::<f64>() / in_point.len() as f64
            };
            let ipc_loss = {
                let losses: Vec<f64> = in_point
                    .iter()
                    .filter_map(|c| {
                        cells
                            .iter()
                            .find(|z| {
                                &z.estimator == est && z.benchmark == c.benchmark && z.rate == 0.0
                            })
                            .map(|z| 1.0 - c.ipc / z.ipc)
                    })
                    .collect();
                if losses.is_empty() {
                    0.0
                } else {
                    losses.iter().sum::<f64>() / losses.len() as f64
                }
            };
            rows.push(FaultRow {
                estimator: est.to_owned(),
                rate,
                pvn: mean(&|c| c.pvn),
                spec: mean(&|c| c.spec),
                miss_rate: mean(&|c| c.miss_rate),
                ipc_loss: ipc_loss * 100.0,
            });
        }
    }
    rows
}

impl FaultTable {
    /// Renders the resilience table.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = format!(
            "Resilience sweep (seed {}): confidence metrics and IPC vs per-access fault rate\n",
            self.seed
        );
        let mut t =
            Table::with_headers(&["estimator", "rate", "PVN%", "Spec%", "miss%", "IPC loss%"]);
        t.numeric();
        for r in &self.rows {
            t.row(vec![
                r.estimator.clone(),
                format!("{:.0e}", r.rate),
                format!("{:.1}", r.pvn),
                format!("{:.1}", r.spec),
                format!("{:.2}", r.miss_rate),
                format!("{:.2}", r.ipc_loss),
            ]);
        }
        out.push_str(&t.render());
        if !self.failed.is_empty() {
            out.push_str(&format!(
                "\nFAILED cells ({}): {}\n",
                self.failed.len(),
                self.failed.join(", ")
            ));
        }
        out
    }

    /// Headline: confidence quality — PVN × Spec, the precision ×
    /// recall of flagged mispredictions — must fall monotonically
    /// (within a small noise tolerance) for *both* estimators, and the
    /// perceptron machine must additionally lose IPC monotonically and
    /// strictly at the heaviest rate.
    ///
    /// The JRS machine's IPC is deliberately excluded: upsets knock
    /// its resetting counters *off* zero, so faults shed low-
    /// confidence marks and *un-gate* the pipeline — the machine runs
    /// faster while silently losing the wasted-work reduction gating
    /// existed for. The quality product captures that collapse; raw
    /// IPC would reward it.
    #[must_use]
    pub fn degrades_monotonically(&self) -> bool {
        const QUALITY_SLACK: f64 = 1.02; // 2% relative noise allowance
        const IPC_TOL: f64 = 0.5; // percentage points of IPC loss
                                  // Estimators present in the rows, in first-appearance order
                                  // (the sweep grid may be a subset of ESTIMATORS).
        let mut estimators: Vec<&str> = Vec::new();
        for r in &self.rows {
            if !estimators.contains(&r.estimator.as_str()) {
                estimators.push(&r.estimator);
            }
        }
        let quality_falls = estimators.iter().all(|est| {
            let q: Vec<f64> = self
                .rows
                .iter()
                .filter(|r| r.estimator == *est)
                .map(|r| r.pvn * r.spec)
                .collect();
            q.len() >= 2
                && q.windows(2).all(|w| w[1] <= w[0] * QUALITY_SLACK)
                && q[q.len() - 1] < q[0]
        });
        let perceptron_ipc_falls = {
            let rs: Vec<&FaultRow> = self
                .rows
                .iter()
                .filter(|r| r.estimator == "perceptron")
                .collect();
            rs.len() >= 2
                && rs
                    .windows(2)
                    .all(|w| w[1].ipc_loss >= w[0].ipc_loss - IPC_TOL)
                && rs.last().expect("non-empty").ipc_loss > 0.0
        };
        quality_falls && perceptron_ipc_falls
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_seed_is_deterministic_and_distinguishes_cells() {
        let a = cell_seed(7, "gcc", "jrs", 1);
        assert_eq!(a, cell_seed(7, "gcc", "jrs", 1));
        assert_ne!(a, cell_seed(7, "gcc", "jrs", 2));
        assert_ne!(a, cell_seed(7, "mcf", "jrs", 1));
        assert_ne!(a, cell_seed(7, "gcc", "perceptron", 1));
        assert_ne!(a, cell_seed(8, "gcc", "jrs", 1));
    }

    #[test]
    fn cell_content_digest_separates_every_input_axis() {
        let base = cell_content_digest(7, Scale::tiny(), "jrs", "gcc", 1, 1e-4);
        assert_eq!(
            base,
            cell_content_digest(7, Scale::tiny(), "jrs", "gcc", 1, 1e-4)
        );
        assert_ne!(
            base,
            cell_content_digest(8, Scale::tiny(), "jrs", "gcc", 1, 1e-4)
        );
        assert_ne!(
            base,
            cell_content_digest(7, Scale::full(), "jrs", "gcc", 1, 1e-4)
        );
        assert_ne!(
            base,
            cell_content_digest(7, Scale::tiny(), "perceptron", "gcc", 1, 1e-4)
        );
        assert_ne!(
            base,
            cell_content_digest(7, Scale::tiny(), "jrs", "mcf", 1, 1e-4)
        );
        assert_ne!(
            base,
            cell_content_digest(7, Scale::tiny(), "jrs", "gcc", 2, 1e-4)
        );
        // Same index, different rate value: a grid redefinition must
        // never serve the old grid's cached bytes.
        assert_ne!(
            base,
            cell_content_digest(7, Scale::tiny(), "jrs", "gcc", 1, 2e-4)
        );
    }

    #[test]
    fn zero_rate_cell_reproduces_the_unwrapped_baseline_exactly() {
        let scale = Scale::tiny();
        let cell = run_cell(
            "gcc",
            "perceptron",
            0.0,
            42,
            scale,
            &CheckpointCell::disabled(),
        );
        // Unwrapped reference, same workload and scale.
        let wl = perconf_workload::spec2000_config("gcc").unwrap();
        let mut p = baseline_bimodal_gshare();
        let mut e = PerceptronCe::new(PerceptronCeConfig::default());
        let (cm, _) = trace_eval(
            &wl,
            &mut p,
            &mut e,
            scale.warmup_branches,
            scale.run_branches,
            None,
        );
        assert!((cell.pvn - cm.pvn() * 100.0).abs() < 1e-12);
        assert!((cell.spec - cm.spec() * 100.0).abs() < 1e-12);
        assert!((cell.miss_rate - cm.misprediction_rate() * 100.0).abs() < 1e-12);
        let mk_ctl = || {
            SpeculationController::new(
                Box::new(baseline_bimodal_gshare()) as Box<dyn SimPredictor>,
                Box::new(PerceptronCe::new(PerceptronCeConfig::default())) as Box<dyn SimEstimator>,
            )
        };
        let stats =
            crate::common::run_pipeline(&wl, PipelineConfig::deep().gated(1), mk_ctl(), scale);
        assert!((cell.ipc - stats.ipc()).abs() < 1e-12);
        assert_eq!(cell.faults_predictor, 0);
        assert_eq!(cell.faults_estimator, 0);
    }

    #[test]
    fn heavy_faults_degrade_the_predictor() {
        let scale = Scale::tiny();
        let clean = run_cell("gcc", "jrs", 0.0, 9, scale, &CheckpointCell::disabled());
        let dirty = run_cell("gcc", "jrs", 1e-2, 9, scale, &CheckpointCell::disabled());
        assert!(dirty.faults_predictor > 0);
        assert!(
            dirty.miss_rate > clean.miss_rate,
            "dirty {} vs clean {}",
            dirty.miss_rate,
            clean.miss_rate
        );
    }

    #[test]
    fn headline_requires_quality_collapse_and_perceptron_ipc_loss() {
        let row = |est: &str, rate: f64, pvn: f64, spec: f64, ipc_loss: f64| FaultRow {
            estimator: est.to_owned(),
            rate,
            pvn,
            spec,
            miss_rate: 5.0,
            ipc_loss,
        };
        let mut t = FaultTable {
            seed: 0,
            rows: vec![
                row("perceptron", 0.0, 54.0, 18.0, 0.0),
                row("perceptron", 1e-1, 27.0, 21.0, 8.0),
                row("jrs", 0.0, 34.0, 48.0, 0.0),
                row("jrs", 1e-1, 35.0, 38.0, -2.0),
            ],
            cells: Vec::new(),
            failed: Vec::new(),
            counters: CounterSnapshot::default(),
        };
        // The real shape: perceptron degrades everywhere, JRS loses
        // coverage (quality falls) while its machine speeds up.
        assert!(t.degrades_monotonically());
        // Perceptron machine speeding up breaks the headline.
        t.rows[1].ipc_loss = -1.0;
        assert!(!t.degrades_monotonically());
        t.rows[1].ipc_loss = 8.0;
        // JRS quality *improving* breaks it too.
        t.rows[3].spec = 60.0;
        assert!(!t.degrades_monotonically());
    }

    #[test]
    fn aggregate_groups_by_estimator_and_rate() {
        let mk = |est: &str, bench: &str, rate: f64, ipc: f64| FaultCell {
            benchmark: bench.to_owned(),
            estimator: est.to_owned(),
            rate,
            pvn: 50.0,
            spec: 30.0,
            miss_rate: 5.0,
            ipc,
            faults_predictor: 0,
            faults_estimator: 0,
            counters: CounterSnapshot::default(),
        };
        let cells = vec![
            mk("jrs", "gcc", 0.0, 2.0),
            mk("jrs", "gcc", 1e-2, 1.5),
            mk("jrs", "mcf", 0.0, 1.0),
            mk("jrs", "mcf", 1e-2, 0.8),
        ];
        let rows = aggregate(&Grid::full(), &cells);
        assert_eq!(rows.len(), 2);
        let dirty = rows.iter().find(|r| r.rate == 1e-2).unwrap();
        // Mean of 25% and 20% loss.
        assert!((dirty.ipc_loss - 22.5).abs() < 1e-9);
        let clean = rows.iter().find(|r| r.rate == 0.0).unwrap();
        assert!(clean.ipc_loss.abs() < 1e-12);
    }
}
