//! Per-behaviour-class confidence diagnostics: PVN/Spec of the
//! perceptron estimator and JRS broken down by the workload class that
//! generated each branch. The tool that guided the estimator/workload
//! co-calibration (see DESIGN.md §7).

use perconf_bpred::BranchPredictor;
use perconf_core::{
    ConfidenceEstimator, EstimateCtx, JrsConfig, JrsEstimator, PerceptronCe, PerceptronCeConfig,
};
use perconf_workload::{BehaviorClass, WorkloadGenerator};

fn main() {
    for lam in [25i32, -50] {
        let cfg = perconf_workload::spec2000_config("vpr").unwrap();
        let mut g = WorkloadGenerator::new(&cfg);
        let classes: Vec<BehaviorClass> =
            g.program().sites.iter().map(|s| s.spec.class()).collect();
        let mut p = perconf_bpred::baseline_bimodal_gshare();
        let mut ce = PerceptronCe::new(PerceptronCeConfig {
            lambda: lam,
            ..Default::default()
        });
        let mut jrs = JrsEstimator::new(JrsConfig {
            lambda: 15,
            ..Default::default()
        });
        let mut hist = 0u64;
        // per class: [miss_low, miss_high, corr_low, corr_high] for CE; same for JRS
        let mut q = [[0u64; 4]; 8];
        let mut qj = [[0u64; 4]; 8];
        let mut n = 0u64;
        while n < 800_000 {
            let u = g.next_uop();
            let Some(b) = u.branch else { continue };
            n += 1;
            let pred = p.predict(b.pc, hist);
            let ctx = EstimateCtx {
                pc: b.pc,
                history: hist,
                predicted_taken: pred,
            };
            let est = ce.estimate(&ctx);
            let ej = jrs.estimate(&ctx);
            let miss = pred != b.taken;
            if n > 300_000 {
                let c = classes[b.site as usize] as usize;
                let i = match (miss, est.is_low()) {
                    (true, true) => 0,
                    (true, false) => 1,
                    (false, true) => 2,
                    (false, false) => 3,
                };
                q[c][i] += 1;
                let i = match (miss, ej.is_low()) {
                    (true, true) => 0,
                    (true, false) => 1,
                    (false, true) => 2,
                    (false, false) => 3,
                };
                qj[c][i] += 1;
            }
            p.train(b.pc, hist, b.taken);
            ce.train(&ctx, est, miss);
            jrs.train(&ctx, ej, miss);
            hist = (hist << 1) | u64::from(b.taken);
        }
        let names = [
            "Biased", "Loop", "Linear", "Xor", "Random", "Phased", "LongHist", "Periodic",
        ];
        println!("--- perceptron λ={lam} (and JRS λ15 for reference)");
        for c in 0..8 {
            let t: u64 = q[c].iter().sum();
            if t == 0 {
                continue;
            }
            let miss_rate = (q[c][0] + q[c][1]) as f64 / t as f64;
            let spec = q[c][0] as f64 / (q[c][0] + q[c][1]).max(1) as f64;
            let flags = q[c][0] + q[c][2];
            let pvn = q[c][0] as f64 / flags.max(1) as f64;
            let specj = qj[c][0] as f64 / (qj[c][0] + qj[c][1]).max(1) as f64;
            let flagsj = qj[c][0] + qj[c][2];
            let pvnj = qj[c][0] as f64 / flagsj.max(1) as f64;
            println!("{:<9} share={:.2} miss={:.3} | CE spec={:.2} pvn={:.2} flags={} | JRS spec={:.2} pvn={:.2}",
                names[c], t as f64/500_000.0, miss_rate, spec, pvn, flags, specj, pvnj);
        }
    }
}
