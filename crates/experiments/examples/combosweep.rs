//! Threshold sweep for the combined gating + reversal configuration
//! (paper §5.5): evaluates (reverse threshold, gate λ, PLn) triples
//! and prints U/P and reversal quality. This sweep chose the defaults
//! in `PerceptronCeConfig::combined()` (see EXPERIMENTS.md, Figs 8–9).

use perconf_core::{PerceptronCe, PerceptronCeConfig};
use perconf_experiments::common::{controller, BaselineSet, PredictorKind, Scale};
use perconf_pipeline::PipelineConfig;

fn main() {
    let scale = Scale::quick();
    let baselines = BaselineSet::build(PredictorKind::BimodalGshare, PipelineConfig::deep(), scale);
    // (reverse_lambda, gate_lambda, pl)
    for (rev, lam, pl) in [
        (Some(90), -20, 2),
        (Some(90), -30, 2),
        (Some(120), -20, 2),
        (Some(90), -40, 2),
        (Some(120), -40, 2),
        (Some(90), -20, 3),
        (Some(90), -40, 3),
    ] {
        let (mean, per) = baselines.evaluate(baselines.pipe().gated(pl), || {
            controller(
                PredictorKind::BimodalGshare,
                Box::new(PerceptronCe::new(PerceptronCeConfig {
                    lambda: lam,
                    reverse_lambda: rev.map(|r| r.max(lam)),
                    ..Default::default()
                })),
            )
        });
        let good: u64 = per.iter().map(|(_, v)| v.reversals_good).sum();
        let bad: u64 = per.iter().map(|(_, v)| v.reversals_bad).sum();
        println!(
            "rev={:?} λ={} PL{}: U(exec)={:+.1}% U(fetch)={:+.1}% P={:+.1}% rev {}:{}",
            rev,
            lam,
            pl,
            mean.u_executed * 100.0,
            mean.u_fetched * 100.0,
            mean.perf_loss * 100.0,
            good,
            bad
        );
    }
}
