//! Stream-prefetcher efficacy test: replays the generator's memory
//! access pattern against the cache hierarchy in isolation and reports
//! the L1 miss rate the pipeline will see.

use perconf_pipeline::{MemHierarchy, MemHierarchyConfig};
use rand::{Rng, SeedableRng};

fn main() {
    let mut h = MemHierarchy::new(MemHierarchyConfig::default());
    let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
    let ws: u64 = 2 << 20;
    let mut streams: Vec<u64> = (0..8).map(|i| i * (ws / 8)).collect();
    // warm
    let mut miss = 0u64;
    let mut total = 0u64;
    for phase in 0..2 {
        for _ in 0..200_000u64 {
            let addr = if rng.gen::<f64>() < 0.45 {
                let i = rng.gen_range(0..8);
                let a = streams[i];
                streams[i] = (streams[i] + 8) % ws;
                a
            } else {
                let r: f64 = rng.gen();
                let region = if r < 0.675 {
                    8 * 1024
                } else if r < 0.9 {
                    32 * 1024
                } else {
                    ws
                };
                rng.gen_range(0..region / 8) * 8
            };
            let lat = h.load(addr);
            if phase == 1 {
                total += 1;
                if lat > 3 {
                    miss += 1;
                }
            }
        }
    }
    println!(
        "miss rate: {:.3}  l2 misses: {}",
        miss as f64 / total as f64,
        h.l2().misses()
    );
}
