//! Estimator parameter sweep: JRS history bits and the perceptron
//! training threshold `T`, aggregate PVN/Spec across all benchmarks.
//! This sweep set the `train_threshold: 75` default.

use perconf_core::{
    ConfidenceEstimator, JrsConfig, JrsEstimator, PerceptronCe, PerceptronCeConfig,
};
use perconf_experiments::common::{benchmarks, trace_eval, PredictorKind, Scale};
use perconf_metrics::ConfusionMatrix;

fn eval(mk: &dyn Fn() -> Box<dyn ConfidenceEstimator>, s: Scale) -> ConfusionMatrix {
    let mut total = ConfusionMatrix::new();
    for wl in benchmarks() {
        let mut p = PredictorKind::BimodalGshare.build();
        let mut ce = mk();
        let (cm, _) = trace_eval(
            &wl,
            p.as_mut(),
            ce.as_mut(),
            s.warmup_branches,
            s.run_branches,
            None,
        );
        total.merge(&cm);
    }
    total
}

fn main() {
    let s = Scale::quick();
    for hb in [6u32, 8, 10, 13] {
        for lam in [7u8, 15] {
            let cm = eval(
                &|| {
                    Box::new(JrsEstimator::new(JrsConfig {
                        hist_bits: hb,
                        lambda: lam,
                        ..JrsConfig::default()
                    }))
                },
                s,
            );
            println!(
                "JRS h{hb} λ{lam}: PVN={:.0} Spec={:.0}",
                cm.pvn() * 100.0,
                cm.spec() * 100.0
            );
        }
    }
    for t in [14i32, 40, 75, 150] {
        for lam in [25i32, -50] {
            let cm = eval(
                &|| {
                    Box::new(PerceptronCe::new(PerceptronCeConfig {
                        lambda: lam,
                        train_threshold: t,
                        ..PerceptronCeConfig::default()
                    }))
                },
                s,
            );
            println!(
                "PERC T{t} λ{lam}: PVN={:.0} Spec={:.0}",
                cm.pvn() * 100.0,
                cm.spec() * 100.0
            );
        }
    }
}
