//! Pipeline-shape diagnostic: IPC, waste, resolution delay, ROB
//! occupancy, stall breakdown and cache hit rates for the shallow vs
//! deep machines on one benchmark. The tool behind the drain-limited
//! backend analysis in DESIGN.md §7.

use perconf_pipeline::{PipelineConfig, Simulation};

fn main() {
    for (name, cfg) in [
        ("shallow", PipelineConfig::shallow()),
        ("deep", PipelineConfig::deep()),
    ] {
        let wl = perconf_workload::spec2000_config("vpr").unwrap();
        let mut sim = Simulation::with_defaults(cfg, &wl);
        sim.warmup(50_000);
        let s = sim.run(100_000).clone();
        println!("{name}: ipc={:.2} waste={:.2} mpku={:.1} squashes={} fw/sq={:.0} ew/sq={:.0} resdelay={:.0} rob={:.0}",
            s.ipc(), s.wasted_execution_frac(), s.mpku(), s.squashes,
            s.fetched_wrong as f64 / s.squashes as f64,
            s.executed_wrong as f64 / s.squashes as f64,
            s.resolution_delay_sum as f64 / s.squashes as f64,
            s.rob_occupancy_sum as f64 / s.cycles as f64);
        let c = s.cycles as f64;
        println!(
            "  stalls: empty={:.2} deps={:.2} fu={:.2} load={:.2} exec={:.2}",
            s.stall_empty as f64 / c,
            s.stall_deps as f64 / c,
            s.stall_fu as f64 / c,
            s.stall_load as f64 / c,
            s.stall_exec as f64 / c
        );
        let l1 = sim.mem().l1();
        let l2 = sim.mem().l2();
        println!(
            "  l1: {}/{} ({:.3} miss)  l2: {}/{} ({:.3} miss)",
            l1.hits(),
            l1.misses(),
            l1.misses() as f64 / (l1.hits() + l1.misses()) as f64,
            l2.hits(),
            l2.misses(),
            l2.misses() as f64 / (l2.hits() + l2.misses()).max(1) as f64
        );
    }
}
// (extended below by re-write)
