//! Gshare history-length sweep on one benchmark, per behaviour class —
//! the measurement that set the baseline's 8-bit gshare history.

use perconf_bpred::{BranchPredictor, Gshare};
use perconf_workload::{BehaviorClass, WorkloadGenerator};

fn main() {
    for hist_bits in [8, 10, 12, 16] {
        let cfg = perconf_workload::spec2000_config("vpr").unwrap();
        let mut g = WorkloadGenerator::new(&cfg);
        let classes: Vec<BehaviorClass> =
            g.program().sites.iter().map(|s| s.spec.class()).collect();
        let mut p = Gshare::new(16, hist_bits);
        let mut hist = 0u64;
        let mut branches = 0u64;
        let mut lin = (0u64, 0u64);
        let mut xor = (0u64, 0u64);
        let mut all = (0u64, 0u64);
        while branches < 600_000 {
            let u = g.next_uop();
            if let Some(b) = u.branch {
                branches += 1;
                let pred = p.predict(b.pc, hist);
                p.train(b.pc, hist, b.taken);
                hist = (hist << 1) | u64::from(b.taken);
                if branches > 300_000 {
                    let miss = u64::from(pred != b.taken);
                    all.0 += miss;
                    all.1 += 1;
                    match classes[b.site as usize] {
                        BehaviorClass::LinearHistory => {
                            lin.0 += miss;
                            lin.1 += 1;
                        }
                        BehaviorClass::XorHistory => {
                            xor.0 += miss;
                            xor.1 += 1;
                        }
                        _ => {}
                    }
                }
            }
        }
        println!(
            "gshare h{hist_bits}: all={:.3} linear={:.3} xor={:.3}",
            all.0 as f64 / all.1 as f64,
            lin.0 as f64 / lin.1 as f64,
            xor.0 as f64 / xor.1 as f64
        );
    }
}
