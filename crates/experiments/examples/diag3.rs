//! Oracle predictability check: best achievable accuracy of any
//! 9-bit-history table predictor on the linear-history sites,
//! distinguishing generator-side randomness from predictor-side
//! aliasing.

use perconf_workload::{BehaviorClass, WorkloadGenerator};
use std::collections::BTreeMap;

fn main() {
    let cfg = perconf_workload::spec2000_config("vpr").unwrap();
    let mut g = WorkloadGenerator::new(&cfg);
    let classes: Vec<BehaviorClass> = g.program().sites.iter().map(|s| s.spec.class()).collect();
    // Oracle predictor: per (site, hist9) majority vote. Measures the
    // best any 9-bit-history table predictor could do.
    let mut table: BTreeMap<(u32, u16), (u32, u32)> = BTreeMap::new();
    let mut hist = 0u64;
    let mut branches = 0u64;
    let mut lin_miss = 0u64;
    let mut lin_tot = 0u64;
    let mut lin_patterns: BTreeMap<u32, std::collections::BTreeSet<u16>> = BTreeMap::new();
    while branches < 600_000 {
        let u = g.next_uop();
        if let Some(b) = u.branch {
            branches += 1;
            let h9 = (hist & 0x1FF) as u16;
            if classes[b.site as usize] == BehaviorClass::LinearHistory {
                lin_tot += 1;
                let e = table.entry((b.site, h9)).or_insert((0, 0));
                // predict majority-so-far
                let pred = e.0 >= e.1;
                if branches > 300_000 && pred != b.taken {
                    lin_miss += 1;
                }
                if b.taken {
                    e.0 += 1
                } else {
                    e.1 += 1
                }
                lin_patterns.entry(b.site).or_default().insert(h9);
            }
            hist = (hist << 1) | u64::from(b.taken);
        }
    }
    let avg_patterns: f64 =
        lin_patterns.values().map(|s| s.len() as f64).sum::<f64>() / lin_patterns.len() as f64;
    println!(
        "linear sites: oracle-late miss={:.3} avg distinct hist9 per site={:.0} total pairs={}",
        lin_miss as f64 / (lin_tot as f64 / 2.0),
        avg_patterns,
        table.len()
    );
}
