//! Predictor diagnostic: per-behaviour-class misprediction rates of
//! the baseline hybrid on several benchmarks (trace-level, no
//! pipeline).

use perconf_bpred::{baseline_bimodal_gshare, BranchPredictor};
use perconf_workload::{BehaviorClass, WorkloadGenerator};

fn main() {
    for name in ["vpr", "gcc", "mcf", "vortex"] {
        let cfg = perconf_workload::spec2000_config(name).unwrap();
        let mut g = WorkloadGenerator::new(&cfg);
        let classes: Vec<BehaviorClass> =
            g.program().sites.iter().map(|s| s.spec.class()).collect();
        let mut p = baseline_bimodal_gshare();
        let mut hist = 0u64;
        let mut miss = [0u64; 5];
        let mut tot = [0u64; 5];
        let mut branches = 0u64;
        let mut misses_late = 0u64;
        let mut late_branches = 0u64;
        let total = 600_000;
        while branches < total {
            let u = g.next_uop();
            if let Some(b) = u.branch {
                branches += 1;
                let pred = p.predict(b.pc, hist);
                p.train(b.pc, hist, b.taken);
                hist = (hist << 1) | u64::from(b.taken);
                let c = classes[b.site as usize] as usize;
                tot[c] += 1;
                if pred != b.taken {
                    miss[c] += 1;
                    if branches > total / 2 {
                        misses_late += 1;
                    }
                }
                if branches > total / 2 {
                    late_branches += 1;
                }
            }
        }
        let names = ["Biased", "Loop", "Linear", "Xor", "Random"];
        print!(
            "{name}: late_rate={:.3} ",
            misses_late as f64 / late_branches as f64
        );
        for i in 0..5 {
            if tot[i] > 0 {
                print!(
                    "{}={:.3}({:.2}) ",
                    names[i],
                    miss[i] as f64 / tot[i] as f64,
                    tot[i] as f64 / branches as f64
                );
            }
        }
        println!();
    }
}
