//! Calibration report: measured branch mispredicts per 1000 uops for
//! every benchmark under the baseline hybrid predictor, against the
//! paper's Table 2 target column. Run after any change to the workload
//! behaviour models or mixtures (see DESIGN.md §2).

use perconf_bpred::{baseline_bimodal_gshare, BranchPredictor};
use perconf_workload::{spec2000, WorkloadGenerator};

fn main() {
    println!(
        "{:<10} {:>8} {:>8} {:>6}",
        "bench", "mpku", "target", "ratio"
    );
    for cfg in spec2000() {
        let mut g = WorkloadGenerator::new(&cfg);
        let mut p = baseline_bimodal_gshare();
        let mut hist = 0u64;
        let mut uops = 0u64;
        let mut late_uops = 0u64;
        let mut miss = 0u64;
        let warm = 600_000u64;
        let total = 1_500_000u64;
        while uops < total {
            let u = g.next_uop();
            uops += 1;
            if uops > warm {
                late_uops += 1;
            }
            if let Some(b) = u.branch {
                let pred = p.predict(b.pc, hist);
                p.train(b.pc, hist, b.taken);
                hist = (hist << 1) | u64::from(b.taken);
                if pred != b.taken && uops > warm {
                    miss += 1;
                }
            }
        }
        let mpku = miss as f64 * 1000.0 / late_uops as f64;
        println!(
            "{:<10} {:>8.2} {:>8.2} {:>6.2}",
            cfg.name,
            mpku,
            cfg.target_mpku,
            mpku / cfg.target_mpku
        );
    }
}
