//! Quick Table 3 smoke run (the `repro table3` driver at quick scale),
//! used during calibration iterations.

use perconf_experiments::{table3, Scale};
fn main() {
    let t = table3::run(Scale::quick());
    println!("{}", t.render());
    println!(
        "perceptron PVN dominates JRS: {}",
        t.perceptron_pvn_dominates()
    );
}
