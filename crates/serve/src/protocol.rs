//! Newline-delimited JSON framing.
//!
//! One message per line, UTF-8, no embedded newlines (the vendored
//! `serde_json` escapes them). Reads are capped at
//! [`MAX_LINE_BYTES`] so a hostile or broken peer cannot balloon the
//! server's memory by never sending a newline.

use serde::{de::DeserializeOwned, Serialize};
use std::io::{self, BufRead, Write};

/// Upper bound on one framed message. Large enough for a full-grid
/// result table, small enough to bound a connection's memory.
pub const MAX_LINE_BYTES: usize = 8 * 1024 * 1024;

/// Writes one message as a JSON line and flushes it.
///
/// # Errors
///
/// Propagates I/O errors; serialisation failures surface as
/// `InvalidData`.
pub fn write_msg<W: Write, T: Serialize>(w: &mut W, msg: &T) -> io::Result<()> {
    let body = serde_json::to_string(msg)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    w.write_all(body.as_bytes())?;
    w.write_all(b"\n")?;
    w.flush()
}

/// Reads one JSON line. Returns `Ok(None)` on clean EOF before any
/// bytes of a new message.
///
/// # Errors
///
/// - `InvalidData` for malformed JSON, non-UTF-8 bytes, or a line
///   exceeding [`MAX_LINE_BYTES`];
/// - `UnexpectedEof` when the peer dies mid-line.
pub fn read_msg<R: BufRead, T: DeserializeOwned>(r: &mut R) -> io::Result<Option<T>> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let buf = r.fill_buf()?;
        if buf.is_empty() {
            if line.is_empty() {
                return Ok(None);
            }
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-message",
            ));
        }
        if let Some(pos) = buf.iter().position(|&b| b == b'\n') {
            line.extend_from_slice(&buf[..pos]);
            r.consume(pos + 1);
            break;
        }
        line.extend_from_slice(buf);
        let n = buf.len();
        r.consume(n);
        if line.len() > MAX_LINE_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("message exceeds {MAX_LINE_BYTES} bytes"),
            ));
        }
    }
    if line.len() > MAX_LINE_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("message exceeds {MAX_LINE_BYTES} bytes"),
        ));
    }
    let text = std::str::from_utf8(&line)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    // A blank line between messages is tolerated (telnet users exist).
    if text.trim().is_empty() {
        return read_msg(r);
    }
    serde_json::from_str(text)
        .map(Some)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::Request;
    use std::io::BufReader;

    #[test]
    fn messages_round_trip_over_a_buffer() {
        let mut wire = Vec::new();
        write_msg(&mut wire, &Request::Ping).unwrap();
        write_msg(&mut wire, &Request::Stats).unwrap();
        let mut r = BufReader::new(wire.as_slice());
        assert_eq!(read_msg::<_, Request>(&mut r).unwrap(), Some(Request::Ping));
        assert_eq!(
            read_msg::<_, Request>(&mut r).unwrap(),
            Some(Request::Stats)
        );
        assert_eq!(read_msg::<_, Request>(&mut r).unwrap(), None);
    }

    #[test]
    fn blank_lines_are_skipped_and_eof_mid_line_errors() {
        let mut r = BufReader::new(&b"\n\n\"Ping\"\n\"Sta"[..]);
        assert_eq!(read_msg::<_, Request>(&mut r).unwrap(), Some(Request::Ping));
        let err = read_msg::<_, Request>(&mut r).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn oversized_lines_are_rejected_not_buffered_forever() {
        // A "line" that never ends: reader must bail at the cap, not
        // accumulate until OOM.
        struct Endless;
        impl io::Read for Endless {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                for b in buf.iter_mut() {
                    *b = b'x';
                }
                Ok(buf.len())
            }
        }
        let mut r = BufReader::new(Endless);
        let err = read_msg::<_, Request>(&mut r).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn malformed_json_is_invalid_data() {
        let mut r = BufReader::new(&b"{nope\n"[..]);
        let err = read_msg::<_, Request>(&mut r).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
