//! The supervisor: a bounded submission queue, a small pool of actor
//! runners, and the restart policy wrapped around every experiment.
//!
//! Supervision tree:
//!
//! ```text
//! Supervisor (owns cache, counters, queue)
//! └── actor-runner thread × N      (pool, picks queued experiments)
//!     └── attempt thread           (catch_unwind + watchdog, per try)
//!         └── runner::Scheduler    (per-cell isolation, checkpoints)
//! ```
//!
//! An attempt that panics or outlives the per-experiment watchdog is
//! counted and retried with resume semantics up to
//! [`SupervisorConfig::restart_budget`] restarts. After the budget is
//! spent the experiment is finalised *degraded*: a table assembled
//! from cache entries and checkpoints, with unrecoverable cells in
//! its `failed` list — never silently dropped.
//!
//! Accepted experiments persist as `pending/<id>.json` markers until
//! they finalise, so a killed server's successor
//! ([`Supervisor::start`]) re-enqueues them and resumes from the
//! partials the dead actors left behind.

use crate::actor::{self, ActorConfig, ActorOutcome};
use crate::api::ExperimentSpec;
use crate::cache::{CacheConfig, CellCache};
use perconf_obs::{CounterSnapshot, Counters};
use std::collections::{BTreeMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread;
use std::time::Duration;

/// Supervision policy and sizing.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Root of all server state (`pending/`, `results/`, `cache/`,
    /// `experiments/<id>/`).
    pub state_dir: PathBuf,
    /// Bound on accepted-but-unfinished experiments (queued +
    /// running). Submissions beyond it are shed with `Busy`.
    pub queue_capacity: usize,
    /// Actor-runner threads (experiments in flight at once).
    pub actor_threads: usize,
    /// Restarts allowed per experiment before it finalises degraded.
    pub restart_budget: u32,
    /// Watchdog on one actor attempt (the *experiment* watchdog; each
    /// cell additionally has the runner's own cell watchdog).
    pub watchdog: Duration,
    /// Scheduler worker threads inside each actor.
    pub jobs: usize,
    /// Per-cell watchdog override passed through to the runner.
    pub cell_timeout: Option<Duration>,
    /// Hot-tier (decoded, in-memory) cache entries.
    pub cache_mem: usize,
    /// Disk-tier cache entries.
    pub cache_disk: usize,
}

impl SupervisorConfig {
    /// Defaults rooted at `state_dir`.
    #[must_use]
    pub fn at<P: Into<PathBuf>>(state_dir: P) -> Self {
        Self {
            state_dir: state_dir.into(),
            queue_capacity: 8,
            actor_threads: 1,
            restart_budget: 2,
            watchdog: Duration::from_secs(600),
            jobs: 1,
            cell_timeout: None,
            cache_mem: 64,
            cache_disk: 4096,
        }
    }
}

/// Lifecycle phase of one experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Accepted, waiting for an actor runner.
    Queued,
    /// An actor attempt is executing.
    Running,
    /// Finished with every cell accounted for.
    Done,
    /// Finished after exhausting the restart budget (or with failed
    /// cells): complete for every recoverable cell, the rest listed.
    Degraded,
    /// Could not run at all (unresolvable spec from a pending marker).
    Failed,
}

impl Phase {
    /// Wire name (`Response::Status.phase`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Phase::Queued => "queued",
            Phase::Running => "running",
            Phase::Done => "done",
            Phase::Degraded => "degraded",
            Phase::Failed => "failed",
        }
    }

    /// Whether the experiment has reached a terminal phase.
    #[must_use]
    pub fn is_terminal(self) -> bool {
        matches!(self, Phase::Done | Phase::Degraded | Phase::Failed)
    }
}

/// Everything the server tracks about one experiment.
#[derive(Debug, Clone)]
pub struct ExperimentEntry {
    /// Spec digest + submission ordinal.
    pub id: String,
    /// What was submitted.
    pub spec: ExperimentSpec,
    /// Chaos harness: one scripted actor kill armed.
    pub chaos_kill: bool,
    /// Current phase.
    pub phase: Phase,
    /// Actor restarts consumed.
    pub restarts: u32,
    /// Cells served from the cache.
    pub from_cache: u64,
    /// Cells simulated.
    pub computed: u64,
    /// Terminally failed cell keys.
    pub failed: Vec<String>,
    /// Failure class per failed cell.
    pub failed_kinds: Vec<String>,
}

/// Outcome of a submission attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Submitted {
    /// Queued (or coalesced onto an identical in-flight experiment).
    Accepted {
        /// Id to poll.
        id: String,
        /// `true` when coalesced.
        deduped: bool,
    },
    /// Shed: the bounded queue is full or the server is draining.
    Busy {
        /// Why.
        reason: String,
    },
    /// The spec itself is unusable.
    Invalid {
        /// Why.
        reason: String,
    },
}

struct State {
    queue: VecDeque<String>,
    running: usize,
    experiments: BTreeMap<String, ExperimentEntry>,
    next_ordinal: u64,
}

struct Shared {
    cfg: SupervisorConfig,
    cache: Mutex<CellCache>,
    counters: Mutex<Counters>,
    state: Mutex<State>,
    work: Condvar,
    /// Set on shutdown: stop accepting, workers exit once the queue
    /// is empty.
    draining: AtomicBool,
}

/// Handle to the running supervision tree.
pub struct Supervisor {
    shared: Arc<Shared>,
    runners: Vec<thread::JoinHandle<()>>,
}

impl Supervisor {
    /// Creates the state directories, re-enqueues any `pending/`
    /// markers a dead predecessor left, and starts the runner pool.
    ///
    /// # Errors
    ///
    /// Propagates state-directory creation failures.
    ///
    /// # Panics
    ///
    /// Panics if the runner pool threads cannot be spawned.
    pub fn start(cfg: SupervisorConfig) -> std::io::Result<Self> {
        for sub in ["pending", "results", "experiments"] {
            std::fs::create_dir_all(cfg.state_dir.join(sub))?;
        }
        let cache = CellCache::open(CacheConfig {
            dir: cfg.state_dir.join("cache"),
            mem_capacity: cfg.cache_mem,
            disk_capacity: cfg.cache_disk,
        })?;
        let shared = Arc::new(Shared {
            cache: Mutex::new(cache),
            counters: Mutex::new(Counters::new()),
            state: Mutex::new(State {
                queue: VecDeque::new(),
                running: 0,
                experiments: BTreeMap::new(),
                next_ordinal: 0,
            }),
            work: Condvar::new(),
            draining: AtomicBool::new(false),
            cfg,
        });
        let mut sup = Self {
            shared: Arc::clone(&shared),
            runners: Vec::new(),
        };
        sup.recover_pending()?;
        for i in 0..shared.cfg.actor_threads.max(1) {
            let sh = Arc::clone(&shared);
            sup.runners.push(
                thread::Builder::new()
                    .name(format!("actor-runner-{i}"))
                    .spawn(move || runner_loop(&sh))
                    .expect("spawn actor runner"),
            );
        }
        Ok(sup)
    }

    /// Re-enqueues experiments whose pending markers survived a dead
    /// server — the restart half of the drain-then-exit contract.
    fn recover_pending(&self) -> std::io::Result<()> {
        let dir = self.shared.cfg.state_dir.join("pending");
        let mut markers: Vec<(String, PathBuf)> = std::fs::read_dir(&dir)?
            .filter_map(Result::ok)
            .filter_map(|e| {
                let name = e.file_name().into_string().ok()?;
                let id = name.strip_suffix(".json")?.to_owned();
                Some((id, e.path()))
            })
            .collect();
        markers.sort();
        let mut recovered = 0u64;
        for (id, path) in markers {
            let spec = std::fs::read_to_string(&path)
                .ok()
                .and_then(|text| serde_json::from_str::<ExperimentSpec>(&text).ok());
            let mut st = self.shared.state.lock().expect("state mutex poisoned");
            // Keep the ordinal counter ahead of recovered ids so new
            // submissions never collide with them.
            if let Some(ord) = id.rsplit('-').next().and_then(|s| s.parse::<u64>().ok()) {
                st.next_ordinal = st.next_ordinal.max(ord + 1);
            }
            match spec {
                Some(spec) => {
                    st.experiments.insert(
                        id.clone(),
                        ExperimentEntry {
                            id: id.clone(),
                            spec,
                            chaos_kill: false,
                            phase: Phase::Queued,
                            restarts: 0,
                            from_cache: 0,
                            computed: 0,
                            failed: Vec::new(),
                            failed_kinds: Vec::new(),
                        },
                    );
                    st.queue.push_back(id);
                    recovered += 1;
                    self.shared.work.notify_one();
                }
                None => {
                    // An unreadable marker still must not vanish
                    // silently: surface it as a failed experiment.
                    eprintln!(
                        "warning: pending marker {} is unreadable; marking failed",
                        path.display()
                    );
                    st.experiments.insert(
                        id.clone(),
                        ExperimentEntry {
                            id: id.clone(),
                            spec: ExperimentSpec {
                                seed: 0,
                                scale: "?".to_owned(),
                                grid: "?".to_owned(),
                            },
                            chaos_kill: false,
                            phase: Phase::Failed,
                            restarts: 0,
                            from_cache: 0,
                            computed: 0,
                            failed: Vec::new(),
                            failed_kinds: Vec::new(),
                        },
                    );
                    let _ = std::fs::remove_file(&path);
                }
            }
        }
        if recovered > 0 {
            self.shared
                .counters
                .lock()
                .expect("counters mutex poisoned")
                .counter("serve", "resumed_pending", recovered);
        }
        Ok(())
    }

    /// Submits an experiment (the bounded-queue front door).
    ///
    /// # Panics
    ///
    /// Propagates poisoned internal mutexes.
    pub fn submit(&self, spec: &ExperimentSpec, chaos_kill: bool) -> Submitted {
        if let Err(e) = spec.resolve() {
            return Submitted::Invalid { reason: e };
        }
        let mut counters = self
            .shared
            .counters
            .lock()
            .expect("counters mutex poisoned");
        counters.counter("serve", "submissions", 1);
        if self.shared.draining.load(Ordering::SeqCst) {
            counters.counter("serve", "sheds", 1);
            return Submitted::Busy {
                reason: "server is draining for shutdown".to_owned(),
            };
        }
        let mut st = self.shared.state.lock().expect("state mutex poisoned");
        // Coalesce onto an identical spec still in flight: the caller
        // gets the same id and the work runs once.
        let digest_hex = spec.digest_hex();
        if let Some(live) = st
            .experiments
            .values()
            .find(|e| !e.phase.is_terminal() && e.spec == *spec && !e.chaos_kill && !chaos_kill)
        {
            counters.counter("serve", "dedup_hits", 1);
            return Submitted::Accepted {
                id: live.id.clone(),
                deduped: true,
            };
        }
        let in_flight = st.queue.len() + st.running;
        if in_flight >= self.shared.cfg.queue_capacity.max(1) {
            counters.counter("serve", "sheds", 1);
            return Submitted::Busy {
                reason: format!(
                    "submission queue full ({in_flight}/{} in flight)",
                    self.shared.cfg.queue_capacity
                ),
            };
        }
        let id = format!("{digest_hex}-{}", st.next_ordinal);
        st.next_ordinal += 1;
        // Pending marker first: once we say Accepted, a crash between
        // here and finalise must leave a resumable trace.
        let marker = self.pending_path(&id);
        match serde_json::to_string_pretty(spec) {
            Ok(body) => {
                if let Err(e) = std::fs::write(&marker, body) {
                    eprintln!("warning: cannot write {}: {e}", marker.display());
                }
            }
            Err(e) => eprintln!("warning: cannot serialise pending marker: {e}"),
        }
        st.experiments.insert(
            id.clone(),
            ExperimentEntry {
                id: id.clone(),
                spec: spec.clone(),
                chaos_kill,
                phase: Phase::Queued,
                restarts: 0,
                from_cache: 0,
                computed: 0,
                failed: Vec::new(),
                failed_kinds: Vec::new(),
            },
        );
        st.queue.push_back(id.clone());
        self.shared.work.notify_one();
        Submitted::Accepted { id, deduped: false }
    }

    /// A point-in-time copy of one experiment's entry.
    ///
    /// # Panics
    ///
    /// Propagates a poisoned state mutex.
    #[must_use]
    pub fn status(&self, id: &str) -> Option<ExperimentEntry> {
        self.shared
            .state
            .lock()
            .expect("state mutex poisoned")
            .experiments
            .get(id)
            .cloned()
    }

    /// A finished experiment's result table (parsed from its result
    /// file), or `None` while it is still in flight.
    ///
    /// # Panics
    ///
    /// Propagates a poisoned state mutex.
    #[must_use]
    pub fn result_table(&self, id: &str) -> Option<serde::Value> {
        let entry = self.status(id)?;
        if !entry.phase.is_terminal() {
            return None;
        }
        let text = std::fs::read_to_string(self.result_path(id)).ok()?;
        serde_json::from_str(&text).ok()
    }

    /// Where a finished experiment's table lives.
    #[must_use]
    pub fn result_path(&self, id: &str) -> PathBuf {
        self.shared
            .cfg
            .state_dir
            .join("results")
            .join(format!("{id}.json"))
    }

    fn pending_path(&self, id: &str) -> PathBuf {
        self.shared
            .cfg
            .state_dir
            .join("pending")
            .join(format!("{id}.json"))
    }

    /// Merged server + cache counters, plus load gauges.
    ///
    /// # Panics
    ///
    /// Propagates poisoned internal mutexes.
    #[must_use]
    pub fn stats(&self) -> CounterSnapshot {
        let serve = {
            let mut counters = self
                .shared
                .counters
                .lock()
                .expect("counters mutex poisoned");
            let st = self.shared.state.lock().expect("state mutex poisoned");
            counters
                .gauge("serve", "queue_depth", st.queue.len() as u64)
                .gauge("serve", "running", st.running as u64);
            counters.snapshot()
        };
        // The cache publishes *absolute* totals, so it must land in a
        // fresh registry each call — publishing into the long-lived
        // serve counters would re-add the totals on every stats
        // request. Merging the two snapshots is safe: the groups are
        // disjoint.
        let cache = {
            let mut fresh = Counters::new();
            self.shared
                .cache
                .lock()
                .expect("cache mutex poisoned")
                .publish_counters(&mut fresh);
            fresh.snapshot()
        };
        CounterSnapshot::merge([&serve, &cache])
    }

    /// Stops accepting, lets the runner pool drain every accepted
    /// experiment, and joins it. Queued work is *finished*, not
    /// abandoned — the drain half of the drain-then-exit contract
    /// (anything that still could not finalise keeps its pending
    /// marker for the next server).
    ///
    /// # Panics
    ///
    /// Panics if a runner thread itself panicked (a supervisor bug —
    /// actor panics are caught per attempt).
    pub fn shutdown_and_drain(mut self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        self.shared.work.notify_all();
        for h in self.runners.drain(..) {
            h.join().expect("actor runner panicked");
        }
    }
}

fn runner_loop(sh: &Arc<Shared>) {
    loop {
        let id = {
            let mut st = sh.state.lock().expect("state mutex poisoned");
            loop {
                if let Some(id) = st.queue.pop_front() {
                    st.running += 1;
                    if let Some(e) = st.experiments.get_mut(&id) {
                        e.phase = Phase::Running;
                    }
                    break id;
                }
                if sh.draining.load(Ordering::SeqCst) {
                    return;
                }
                st = sh
                    .work
                    .wait_timeout(st, Duration::from_millis(100))
                    .expect("state mutex poisoned")
                    .0;
            }
        };
        run_supervised(sh, &id);
        let mut st = sh.state.lock().expect("state mutex poisoned");
        st.running -= 1;
        sh.work.notify_all();
    }
}

/// The restart policy around one experiment.
fn run_supervised(sh: &Arc<Shared>, id: &str) {
    let Some(entry) = sh
        .state
        .lock()
        .expect("state mutex poisoned")
        .experiments
        .get(id)
        .cloned()
    else {
        return;
    };
    let actor_cfg = ActorConfig {
        spec: entry.spec.clone(),
        checkpoint_dir: sh.cfg.state_dir.join("experiments").join(id).join("cells"),
        jobs: sh.cfg.jobs,
        cell_timeout: sh.cfg.cell_timeout,
        kill_after: None,
    };
    for incarnation in 0..=sh.cfg.restart_budget {
        // The chaos kill is scripted for the first incarnation only:
        // one death, then the restart proves the resume path.
        let mut cfg = actor_cfg.clone();
        if entry.chaos_kill && incarnation == 0 {
            cfg.kill_after = Some(1);
        }
        if incarnation > 0 {
            sh.counters
                .lock()
                .expect("counters mutex poisoned")
                .counter("serve", "restarts", 1);
            let mut st = sh.state.lock().expect("state mutex poisoned");
            if let Some(e) = st.experiments.get_mut(id) {
                e.restarts = incarnation;
            }
        }
        // Each incarnation gets its own channel: a zombie attempt
        // finishing after its watchdog fired sends into a channel
        // nobody reads, and can never corrupt a newer incarnation.
        let (tx, rx) = mpsc::channel();
        let sh2 = Arc::clone(sh);
        let attempt = thread::Builder::new()
            .name(format!("actor-{id}-i{incarnation}"))
            .spawn(move || {
                let out =
                    catch_unwind(AssertUnwindSafe(|| actor::run_experiment(&cfg, &sh2.cache)));
                let _ = tx.send(out);
            });
        let Ok(attempt) = attempt else {
            continue;
        };
        match rx.recv_timeout(sh.cfg.watchdog) {
            Ok(Ok(Ok(outcome))) => {
                let _ = attempt.join();
                finalize(sh, id, &outcome, outcome.failed.is_empty());
                return;
            }
            Ok(Ok(Err(reason))) => {
                // Unresolvable spec: retrying cannot help.
                let _ = attempt.join();
                eprintln!("experiment {id}: {reason}");
                finalize_failed(sh, id);
                return;
            }
            Ok(Err(panic_payload)) => {
                let _ = attempt.join();
                let msg = panic_message(panic_payload.as_ref());
                eprintln!("experiment {id} attempt {incarnation} panicked: {msg}");
            }
            Err(mpsc::RecvTimeoutError::Timeout | mpsc::RecvTimeoutError::Disconnected) => {
                // Watchdog expiry. The attempt thread cannot be killed
                // safely; abandon it (its cells keep checkpointing,
                // and its late send lands in a dropped channel).
                sh.counters
                    .lock()
                    .expect("counters mutex poisoned")
                    .counter("serve", "watchdog_kills", 1);
                eprintln!(
                    "experiment {id} attempt {incarnation} outlived its {}s watchdog; abandoning",
                    sh.cfg.watchdog.as_secs()
                );
            }
        }
    }
    // Restart budget exhausted: degrade, never drop. Whatever the
    // dead incarnations checkpointed or cached is assembled into a
    // partial table; the rest is listed as failed.
    let partial = actor::assemble_partial(&actor_cfg, &sh.cache);
    match partial {
        Ok(outcome) => finalize(sh, id, &outcome, false),
        Err(reason) => {
            eprintln!("experiment {id}: cannot assemble partial: {reason}");
            finalize_failed(sh, id);
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

fn finalize(sh: &Arc<Shared>, id: &str, outcome: &ActorOutcome, clean: bool) {
    // Result file first, then the pending marker: a crash between the
    // two re-runs the experiment (cheap, all cache hits) instead of
    // losing it.
    let path = sh.cfg.state_dir.join("results").join(format!("{id}.json"));
    match serde_json::to_string_pretty(&outcome.table) {
        Ok(body) => {
            let tmp = path.with_extension(format!("json.tmp{}", std::process::id()));
            let write = std::fs::write(&tmp, body).and_then(|()| std::fs::rename(&tmp, &path));
            if let Err(e) = write {
                eprintln!("warning: cannot write result {}: {e}", path.display());
            }
        }
        Err(e) => eprintln!("warning: cannot serialise result for {id}: {e}"),
    }
    let _ = std::fs::remove_file(sh.cfg.state_dir.join("pending").join(format!("{id}.json")));
    {
        let mut counters = sh.counters.lock().expect("counters mutex poisoned");
        counters
            .counter("serve", "cells_from_cache", outcome.from_cache)
            .counter("serve", "cells_computed", outcome.computed)
            .counter("serve", "cells_resumed", outcome.resumed)
            .counter("serve", "cells_resumed_mid_cell", outcome.resumed_mid_cell);
        if clean {
            counters.counter("serve", "completed", 1);
        } else {
            counters.counter("serve", "degraded", 1);
        }
    }
    let mut st = sh.state.lock().expect("state mutex poisoned");
    if let Some(e) = st.experiments.get_mut(id) {
        e.phase = if clean { Phase::Done } else { Phase::Degraded };
        e.from_cache = outcome.from_cache;
        e.computed = outcome.computed;
        e.failed = outcome.failed.clone();
        e.failed_kinds = outcome.failed_kinds.clone();
    }
}

fn finalize_failed(sh: &Arc<Shared>, id: &str) {
    sh.counters
        .lock()
        .expect("counters mutex poisoned")
        .counter("serve", "failed_experiments", 1);
    let _ = std::fs::remove_file(sh.cfg.state_dir.join("pending").join(format!("{id}.json")));
    let mut st = sh.state.lock().expect("state mutex poisoned");
    if let Some(e) = st.experiments.get_mut(id) {
        e.phase = Phase::Failed;
    }
}
