//! Long-running supervised experiment server.
//!
//! One-shot `repro` invocations pay full simulation cost for every
//! crash, timeout, or repeated submission. This crate keeps the
//! sweep machinery resident: a TCP line-protocol front end
//! ([`protocol`], newline-delimited JSON) accepts experiment
//! submissions ([`api::ExperimentSpec`]), a [`supervisor`] owns one
//! actor per accepted experiment, and each [`actor`] runs its cells on
//! the existing `runner::Scheduler` wrapped in the full robustness
//! stack:
//!
//! - panic isolation (`catch_unwind` around every actor attempt, on
//!   top of the runner's own per-cell isolation);
//! - a per-experiment watchdog timeout on each attempt;
//! - bounded retries with exponential backoff and deterministic
//!   key-derived jitter (the runner's `RunnerConfig::jitter`);
//! - a restart policy: a dead or hung actor is restarted with
//!   `--resume` semantics (final checkpoints and mid-cell
//!   `.part.psnap` partials are picked up) up to a budget, after
//!   which the experiment is marked *degraded* with whatever cells
//!   completed — never silently dropped.
//!
//! Results are memoised in a content-addressed [`cache`]: every cell
//! is keyed by `faults::cell_content_digest` (config digest, seed,
//! grid cell), stored as a checksummed `.psnap` entry, and served to
//! repeat submissions without re-simulation. A checksum failure is a
//! *miss* — corruption degrades to recompute, never to a wrong or
//! missing result. The cache is LRU-bounded in memory and on disk,
//! with disk rehydration for entries evicted from memory.
//!
//! Under load the server sheds: the submission queue is bounded and
//! overflow gets an explicit 429-style `Busy` rejection. On SIGTERM
//! (or a protocol `Shutdown`) the server drains accepted work, leaves
//! pending markers and partials on disk for any experiment it could
//! not finish, and a restarted server resumes them.

//!
//! Determinism stance: this crate is part of the result-producing
//! path, so it carries the same hygiene contract as the rest of the
//! workspace — no `unsafe` anywhere (the SIGTERM plumbing lives in
//! the vendored `signal-hook` subset), and artifact writes go through
//! the checksummed temp+rename helpers. `perconf-lint` verifies both
//! statically on every CI run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod actor;
pub mod api;
pub mod cache;
pub mod protocol;
pub mod server;
pub mod supervisor;
