//! Content-addressed result cache.
//!
//! Cells are keyed by `faults::cell_content_digest` — a digest of
//! everything that determines the cell's bytes (config, seed, grid
//! coordinates, rate bits) — so a hit is *guaranteed* to be the same
//! bytes a recompute would produce. Entries live as checksummed
//! `.psnap` files under the cache directory with a bounded-size LRU
//! policy in two tiers:
//!
//! - a hot in-memory tier (`mem_capacity` decoded values);
//! - the disk tier (`disk_capacity` files); entries evicted from
//!   memory rehydrate from disk on the next hit, entries evicted from
//!   disk are recomputed like any miss.
//!
//! Corruption policy: a `.psnap` whose checksum fails is deleted and
//! reported as a **miss** — the caller recomputes and overwrites. The
//! event is counted (`cache/corrupt`) and flagged through
//! `runner::note_degraded`, so a run that consumed corrupt cache
//! state still exits with the degraded status code. The cache can
//! degrade a result's *cost*, never its *content*.

use perconf_experiments::runner::note_degraded;
use perconf_experiments::snapfile;
use perconf_obs::Counters;
use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::path::{Path, PathBuf};

/// Sizing and placement for a [`CellCache`].
#[derive(Debug, Clone)]
pub struct CacheConfig {
    /// Directory holding the `.psnap` entries.
    pub dir: PathBuf,
    /// Decoded entries kept in memory (the hot tier).
    pub mem_capacity: usize,
    /// Entries kept on disk before LRU eviction.
    pub disk_capacity: usize,
}

impl CacheConfig {
    /// Default sizing rooted at `dir`: a small hot tier, a disk tier
    /// comfortably larger than a full grid.
    #[must_use]
    pub fn at<P: Into<PathBuf>>(dir: P) -> Self {
        Self {
            dir: dir.into(),
            mem_capacity: 64,
            disk_capacity: 4096,
        }
    }
}

/// Two-tier LRU cache of cell results, see the module docs.
#[derive(Debug)]
pub struct CellCache {
    cfg: CacheConfig,
    /// Digests present on disk, coldest first.
    order: VecDeque<u64>,
    /// Hot decoded tier (subset of `order`). A `BTreeMap` — not a
    /// hash map — so iteration order (now or in any future use) is
    /// the key order, never a function of hasher seed state. LRU
    /// recency lives in `mem_order`, which is already deterministic.
    mem: BTreeMap<u64, serde::Value>,
    /// Hot-tier recency, coldest first.
    mem_order: VecDeque<u64>,
    hits: u64,
    misses: u64,
    rehydrations: u64,
    corrupt: u64,
    evictions: u64,
}

impl CellCache {
    /// Opens (creating if needed) the cache directory and indexes the
    /// entries already there. Pre-existing entries are ordered by file
    /// name — a deterministic stand-in for lost recency, only relevant
    /// to which of them evict first.
    ///
    /// # Errors
    ///
    /// Propagates directory creation/listing failures.
    pub fn open(cfg: CacheConfig) -> std::io::Result<Self> {
        std::fs::create_dir_all(&cfg.dir)?;
        let mut found: Vec<u64> = std::fs::read_dir(&cfg.dir)?
            .filter_map(Result::ok)
            .filter_map(|e| {
                let name = e.file_name().into_string().ok()?;
                let hex = name.strip_suffix(".psnap")?;
                u64::from_str_radix(hex, 16).ok()
            })
            .collect();
        found.sort_unstable();
        Ok(Self {
            cfg,
            order: found.into(),
            mem: BTreeMap::new(),
            mem_order: VecDeque::new(),
            hits: 0,
            misses: 0,
            rehydrations: 0,
            corrupt: 0,
            evictions: 0,
        })
    }

    /// Path of one entry.
    #[must_use]
    pub fn entry_path(&self, digest: u64) -> PathBuf {
        entry_path(&self.cfg.dir, digest)
    }

    /// Entries currently on disk.
    #[must_use]
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the cache holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Looks up a cell result. A checksum failure deletes the entry
    /// and reads as a miss (recompute and [`put`](Self::put) again).
    pub fn get(&mut self, digest: u64) -> Option<serde::Value> {
        if let Some(v) = self.mem.get(&digest).cloned() {
            self.hits += 1;
            touch(&mut self.mem_order, digest);
            touch(&mut self.order, digest);
            return Some(v);
        }
        if !self.order.contains(&digest) {
            self.misses += 1;
            return None;
        }
        match snapfile::read(&self.entry_path(digest)) {
            Ok(v) => {
                self.hits += 1;
                self.rehydrations += 1;
                touch(&mut self.order, digest);
                self.insert_mem(digest, v.clone());
                Some(v)
            }
            Err(e) => {
                // Corrupt (or vanished) entry: drop it and miss. The
                // caller recomputes; the result can never be wrong.
                eprintln!(
                    "warning: cache entry {:016x} unreadable ({e}); degrading to recompute",
                    digest
                );
                let _ = std::fs::remove_file(self.entry_path(digest));
                forget(&mut self.order, digest);
                note_degraded();
                self.corrupt += 1;
                self.misses += 1;
                None
            }
        }
    }

    /// Stores a cell result, evicting LRU entries beyond the bounds.
    pub fn put(&mut self, digest: u64, value: &serde::Value) {
        if let Err(e) = snapfile::write(&self.entry_path(digest), value) {
            // A cache that cannot persist still works as a process-
            // lifetime memo; warn and carry on.
            eprintln!("warning: cannot write cache entry {digest:016x}: {e}");
        }
        touch(&mut self.order, digest);
        self.insert_mem(digest, value.clone());
        while self.order.len() > self.cfg.disk_capacity.max(1) {
            if let Some(cold) = self.order.pop_front() {
                let _ = std::fs::remove_file(self.entry_path(cold));
                forget(&mut self.mem_order, cold);
                self.mem.remove(&cold);
                self.evictions += 1;
            }
        }
    }

    fn insert_mem(&mut self, digest: u64, value: serde::Value) {
        self.mem.insert(digest, value);
        touch(&mut self.mem_order, digest);
        while self.mem.len() > self.cfg.mem_capacity.max(1) {
            if let Some(cold) = self.mem_order.pop_front() {
                // Falls out of memory only; the disk tier still holds
                // it, so the next hit rehydrates instead of computing.
                self.mem.remove(&cold);
            }
        }
    }

    /// Publishes the cache's counters into `c` under group `cache`.
    pub fn publish_counters(&self, c: &mut Counters) {
        c.counter("cache", "hits", self.hits)
            .counter("cache", "misses", self.misses)
            .counter("cache", "rehydrations", self.rehydrations)
            .counter("cache", "corrupt", self.corrupt)
            .counter("cache", "evictions", self.evictions)
            .gauge("cache", "entries", self.order.len() as u64)
            .gauge("cache", "entries_hot", self.mem.len() as u64);
    }
}

fn entry_path(dir: &Path, digest: u64) -> PathBuf {
    dir.join(format!("{digest:016x}.psnap"))
}

/// Moves `digest` to the hot end of `order`, inserting if absent.
fn touch(order: &mut VecDeque<u64>, digest: u64) {
    forget(order, digest);
    order.push_back(digest);
}

fn forget(order: &mut VecDeque<u64>, digest: u64) {
    if let Some(pos) = order.iter().position(|&d| d == digest) {
        order.remove(pos);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("perconf-cache-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn val(n: i64) -> serde::Value {
        serde::Value::Object(vec![("n".to_owned(), serde::Value::Int(n))])
    }

    fn open(dir: &Path, mem: usize, disk: usize) -> CellCache {
        CellCache::open(CacheConfig {
            dir: dir.to_path_buf(),
            mem_capacity: mem,
            disk_capacity: disk,
        })
        .unwrap()
    }

    #[test]
    fn put_get_round_trips_and_counts() {
        let dir = tmpdir("roundtrip");
        let mut c = open(&dir, 4, 16);
        assert_eq!(c.get(1), None);
        c.put(1, &val(10));
        assert_eq!(c.get(1), Some(val(10)));
        let mut counters = Counters::new();
        c.publish_counters(&mut counters);
        let s = counters.snapshot();
        assert_eq!(s.get("cache", "hits"), Some(1));
        assert_eq!(s.get("cache", "misses"), Some(1));
        assert_eq!(s.get("cache", "corrupt"), Some(0));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn byte_flip_corruption_degrades_to_a_miss_and_deletes_the_entry() {
        let dir = tmpdir("corrupt");
        let mut c = open(&dir, 4, 16);
        c.put(7, &val(70));
        // Flip one payload byte behind the cache's back.
        let p = c.entry_path(7);
        let mut bytes = std::fs::read(&p).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        std::fs::write(&p, &bytes).unwrap();
        // Memory tier would mask the corruption — evict it first by
        // reopening (fresh process, cold memory).
        let mut c = open(&dir, 4, 16);
        assert_eq!(c.get(7), None, "corrupt entry must read as a miss");
        assert!(!p.exists(), "corrupt entry must be deleted");
        let mut counters = Counters::new();
        c.publish_counters(&mut counters);
        let s = counters.snapshot();
        assert_eq!(s.get("cache", "corrupt"), Some(1));
        assert_eq!(s.get("cache", "misses"), Some(1));
        // Recompute-and-put heals the entry.
        c.put(7, &val(70));
        assert_eq!(c.get(7), Some(val(70)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn memory_eviction_rehydrates_from_disk() {
        let dir = tmpdir("rehydrate");
        let mut c = open(&dir, 1, 16);
        c.put(1, &val(1));
        c.put(2, &val(2)); // evicts 1 from the hot tier only
        assert_eq!(c.len(), 2, "disk tier keeps both");
        assert_eq!(c.get(1), Some(val(1)), "rehydrates from disk");
        let mut counters = Counters::new();
        c.publish_counters(&mut counters);
        assert_eq!(counters.snapshot().get("cache", "rehydrations"), Some(1));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_eviction_is_lru_and_bounded() {
        let dir = tmpdir("evict");
        let mut c = open(&dir, 8, 2);
        c.put(1, &val(1));
        c.put(2, &val(2));
        let _ = c.get(1); // 2 is now coldest
        c.put(3, &val(3)); // evicts 2
        assert_eq!(c.len(), 2);
        assert!(!c.entry_path(2).exists(), "coldest entry evicted");
        assert!(c.entry_path(1).exists());
        assert_eq!(c.get(2), None, "evicted entry is a miss");
        let mut counters = Counters::new();
        c.publish_counters(&mut counters);
        assert_eq!(counters.snapshot().get("cache", "evictions"), Some(1));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_indexes_existing_entries() {
        let dir = tmpdir("reopen");
        let mut c = open(&dir, 4, 16);
        c.put(0xabc, &val(5));
        drop(c);
        let mut c = open(&dir, 4, 16);
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(0xabc), Some(val(5)));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
