//! One experiment's execution: cache lookups, cell simulation on the
//! shared `runner::Scheduler`, and result assembly.
//!
//! The actor is a plain function run inside a supervised attempt
//! thread (see [`crate::supervisor`]); everything stateful it touches
//! — the content-addressed cache, the per-experiment checkpoint
//! directory — survives the actor's death, which is what makes the
//! supervisor's restart-with-resume policy cheap: a restarted actor
//! finds every finished cell in the cache or on disk and only pays
//! for what the previous incarnation had not finished.

use crate::api::ExperimentSpec;
use crate::cache::CellCache;
use perconf_experiments::faults::{self, FaultCell};
use perconf_experiments::runner::{
    CellSpec, RunError, Runner, RunnerConfig, Scheduler, SchedulerConfig,
};
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::Duration;

/// How to run one experiment.
#[derive(Debug, Clone)]
pub struct ActorConfig {
    /// What to run.
    pub spec: ExperimentSpec,
    /// Per-experiment checkpoint directory (final checkpoints,
    /// failure markers, mid-cell `.part.psnap` partials).
    pub checkpoint_dir: PathBuf,
    /// Scheduler worker threads for this experiment's cells.
    pub jobs: usize,
    /// Per-cell watchdog; `None` keeps the runner default.
    pub cell_timeout: Option<Duration>,
    /// Chaos harness: panic the actor after this many freshly
    /// computed cells (the supervisor must restart it and the final
    /// result must be byte-identical to an undisturbed run).
    pub kill_after: Option<usize>,
}

/// What one (successful) actor run produced.
#[derive(Debug, Clone)]
pub struct ActorOutcome {
    /// The assembled `FaultTable` as a JSON value.
    pub table: serde::Value,
    /// Cells served from the content-addressed cache.
    pub from_cache: u64,
    /// Cells simulated by this run.
    pub computed: u64,
    /// Cells resumed from a final checkpoint left by an earlier
    /// incarnation.
    pub resumed: u64,
    /// Cells that continued from a mid-cell partial checkpoint.
    pub resumed_mid_cell: u64,
    /// Keys of cells that failed terminally, canonical order.
    pub failed: Vec<String>,
    /// Failure class per entry of `failed` (`timeout`, `panic`, ...).
    pub failed_kinds: Vec<String>,
}

/// One cell's full identity within an experiment.
struct CellId {
    key: String,
    digest: u64,
    estimator: String,
    bench: String,
    rate: f64,
    cell_seed: u64,
}

fn enumerate_cells(spec: &ExperimentSpec) -> Result<Vec<CellId>, String> {
    let (scale, grid) = spec.resolve()?;
    let mut ids = Vec::with_capacity(grid.cell_count());
    for est in &grid.estimators {
        for bench in &grid.benchmarks {
            for (ri, &rate) in grid.rates.iter().enumerate() {
                ids.push(CellId {
                    key: faults::cell_key(spec.seed, est, bench, ri),
                    digest: faults::cell_content_digest(spec.seed, scale, est, bench, ri, rate),
                    estimator: est.clone(),
                    bench: bench.clone(),
                    rate,
                    cell_seed: faults::cell_seed(spec.seed, bench, est, ri),
                });
            }
        }
    }
    Ok(ids)
}

fn runner_config(cfg: &ActorConfig) -> RunnerConfig {
    RunnerConfig {
        checkpoint_dir: Some(cfg.checkpoint_dir.clone()),
        resume: true,
        timeout: cfg.cell_timeout.or(RunnerConfig::default().timeout),
        // Deterministic key-derived jitter decorrelates retries across
        // the cells an actor re-runs after a transient fault.
        jitter: 0.5,
        ..RunnerConfig::default()
    }
}

fn error_kind(e: &RunError) -> String {
    match e {
        RunError::Timeout { .. } => "timeout",
        RunError::Panic { .. } => "panic",
        RunError::Io { .. } => "io",
        RunError::Invariant { .. } => "invariant",
    }
    .to_owned()
}

/// Runs one experiment to completion (panicking if a chaos kill is
/// armed and fires — the supervisor treats that like any crash).
///
/// # Errors
///
/// Returns a message for an unresolvable spec (unknown scale/grid);
/// cell-level failures do *not* error — they are reported in the
/// outcome's `failed` list and the table is assembled around them.
///
/// # Panics
///
/// Panics when the armed chaos kill fires, and propagates a poisoned
/// cache mutex (a previous holder panicked mid-update).
pub fn run_experiment(cfg: &ActorConfig, cache: &Mutex<CellCache>) -> Result<ActorOutcome, String> {
    let (_, grid) = cfg.spec.resolve()?;
    let seed = cfg.spec.seed;
    let ids = enumerate_cells(&cfg.spec)?;
    let mut cells: Vec<Option<FaultCell>> = ids.iter().map(|_| None).collect();
    let mut from_cache = 0u64;

    // Phase 1: serve whatever the content-addressed cache already has.
    {
        let mut c = cache.lock().expect("cache mutex poisoned");
        for (i, id) in ids.iter().enumerate() {
            if let Some(v) = c.get(id.digest) {
                match serde_json::from_value::<FaultCell>(&v) {
                    Ok(cell) => {
                        cells[i] = Some(cell);
                        from_cache += 1;
                    }
                    Err(e) => {
                        // Checksum-valid but shape-incompatible (e.g.
                        // written by an older build): recompute and
                        // overwrite below.
                        eprintln!(
                            "warning: cache entry {:016x} has stale shape ({e}); recomputing",
                            id.digest
                        );
                    }
                }
            }
        }
    }

    let missing: Vec<usize> = (0..ids.len()).filter(|&i| cells[i].is_none()).collect();

    // Phase 2 (chaos): compute a prefix, publish it, then die. The
    // restarted incarnation finds the prefix in the cache and the
    // assembled table comes out byte-identical.
    if let Some(k) = cfg.kill_after {
        if k > 0 && missing.len() > k {
            let prefix = &missing[..k];
            let report = compute_cells(cfg, &ids, prefix);
            store_results(&ids, prefix, report, cache, &mut cells);
            panic!("chaos: scripted actor kill after {k} computed cell(s)");
        }
    }
    let mut computed = 0u64;
    let mut resumed = 0u64;
    let mut resumed_mid_cell = 0u64;
    let mut failed: Vec<String> = Vec::new();
    let mut failed_kinds: Vec<String> = Vec::new();

    // Phase 3: simulate what the cache could not serve.
    if !missing.is_empty() {
        let report = compute_cells(cfg, &ids, &missing);
        for (slot, cell_report) in missing.iter().zip(report.cells.iter()) {
            if cell_report.resumed {
                resumed += 1;
            } else if cell_report.attempts > 0 {
                computed += 1;
            }
            if cell_report.resumed_mid_cell {
                resumed_mid_cell += 1;
            }
            if let Err(e) = &cell_report.outcome {
                failed.push(ids[*slot].key.clone());
                failed_kinds.push(error_kind(e));
            }
        }
        store_results(&ids, &missing, report, cache, &mut cells);
    }

    let done: Vec<FaultCell> = cells.into_iter().flatten().collect();
    let table = faults::table_from_cells(seed, &grid, done, failed.clone());
    let table = serde_json::to_value(&table).map_err(|e| e.to_string())?;
    Ok(ActorOutcome {
        table,
        from_cache,
        computed,
        resumed,
        resumed_mid_cell,
        failed,
        failed_kinds,
    })
}

/// Assembles the best table possible *without running anything*: cache
/// entries plus final checkpoints from dead incarnations; cells with
/// neither are reported failed. This is the supervisor's last resort
/// when the restart budget is exhausted — degraded, never dropped.
///
/// # Errors
///
/// Returns a message only for an unresolvable spec.
///
/// # Panics
///
/// Propagates a poisoned cache mutex.
pub fn assemble_partial(
    cfg: &ActorConfig,
    cache: &Mutex<CellCache>,
) -> Result<ActorOutcome, String> {
    let (_, grid) = cfg.spec.resolve()?;
    let ids = enumerate_cells(&cfg.spec)?;
    // A runner is the authority on checkpoint file naming.
    let paths = Runner::new(runner_config(cfg));
    let mut cells: Vec<FaultCell> = Vec::new();
    let mut from_cache = 0u64;
    let mut resumed = 0u64;
    let mut failed = Vec::new();
    let mut failed_kinds = Vec::new();
    let mut c = cache.lock().expect("cache mutex poisoned");
    for id in &ids {
        if let Some(cell) = c
            .get(id.digest)
            .and_then(|v| serde_json::from_value::<FaultCell>(&v).ok())
        {
            cells.push(cell);
            from_cache += 1;
            continue;
        }
        let from_checkpoint = paths
            .checkpoint_path(&id.key)
            .and_then(|p| std::fs::read_to_string(p).ok())
            .and_then(|text| serde_json::from_str::<FaultCell>(&text).ok());
        if let Some(cell) = from_checkpoint {
            c.put(
                id.digest,
                &serde_json::to_value(&cell).unwrap_or(serde::Value::Null),
            );
            cells.push(cell);
            resumed += 1;
        } else {
            failed.push(id.key.clone());
            failed_kinds.push("abandoned".to_owned());
        }
    }
    drop(c);
    let table = faults::table_from_cells(cfg.spec.seed, &grid, cells, failed.clone());
    let table = serde_json::to_value(&table).map_err(|e| e.to_string())?;
    Ok(ActorOutcome {
        table,
        from_cache,
        computed: 0,
        resumed,
        resumed_mid_cell: 0,
        failed,
        failed_kinds,
    })
}

fn compute_cells(
    cfg: &ActorConfig,
    ids: &[CellId],
    idxs: &[usize],
) -> perconf_experiments::runner::SweepReport<FaultCell> {
    let (scale, _) = cfg
        .spec
        .resolve()
        .expect("spec validated before compute_cells");
    let specs: Vec<CellSpec<FaultCell>> = idxs
        .iter()
        .map(|&i| {
            let id = &ids[i];
            let (bench, est) = (id.bench.clone(), id.estimator.clone());
            let (rate, cs) = (id.rate, id.cell_seed);
            CellSpec::new(id.key.clone(), move |chk| {
                faults::run_cell(&bench, &est, rate, cs, scale, chk)
            })
        })
        .collect();
    let mut scheduler = Scheduler::new(SchedulerConfig {
        runner: runner_config(cfg),
        jobs: cfg.jobs,
    });
    scheduler.run_cells(specs)
}

/// Publishes a compute report's successful cells into the cache and
/// the caller's slot table.
fn store_results(
    ids: &[CellId],
    idxs: &[usize],
    report: perconf_experiments::runner::SweepReport<FaultCell>,
    cache: &Mutex<CellCache>,
    cells: &mut [Option<FaultCell>],
) {
    let mut c = cache.lock().expect("cache mutex poisoned");
    for (slot, cell_report) in idxs.iter().zip(report.cells) {
        if let Ok(cell) = cell_report.outcome {
            if let Ok(v) = serde_json::to_value(&cell) {
                c.put(ids[*slot].digest, &v);
            }
            cells[*slot] = Some(cell);
        }
    }
}
