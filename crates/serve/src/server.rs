//! TCP front end: accept loop, connection handling, and the
//! SIGTERM-driven drain-then-exit path.
//!
//! The listener binds loopback (an experiment server is a local
//! supervision convenience, not a network service), writes its bound
//! address to `<state_dir>/endpoint` so clients can find an
//! ephemeral-port server, and handles each connection on its own
//! thread. Request handling is a thin translation layer — all policy
//! (queueing, shedding, restarts) lives in [`crate::supervisor`].
//!
//! Shutdown paths, both of which drain accepted work before exit:
//!
//! - a protocol [`Request::Shutdown`] line;
//! - SIGTERM, observed through a one-flag handler registered via the
//!   vendored `signal-hook` subset (`flag::register`), which keeps
//!   the `unsafe` signal plumbing out of this crate so the crate root
//!   can `#![forbid(unsafe_code)]`.

use crate::api::{self, Request, Response};
use crate::protocol;
use crate::supervisor::{Submitted, Supervisor, SupervisorConfig};
use std::io::BufReader;
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread;
use std::time::Duration;

/// Set by the SIGTERM handler; polled by the accept loop.
fn term_flag() -> &'static Arc<AtomicBool> {
    static TERM: OnceLock<Arc<AtomicBool>> = OnceLock::new();
    TERM.get_or_init(|| Arc::new(AtomicBool::new(false)))
}

/// Installs the SIGTERM flag handler (idempotent). Async-signal-safe:
/// the registered handler only stores an atomic.
fn install_sigterm_handler() {
    static INSTALLED: OnceLock<()> = OnceLock::new();
    INSTALLED.get_or_init(|| {
        let registered =
            signal_hook::flag::register(signal_hook::consts::SIGTERM, Arc::clone(term_flag()));
        if let Err(e) = registered {
            // Degraded but functional: protocol `Shutdown` still
            // drains; only the signal path is lost.
            eprintln!("warning: cannot install SIGTERM handler: {e}");
        }
    });
}

/// Front-end configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address; port 0 picks an ephemeral port (published via
    /// the endpoint file).
    pub addr: String,
    /// Supervisor policy (state directory, queue bound, restarts...).
    pub supervisor: SupervisorConfig,
}

impl ServerConfig {
    /// Defaults: loopback ephemeral port, supervisor rooted at
    /// `state_dir`.
    #[must_use]
    pub fn at<P: Into<PathBuf>>(state_dir: P) -> Self {
        Self {
            addr: "127.0.0.1:0".to_owned(),
            supervisor: SupervisorConfig::at(state_dir),
        }
    }
}

/// A running server: listener plus supervision tree.
pub struct Server {
    listener: TcpListener,
    supervisor: Arc<Supervisor>,
    state_dir: PathBuf,
    /// Set by a protocol `Shutdown` request.
    shutdown_requested: Arc<AtomicBool>,
}

impl Server {
    /// Binds the listener, starts the supervisor (recovering any
    /// pending experiments a dead server left), and publishes the
    /// endpoint file.
    ///
    /// # Errors
    ///
    /// Propagates bind and state-directory failures.
    pub fn start(cfg: ServerConfig) -> std::io::Result<Self> {
        let state_dir = cfg.supervisor.state_dir.clone();
        let supervisor = Arc::new(Supervisor::start(cfg.supervisor)?);
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        std::fs::write(state_dir.join("endpoint"), format!("{addr}\n"))?;
        Ok(Self {
            listener,
            supervisor,
            state_dir,
            shutdown_requested: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (useful with an ephemeral port).
    ///
    /// # Panics
    ///
    /// Panics if the listener's local address cannot be read (the
    /// bind already succeeded, so this indicates a torn-down socket).
    #[must_use]
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.listener.local_addr().expect("listener has no address")
    }

    /// Serves until SIGTERM or a protocol `Shutdown`, then drains the
    /// supervisor (finishing all accepted experiments) and removes
    /// the endpoint file. Connection threads are detached; in-flight
    /// connections at shutdown finish their current request at most.
    pub fn run(self) {
        install_sigterm_handler();
        loop {
            if term_flag().load(Ordering::SeqCst) || self.shutdown_requested.load(Ordering::SeqCst)
            {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let sup = Arc::clone(&self.supervisor);
                    let stop = Arc::clone(&self.shutdown_requested);
                    let spawned = thread::Builder::new()
                        .name("serve-conn".to_owned())
                        .spawn(move || handle_connection(stream, &sup, &stop));
                    if let Err(e) = spawned {
                        eprintln!("warning: cannot spawn connection thread: {e}");
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    thread::sleep(Duration::from_millis(10));
                }
                Err(e) => {
                    eprintln!("accept error: {e}");
                    thread::sleep(Duration::from_millis(100));
                }
            }
        }
        eprintln!("serve: draining accepted experiments before exit");
        let _ = std::fs::remove_file(self.state_dir.join("endpoint"));
        match Arc::try_unwrap(self.supervisor) {
            Ok(sup) => sup.shutdown_and_drain(),
            Err(shared) => {
                // Connection threads still hold the supervisor; wait
                // for them to finish their current request, bounded.
                for _ in 0..600 {
                    if Arc::strong_count(&shared) == 1 {
                        break;
                    }
                    thread::sleep(Duration::from_millis(100));
                }
                match Arc::try_unwrap(shared) {
                    Ok(sup) => sup.shutdown_and_drain(),
                    Err(_) => eprintln!(
                        "warning: connection threads still live after grace; exiting undrained"
                    ),
                }
            }
        }
    }
}

/// One connection: read a request line, answer it, repeat until EOF.
fn handle_connection(stream: TcpStream, sup: &Supervisor, stop: &Arc<AtomicBool>) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    loop {
        let req = match protocol::read_msg::<_, Request>(&mut reader) {
            Ok(Some(req)) => req,
            Ok(None) => return,
            Err(e) => {
                let _ = protocol::write_msg(
                    &mut writer,
                    &Response::Error {
                        message: format!("bad request: {e}"),
                    },
                );
                return;
            }
        };
        let resp = handle_request(&req, sup, stop);
        let done = matches!(resp, Response::ShuttingDown);
        if protocol::write_msg(&mut writer, &resp).is_err() || done {
            return;
        }
    }
}

fn handle_request(req: &Request, sup: &Supervisor, stop: &Arc<AtomicBool>) -> Response {
    match req {
        Request::Submit { spec, chaos_kill } => match sup.submit(spec, *chaos_kill) {
            Submitted::Accepted { id, deduped } => Response::Accepted { id, deduped },
            Submitted::Busy { reason } => Response::Busy { reason },
            Submitted::Invalid { reason } => Response::Error { message: reason },
        },
        Request::SubmitSpec {
            spec,
            format,
            chaos_kill,
        } => match api::spec_document_to_experiment(spec, format) {
            Ok(exp) => match sup.submit(&exp, *chaos_kill) {
                Submitted::Accepted { id, deduped } => Response::Accepted { id, deduped },
                Submitted::Busy { reason } => Response::Busy { reason },
                Submitted::Invalid { reason } => Response::Error { message: reason },
            },
            Err(message) => Response::Error { message },
        },
        Request::Status { id } => match sup.status(id) {
            Some(e) => Response::Status {
                id: e.id,
                phase: e.phase.name().to_owned(),
                restarts: e.restarts,
                from_cache: e.from_cache,
                computed: e.computed,
                failed: e.failed,
                failed_kinds: e.failed_kinds,
            },
            None => Response::Error {
                message: format!("no such experiment: {id}"),
            },
        },
        Request::Result { id } => match sup.status(id) {
            Some(e) if e.phase.is_terminal() => {
                let table = sup.result_table(id).unwrap_or(serde::Value::Null);
                Response::Result {
                    id: e.id,
                    phase: e.phase.name().to_owned(),
                    table,
                    from_cache: e.from_cache,
                    computed: e.computed,
                }
            }
            Some(e) => Response::Status {
                id: e.id,
                phase: e.phase.name().to_owned(),
                restarts: e.restarts,
                from_cache: e.from_cache,
                computed: e.computed,
                failed: e.failed,
                failed_kinds: e.failed_kinds,
            },
            None => Response::Error {
                message: format!("no such experiment: {id}"),
            },
        },
        Request::Stats => Response::Stats {
            counters: sup.stats(),
        },
        Request::Ping => Response::Pong,
        Request::Shutdown => {
            stop.store(true, Ordering::SeqCst);
            Response::ShuttingDown
        }
    }
}
