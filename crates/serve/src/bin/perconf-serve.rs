//! `perconf-serve`: the experiment server binary and its line-protocol
//! clients.
//!
//! ```text
//! perconf-serve run    [--state <dir>] [--addr <ip:port>] [--queue <n>]
//!                      [--actors <n>] [--jobs <n>] [--restarts <n>]
//!                      [--watchdog <secs>] [--cell-timeout <secs>]
//! perconf-serve submit [--state <dir> | --addr <ip:port>]
//!                      (--spec <file.toml|file.json> |
//!                       --seed <n> [--tiny | --full] [--grid small|full])
//!                      [--json <dir>] [--chaos kill] [--no-wait]
//! perconf-serve status --id <id>  [--state <dir> | --addr <ip:port>]
//! perconf-serve stats             [--state <dir> | --addr <ip:port>]
//! perconf-serve ping              [--state <dir> | --addr <ip:port>]
//! perconf-serve shutdown          [--state <dir> | --addr <ip:port>]
//! ```
//!
//! `repro serve` / `repro submit` delegate here, so the flag spelling
//! mirrors `repro faults` (`--seed`, `--tiny`/`--full`, `--grid`,
//! `--json`). `submit --spec <file>` sends a declarative experiment
//! spec document (the same format `repro run` takes) over the wire
//! instead, replacing the knob flags. A waited `submit` writes the
//! same `faults.json` bytes a one-shot `repro faults` run would, and
//! exits through the shared taxonomy in
//! `perconf_experiments::exitcode`.

#![forbid(unsafe_code)]
// Supervision timing (watchdogs, drain deadlines) is wall-clock by nature
// and never reaches result bytes.
#![allow(clippy::disallowed_methods)]

use perconf_experiments::exitcode;
use perconf_serve::api::{spec_document_to_experiment, ExperimentSpec, Request, Response};
use perconf_serve::protocol;
use perconf_serve::server::{Server, ServerConfig};
use std::io::BufReader;
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::exit;
use std::time::{Duration, Instant};

const DEFAULT_STATE_DIR: &str = "serve-state";

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first() else {
        usage();
        exit(i32::from(exitcode::USAGE));
    };
    let code = match cmd.as_str() {
        "run" => cmd_run(&argv[1..]),
        "submit" => cmd_submit(&argv[1..]),
        "status" => cmd_status(&argv[1..]),
        "stats" => cmd_simple(&argv[1..], &Request::Stats),
        "ping" => cmd_simple(&argv[1..], &Request::Ping),
        "shutdown" => cmd_simple(&argv[1..], &Request::Shutdown),
        "--help" | "-h" | "help" => {
            usage();
            exitcode::OK
        }
        other => {
            eprintln!("unknown subcommand `{other}`");
            usage();
            exitcode::USAGE
        }
    };
    exit(i32::from(code));
}

fn usage() {
    eprintln!(
        "usage: perconf-serve run [--state <dir>] [--addr <ip:port>] [--queue <n>]\n\
         \x20                        [--actors <n>] [--jobs <n>] [--restarts <n>]\n\
         \x20                        [--watchdog <secs>] [--cell-timeout <secs>]\n\
         \x20      perconf-serve submit [--state <dir> | --addr <ip:port>]\n\
         \x20                        (--spec <file.toml|file.json> |\n\
         \x20                         --seed <n> [--tiny | --full] [--grid small|full])\n\
         \x20                        [--json <dir>] [--chaos kill] [--no-wait]\n\
         \x20      perconf-serve status --id <id> [--state <dir> | --addr <ip:port>]\n\
         \x20      perconf-serve stats|ping|shutdown [--state <dir> | --addr <ip:port>]"
    );
}

/// Pulls the value after a `--flag`; `Err` if the flag is last.
fn take_value(argv: &[String], i: &mut usize) -> Result<String, String> {
    let flag = argv[*i].clone();
    *i += 1;
    argv.get(*i)
        .cloned()
        .ok_or_else(|| format!("{flag} needs a value"))
}

fn parse_num<T: std::str::FromStr>(name: &str, raw: &str) -> Result<T, String> {
    raw.parse()
        .map_err(|_| format!("{name} wants a number, got `{raw}`"))
}

// ---------------------------------------------------------------- run

fn cmd_run(argv: &[String]) -> u8 {
    let mut cfg = ServerConfig::at(DEFAULT_STATE_DIR);
    let mut i = 0;
    while i < argv.len() {
        let r: Result<(), String> = (|| {
            match argv[i].as_str() {
                "--state" => cfg.supervisor.state_dir = PathBuf::from(take_value(argv, &mut i)?),
                "--addr" => cfg.addr = take_value(argv, &mut i)?,
                "--queue" => {
                    cfg.supervisor.queue_capacity =
                        parse_num("--queue", &take_value(argv, &mut i)?)?;
                }
                "--actors" => {
                    cfg.supervisor.actor_threads =
                        parse_num("--actors", &take_value(argv, &mut i)?)?;
                }
                "--jobs" => cfg.supervisor.jobs = parse_num("--jobs", &take_value(argv, &mut i)?)?,
                "--restarts" => {
                    cfg.supervisor.restart_budget =
                        parse_num("--restarts", &take_value(argv, &mut i)?)?;
                }
                "--watchdog" => {
                    cfg.supervisor.watchdog =
                        Duration::from_secs(parse_num("--watchdog", &take_value(argv, &mut i)?)?);
                }
                "--cell-timeout" => {
                    cfg.supervisor.cell_timeout = Some(Duration::from_secs(parse_num(
                        "--cell-timeout",
                        &take_value(argv, &mut i)?,
                    )?));
                }
                other => return Err(format!("unknown flag `{other}` for run")),
            }
            Ok(())
        })();
        if let Err(e) = r {
            eprintln!("{e}");
            usage();
            return exitcode::USAGE;
        }
        i += 1;
    }
    let server = match Server::start(cfg.clone()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot start server: {e}");
            return exitcode::FAILURE;
        }
    };
    eprintln!(
        "serve: listening on {} (state {})",
        server.local_addr(),
        cfg.supervisor.state_dir.display()
    );
    server.run();
    exitcode::OK
}

// ----------------------------------------------------------- clients

struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Conn {
    fn open(addr: &str) -> Result<Self, String> {
        let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
        let read_half = stream
            .try_clone()
            .map_err(|e| format!("clone stream: {e}"))?;
        Ok(Self {
            reader: BufReader::new(read_half),
            writer: stream,
        })
    }

    fn roundtrip(&mut self, req: &Request) -> Result<Response, String> {
        protocol::write_msg(&mut self.writer, req).map_err(|e| format!("send: {e}"))?;
        protocol::read_msg(&mut self.reader)
            .map_err(|e| format!("recv: {e}"))?
            .ok_or_else(|| "server closed the connection".to_owned())
    }
}

/// `--addr` wins; otherwise the endpoint file under `--state` names
/// the server (waiting briefly for one that is still starting up).
fn resolve_addr(addr: Option<String>, state_dir: &Path) -> Result<String, String> {
    if let Some(a) = addr {
        return Ok(a);
    }
    let endpoint = state_dir.join("endpoint");
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match std::fs::read_to_string(&endpoint) {
            Ok(text) if !text.trim().is_empty() => return Ok(text.trim().to_owned()),
            _ if Instant::now() < deadline => std::thread::sleep(Duration::from_millis(100)),
            _ => {
                return Err(format!(
                    "no server endpoint at {} (is `perconf-serve run` up?)",
                    endpoint.display()
                ))
            }
        }
    }
}

/// Common `--state`/`--addr` tail shared by the client subcommands.
/// Returns unconsumed flags for the caller to reject or use.
fn split_conn_flags(argv: &[String]) -> Result<(Option<String>, PathBuf, Vec<String>), String> {
    let mut addr = None;
    let mut state = PathBuf::from(DEFAULT_STATE_DIR);
    let mut rest = Vec::new();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--addr" => addr = Some(take_value(argv, &mut i)?),
            "--state" => state = PathBuf::from(take_value(argv, &mut i)?),
            _ => rest.push(argv[i].clone()),
        }
        i += 1;
    }
    Ok((addr, state, rest))
}

fn cmd_simple(argv: &[String], req: &Request) -> u8 {
    let parsed = split_conn_flags(argv).and_then(|(addr, state, rest)| {
        if let Some(stray) = rest.first() {
            return Err(format!("unknown flag `{stray}`"));
        }
        resolve_addr(addr, &state)
    });
    let addr = match parsed {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return exitcode::USAGE;
        }
    };
    let resp = Conn::open(&addr).and_then(|mut c| c.roundtrip(req));
    match resp {
        Ok(Response::Stats { counters }) => {
            // Flat `group/name value` lines: trivially awk/python
            // parseable, which the CI server-smoke lane relies on.
            for e in counters.entries() {
                println!("{}/{} {}", e.group, e.name, e.value);
            }
            exitcode::OK
        }
        Ok(Response::Pong) => {
            println!("pong {addr}");
            exitcode::OK
        }
        Ok(Response::ShuttingDown) => {
            println!("server draining");
            exitcode::OK
        }
        Ok(other) => {
            eprintln!("unexpected response: {other:?}");
            exitcode::FAILURE
        }
        Err(e) => {
            eprintln!("{e}");
            exitcode::FAILURE
        }
    }
}

fn cmd_status(argv: &[String]) -> u8 {
    let parsed = split_conn_flags(argv).and_then(|(addr, state, rest)| {
        let mut id = None;
        let mut i = 0;
        while i < rest.len() {
            match rest[i].as_str() {
                "--id" => id = Some(take_value(&rest, &mut i)?),
                other => return Err(format!("unknown flag `{other}` for status")),
            }
            i += 1;
        }
        let id = id.ok_or("status needs --id <id>")?;
        Ok((resolve_addr(addr, &state)?, id))
    });
    let (addr, id) = match parsed {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            return exitcode::USAGE;
        }
    };
    match Conn::open(&addr).and_then(|mut c| c.roundtrip(&Request::Status { id })) {
        Ok(Response::Status {
            id,
            phase,
            restarts,
            from_cache,
            computed,
            failed,
            ..
        }) => {
            println!(
                "{id}: {phase} (restarts {restarts}, from_cache {from_cache}, \
                 computed {computed}, failed {})",
                failed.len()
            );
            exitcode::OK
        }
        Ok(Response::Error { message }) => {
            eprintln!("{message}");
            exitcode::FAILURE
        }
        Ok(other) => {
            eprintln!("unexpected response: {other:?}");
            exitcode::FAILURE
        }
        Err(e) => {
            eprintln!("{e}");
            exitcode::FAILURE
        }
    }
}

// -------------------------------------------------------------- submit

struct SubmitArgs {
    request: Request,
    json_dir: Option<PathBuf>,
    wait: bool,
    addr: Option<String>,
    state: PathBuf,
}

fn parse_submit(argv: &[String]) -> Result<SubmitArgs, String> {
    let (addr, state, rest) = split_conn_flags(argv)?;
    let mut spec = ExperimentSpec {
        seed: 42,
        scale: "quick".to_owned(),
        grid: "small".to_owned(),
    };
    let mut spec_file: Option<PathBuf> = None;
    let mut knob_flags = false;
    let mut chaos_kill = false;
    let mut json_dir = None;
    let mut wait = true;
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--spec" => spec_file = Some(PathBuf::from(take_value(&rest, &mut i)?)),
            "--seed" => {
                spec.seed = parse_num("--seed", &take_value(&rest, &mut i)?)?;
                knob_flags = true;
            }
            "--tiny" => {
                spec.scale = "tiny".to_owned();
                knob_flags = true;
            }
            "--full" => {
                spec.scale = "full".to_owned();
                knob_flags = true;
            }
            "--grid" => {
                spec.grid = take_value(&rest, &mut i)?;
                knob_flags = true;
            }
            "--json" => json_dir = Some(PathBuf::from(take_value(&rest, &mut i)?)),
            "--chaos" => {
                let mode = take_value(&rest, &mut i)?;
                if mode != "kill" {
                    return Err(format!("unknown chaos mode `{mode}` (kill)"));
                }
                chaos_kill = true;
            }
            "--no-wait" => wait = false,
            other => return Err(format!("unknown flag `{other}` for submit")),
        }
        i += 1;
    }
    let request = match spec_file {
        Some(path) => {
            if knob_flags {
                return Err(
                    "--spec replaces --seed/--tiny/--full/--grid (the file carries them)"
                        .to_owned(),
                );
            }
            let text = std::fs::read_to_string(&path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            let format = if path.extension().is_some_and(|e| e == "json") {
                "json"
            } else {
                "toml"
            };
            // Reject what the server would reject, before connecting.
            spec_document_to_experiment(&text, format)?;
            Request::SubmitSpec {
                spec: text,
                format: format.to_owned(),
                chaos_kill,
            }
        }
        None => {
            // Reject what the server would reject, before connecting.
            spec.resolve()?;
            Request::Submit { spec, chaos_kill }
        }
    };
    Ok(SubmitArgs {
        request,
        json_dir,
        wait,
        addr,
        state,
    })
}

fn cmd_submit(argv: &[String]) -> u8 {
    let args = match parse_submit(argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            usage();
            return exitcode::USAGE;
        }
    };
    let addr = match resolve_addr(args.addr.clone(), &args.state) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return exitcode::FAILURE;
        }
    };
    let mut conn = match Conn::open(&addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            return exitcode::FAILURE;
        }
    };
    let id = match conn.roundtrip(&args.request) {
        Ok(Response::Accepted { id, deduped }) => {
            eprintln!(
                "submitted {id}{}",
                if deduped { " (coalesced)" } else { "" }
            );
            id
        }
        Ok(Response::Busy { reason }) => {
            // The 429 path: explicit, retryable, non-zero.
            eprintln!("server busy: {reason}");
            return exitcode::FAILURE;
        }
        Ok(Response::Error { message }) => {
            eprintln!("rejected: {message}");
            return exitcode::USAGE;
        }
        Ok(other) => {
            eprintln!("unexpected response: {other:?}");
            return exitcode::FAILURE;
        }
        Err(e) => {
            eprintln!("{e}");
            return exitcode::FAILURE;
        }
    };
    if !args.wait {
        println!("{id}");
        return exitcode::OK;
    }
    wait_and_fetch(&mut conn, &id, args.json_dir.as_deref())
}

/// Polls until the experiment is terminal, fetches the table, writes
/// `faults.json` (same bytes as one-shot `repro faults --json`), and
/// maps the outcome onto the shared exit-code taxonomy.
fn wait_and_fetch(conn: &mut Conn, id: &str, json_dir: Option<&Path>) -> u8 {
    let deadline = Instant::now() + Duration::from_secs(3600);
    let (phase, failed_kinds) = loop {
        if Instant::now() > deadline {
            eprintln!("gave up waiting for {id} after 3600s");
            return exitcode::FAILURE;
        }
        match conn.roundtrip(&Request::Status { id: id.to_owned() }) {
            Ok(Response::Status {
                phase,
                failed_kinds,
                ..
            }) => {
                if matches!(phase.as_str(), "done" | "degraded" | "failed") {
                    break (phase, failed_kinds);
                }
                std::thread::sleep(Duration::from_millis(100));
            }
            Ok(Response::Error { message }) => {
                eprintln!("{message}");
                return exitcode::FAILURE;
            }
            Ok(other) => {
                eprintln!("unexpected response: {other:?}");
                return exitcode::FAILURE;
            }
            Err(e) => {
                eprintln!("{e}");
                return exitcode::FAILURE;
            }
        }
    };
    if phase == "failed" {
        eprintln!("experiment {id} failed");
        return exitcode::FAILURE;
    }
    match conn.roundtrip(&Request::Result { id: id.to_owned() }) {
        Ok(Response::Result {
            table,
            from_cache,
            computed,
            ..
        }) => {
            eprintln!("experiment {id}: {phase} (from_cache {from_cache}, computed {computed})");
            if let Some(dir) = json_dir {
                if let Err(e) = write_table(dir, &table) {
                    eprintln!("cannot write result: {e}");
                    return exitcode::FAILURE;
                }
            }
        }
        Ok(other) => {
            eprintln!("unexpected response: {other:?}");
            return exitcode::FAILURE;
        }
        Err(e) => {
            eprintln!("{e}");
            return exitcode::FAILURE;
        }
    }
    match phase.as_str() {
        "done" => exitcode::OK,
        // Degraded with failed cells classifies like a one-shot sweep
        // (all-timeout → WATCHDOG); degraded without failed cells
        // means corrupt state was recomputed → DEGRADED.
        _ if !failed_kinds.is_empty() => exitcode::classify_failed_kinds(&failed_kinds),
        _ => exitcode::DEGRADED,
    }
}

/// Writes the result table exactly as `repro`'s `save_json` would:
/// pretty JSON, no trailing newline — the byte-identity contract the
/// chaos harness diffs against. Staged through a temp file and
/// renamed, so a crash mid-write never leaves a torn `faults.json`.
fn write_table(dir: &Path, table: &serde::Value) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let body = serde_json::to_string_pretty(table)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    let tmp = dir.join("faults.json.tmp");
    std::fs::write(&tmp, body)?;
    std::fs::rename(&tmp, dir.join("faults.json"))
}
