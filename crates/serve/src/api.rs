//! Wire types for the experiment server.
//!
//! Everything here rides the vendored serde derive, whose enum
//! support covers unit variants and struct-like (named-field)
//! variants only — keep new variants in one of those two shapes.

use perconf_experiments::{faults, Scale};
use serde::{Deserialize, Serialize};

/// What a client asks the server to run: the full identity of a fault
/// sweep. Two specs with equal [`digest`](Self::digest) are guaranteed
/// to simulate identically, which is what lets the server's
/// content-addressed cache serve repeats without re-simulation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExperimentSpec {
    /// Campaign seed (`repro --seed`).
    pub seed: u64,
    /// Simulation scale: `quick`, `tiny` or `full`.
    pub scale: String,
    /// Sweep grid: `small` or `full`.
    pub grid: String,
}

impl ExperimentSpec {
    /// Resolves the spec's string knobs, rejecting anything the
    /// one-shot `repro faults` CLI would reject.
    ///
    /// # Errors
    ///
    /// Returns a usage-style message for unknown scale or grid names.
    pub fn resolve(&self) -> Result<(Scale, faults::Grid), String> {
        let scale = match self.scale.as_str() {
            "quick" => Scale::quick(),
            "tiny" => Scale::tiny(),
            "full" => Scale::full(),
            other => return Err(format!("unknown scale `{other}` (quick|tiny|full)")),
        };
        let grid = match self.grid.as_str() {
            "small" => faults::Grid::small(),
            "full" => faults::Grid::full(),
            other => return Err(format!("unknown grid `{other}` (small|full)")),
        };
        Ok((scale, grid))
    }

    /// Content digest of the spec itself (the "config digest" half of
    /// the cache key; the per-cell half is
    /// `faults::cell_content_digest`).
    #[must_use]
    pub fn digest(&self) -> u64 {
        let canon = format!(
            "spec-v1|seed={}|scale={}|grid={}",
            self.seed, self.scale, self.grid
        );
        perconf_bpred::digest_bytes(canon.as_bytes())
    }

    /// The digest as the fixed-width hex prefix experiment ids use.
    #[must_use]
    pub fn digest_hex(&self) -> String {
        format!("{:016x}", self.digest())
    }
}

/// Translates a declarative experiment spec document
/// (`perconf_experiments::spec`, TOML or JSON) into the server's
/// [`ExperimentSpec`] — the submit-spec half of the line protocol.
/// The server runs fault sweeps, so the document must have
/// `experiment.kind = "faults"`, and (v1 restriction) its grid must
/// equal one of the named presets the content-addressed cache is
/// keyed on: the cache digests `spec-v1|seed|scale|grid-name`, so an
/// arbitrary-axis grid has no cache identity yet.
///
/// # Errors
///
/// Returns the spec parser's `file:line`-quality message for a
/// malformed document, and a usage-style message for a non-faults
/// kind or a grid that matches no preset.
pub fn spec_document_to_experiment(text: &str, format: &str) -> Result<ExperimentSpec, String> {
    use perconf_experiments::spec::{Lowered, RunSpec};
    let parsed = match format {
        "toml" => RunSpec::parse_toml(text, "<submitted spec>"),
        "json" => RunSpec::parse_json(text, "<submitted spec>"),
        other => return Err(format!("unknown spec format `{other}` (toml|json)")),
    }
    .map_err(|e| e.message().to_owned())?;
    let lowered = parsed
        .lower()
        .map_err(|e| format!("cannot lower spec: {e}"))?;
    let Lowered::Faults { seed, grid, .. } = lowered else {
        return Err(format!(
            "the experiment server runs fault sweeps only: expected kind = \"faults\", got \
             \"{}\" (run other kinds locally with `repro run`)",
            parsed.experiment.kind
        ));
    };
    let preset = ["full", "small"]
        .iter()
        .find(|name| faults::Grid::by_name(name).as_ref() == Some(&grid))
        .ok_or_else(|| {
            "spec v1 submissions must use a preset grid (`grid = \"full\"` or `\"small\"`): \
             the server's result cache is keyed on preset names, so explicit axes have no \
             cache identity yet"
                .to_owned()
        })?;
    Ok(ExperimentSpec {
        seed,
        scale: parsed.experiment.scale,
        grid: (*preset).to_owned(),
    })
}

/// One client request line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Submit an experiment. `chaos_kill` arms one scripted actor
    /// death (used by the chaos harness; results must stay
    /// byte-identical to an undisturbed run).
    Submit {
        /// What to run.
        spec: ExperimentSpec,
        /// Arm one actor kill after the first computed cell.
        chaos_kill: bool,
    },
    /// Submit a declarative experiment spec *document* (the
    /// `perconf_experiments::spec` format, same file `repro run`
    /// takes) instead of the compiled-in [`ExperimentSpec`] shape —
    /// clients drive the server with data files, no recompile. The
    /// server validates with the same strict parser and answers
    /// [`Response::Accepted`] / [`Response::Error`] exactly like
    /// [`Request::Submit`].
    SubmitSpec {
        /// The spec document text (not a path — the file's contents).
        spec: String,
        /// `toml` or `json`.
        format: String,
        /// Arm one actor kill after the first computed cell.
        chaos_kill: bool,
    },
    /// Query one experiment's phase and progress.
    Status {
        /// Experiment id from [`Response::Accepted`].
        id: String,
    },
    /// Fetch one experiment's result table (when finished).
    Result {
        /// Experiment id from [`Response::Accepted`].
        id: String,
    },
    /// Fetch the server's counter snapshot.
    Stats,
    /// Liveness probe.
    Ping,
    /// Ask the server to drain accepted work and exit.
    Shutdown,
}

/// One server response line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// The submission was accepted (or coalesced onto an identical
    /// in-flight experiment when `deduped`).
    Accepted {
        /// Id to poll with [`Request::Status`] / [`Request::Result`].
        id: String,
        /// `true` when an identical spec was already queued/running.
        deduped: bool,
    },
    /// 429-style rejection: the bounded submission queue is full (or
    /// the server is draining for shutdown). Resubmit later.
    Busy {
        /// Why the submission was shed.
        reason: String,
    },
    /// Phase and progress of one experiment.
    Status {
        /// Experiment id.
        id: String,
        /// `queued` | `running` | `done` | `degraded` | `failed`.
        phase: String,
        /// Actor restarts consumed so far.
        restarts: u32,
        /// Cells served from the content-addressed cache.
        from_cache: u64,
        /// Cells actually simulated.
        computed: u64,
        /// Keys of cells that failed terminally.
        failed: Vec<String>,
        /// Failure class per entry of `failed` (`timeout`, `panic`,
        /// `io`, `invariant`, `abandoned`) — what lets the submit
        /// client map a degraded sweep onto the shared exit-code
        /// taxonomy.
        failed_kinds: Vec<String>,
    },
    /// A finished experiment's result.
    Result {
        /// Experiment id.
        id: String,
        /// `done` or `degraded` (a degraded table is still complete
        /// for every cell that could be recovered).
        phase: String,
        /// The `FaultTable` as a JSON value, `null` until finished.
        table: serde::Value,
        /// Cells served from the cache.
        from_cache: u64,
        /// Cells actually simulated.
        computed: u64,
    },
    /// The server's merged counter snapshot.
    Stats {
        /// Server + cache counters.
        counters: perconf_obs::CounterSnapshot,
    },
    /// Liveness reply.
    Pong,
    /// Acknowledges [`Request::Shutdown`]; the server drains and exits.
    ShuttingDown,
    /// The request could not be served.
    Error {
        /// Human-readable reason.
        message: String,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ExperimentSpec {
        ExperimentSpec {
            seed: 7,
            scale: "tiny".to_owned(),
            grid: "small".to_owned(),
        }
    }

    #[test]
    fn spec_digest_separates_every_field() {
        let base = spec().digest();
        assert_eq!(base, spec().digest());
        assert_ne!(base, ExperimentSpec { seed: 8, ..spec() }.digest());
        assert_ne!(
            base,
            ExperimentSpec {
                scale: "full".to_owned(),
                ..spec()
            }
            .digest()
        );
        assert_ne!(
            base,
            ExperimentSpec {
                grid: "full".to_owned(),
                ..spec()
            }
            .digest()
        );
        assert_eq!(spec().digest_hex().len(), 16);
    }

    #[test]
    fn spec_resolves_known_names_and_rejects_unknown() {
        assert!(spec().resolve().is_ok());
        assert!(ExperimentSpec {
            scale: "huge".to_owned(),
            ..spec()
        }
        .resolve()
        .is_err());
        assert!(ExperimentSpec {
            grid: "medium".to_owned(),
            ..spec()
        }
        .resolve()
        .is_err());
    }

    #[test]
    fn spec_documents_translate_to_preset_experiments() {
        let doc = "spec_version = 1\n\n[experiment]\nkind = \"faults\"\nscale = \"tiny\"\n\
                   seed = 7\n\n[faults]\ngrid = \"small\"\n";
        let exp = spec_document_to_experiment(doc, "toml").unwrap();
        assert_eq!(exp, spec());

        let json = r#"{"spec_version":1,"experiment":{"kind":"faults","scale":"tiny","seed":7},"faults":{"grid":"full"}}"#;
        let exp = spec_document_to_experiment(json, "json").unwrap();
        assert_eq!(exp.grid, "full");

        // Non-faults kinds and non-preset grids are rejected with a
        // reason, not a panic; so are unknown formats.
        let t2 = "spec_version = 1\n\n[experiment]\nkind = \"table2\"\n";
        assert!(spec_document_to_experiment(t2, "toml")
            .unwrap_err()
            .contains("faults"));
        let axes = "spec_version = 1\n\n[experiment]\nkind = \"faults\"\n\n[faults]\n\
                    estimators = [\"jrs\"]\nbenchmarks = [\"gcc\"]\nrates = [0.01]\n";
        assert!(spec_document_to_experiment(axes, "toml")
            .unwrap_err()
            .contains("preset"));
        assert!(spec_document_to_experiment(doc, "yaml").is_err());
    }

    #[test]
    fn requests_and_responses_round_trip_as_json_lines() {
        let reqs = [
            Request::Submit {
                spec: spec(),
                chaos_kill: false,
            },
            Request::SubmitSpec {
                spec: "[experiment]\nkind = \"faults\"\n".into(),
                format: "toml".into(),
                chaos_kill: true,
            },
            Request::Status { id: "x-0".into() },
            Request::Result { id: "x-0".into() },
            Request::Stats,
            Request::Ping,
            Request::Shutdown,
        ];
        for r in &reqs {
            let line = serde_json::to_string(r).unwrap();
            assert!(!line.contains('\n'));
            let back: Request = serde_json::from_str(&line).unwrap();
            assert_eq!(&back, r);
        }
        let resps = [
            Response::Accepted {
                id: "x-0".into(),
                deduped: true,
            },
            Response::Busy {
                reason: "queue full".into(),
            },
            Response::Pong,
            Response::ShuttingDown,
            Response::Error {
                message: "no such id".into(),
            },
        ];
        for r in &resps {
            let back: Response = serde_json::from_str(&serde_json::to_string(r).unwrap()).unwrap();
            assert_eq!(&back, r);
        }
    }
}
