//! End-to-end contracts of the experiment server, driven over the
//! real TCP line protocol:
//!
//! - a served sweep is byte-identical to a one-shot `repro faults`
//!   run (same pretty-JSON table);
//! - a repeat submission performs zero re-simulation — every cell is
//!   served from the content-addressed cache, visible in counters;
//! - a chaos-killed actor is restarted and the client-visible result
//!   stays byte-identical to an undisturbed run;
//! - overflow submissions are shed with an explicit `Busy`, while an
//!   identical in-flight spec coalesces instead of duplicating work;
//! - shutdown drains accepted work; a pending marker left by a dead
//!   server is resumed by its successor.

// Test deadlines: wall-clock never reaches asserted results.
#![allow(clippy::disallowed_methods)]

use perconf_experiments::faults;
use perconf_experiments::runner::{RunnerConfig, Scheduler, SchedulerConfig};
use perconf_experiments::Scale;
use perconf_serve::api::{ExperimentSpec, Request, Response};
use perconf_serve::protocol;
use perconf_serve::server::{Server, ServerConfig};
use perconf_serve::supervisor::{Phase, Submitted, Supervisor, SupervisorConfig};
use std::io::BufReader;
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("perconf-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn spec(seed: u64) -> ExperimentSpec {
    ExperimentSpec {
        seed,
        scale: "tiny".to_owned(),
        grid: "small".to_owned(),
    }
}

/// The bytes a one-shot `repro faults --tiny --grid small --json`
/// run would write — the reference for every byte-identity assertion.
fn one_shot_reference(seed: u64) -> String {
    let mut scheduler = Scheduler::new(SchedulerConfig {
        runner: RunnerConfig {
            timeout: None,
            ..RunnerConfig::default()
        },
        jobs: 2,
    });
    let (t, _) = faults::run_grid(Scale::tiny(), seed, &faults::Grid::small(), &mut scheduler);
    serde_json::to_string_pretty(&t).unwrap()
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Self {
        let stream = TcpStream::connect(addr).expect("connect to test server");
        Self {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
        }
    }

    fn roundtrip(&mut self, req: &Request) -> Response {
        protocol::write_msg(&mut self.writer, req).expect("send request");
        protocol::read_msg(&mut self.reader)
            .expect("read response")
            .expect("server replied")
    }

    fn submit(&mut self, spec: &ExperimentSpec, chaos_kill: bool) -> String {
        match self.roundtrip(&Request::Submit {
            spec: spec.clone(),
            chaos_kill,
        }) {
            Response::Accepted { id, .. } => id,
            other => panic!("submit not accepted: {other:?}"),
        }
    }

    /// Polls to a terminal phase; returns (phase, restarts, from_cache, computed).
    fn wait(&mut self, id: &str) -> (String, u32, u64, u64) {
        let deadline = Instant::now() + Duration::from_secs(120);
        loop {
            assert!(Instant::now() < deadline, "timed out waiting for {id}");
            match self.roundtrip(&Request::Status { id: id.to_owned() }) {
                Response::Status {
                    phase,
                    restarts,
                    from_cache,
                    computed,
                    ..
                } => {
                    if matches!(phase.as_str(), "done" | "degraded" | "failed") {
                        return (phase, restarts, from_cache, computed);
                    }
                    std::thread::sleep(Duration::from_millis(20));
                }
                other => panic!("unexpected status response: {other:?}"),
            }
        }
    }

    /// Fetches a finished experiment's table as the pretty-JSON bytes
    /// a client would persist.
    fn result_bytes(&mut self, id: &str) -> String {
        match self.roundtrip(&Request::Result { id: id.to_owned() }) {
            Response::Result { table, .. } => serde_json::to_string_pretty(&table).unwrap(),
            other => panic!("unexpected result response: {other:?}"),
        }
    }

    fn counter(&mut self, group: &str, name: &str) -> u64 {
        match self.roundtrip(&Request::Stats) {
            Response::Stats { counters } => counters.get(group, name).unwrap_or(0),
            other => panic!("unexpected stats response: {other:?}"),
        }
    }
}

fn start_server(tag: &str) -> (std::net::SocketAddr, std::thread::JoinHandle<()>, PathBuf) {
    let state = tmpdir(tag);
    let server = Server::start(ServerConfig::at(&state)).expect("start server");
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.run());
    (addr, handle, state)
}

fn stop_server(addr: std::net::SocketAddr, handle: std::thread::JoinHandle<()>) {
    let mut c = Client::connect(addr);
    match c.roundtrip(&Request::Shutdown) {
        Response::ShuttingDown => {}
        other => panic!("unexpected shutdown response: {other:?}"),
    }
    handle.join().expect("server thread");
}

#[test]
fn served_sweep_matches_one_shot_bytes_and_repeats_hit_the_cache() {
    let (addr, handle, state) = start_server("repeat");
    let mut c = Client::connect(addr);
    assert!(matches!(c.roundtrip(&Request::Ping), Response::Pong));

    let first = c.submit(&spec(7), false);
    let (phase, restarts, from_cache, computed) = c.wait(&first);
    assert_eq!(phase, "done");
    assert_eq!(restarts, 0);
    assert_eq!(
        (from_cache, computed),
        (0, 4),
        "cold run simulates all 4 cells"
    );
    let bytes = c.result_bytes(&first);
    assert_eq!(
        bytes,
        one_shot_reference(7),
        "server result != one-shot repro bytes"
    );

    // Round 2: same spec, new experiment — zero re-simulation.
    let computed_before = c.counter("serve", "cells_computed");
    let second = c.submit(&spec(7), false);
    assert_ne!(second, first, "terminal experiments are not deduped");
    let (phase, _, from_cache, computed) = c.wait(&second);
    assert_eq!(phase, "done");
    assert_eq!(
        (from_cache, computed),
        (4, 0),
        "repeat submission must be 100% cache hits"
    );
    assert_eq!(
        c.counter("serve", "cells_computed"),
        computed_before,
        "repeat submission re-simulated"
    );
    assert!(c.counter("cache", "hits") >= 4);
    assert_eq!(c.result_bytes(&second), bytes, "cache-served bytes differ");

    // Regression: stats are a snapshot, not an accumulator — asking
    // twice must not double the cache totals.
    let misses = c.counter("cache", "misses");
    assert_eq!(
        c.counter("cache", "misses"),
        misses,
        "repeated stats requests must not re-add cache totals"
    );

    stop_server(addr, handle);
    let _ = std::fs::remove_dir_all(&state);
}

#[test]
fn chaos_killed_actor_restarts_and_stays_byte_identical() {
    let (addr, handle, state) = start_server("chaos");
    let mut c = Client::connect(addr);

    let id = c.submit(&spec(11), true);
    let (phase, restarts, from_cache, computed) = c.wait(&id);
    assert_eq!(phase, "done", "chaos kill must not degrade the result");
    assert!(restarts >= 1, "the scripted kill must consume a restart");
    assert!(
        c.counter("serve", "restarts") >= 1,
        "restart must be visible in server counters"
    );
    // The restarted incarnation reuses the dead one's published cells.
    assert!(
        from_cache >= 1,
        "resumed run should reuse the killed actor's cells"
    );
    assert!(computed >= 1, "resumed run still computes the remainder");
    assert_eq!(
        c.result_bytes(&id),
        one_shot_reference(11),
        "chaos-disturbed result differs from an undisturbed run"
    );

    stop_server(addr, handle);
    let _ = std::fs::remove_dir_all(&state);
}

#[test]
fn overflow_sheds_busy_and_identical_inflight_specs_coalesce() {
    let state = tmpdir("shed");
    let mut cfg = SupervisorConfig::at(&state);
    cfg.queue_capacity = 1;
    cfg.actor_threads = 1;
    let sup = Supervisor::start(cfg).expect("start supervisor");

    let first = match sup.submit(&spec(1), false) {
        Submitted::Accepted { id, deduped } => {
            assert!(!deduped);
            id
        }
        other => panic!("first submit rejected: {other:?}"),
    };
    // Identical spec while the first is in flight: coalesced, not
    // queued twice and not shed.
    match sup.submit(&spec(1), false) {
        Submitted::Accepted { id, deduped } => {
            assert!(deduped, "identical in-flight spec must coalesce");
            assert_eq!(id, first);
        }
        other => panic!("duplicate submit rejected: {other:?}"),
    }
    // A different spec overflows the bounded queue: explicit shed.
    match sup.submit(&spec(2), false) {
        Submitted::Busy { reason } => assert!(reason.contains("full"), "reason: {reason}"),
        other => panic!("overflow submit not shed: {other:?}"),
    }
    let stats = sup.stats();
    assert_eq!(stats.get("serve", "sheds"), Some(1));
    assert_eq!(stats.get("serve", "dedup_hits"), Some(1));

    // Drain finishes the accepted experiment before exit.
    sup.shutdown_and_drain();
    let sup = Supervisor::start(SupervisorConfig::at(&state)).expect("reopen");
    let entry = sup.status(&first);
    // The drained server finalised it; its result file must exist.
    assert!(
        std::path::Path::new(&sup.result_path(&first)).exists(),
        "drain must finalise accepted work"
    );
    drop(entry);
    sup.shutdown_and_drain();
    let _ = std::fs::remove_dir_all(&state);
}

#[test]
fn pending_marker_from_a_dead_server_is_resumed() {
    let state = tmpdir("resume");
    let sp = spec(5);
    let id = format!("{}-0", sp.digest_hex());
    // A dead server accepted this experiment but never finished it:
    // only the pending marker survives.
    std::fs::create_dir_all(state.join("pending")).unwrap();
    std::fs::write(
        state.join("pending").join(format!("{id}.json")),
        serde_json::to_string_pretty(&sp).unwrap(),
    )
    .unwrap();

    let sup = Supervisor::start(SupervisorConfig::at(&state)).expect("start supervisor");
    assert_eq!(sup.stats().get("serve", "resumed_pending"), Some(1));
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        assert!(
            Instant::now() < deadline,
            "resumed experiment never finished"
        );
        match sup.status(&id) {
            Some(e) if e.phase.is_terminal() => {
                assert_eq!(e.phase, Phase::Done);
                break;
            }
            Some(_) => std::thread::sleep(Duration::from_millis(20)),
            None => panic!("recovered experiment lost"),
        }
    }
    let table = sup.result_table(&id).expect("result table");
    assert_eq!(
        serde_json::to_string_pretty(&table).unwrap(),
        one_shot_reference(5),
        "resumed result differs from a one-shot run"
    );
    assert!(
        !state.join("pending").join(format!("{id}.json")).exists(),
        "finalised experiment must clear its pending marker"
    );
    // A further submission gets a fresh ordinal, never colliding with
    // the recovered id.
    match sup.submit(&sp, false) {
        Submitted::Accepted { id: next, .. } => assert_ne!(next, id),
        other => panic!("post-recovery submit rejected: {other:?}"),
    }
    sup.shutdown_and_drain();
    let _ = std::fs::remove_dir_all(&state);
}

#[test]
fn protocol_shutdown_drains_accepted_work_before_exit() {
    let (addr, handle, state) = start_server("drain");
    let mut c = Client::connect(addr);
    let id = c.submit(&spec(3), false);
    // Ask for shutdown immediately, while the experiment is in flight.
    match c.roundtrip(&Request::Shutdown) {
        Response::ShuttingDown => {}
        other => panic!("unexpected shutdown response: {other:?}"),
    }
    handle.join().expect("server thread");
    // Drain-then-exit: the accepted experiment was finished, its
    // result persisted, and the endpoint file retired.
    let result = state.join("results").join(format!("{id}.json"));
    let body = std::fs::read_to_string(&result).expect("drained result file");
    assert_eq!(body, one_shot_reference(3));
    assert!(
        !state.join("endpoint").exists(),
        "endpoint file must be removed"
    );
    assert!(
        !state.join("pending").join(format!("{id}.json")).exists(),
        "drained experiment must clear its pending marker"
    );
    let _ = std::fs::remove_dir_all(&state);
}
