//! Workspace discovery and rule orchestration.

use crate::diag::Finding;
use crate::rules::{self, Index};
use crate::source::{Scope, SourceFile};
use std::collections::BTreeSet;
use std::io;
use std::path::{Path, PathBuf};

/// Which rules to run; `None` means all.
#[derive(Debug, Default, Clone)]
pub struct Options {
    /// Rule-name filter; unknown names are reported by the CLI before
    /// this struct is built.
    pub rules: Option<BTreeSet<String>>,
}

impl Options {
    fn enabled(&self, rule: &str) -> bool {
        self.rules.as_ref().is_none_or(|s| s.contains(rule))
    }
}

/// Result of an analysis run.
#[derive(Debug)]
pub struct Analysis {
    /// All findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Number of files lexed and checked.
    pub files_scanned: usize,
}

/// Locates the workspace root: walks up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
#[must_use]
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// Analyzes the whole workspace rooted at `root`: every `.rs` file
/// under `crates/*/src` and the top-level `src/`, plus `vendor/*/src`
/// (for the unsafe-hygiene `SAFETY:` requirement). Tests, examples,
/// benches and fixtures are deliberately out of scope: the contract
/// protects result-producing code.
///
/// # Errors
///
/// Propagates directory walking and file reading failures.
pub fn analyze_workspace(root: &Path, opts: &Options) -> io::Result<Analysis> {
    let mut inputs: Vec<(PathBuf, Scope)> = Vec::new();
    for krate in sorted_subdirs(&root.join("crates"))? {
        let crate_dir = dir_name(&krate);
        let src = krate.join("src");
        if src.is_dir() {
            for f in rust_files(&src)? {
                inputs.push((
                    f,
                    Scope::Workspace {
                        crate_dir: crate_dir.clone(),
                    },
                ));
            }
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        for f in rust_files(&root_src)? {
            inputs.push((
                f,
                Scope::Workspace {
                    crate_dir: "root".to_owned(),
                },
            ));
        }
    }
    let vendor = root.join("vendor");
    if vendor.is_dir() {
        for v in sorted_subdirs(&vendor)? {
            let crate_dir = dir_name(&v);
            let src = v.join("src");
            if src.is_dir() {
                for f in rust_files(&src)? {
                    inputs.push((
                        f,
                        Scope::Vendor {
                            crate_dir: crate_dir.clone(),
                        },
                    ));
                }
            }
        }
    }
    analyze_inputs(root, &inputs, opts)
}

/// Analyzes explicitly-listed files in [`Scope::Adhoc`] (every rule
/// applies, each file counts as its own crate root). Used by the CLI
/// path mode, the fixture tests, and the mutation test.
///
/// # Errors
///
/// Propagates file reading failures.
pub fn analyze_paths(paths: &[PathBuf], opts: &Options) -> io::Result<Analysis> {
    let inputs: Vec<(PathBuf, Scope)> = paths.iter().map(|p| (p.clone(), Scope::Adhoc)).collect();
    analyze_inputs(Path::new(""), &inputs, opts)
}

fn analyze_inputs(
    root: &Path,
    inputs: &[(PathBuf, Scope)],
    opts: &Options,
) -> io::Result<Analysis> {
    let mut files = Vec::with_capacity(inputs.len());
    for (path, scope) in inputs {
        let text = std::fs::read_to_string(path)?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        files.push(SourceFile::parse(path.clone(), rel, scope.clone(), &text));
    }
    let index = Index::build(&files);
    let mut findings = Vec::new();
    if opts.enabled(rules::SNAPSHOT_COMPLETENESS) {
        rules::snapshot_completeness(&files, &index, &mut findings);
    }
    for f in &files {
        if opts.enabled(rules::NONDETERMINISM_SOURCES) {
            rules::nondeterminism_sources(f, &mut findings);
        }
        if opts.enabled(rules::UNSAFE_HYGIENE) {
            rules::unsafe_hygiene(f, &mut findings);
        }
        if opts.enabled(rules::OUTPUT_ATOMICITY) {
            rules::output_atomicity(f, &mut findings);
        }
    }
    findings
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    Ok(Analysis {
        findings,
        files_scanned: files.len(),
    })
}

fn dir_name(p: &Path) -> String {
    p.file_name()
        .map_or_else(String::new, |n| n.to_string_lossy().into_owned())
}

/// Immediate subdirectories of `dir`, name-sorted for deterministic
/// reports.
fn sorted_subdirs(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        if entry.file_type()?.is_dir() {
            out.push(entry.path());
        }
    }
    out.sort();
    Ok(out)
}

/// All `.rs` files under `dir`, recursively, path-sorted.
fn rust_files(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        for entry in std::fs::read_dir(&d)? {
            let entry = entry?;
            let path = entry.path();
            if entry.file_type()?.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}
