//! `perconf-lint`: the workspace determinism analyzer CLI.
//!
//! ```text
//! perconf-lint --workspace [--root <dir>] [--rules <a,b,...>]
//!              [--json <file>] [--quiet]
//! perconf-lint <file.rs>... [--rules ...] [--json <file>]
//! ```
//!
//! Exit codes: `0` clean, `1` findings, `2` usage or I/O error.

#![forbid(unsafe_code)]

use perconf_lint::rules::ALL_RULES;
use perconf_lint::{analyze_paths, analyze_workspace, find_workspace_root, Analysis, Options};
use std::collections::BTreeSet;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    workspace: bool,
    root: Option<PathBuf>,
    json: Option<PathBuf>,
    rules: Option<BTreeSet<String>>,
    quiet: bool,
    paths: Vec<PathBuf>,
}

fn usage() -> String {
    format!(
        "usage: perconf-lint (--workspace | <file.rs>...) [--root <dir>] \
         [--rules <list>] [--json <file>] [--quiet]\n\nrules: {}",
        ALL_RULES.join(", ")
    )
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        workspace: false,
        root: None,
        json: None,
        rules: None,
        quiet: false,
        paths: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workspace" => args.workspace = true,
            "--root" => {
                args.root = Some(PathBuf::from(it.next().ok_or("--root needs a directory")?));
            }
            "--json" => {
                args.json = Some(PathBuf::from(it.next().ok_or("--json needs a path")?));
            }
            "--rules" => {
                let list = it.next().ok_or("--rules needs a comma-separated list")?;
                let mut set = BTreeSet::new();
                for r in list.split(',').map(str::trim).filter(|r| !r.is_empty()) {
                    if !ALL_RULES.contains(&r) {
                        return Err(format!(
                            "unknown rule `{r}` (known: {})",
                            ALL_RULES.join(", ")
                        ));
                    }
                    set.insert(r.to_owned());
                }
                args.rules = Some(set);
            }
            "--quiet" => args.quiet = true,
            "--help" | "-h" => return Err(usage()),
            other if other.starts_with('-') => {
                return Err(format!("unknown flag `{other}`\n{}", usage()));
            }
            file => args.paths.push(PathBuf::from(file)),
        }
    }
    if args.workspace == args.paths.is_empty() {
        Ok(args)
    } else if args.workspace {
        Err("--workspace and explicit files are mutually exclusive".to_owned())
    } else {
        Err(usage())
    }
}

fn run(args: &Args) -> Result<Analysis, String> {
    let opts = Options {
        rules: args.rules.clone(),
    };
    if args.workspace {
        let root = match &args.root {
            Some(r) => r.clone(),
            None => {
                let cwd = std::env::current_dir().map_err(|e| e.to_string())?;
                find_workspace_root(&cwd)
                    .ok_or("cannot find a workspace root above the current directory")?
            }
        };
        analyze_workspace(&root, &opts).map_err(|e| format!("analyzing workspace: {e}"))
    } else {
        analyze_paths(&args.paths, &opts).map_err(|e| format!("analyzing files: {e}"))
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let analysis = match run(&args) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("perconf-lint: {msg}");
            return ExitCode::from(2);
        }
    };
    if let Some(json) = &args.json {
        let report = perconf_lint::diag::report_value(&analysis.findings, analysis.files_scanned);
        let body = match serde_json::to_string_pretty(&report) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("perconf-lint: cannot serialize report: {e}");
                return ExitCode::from(2);
            }
        };
        // Staged + renamed so a crash never leaves a torn report —
        // the same discipline the output-atomicity rule enforces.
        let tmp = json.with_extension("json.tmp");
        let staged = std::fs::write(&tmp, body + "\n").and_then(|()| std::fs::rename(&tmp, json));
        if let Err(e) = staged {
            eprintln!("perconf-lint: cannot write {}: {e}", json.display());
            return ExitCode::from(2);
        }
    }
    if !args.quiet {
        for f in &analysis.findings {
            println!("{f}\n");
        }
    }
    if analysis.findings.is_empty() {
        if !args.quiet {
            println!(
                "perconf-lint: clean — {} files, 0 findings",
                analysis.files_scanned
            );
        }
        ExitCode::SUCCESS
    } else {
        println!(
            "perconf-lint: {} finding(s) across {} files",
            analysis.findings.len(),
            analysis.files_scanned
        );
        ExitCode::from(1)
    }
}
