//! Structural recovery over the token stream: struct definitions
//! (named fields with lines and attributes) and `impl Snapshot for T`
//! blocks (per-method identifier coverage). Everything here is
//! brace/bracket/angle matching over [`crate::lexer`] tokens — enough
//! structure for the snapshot-completeness rule without a real
//! parser.

use crate::lexer::{Tok, TokKind};
use std::collections::{BTreeMap, BTreeSet};

/// One named field of a struct definition.
#[derive(Debug, Clone)]
pub struct FieldDef {
    /// Field identifier.
    pub name: String,
    /// Line of the field identifier.
    pub line: u32,
    /// Column of the field identifier.
    pub col: u32,
    /// Whether a `#[serde(skip...)]` attribute excludes this field
    /// from derived serialization (and so from
    /// `snapshot_serde_body!` coverage).
    pub serde_skip: bool,
}

/// What kind of body a struct has.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StructKind {
    /// `struct S { ... }` — the only kind the snapshot rule checks.
    Named,
    /// `struct S(...);` — positional fields, skipped.
    Tuple,
    /// `struct S;` — no state, trivially complete.
    Unit,
}

/// One struct definition found in a file.
#[derive(Debug, Clone)]
pub struct StructDef {
    /// Struct name.
    pub name: String,
    /// Line of the `struct` keyword.
    pub line: u32,
    /// Body kind.
    pub kind: StructKind,
    /// Named fields (empty unless [`StructKind::Named`]).
    pub fields: Vec<FieldDef>,
}

/// One `impl Snapshot for Target` block.
#[derive(Debug, Clone)]
pub struct SnapshotImpl {
    /// The implementing type's final path segment (`Simulation`,
    /// `Box`, ...).
    pub target: String,
    /// Line of the `impl` keyword.
    pub line: u32,
    /// Identifiers appearing in the `save_state` body, if present.
    pub save_idents: Option<BTreeSet<String>>,
    /// Identifiers appearing in the `restore_state` body, if present.
    pub restore_idents: Option<BTreeSet<String>>,
    /// Identifiers appearing in the `state_digest` body, if present.
    pub digest_idents: Option<BTreeSet<String>>,
    /// Whether the body invokes `snapshot_serde_body!` (which covers
    /// `save_state`/`restore_state` for every non-`serde(skip)`
    /// field by serializing the whole struct).
    pub serde_macro: bool,
}

/// Advances past one balanced `< ... >` group starting at `i`
/// (`toks[i]` must be `<`), tolerating `->` inside (its `>` does not
/// close an angle group). Returns the index just past the closing
/// `>`.
fn skip_angles(toks: &[Tok], mut i: usize) -> usize {
    let mut depth = 0i32;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct('<') {
            depth += 1;
        } else if t.is_punct('>') && !(i > 0 && toks[i - 1].is_punct('-')) {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    i
}

/// Advances past one balanced group of `open`/`close` punctuation
/// starting at `i` (`toks[i]` must be `open`). Returns the index just
/// past the matching closer.
fn skip_balanced(toks: &[Tok], mut i: usize, open: char, close: char) -> usize {
    let mut depth = 0i32;
    while i < toks.len() {
        if toks[i].is_punct(open) {
            depth += 1;
        } else if toks[i].is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    i
}

/// Extracts every struct definition from a token stream.
#[must_use]
pub fn structs(toks: &[Tok]) -> Vec<StructDef> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if !toks[i].is_ident("struct") {
            i += 1;
            continue;
        }
        let line = toks[i].line;
        let Some(name_tok) = toks.get(i + 1) else {
            break;
        };
        if name_tok.kind != TokKind::Ident {
            i += 1;
            continue;
        }
        let name = name_tok.text.clone();
        let mut j = i + 2;
        if toks.get(j).is_some_and(|t| t.is_punct('<')) {
            j = skip_angles(toks, j);
        }
        // Skip a `where` clause: scan to the body opener at
        // angle-depth zero.
        if toks.get(j).is_some_and(|t| t.is_ident("where")) {
            while j < toks.len() {
                let t = &toks[j];
                if t.is_punct('<') {
                    j = skip_angles(toks, j);
                    continue;
                }
                if t.is_punct('{') || t.is_punct(';') {
                    break;
                }
                j += 1;
            }
        }
        let def = match toks.get(j) {
            Some(t) if t.is_punct('{') => {
                let end = skip_balanced(toks, j, '{', '}');
                StructDef {
                    name,
                    line,
                    kind: StructKind::Named,
                    fields: fields(&toks[j + 1..end.saturating_sub(1)]),
                }
            }
            Some(t) if t.is_punct('(') => StructDef {
                name,
                line,
                kind: StructKind::Tuple,
                fields: Vec::new(),
            },
            _ => StructDef {
                name,
                line,
                kind: StructKind::Unit,
                fields: Vec::new(),
            },
        };
        out.push(def);
        i = j.max(i + 2);
    }
    out
}

/// Parses the interior tokens of a named-struct body into fields.
fn fields(body: &[Tok]) -> Vec<FieldDef> {
    let mut out = Vec::new();
    let mut i = 0;
    loop {
        // Field preamble: attributes and visibility.
        let mut serde_skip = false;
        loop {
            match body.get(i) {
                Some(t) if t.is_punct('#') => {
                    let start = i + 1;
                    if body.get(start).is_some_and(|t| t.is_punct('[')) {
                        let end = skip_balanced(body, start, '[', ']');
                        let attr = &body[start..end];
                        let has = |s: &str| attr.iter().any(|t| t.is_ident(s));
                        if has("serde")
                            && attr
                                .iter()
                                .any(|t| t.kind == TokKind::Ident && t.text.starts_with("skip"))
                        {
                            serde_skip = true;
                        }
                        i = end;
                    } else {
                        i += 1;
                    }
                }
                Some(t) if t.is_ident("pub") => {
                    i += 1;
                    if body.get(i).is_some_and(|t| t.is_punct('(')) {
                        i = skip_balanced(body, i, '(', ')');
                    }
                }
                _ => break,
            }
        }
        // Field name.
        let Some(name_tok) = body.get(i) else { break };
        if name_tok.kind != TokKind::Ident || !body.get(i + 1).is_some_and(|t| t.is_punct(':')) {
            break;
        }
        out.push(FieldDef {
            name: name_tok.text.clone(),
            line: name_tok.line,
            col: name_tok.col,
            serde_skip,
        });
        i += 2;
        // Skip the type up to the field-separating comma at depth
        // zero. Inside a struct body every `<` opens a generic group
        // (expressions cannot appear), except the `>` of `->`.
        let mut angle = 0i32;
        while i < body.len() {
            let t = &body[i];
            if t.is_punct('<') {
                angle += 1;
            } else if t.is_punct('>') && !(i > 0 && body[i - 1].is_punct('-')) {
                angle -= 1;
            } else if t.is_punct('(') {
                i = skip_balanced(body, i, '(', ')');
                continue;
            } else if t.is_punct('[') {
                i = skip_balanced(body, i, '[', ']');
                continue;
            } else if t.is_punct('{') {
                i = skip_balanced(body, i, '{', '}');
                continue;
            } else if t.is_punct(',') && angle == 0 {
                i += 1;
                break;
            }
            i += 1;
        }
        if i >= body.len() {
            break;
        }
    }
    out
}

/// One `impl Trait for Target { ... }` header with its body range.
struct ImplBlock {
    /// Final path segment of the trait, `None` for inherent impls.
    trait_name: Option<String>,
    /// Final path segment of the implementing type.
    target: String,
    /// Line of the `impl` keyword.
    line: u32,
    /// Token range of the body interior (between the braces).
    body: std::ops::Range<usize>,
}

/// Scans the token stream for every `impl` block, recovering the
/// trait's and target's final path segments plus the body range.
fn impl_blocks(toks: &[Tok]) -> Vec<ImplBlock> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if !toks[i].is_ident("impl") {
            i += 1;
            continue;
        }
        let line = toks[i].line;
        let mut j = i + 1;
        if toks.get(j).is_some_and(|t| t.is_punct('<')) {
            j = skip_angles(toks, j);
        }
        // Collect header tokens up to the body `{`, splitting on the
        // top-level `for`.
        let mut trait_last_ident: Option<String> = None;
        let mut target_last_ident: Option<String> = None;
        let mut seen_for = false;
        let mut seen_where = false;
        let mut found_body = None;
        while j < toks.len() {
            let t = &toks[j];
            if t.is_punct('<') {
                j = skip_angles(toks, j);
                continue;
            }
            if t.is_punct('{') {
                found_body = Some(j);
                break;
            }
            if t.is_punct(';') {
                break;
            }
            if t.is_ident("for") {
                seen_for = true;
            } else if t.is_ident("where") {
                seen_where = true;
            } else if t.kind == TokKind::Ident && !seen_where {
                if seen_for {
                    target_last_ident = Some(t.text.clone());
                } else {
                    trait_last_ident = Some(t.text.clone());
                }
            }
            j += 1;
        }
        let Some(body_open) = found_body else {
            i = j.max(i + 1);
            continue;
        };
        let body_end = skip_balanced(toks, body_open, '{', '}');
        let (trait_name, target) = if seen_for {
            match target_last_ident {
                Some(t) => (trait_last_ident, t),
                None => {
                    i = body_open + 1;
                    continue;
                }
            }
        } else {
            match trait_last_ident {
                // Inherent impl: the "trait" position holds the type.
                Some(t) => (None, t),
                None => {
                    i = body_open + 1;
                    continue;
                }
            }
        };
        out.push(ImplBlock {
            trait_name,
            target,
            line,
            body: body_open + 1..body_end.saturating_sub(1),
        });
        i = body_end;
    }
    out
}

/// Extracts every `impl ... Snapshot for Target { ... }` block.
#[must_use]
pub fn snapshot_impls(toks: &[Tok]) -> Vec<SnapshotImpl> {
    impl_blocks(toks)
        .into_iter()
        .filter(|b| b.trait_name.as_deref() == Some("Snapshot"))
        .map(|b| {
            let body = &toks[b.body];
            SnapshotImpl {
                target: b.target,
                line: b.line,
                save_idents: method_idents(body, "save_state"),
                restore_idents: method_idents(body, "restore_state"),
                digest_idents: method_idents(body, "state_digest"),
                serde_macro: body.iter().any(|t| t.is_ident("snapshot_serde_body")),
            }
        })
        .collect()
}

/// Hand-written serialization a `Snapshot` impl may delegate to: the
/// identifier sets of `Serialize::to_value` and
/// `Deserialize::from_value` bodies, per target type.
#[derive(Debug, Clone, Default)]
pub struct SerdeCoverage {
    /// Idents in the target's `Serialize::to_value` body.
    pub to_value_idents: BTreeSet<String>,
    /// Idents in the target's `Deserialize::from_value` body.
    pub from_value_idents: BTreeSet<String>,
}

/// Collects [`SerdeCoverage`] for every type with a hand-written
/// `Serialize`/`Deserialize` impl in this token stream. A
/// `save_state` body that calls `to_value` (resp. a `restore_state`
/// that calls `from_value`) inherits this coverage — the delegation
/// idiom generic types use because the vendored derive cannot.
#[must_use]
pub fn serde_coverage(toks: &[Tok]) -> BTreeMap<String, SerdeCoverage> {
    let mut out: BTreeMap<String, SerdeCoverage> = BTreeMap::new();
    for b in impl_blocks(toks) {
        let (method, is_ser) = match b.trait_name.as_deref() {
            Some("Serialize") => ("to_value", true),
            Some("Deserialize") => ("from_value", false),
            _ => continue,
        };
        if let Some(idents) = method_idents(&toks[b.body], method) {
            let cov = out.entry(b.target).or_default();
            if is_ser {
                cov.to_value_idents.extend(idents);
            } else {
                cov.from_value_idents.extend(idents);
            }
        }
    }
    out
}

/// The identifier set of the body of `fn <name>` inside an impl body,
/// or `None` if the method is absent.
fn method_idents(body: &[Tok], name: &str) -> Option<BTreeSet<String>> {
    let mut i = 0;
    while i + 1 < body.len() {
        if body[i].is_ident("fn") && body[i + 1].is_ident(name) {
            // Find the first `{` after the signature; nothing in a
            // signature contains braces.
            let mut j = i + 2;
            while j < body.len() && !body[j].is_punct('{') {
                j += 1;
            }
            if j >= body.len() {
                return None;
            }
            let end = skip_balanced(body, j, '{', '}');
            let idents = body[j + 1..end.saturating_sub(1)]
                .iter()
                .filter(|t| t.kind == TokKind::Ident)
                .map(|t| t.text.clone())
                .collect();
            return Some(idents);
        }
        i += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn struct_fields_with_generics_and_attrs() {
        let src = r#"
            #[derive(Debug)]
            pub struct S<T: Clone> where T: Default {
                pub a: u32,
                #[serde(skip)]
                b: std::collections::BTreeMap<u64, Vec<(u32, T)>>,
                pub(crate) c: fn(u32) -> u64,
                d: [u8; 4],
            }
        "#;
        let (toks, _) = lex(src);
        let s = &structs(&toks)[0];
        assert_eq!(s.name, "S");
        assert_eq!(s.kind, StructKind::Named);
        let names: Vec<_> = s.fields.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["a", "b", "c", "d"]);
        assert!(s.fields[1].serde_skip);
        assert!(!s.fields[0].serde_skip);
    }

    #[test]
    fn tuple_and_unit_structs() {
        let (toks, _) = lex("struct A(u32, u64); struct B; struct C {}");
        let ss = structs(&toks);
        assert_eq!(ss[0].kind, StructKind::Tuple);
        assert_eq!(ss[1].kind, StructKind::Unit);
        assert_eq!(ss[2].kind, StructKind::Named);
    }

    #[test]
    fn snapshot_impl_extraction() {
        let src = r#"
            impl Snapshot for Widget {
                fn save_state(&self) -> Value { self.alpha.to_value() }
                fn restore_state(&mut self, v: &Value) -> Result<(), E> {
                    self.alpha = read(v)?;
                    Ok(())
                }
                fn state_digest(&self) -> u64 {
                    let mut d = StateDigest::new();
                    d.word(self.alpha);
                    d.finish()
                }
            }
            impl other::Snapshot for Gadget {
                crate::snapshot_serde_body!();
                fn state_digest(&self) -> u64 { digest_value(&self.save_state()) }
            }
            impl<S: Snapshot + ?Sized> Snapshot for Box<S> {
                fn save_state(&self) -> Value { (**self).save_state() }
            }
            impl Widget { fn not_snapshot(&self) {} }
        "#;
        let (toks, _) = lex(src);
        let impls = snapshot_impls(&toks);
        assert_eq!(impls.len(), 3);
        assert_eq!(impls[0].target, "Widget");
        assert!(impls[0].save_idents.as_ref().unwrap().contains("alpha"));
        assert!(impls[0].digest_idents.as_ref().unwrap().contains("alpha"));
        assert!(!impls[0].serde_macro);
        assert_eq!(impls[1].target, "Gadget");
        assert!(impls[1].serde_macro);
        assert!(impls[1]
            .digest_idents
            .as_ref()
            .unwrap()
            .contains("save_state"));
        assert_eq!(impls[2].target, "Box");
    }
}
