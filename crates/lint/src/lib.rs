//! `perconf-lint` — static determinism analyzer for the perconf
//! workspace.
//!
//! Every result this repository produces rests on a determinism
//! contract: byte-identical `.psnap`/results output across jobs,
//! batch widths, kill+resume, and processes. The CI byte-diff lanes
//! enforce that contract *dynamically*; this crate enforces the bug
//! classes that actually threaten it *statically*, before a diff
//! lane can flake:
//!
//! - **snapshot-completeness** — a field added to a `Snapshot` type
//!   but forgotten in `save_state`/`restore_state`/`state_digest`
//!   silently corrupts resume and divergence probes.
//! - **nondeterminism-sources** — `HashMap` iteration order,
//!   `Instant::now`, `thread_rng`, or pointer-value hashing creeping
//!   into a result-producing path.
//! - **unsafe-hygiene** — `#![forbid(unsafe_code)]` in every
//!   workspace crate root; `// SAFETY:` above any `unsafe` in
//!   vendored code.
//! - **output-atomicity** — artifact writes must stage to a temp
//!   sibling and rename (torn files must read as *recompute*, never
//!   as wrong data).
//!
//! The analyzer is a self-contained lightweight Rust lexer
//! ([`lexer`]) — comment/string/raw-string aware, no external parser
//! dependencies — plus brace-matching structural recovery
//! ([`parse`]), an annotation layer ([`source`]), and the rules
//! ([`rules`]). Run it with:
//!
//! ```text
//! cargo run -p perconf-lint --release -- --workspace
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyze;
pub mod diag;
pub mod lexer;
pub mod parse;
pub mod rules;
pub mod source;

pub use analyze::{analyze_paths, analyze_workspace, find_workspace_root, Analysis, Options};
pub use diag::Finding;
