//! Source-file model: tokens plus the annotation layer rules consult.
//!
//! # Annotation grammar
//!
//! Annotations live in ordinary comments and attach to the **code
//! line they share** or, when the comment block sits on its own
//! line(s), to the **next code line below** the contiguous
//! comment-only block:
//!
//! ```text
//! // lint: allow(nondeterminism-sources) — watchdog wall-clock only
//! let start = Instant::now();          // annotated via block above
//! let t = Instant::now(); // lint: allow(nondeterminism-sources)
//! ```
//!
//! Recognised forms:
//!
//! - `lint: allow(<rule>[, <rule>...])` — suppress the named rules at
//!   the annotated line; every suppression should say *why* in the
//!   trailing prose.
//! - `lint: transient` — on a struct field: the field is deliberately
//!   outside the snapshot/digest contract (derived state rebuilt on
//!   restore, config constants, or observability that never feeds
//!   back into simulation).
//! - `SAFETY:` — the standard safety-comment marker the
//!   unsafe-hygiene rule requires above `unsafe` in vendored code.

use crate::lexer::{lex, Comment, Tok};
use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;

/// Where a file sits, which decides which rules apply to it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Scope {
    /// A workspace crate source file; `crate_dir` is the directory
    /// name under `crates/` (`bpred`, `serve`, ...) or `"root"` for
    /// the top-level `src/`.
    Workspace {
        /// Directory name under `crates/`, or `"root"`.
        crate_dir: String,
    },
    /// A vendored dependency under `vendor/`.
    Vendor {
        /// Directory name under `vendor/`.
        crate_dir: String,
    },
    /// A file given explicitly on the command line (or a fixture):
    /// every rule applies, and the file counts as its own crate root.
    Adhoc,
}

/// A lexed source file plus its annotation index.
#[derive(Debug)]
pub struct SourceFile {
    /// Absolute (or as-given) path, for reading errors.
    pub path: PathBuf,
    /// Workspace-relative display path used in diagnostics.
    pub rel: String,
    /// Placement, deciding rule applicability.
    pub scope: Scope,
    /// The token stream.
    pub toks: Vec<Tok>,
    /// Lines (1-based) that `lint: allow(rule)` covers, per rule.
    allow: BTreeMap<String, BTreeSet<u32>>,
    /// Lines a `lint: transient` marker covers.
    transient: BTreeSet<u32>,
    /// Lines a `SAFETY:` comment covers.
    safety: BTreeSet<u32>,
}

impl SourceFile {
    /// Lexes `text` into a file model.
    #[must_use]
    pub fn parse(path: PathBuf, rel: String, scope: Scope, text: &str) -> Self {
        let (toks, comments) = lex(text);
        let code_lines: BTreeSet<u32> = toks.iter().map(|t| t.line).collect();
        let mut comment_only: BTreeSet<u32> = BTreeSet::new();
        for c in &comments {
            for l in c.line..=c.end_line {
                if !code_lines.contains(&l) {
                    comment_only.insert(l);
                }
            }
        }
        // A comment's annotations attach to the comment's own lines
        // and then to the next code line below any contiguous run of
        // comment-only lines — so a multi-line justification block
        // still covers the statement under it.
        let attach = |c: &Comment| -> BTreeSet<u32> {
            let mut lines: BTreeSet<u32> = (c.line..=c.end_line).collect();
            // Only a free-standing comment (its last line holds no
            // code) reaches down to the statement below it; a
            // trailing comment covers exactly the line it shares.
            if comment_only.contains(&c.end_line) {
                let mut l = c.end_line + 1;
                while comment_only.contains(&l) {
                    lines.insert(l);
                    l += 1;
                }
                lines.insert(l);
            }
            lines
        };
        let mut allow: BTreeMap<String, BTreeSet<u32>> = BTreeMap::new();
        let mut transient = BTreeSet::new();
        let mut safety = BTreeSet::new();
        for c in &comments {
            if c.text.contains("SAFETY:") {
                safety.extend(attach(c));
            }
            for ann in parse_annotations(&c.text) {
                match ann {
                    Annotation::Allow(rules) => {
                        for r in rules {
                            allow.entry(r).or_default().extend(attach(c));
                        }
                    }
                    Annotation::Transient => transient.extend(attach(c)),
                }
            }
        }
        Self {
            path,
            rel,
            scope,
            toks,
            allow,
            transient,
            safety,
        }
    }

    /// Whether `rule` is allowed (suppressed) at `line`.
    #[must_use]
    pub fn allows(&self, rule: &str, line: u32) -> bool {
        self.allow.get(rule).is_some_and(|s| s.contains(&line))
    }

    /// Whether a `lint: transient` marker covers `line`.
    #[must_use]
    pub fn is_transient(&self, line: u32) -> bool {
        self.transient.contains(&line)
    }

    /// Whether a `SAFETY:` comment covers `line`.
    #[must_use]
    pub fn has_safety(&self, line: u32) -> bool {
        self.safety.contains(&line)
    }
}

#[derive(Debug, PartialEq, Eq)]
enum Annotation {
    Allow(Vec<String>),
    Transient,
}

/// Extracts `lint:` annotations from one comment's text.
fn parse_annotations(text: &str) -> Vec<Annotation> {
    let mut out = Vec::new();
    let mut rest = text;
    while let Some(pos) = rest.find("lint:") {
        rest = rest[pos + "lint:".len()..].trim_start();
        if let Some(inner) = rest.strip_prefix("allow(") {
            if let Some(close) = inner.find(')') {
                let rules = inner[..close]
                    .split(',')
                    .map(|r| r.trim().to_owned())
                    .filter(|r| !r.is_empty())
                    .collect();
                out.push(Annotation::Allow(rules));
                rest = &inner[close..];
            }
        } else if rest.starts_with("transient") {
            out.push(Annotation::Transient);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(src: &str) -> SourceFile {
        SourceFile::parse(PathBuf::from("t.rs"), "t.rs".into(), Scope::Adhoc, src)
    }

    #[test]
    fn allow_attaches_to_same_line_and_block_below() {
        let f = file(concat!(
            "// lint: allow(output-atomicity) — streaming writer\n",
            "// (second justification line)\n",
            "let a = 1;\n",
            "let b = 2; // lint: allow(unsafe-hygiene)\n",
            "let c = 3;\n",
        ));
        assert!(f.allows("output-atomicity", 3));
        assert!(!f.allows("output-atomicity", 4));
        assert!(f.allows("unsafe-hygiene", 4));
        assert!(!f.allows("unsafe-hygiene", 5));
    }

    #[test]
    fn allow_list_splits_on_commas() {
        let f = file("let x = 0; // lint: allow(a, b)\n");
        assert!(f.allows("a", 1));
        assert!(f.allows("b", 1));
        assert!(!f.allows("c", 1));
    }

    #[test]
    fn transient_and_safety_markers() {
        let f = file(concat!(
            "struct S {\n",
            "    /// Derived; rebuilt on restore.\n",
            "    // lint: transient\n",
            "    cache: u32,\n",
            "    real: u32,\n",
            "}\n",
            "// SAFETY: handler only stores an atomic.\n",
            "unsafe { x() };\n",
        ));
        assert!(f.is_transient(4));
        assert!(!f.is_transient(5));
        assert!(f.has_safety(8));
        assert!(!f.has_safety(1));
    }
}
