//! The rule set. Each rule walks lexed [`SourceFile`]s (plus, for
//! snapshot-completeness, the cross-file struct index) and emits
//! [`Finding`]s. Suppression is uniform: `// lint: allow(<rule>)` on
//! the offending line or in the free-standing comment block directly
//! above it — see [`crate::source`] for the grammar.

use crate::diag::Finding;
use crate::lexer::TokKind;
use crate::parse::{SerdeCoverage, SnapshotImpl, StructDef, StructKind};
use crate::source::{Scope, SourceFile};
use std::collections::BTreeMap;

/// Rule: every named field of a type implementing `Snapshot` must be
/// referenced in `save_state`, `restore_state`, *and* `state_digest`,
/// or carry a `// lint: transient` marker.
pub const SNAPSHOT_COMPLETENESS: &str = "snapshot-completeness";
/// Rule: no wall-clock reads, ambient RNG, hasher-ordered
/// collections, or pointer-value hashing in sim-path crates.
pub const NONDETERMINISM_SOURCES: &str = "nondeterminism-sources";
/// Rule: `#![forbid(unsafe_code)]` in every workspace crate root;
/// `// SAFETY:` above any `unsafe` in vendored code.
pub const UNSAFE_HYGIENE: &str = "unsafe-hygiene";
/// Rule: artifact writes (`.psnap`/`.pobs`/results) must stage to a
/// temp sibling and rename, never `File::create` the final path.
pub const OUTPUT_ATOMICITY: &str = "output-atomicity";

/// Every shipped rule, in reporting order.
pub const ALL_RULES: [&str; 4] = [
    SNAPSHOT_COMPLETENESS,
    NONDETERMINISM_SOURCES,
    UNSAFE_HYGIENE,
    OUTPUT_ATOMICITY,
];

/// Crates whose sources are result-producing ("sim path"): anything
/// that can perturb the bytes of a `.psnap`, a results table, or a
/// digest. `serve` and `bench` are excluded wholesale (supervision
/// timing and benchmarking are wall-clock by nature); within the sim
/// path, the profiling and lease-queue modules below are the
/// designated timing/heartbeat allowlist.
const SIM_PATH_CRATES: [&str; 9] = [
    "bpred",
    "core",
    "workload",
    "faults",
    "pipeline",
    "metrics",
    "obs",
    "experiments",
    "root",
];

/// Built-in module allowlist for nondeterminism-sources: the
/// profiler (wall-time attribution is its whole job) and the
/// multi-process lease queue (mtime heartbeats). Determinism tests
/// pin that neither perturbs result bytes.
const NONDET_ALLOWED_PATHS: [&str; 2] = [
    "crates/obs/src/profile.rs",
    "crates/experiments/src/distrib/",
];

/// Cross-file context handed to rules: the struct index.
pub struct Index {
    /// struct name -> (file index, def) for every definition seen.
    pub structs: BTreeMap<String, Vec<(usize, StructDef)>>,
    /// Snapshot impls per file index.
    pub impls: Vec<(usize, SnapshotImpl)>,
    /// Hand-written `Serialize`/`Deserialize` ident coverage, keyed by
    /// (file index, target type). `save_state`/`restore_state` bodies
    /// that call `to_value`/`from_value` inherit it.
    pub serde_cov: BTreeMap<(usize, String), SerdeCoverage>,
}

impl Index {
    /// Builds the index over all files.
    #[must_use]
    pub fn build(files: &[SourceFile]) -> Self {
        let mut structs: BTreeMap<String, Vec<(usize, StructDef)>> = BTreeMap::new();
        let mut impls = Vec::new();
        let mut serde_cov = BTreeMap::new();
        for (fi, f) in files.iter().enumerate() {
            // Vendored code keeps its own snapshot/struct conventions;
            // only workspace and ad-hoc files feed the contract check.
            if matches!(f.scope, Scope::Vendor { .. }) {
                continue;
            }
            for s in crate::parse::structs(&f.toks) {
                structs.entry(s.name.clone()).or_default().push((fi, s));
            }
            for im in crate::parse::snapshot_impls(&f.toks) {
                impls.push((fi, im));
            }
            for (target, cov) in crate::parse::serde_coverage(&f.toks) {
                serde_cov.insert((fi, target), cov);
            }
        }
        Self {
            structs,
            impls,
            serde_cov,
        }
    }

    /// Resolves the struct an impl targets: same file, then same
    /// crate, then a unique global definition; ambiguous or foreign
    /// targets resolve to `None` (and the impl is skipped).
    fn resolve(
        &self,
        files: &[SourceFile],
        impl_file: usize,
        target: &str,
    ) -> Option<(usize, &StructDef)> {
        let cands = self.structs.get(target)?;
        if let Some((fi, d)) = cands.iter().find(|(fi, _)| *fi == impl_file) {
            return Some((*fi, d));
        }
        let impl_scope = &files[impl_file].scope;
        let same_crate: Vec<_> = cands
            .iter()
            .filter(|(fi, _)| files[*fi].scope == *impl_scope)
            .collect();
        if let [one] = same_crate[..] {
            return Some((one.0, &one.1));
        }
        if let [one] = &cands[..] {
            return Some((one.0, &one.1));
        }
        None
    }
}

/// Runs `snapshot-completeness` over every indexed impl.
pub fn snapshot_completeness(files: &[SourceFile], index: &Index, out: &mut Vec<Finding>) {
    for (impl_fi, im) in &index.impls {
        let impl_file = &files[*impl_fi];
        if impl_file.allows(SNAPSHOT_COMPLETENESS, im.line) {
            continue;
        }
        let Some((struct_fi, def)) = index.resolve(files, *impl_fi, &im.target) else {
            continue;
        };
        if def.kind != StructKind::Named {
            continue;
        }
        let struct_file = &files[struct_fi];
        // A save/restore that delegates to a hand-written
        // `Serialize::to_value` / `Deserialize::from_value` (the idiom
        // generic types use, since the vendored derive cannot handle
        // them) covers whatever the serialization body references.
        let delegated = index.serde_cov.get(&(*impl_fi, im.target.clone()));
        for field in &def.fields {
            if struct_file.is_transient(field.line)
                || struct_file.allows(SNAPSHOT_COMPLETENESS, field.line)
            {
                continue;
            }
            let in_save = (im.serde_macro && !field.serde_skip)
                || im.save_idents.as_ref().is_some_and(|s| {
                    s.contains(&field.name)
                        || (s.contains("to_value")
                            && delegated.is_some_and(|d| d.to_value_idents.contains(&field.name)))
                });
            let in_restore = (im.serde_macro && !field.serde_skip)
                || im.restore_idents.as_ref().is_some_and(|s| {
                    s.contains(&field.name)
                        || (s.contains("from_value")
                            && delegated.is_some_and(|d| d.from_value_idents.contains(&field.name)))
                });
            // A digest that folds the full `save_state` tree covers
            // exactly what save covers.
            let in_digest = im
                .digest_idents
                .as_ref()
                .is_some_and(|s| s.contains(&field.name) || (s.contains("save_state") && in_save));
            let mut missing = Vec::new();
            if !in_save {
                missing.push("save_state");
            }
            if !in_restore {
                missing.push("restore_state");
            }
            if !in_digest {
                missing.push("state_digest");
            }
            if missing.is_empty() {
                continue;
            }
            out.push(Finding {
                rule: SNAPSHOT_COMPLETENESS,
                file: struct_file.rel.clone(),
                line: field.line,
                col: field.col,
                message: format!(
                    "field `{}` of `{}` is not covered by Snapshot::{{{}}}",
                    field.name,
                    im.target,
                    missing.join(", ")
                ),
                help: "reference the field in save_state, restore_state and state_digest, \
                       or mark it `// lint: transient` with a reason (derived state, config \
                       constant, or observability)"
                    .to_owned(),
            });
        }
    }
}

/// Whether nondeterminism-sources applies to this file at all.
fn nondet_in_scope(f: &SourceFile) -> bool {
    match &f.scope {
        Scope::Adhoc => true,
        Scope::Vendor { .. } => false,
        Scope::Workspace { crate_dir } => {
            SIM_PATH_CRATES.contains(&crate_dir.as_str())
                && !NONDET_ALLOWED_PATHS.iter().any(|p| f.rel.starts_with(p))
        }
    }
}

/// Runs `nondeterminism-sources` over one file.
pub fn nondeterminism_sources(f: &SourceFile, out: &mut Vec<Finding>) {
    if !nondet_in_scope(f) {
        return;
    }
    let t = &f.toks;
    let mut push = |i: usize, message: String, help: &str| {
        if !f.allows(NONDETERMINISM_SOURCES, t[i].line) {
            out.push(Finding {
                rule: NONDETERMINISM_SOURCES,
                file: f.rel.clone(),
                line: t[i].line,
                col: t[i].col,
                message,
                help: help.to_owned(),
            });
        }
    };
    for i in 0..t.len() {
        let tok = &t[i];
        if tok.kind != TokKind::Ident {
            continue;
        }
        let path_call = |name: &str| {
            t.get(i + 1).is_some_and(|a| a.is_punct(':'))
                && t.get(i + 2).is_some_and(|a| a.is_punct(':'))
                && t.get(i + 3).is_some_and(|a| a.is_ident(name))
        };
        match tok.text.as_str() {
            "Instant" | "SystemTime" if path_call("now") => push(
                i,
                format!("wall-clock read `{}::now` in a sim-path crate", tok.text),
                "time must never feed a result-producing path; keep timing in the \
                 allowlisted profiler/heartbeat modules or annotate \
                 `// lint: allow(nondeterminism-sources)` with why the value cannot \
                 reach an artifact",
            ),
            "thread_rng" => push(
                i,
                "`thread_rng` draws from ambient OS entropy".to_owned(),
                "all randomness must come from a seeded generator that is part of the \
                 snapshot (`SmallRng` behind `Snapshot`)",
            ),
            "HashMap" | "HashSet" => push(
                i,
                format!(
                    "`{}` iteration order depends on hasher seed state",
                    tok.text
                ),
                "use BTreeMap/BTreeSet (or an insertion-ordered structure), or annotate \
                 `// lint: allow(nondeterminism-sources)` explaining why iteration order \
                 can never reach an artifact (e.g. contents are sorted before serialization)",
            ),
            "ptr" if path_call("hash") => push(
                i,
                "pointer-value hashing is address-space dependent".to_owned(),
                "hash a stable identifier (seq number, table index) instead of an address",
            ),
            // `as *const T` / `as *mut T`: a pointer-value cast whose
            // numeric value is allocation-dependent.
            "as" if t.get(i + 1).is_some_and(|a| a.is_punct('*'))
                && t.get(i + 2)
                    .is_some_and(|a| a.is_ident("const") || a.is_ident("mut")) =>
            {
                push(
                    i,
                    "pointer-value cast in a sim-path crate".to_owned(),
                    "pointer values vary per run (ASLR, allocator); derive ordering and \
                     hashes from stable indices instead",
                );
            }
            _ => {}
        }
    }
}

/// Whether a file is a crate root the forbid-attribute check covers.
fn is_crate_root(f: &SourceFile) -> bool {
    match &f.scope {
        Scope::Adhoc => true,
        Scope::Vendor { .. } => false,
        Scope::Workspace { .. } => {
            f.rel == "src/lib.rs"
                || (f.rel.starts_with("crates/")
                    && (f.rel.ends_with("/src/lib.rs")
                        || f.rel.ends_with("/src/main.rs")
                        || f.rel.contains("/src/bin/")))
        }
    }
}

/// Whether the token stream contains `forbid(...unsafe_code...)`.
fn has_forbid_unsafe(f: &SourceFile) -> bool {
    let t = &f.toks;
    for i in 0..t.len() {
        if t[i].is_ident("forbid") && t.get(i + 1).is_some_and(|a| a.is_punct('(')) {
            let mut j = i + 2;
            let mut depth = 1;
            while j < t.len() && depth > 0 {
                if t[j].is_punct('(') {
                    depth += 1;
                } else if t[j].is_punct(')') {
                    depth -= 1;
                } else if t[j].is_ident("unsafe_code") {
                    return true;
                }
                j += 1;
            }
        }
    }
    false
}

/// Runs `unsafe-hygiene` over one file.
pub fn unsafe_hygiene(f: &SourceFile, out: &mut Vec<Finding>) {
    if is_crate_root(f) && !has_forbid_unsafe(f) && !f.allows(UNSAFE_HYGIENE, 1) {
        out.push(Finding {
            rule: UNSAFE_HYGIENE,
            file: f.rel.clone(),
            line: 1,
            col: 1,
            message: "crate root is missing `#![forbid(unsafe_code)]`".to_owned(),
            help: "every workspace crate forbids unsafe; the only unsafe lives in \
                   vendored crates under `vendor/` with `// SAFETY:` justifications"
                .to_owned(),
        });
    }
    for tok in &f.toks {
        if tok.is_ident("unsafe") {
            if f.has_safety(tok.line) || f.allows(UNSAFE_HYGIENE, tok.line) {
                continue;
            }
            out.push(Finding {
                rule: UNSAFE_HYGIENE,
                file: f.rel.clone(),
                line: tok.line,
                col: tok.col,
                message: "`unsafe` without a `// SAFETY:` comment".to_owned(),
                help: "explain the invariant that makes this sound in a `// SAFETY:` \
                       comment directly above the unsafe block"
                    .to_owned(),
            });
        }
    }
}

/// Inspects the parenthesised argument list starting at token `open`
/// (which must be `(`): naming a `tmp`/`temp` sibling is the
/// sanctioned staging idiom (a rename follows).
fn stages_to_temp(t: &[crate::lexer::Tok], open: usize) -> bool {
    if !t.get(open).is_some_and(|a| a.is_punct('(')) {
        return false;
    }
    let mut j = open + 1;
    let mut depth = 1;
    while j < t.len() && depth > 0 {
        if t[j].is_punct('(') {
            depth += 1;
        } else if t[j].is_punct(')') {
            depth -= 1;
        } else if t[j].kind == TokKind::Ident {
            let lower = t[j].text.to_lowercase();
            if lower.contains("tmp") || lower.contains("temp") {
                return true;
            }
        }
        j += 1;
    }
    false
}

/// Runs `output-atomicity` over one file.
pub fn output_atomicity(f: &SourceFile, out: &mut Vec<Finding>) {
    if matches!(f.scope, Scope::Vendor { .. }) {
        return;
    }
    let t = &f.toks;
    for i in 0..t.len() {
        let path_call = |head: &str, method: &str| {
            t[i].is_ident(head)
                && t.get(i + 1).is_some_and(|a| a.is_punct(':'))
                && t.get(i + 2).is_some_and(|a| a.is_punct(':'))
                && t.get(i + 3).is_some_and(|a| a.is_ident(method))
        };
        // `fs::write` is only policed in binaries: bins write the
        // user-visible artifacts the byte-identity contract covers,
        // while library/test code writes plenty of harmless scratch
        // files the staging idiom would just bloat.
        let (message, fires) = if path_call("File", "create") {
            (
                "direct `File::create` bypasses the temp+rename write path",
                true,
            )
        } else if path_call("fs", "write") && f.rel.contains("/src/bin/") {
            (
                "direct `fs::write` in a binary bypasses the temp+rename write path",
                true,
            )
        } else {
            ("", false)
        };
        if !fires || stages_to_temp(t, i + 4) || f.allows(OUTPUT_ATOMICITY, t[i].line) {
            continue;
        }
        out.push(Finding {
            rule: OUTPUT_ATOMICITY,
            file: f.rel.clone(),
            line: t[i].line,
            col: t[i].col,
            message: message.to_owned(),
            help: "artifacts (`.psnap`/`.pobs`/results) must be written through \
                   `experiments::snapfile::write` / `obs::pobs::write`, or staged to a \
                   `tmp` sibling and renamed; annotate \
                   `// lint: allow(output-atomicity)` if the stream is self-checking \
                   (checksummed records with truncation detection)"
                .to_owned(),
        });
    }
}
