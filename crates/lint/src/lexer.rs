//! A lightweight Rust lexer: comment-, string-, and raw-string-aware
//! token stream with line/column positions.
//!
//! This is deliberately *not* a parser. The analyzer's rules operate
//! on token patterns (`Ident "File"`, `::`, `Ident "create"`), struct
//! and impl skeletons recovered by brace matching, and comment
//! annotations — all of which survive any amount of surrounding
//! syntax this lexer does not understand. What the lexer *must* get
//! exactly right is what ends up inside strings and comments, so a
//! `"HashMap"` in a diagnostic message or a `// thread_rng` in prose
//! never reads as code. Handled: line comments, nested block
//! comments, string/char/byte literals with escapes, raw and raw-byte
//! strings with arbitrary `#` fences, raw identifiers, lifetimes vs
//! char literals.

/// Token category. Coarse on purpose: rules match on `Ident` text and
/// single-character `Punct`s; literal *contents* are never matched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`struct`, `unsafe`, `HashMap`, ...).
    Ident,
    /// One punctuation character (`:`, `<`, `#`, ...). Multi-char
    /// operators arrive as consecutive tokens.
    Punct,
    /// String/char/numeric literal; `text` holds the raw source slice.
    Literal,
    /// Lifetime or loop label (`'a`), without the quote.
    Lifetime,
}

/// One token with its position (1-based line and column).
#[derive(Debug, Clone)]
pub struct Tok {
    /// Category of this token.
    pub kind: TokKind,
    /// The token's text; for raw identifiers the `r#` prefix is
    /// stripped so `r#type` and `type` compare equal.
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column (in characters).
    pub col: u32,
}

impl Tok {
    /// Whether this token is the identifier `s`.
    #[must_use]
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Whether this token is the punctuation character `c`.
    #[must_use]
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }
}

/// One comment (`//...` to end of line, or one `/* ... */` block,
/// nesting included). Annotations (`lint: allow(...)`, `SAFETY:`)
/// are recovered from these by [`crate::source::SourceFile`].
#[derive(Debug, Clone)]
pub struct Comment {
    /// First line the comment occupies.
    pub line: u32,
    /// Last line the comment occupies (equal to `line` for `//`).
    pub end_line: u32,
    /// Full comment text including the `//` / `/*` markers.
    pub text: String,
}

/// Lexes `src` into tokens and comments. Never fails: unterminated
/// constructs consume to end of input, which is the forgiving
/// behaviour a linter wants on mid-edit files.
#[must_use]
pub fn lex(src: &str) -> (Vec<Tok>, Vec<Comment>) {
    Lexer::new(src).run()
}

struct Lexer {
    chars: Vec<char>,
    i: usize,
    line: u32,
    col: u32,
    toks: Vec<Tok>,
    comments: Vec<Comment>,
}

impl Lexer {
    fn new(src: &str) -> Self {
        Self {
            chars: src.chars().collect(),
            i: 0,
            line: 1,
            col: 1,
            toks: Vec::new(),
            comments: Vec::new(),
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.i).copied()?;
        self.i += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn run(mut self) -> (Vec<Tok>, Vec<Comment>) {
        while let Some(c) = self.peek(0) {
            let (line, col) = (self.line, self.col);
            if c.is_whitespace() {
                self.bump();
            } else if c == '/' && self.peek(1) == Some('/') {
                self.line_comment(line);
            } else if c == '/' && self.peek(1) == Some('*') {
                self.block_comment(line);
            } else if c == 'r' && matches!(self.peek(1), Some('"' | '#')) {
                self.raw_prefixed(line, col, 1);
            } else if c == 'b' && matches!(self.peek(1), Some('"' | '\'')) {
                self.byte_literal(line, col);
            } else if c == 'b'
                && self.peek(1) == Some('r')
                && matches!(self.peek(2), Some('"' | '#'))
            {
                self.raw_prefixed(line, col, 2);
            } else if c == '"' {
                self.string_literal(line, col);
            } else if c == '\'' {
                self.quote(line, col);
            } else if c.is_alphabetic() || c == '_' {
                self.ident(line, col);
            } else if c.is_ascii_digit() {
                self.number(line, col);
            } else {
                self.bump();
                self.toks.push(Tok {
                    kind: TokKind::Punct,
                    text: c.to_string(),
                    line,
                    col,
                });
            }
        }
        (self.toks, self.comments)
    }

    fn line_comment(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.comments.push(Comment {
            line,
            end_line: line,
            text,
        });
    }

    fn block_comment(&mut self, line: u32) {
        let mut text = String::new();
        let mut depth = 0u32;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                text.push_str("*/");
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.comments.push(Comment {
            line,
            end_line: self.line,
            text,
        });
    }

    /// `r"..."`, `r#"..."#`, `br#"..."#` (with `skip` chars of
    /// prefix), or a raw identifier `r#ident`.
    fn raw_prefixed(&mut self, line: u32, col: u32, skip: usize) {
        let mut j = self.i + skip;
        let mut hashes = 0usize;
        while self.chars.get(j) == Some(&'#') {
            hashes += 1;
            j += 1;
        }
        if self.chars.get(j) == Some(&'"') {
            // Raw (byte) string: consume prefix, hashes, opening
            // quote, then scan for `"` followed by `hashes` hashes.
            let mut text = String::new();
            for _ in 0..(skip + hashes + 1) {
                if let Some(c) = self.bump() {
                    text.push(c);
                }
            }
            'scan: while let Some(c) = self.bump() {
                text.push(c);
                if c == '"' {
                    for k in 0..hashes {
                        if self.peek(k) != Some('#') {
                            continue 'scan;
                        }
                    }
                    for _ in 0..hashes {
                        if let Some(h) = self.bump() {
                            text.push(h);
                        }
                    }
                    break;
                }
            }
            self.toks.push(Tok {
                kind: TokKind::Literal,
                text,
                line,
                col,
            });
        } else if skip == 1 && hashes == 1 {
            // Raw identifier `r#ident`: strip the prefix so rules
            // compare against the plain name.
            self.bump();
            self.bump();
            self.ident(line, col);
        } else {
            // `r` / `b` as a plain identifier start.
            self.ident(line, col);
        }
    }

    fn byte_literal(&mut self, line: u32, col: u32) {
        // `b"..."` or `b'.'` — consume the `b` then delegate.
        self.bump();
        if self.peek(0) == Some('"') {
            self.string_literal(line, col);
        } else {
            self.char_literal(line, col);
        }
    }

    fn string_literal(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        text.push(self.bump().unwrap_or('"')); // opening quote
        while let Some(c) = self.bump() {
            text.push(c);
            if c == '\\' {
                if let Some(e) = self.bump() {
                    text.push(e);
                }
            } else if c == '"' {
                break;
            }
        }
        self.toks.push(Tok {
            kind: TokKind::Literal,
            text,
            line,
            col,
        });
    }

    /// After a `'`: lifetime/label or char literal.
    fn quote(&mut self, line: u32, col: u32) {
        let one = self.peek(1);
        let two = self.peek(2);
        let is_lifetime = match one {
            Some(c) if c.is_alphabetic() || c == '_' => two != Some('\''),
            _ => false,
        };
        if is_lifetime {
            self.bump(); // the quote
            let mut text = String::new();
            while let Some(c) = self.peek(0) {
                if c.is_alphanumeric() || c == '_' {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            self.toks.push(Tok {
                kind: TokKind::Lifetime,
                text,
                line,
                col,
            });
        } else {
            self.char_literal(line, col);
        }
    }

    fn char_literal(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        text.push(self.bump().unwrap_or('\'')); // opening quote
        while let Some(c) = self.bump() {
            text.push(c);
            if c == '\\' {
                if let Some(e) = self.bump() {
                    text.push(e);
                }
            } else if c == '\'' {
                break;
            }
        }
        self.toks.push(Tok {
            kind: TokKind::Literal,
            text,
            line,
            col,
        });
    }

    fn ident(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.toks.push(Tok {
            kind: TokKind::Ident,
            text,
            line,
            col,
        });
    }

    fn number(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else if c == '.'
                && self.peek(1).is_some_and(|d| d.is_ascii_digit())
                && !text.contains('.')
            {
                // `1.5` but not `0..n` (range) or `1.5.` nonsense.
                text.push(c);
                self.bump();
            } else if (c == '+' || c == '-')
                && matches!(text.chars().last(), Some('e' | 'E'))
                && self.peek(1).is_some_and(|d| d.is_ascii_digit())
            {
                // Float exponent sign: `1e-9`.
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.toks.push(Tok {
            kind: TokKind::Literal,
            text,
            line,
            col,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .0
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_their_contents() {
        let src = r##"
            // HashMap in a comment
            /* Instant::now in /* a nested */ block */
            let s = "HashMap";
            let r = r#"thread_rng "quoted" inside"#;
            let real = HashMap::new();
        "##;
        let ids = idents(src);
        assert_eq!(ids.iter().filter(|s| *s == "HashMap").count(), 1);
        assert!(!ids.contains(&"thread_rng".to_owned()));
        assert!(!ids.contains(&"Instant".to_owned()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let (toks, _) = lex("fn f<'a>(x: &'a str) { let c = 'x'; let nl = '\\n'; }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(lifetimes, vec!["a", "a"]);
        let lits: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Literal)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(lits, vec!["'x'", "'\\n'"]);
    }

    #[test]
    fn raw_identifiers_compare_plain() {
        let ids = idents("let r#type = 1;");
        assert!(ids.contains(&"type".to_owned()));
    }

    #[test]
    fn positions_are_one_based_and_accurate() {
        let (toks, comments) = lex("a\n  // note\n  bc");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (3, 3));
        assert_eq!(toks[1].text, "bc");
        assert_eq!(comments[0].line, 2);
    }

    #[test]
    fn escaped_quote_does_not_end_string() {
        let (toks, _) = lex(r#"let s = "a\"b"; let t = c;"#);
        assert!(toks.iter().any(|t| t.is_ident("c")));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Literal && t.text == r#""a\"b""#));
    }
}
