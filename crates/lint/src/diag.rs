//! Findings and their rustc-style rendering / JSON report form.

use std::fmt;

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule identifier (`snapshot-completeness`, ...).
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// What is wrong.
    pub message: String,
    /// How to fix or justify it.
    pub help: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "error[{}]: {}", self.rule, self.message)?;
        writeln!(f, "  --> {}:{}:{}", self.file, self.line, self.col)?;
        write!(f, "   = help: {}", self.help)
    }
}

impl Finding {
    /// The finding as a JSON-ready value tree.
    #[must_use]
    pub fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("rule".to_owned(), serde::Value::Str(self.rule.to_owned())),
            ("file".to_owned(), serde::Value::Str(self.file.clone())),
            ("line".to_owned(), serde::Value::UInt(u64::from(self.line))),
            ("column".to_owned(), serde::Value::UInt(u64::from(self.col))),
            (
                "message".to_owned(),
                serde::Value::Str(self.message.clone()),
            ),
            ("help".to_owned(), serde::Value::Str(self.help.clone())),
        ])
    }
}

/// The whole run as a JSON report: per-rule counts plus every
/// finding, stable-ordered so CI artifact diffs are meaningful.
#[must_use]
pub fn report_value(findings: &[Finding], files_scanned: usize) -> serde::Value {
    let mut by_rule: Vec<(String, u64)> = Vec::new();
    for f in findings {
        match by_rule.iter_mut().find(|(r, _)| r == f.rule) {
            Some((_, n)) => *n += 1,
            None => by_rule.push((f.rule.to_owned(), 1)),
        }
    }
    serde::Value::Object(vec![
        (
            "files_scanned".to_owned(),
            serde::Value::UInt(files_scanned as u64),
        ),
        (
            "total_findings".to_owned(),
            serde::Value::UInt(findings.len() as u64),
        ),
        (
            "findings_by_rule".to_owned(),
            serde::Value::Object(
                by_rule
                    .into_iter()
                    .map(|(r, n)| (r, serde::Value::UInt(n)))
                    .collect(),
            ),
        ),
        (
            "findings".to_owned(),
            serde::Value::Array(findings.iter().map(Finding::to_value).collect()),
        ),
    ])
}
