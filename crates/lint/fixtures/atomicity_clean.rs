//! Fixture: `output-atomicity` must stay quiet — the write stages to
//! a temp sibling and renames into place.
#![forbid(unsafe_code)]

use std::fs::File;
use std::io::Write;
use std::path::Path;

pub fn save(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = path.with_extension("psnap.tmp");
    let mut f = File::create(&tmp)?;
    f.write_all(bytes)?;
    f.sync_all()?;
    std::fs::rename(&tmp, path)
}
