//! Fixture: `snapshot-completeness` must fire — `theta` is saved and
//! restored by the serde macro but never folded into the digest, and
//! `scratch` is covered nowhere.
#![forbid(unsafe_code)]

pub struct Widget {
    weights: Vec<i32>,
    theta: i32,
    scratch: Vec<u32>,
}

impl Snapshot for Widget {
    crate::snapshot_serde_body!();

    fn state_digest(&self) -> u64 {
        let mut d = StateDigest::new();
        for &w in &self.weights {
            d.signed(i64::from(w));
        }
        d.finish()
    }
}
