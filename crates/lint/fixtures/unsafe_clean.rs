// lint: allow(unsafe-hygiene) — this fixture models a vendored crate
// root: justified unsafe is permitted instead of the forbid attribute.
//! Fixture: `unsafe-hygiene` must stay quiet — the root-level check is
//! allowlisted (vendored style) and the unsafe block carries a
//! `// SAFETY:` justification, so neither check fires.

pub fn peek(v: &[u8]) -> u8 {
    // SAFETY: the caller guarantees `v` is non-empty, so index 0 is
    // in bounds.
    unsafe { *v.get_unchecked(0) }
}
