//! Fixture: `nondeterminism-sources` must stay quiet — ordered
//! collections, seeded RNG, and an annotated progress-timer read.
#![forbid(unsafe_code)]

use std::collections::BTreeMap;

pub fn run(seed: u64) -> u64 {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut m: BTreeMap<u64, u64> = BTreeMap::new();
    m.insert(rng.gen(), 1);
    // lint: allow(nondeterminism-sources) — progress display only
    let t0 = std::time::Instant::now();
    drop(t0);
    m.len() as u64
}
