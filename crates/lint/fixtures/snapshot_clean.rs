//! Fixture: `snapshot-completeness` must stay quiet — every field is
//! either fully covered, marked transient, or covered through the
//! hand-written `Serialize`/`Deserialize` delegation idiom.
#![forbid(unsafe_code)]

pub struct Widget {
    weights: Vec<i32>,
    theta: i32,
    cache: Vec<u32>, // lint: transient — derived, rebuilt on restore
}

impl Snapshot for Widget {
    crate::snapshot_serde_body!();

    fn state_digest(&self) -> u64 {
        let mut d = StateDigest::new();
        d.signed(i64::from(self.theta));
        for &w in &self.weights {
            d.signed(i64::from(w));
        }
        d.finish()
    }
}

pub struct Pair<A, B> {
    a: A,
    b: B,
}

impl<A: Serialize, B: Serialize> Serialize for Pair<A, B> {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("a".into(), self.a.to_value()),
            ("b".into(), self.b.to_value()),
        ])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for Pair<A, B> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(Self {
            a: serde::field(v, "a")?,
            b: serde::field(v, "b")?,
        })
    }
}

impl<A: Snapshot, B: Snapshot> Snapshot for Pair<A, B> {
    fn save_state(&self) -> Value {
        self.to_value()
    }

    fn restore_state(&mut self, state: &Value) -> Result<(), SnapshotError> {
        *self = Self::from_value(state)?;
        Ok(())
    }

    fn state_digest(&self) -> u64 {
        let mut d = StateDigest::new();
        d.word(self.a.state_digest()).word(self.b.state_digest());
        d.finish()
    }
}
