//! Fixture: `nondeterminism-sources` must fire on the wall-clock
//! read, the ambient RNG, the hasher-ordered map, and the
//! pointer-value cast below.
#![forbid(unsafe_code)]

use std::collections::HashMap;
use std::time::Instant;

pub fn run() -> u64 {
    let t0 = Instant::now();
    let mut rng = thread_rng();
    let mut m: HashMap<u64, u64> = HashMap::new();
    m.insert(rng.gen(), 1);
    let p = &m as *const HashMap<u64, u64>;
    t0.elapsed().as_nanos() as u64 ^ p as u64
}
