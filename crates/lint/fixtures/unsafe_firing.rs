//! Fixture: `unsafe-hygiene` must fire twice — no
//! `#![forbid(unsafe_code)]` on this (ad-hoc) crate root, and an
//! `unsafe` block with no `// SAFETY:` justification.

pub fn peek(v: &[u8]) -> u8 {
    unsafe { *v.get_unchecked(0) }
}
