//! Fixture: `output-atomicity` must fire — the artifact is created at
//! its final path, so a crash mid-write leaves a torn `.psnap`.
#![forbid(unsafe_code)]

use std::fs::File;
use std::io::Write;

pub fn save(bytes: &[u8]) -> std::io::Result<()> {
    let mut f = File::create("results/state.psnap")?;
    f.write_all(bytes)
}
