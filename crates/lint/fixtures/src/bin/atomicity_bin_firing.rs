//! Fixture: `output-atomicity` must fire — a binary writes an
//! artifact with raw `fs::write` at its final path, so a crash
//! mid-write leaves a torn file. (The `/src/bin/` path segment is
//! what brings `fs::write` into the rule's scope.)
#![forbid(unsafe_code)]

pub fn save(bytes: &[u8]) -> std::io::Result<()> {
    std::fs::write("results/report.json", bytes)
}
