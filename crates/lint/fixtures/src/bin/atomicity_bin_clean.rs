//! Fixture: `output-atomicity` must stay quiet — the binary stages
//! its `fs::write` to a `tmp` sibling and renames into place.
#![forbid(unsafe_code)]

pub fn save(bytes: &[u8]) -> std::io::Result<()> {
    let tmp = std::path::Path::new("results/report.json.tmp");
    std::fs::write(tmp, bytes)?;
    std::fs::rename(tmp, "results/report.json")
}
