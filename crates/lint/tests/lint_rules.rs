//! Integration tests: the fixture corpus (each rule must demonstrably
//! fire on its firing fixture and stay quiet on its clean twin), the
//! workspace-clean invariant, and a mutation test proving that
//! dropping a field reference from a real `state_digest` impl is
//! caught.

use perconf_lint::rules;
use perconf_lint::{analyze_paths, analyze_workspace, Analysis, Options};
use std::path::{Path, PathBuf};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name)
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("lint crate lives two levels under the workspace root")
        .to_path_buf()
}

fn analyze_fixture(name: &str) -> Analysis {
    analyze_paths(&[fixture(name)], &Options::default()).expect("fixture should be readable")
}

fn rules_fired(a: &Analysis) -> Vec<&'static str> {
    let mut rs: Vec<&'static str> = a.findings.iter().map(|f| f.rule).collect();
    rs.dedup();
    rs
}

#[test]
fn snapshot_completeness_fires_on_fixture() {
    let a = analyze_fixture("snapshot_firing.rs");
    let snap: Vec<_> = a
        .findings
        .iter()
        .filter(|f| f.rule == rules::SNAPSHOT_COMPLETENESS)
        .collect();
    // `theta` escapes the digest; `scratch` escapes everything.
    assert_eq!(snap.len(), 2, "findings: {:?}", a.findings);
    assert!(snap[0].message.contains("`theta`"), "{}", snap[0].message);
    assert!(snap[0].message.contains("state_digest"));
    assert!(!snap[0].message.contains("save_state"));
    assert!(snap[1].message.contains("`scratch`"), "{}", snap[1].message);
}

#[test]
fn snapshot_completeness_quiet_on_clean_fixture() {
    let a = analyze_fixture("snapshot_clean.rs");
    assert!(a.findings.is_empty(), "findings: {:?}", a.findings);
}

#[test]
fn nondeterminism_sources_fires_on_fixture() {
    let a = analyze_fixture("nondet_firing.rs");
    let msgs: Vec<&str> = a
        .findings
        .iter()
        .filter(|f| f.rule == rules::NONDETERMINISM_SOURCES)
        .map(|f| f.message.as_str())
        .collect();
    assert!(msgs.iter().any(|m| m.contains("Instant::now")), "{msgs:?}");
    assert!(msgs.iter().any(|m| m.contains("thread_rng")), "{msgs:?}");
    assert!(msgs.iter().any(|m| m.contains("HashMap")), "{msgs:?}");
    assert!(
        msgs.iter().any(|m| m.contains("pointer-value cast")),
        "{msgs:?}"
    );
}

#[test]
fn nondeterminism_sources_quiet_on_clean_fixture() {
    let a = analyze_fixture("nondet_clean.rs");
    assert!(a.findings.is_empty(), "findings: {:?}", a.findings);
}

#[test]
fn unsafe_hygiene_fires_on_fixture() {
    let a = analyze_fixture("unsafe_firing.rs");
    let msgs: Vec<&str> = a
        .findings
        .iter()
        .filter(|f| f.rule == rules::UNSAFE_HYGIENE)
        .map(|f| f.message.as_str())
        .collect();
    assert_eq!(msgs.len(), 2, "{msgs:?}");
    assert!(msgs[0].contains("forbid(unsafe_code)"), "{msgs:?}");
    assert!(msgs[1].contains("SAFETY"), "{msgs:?}");
}

#[test]
fn unsafe_hygiene_quiet_on_clean_fixture() {
    let a = analyze_fixture("unsafe_clean.rs");
    assert!(a.findings.is_empty(), "findings: {:?}", a.findings);
}

#[test]
fn output_atomicity_fires_on_fixture() {
    let a = analyze_fixture("atomicity_firing.rs");
    let atom: Vec<_> = a
        .findings
        .iter()
        .filter(|f| f.rule == rules::OUTPUT_ATOMICITY)
        .collect();
    assert_eq!(atom.len(), 1, "findings: {:?}", a.findings);
    assert!(atom[0].message.contains("File::create"));
}

#[test]
fn output_atomicity_quiet_on_clean_fixture() {
    let a = analyze_fixture("atomicity_clean.rs");
    assert!(a.findings.is_empty(), "findings: {:?}", a.findings);
}

#[test]
fn output_atomicity_fires_on_raw_fs_write_in_a_bin() {
    let a = analyze_fixture("src/bin/atomicity_bin_firing.rs");
    let atom: Vec<_> = a
        .findings
        .iter()
        .filter(|f| f.rule == rules::OUTPUT_ATOMICITY)
        .collect();
    assert_eq!(atom.len(), 1, "findings: {:?}", a.findings);
    assert!(atom[0].message.contains("fs::write"), "{:?}", atom[0]);
}

#[test]
fn output_atomicity_quiet_on_staged_fs_write_in_a_bin() {
    let a = analyze_fixture("src/bin/atomicity_bin_clean.rs");
    assert!(a.findings.is_empty(), "findings: {:?}", a.findings);
}

#[test]
fn output_atomicity_ignores_fs_write_outside_bins() {
    // The firing fixture's body is a library-path file here: the raw
    // `fs::write` pattern only counts under a `/src/bin/` path.
    let text = std::fs::read_to_string(fixture("src/bin/atomicity_bin_firing.rs")).unwrap();
    let dir = std::env::temp_dir().join("perconf-lint-nonbin-fixture");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("atomicity_lib_copy.rs");
    std::fs::write(&path, text).unwrap();
    let a = analyze_paths(&[path], &Options::default()).unwrap();
    assert!(a.findings.is_empty(), "findings: {:?}", a.findings);
}

#[test]
fn rule_filter_restricts_output() {
    let opts = Options {
        rules: Some([rules::OUTPUT_ATOMICITY.to_owned()].into_iter().collect()),
    };
    // The nondet fixture is full of violations, but none of them are
    // atomicity violations.
    let a = analyze_paths(&[fixture("nondet_firing.rs")], &opts).unwrap();
    assert!(a.findings.is_empty(), "findings: {:?}", a.findings);
}

/// The acceptance-criterion invariant: `perconf-lint --workspace`
/// exits 0 on this tree. Every legitimate exception is annotated in
/// place, so any new finding is a regression.
#[test]
fn workspace_is_clean() {
    let a = analyze_workspace(&workspace_root(), &Options::default())
        .expect("workspace should be walkable");
    assert!(
        a.findings.is_empty(),
        "the tree must lint clean; findings:\n{}",
        a.findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(a.files_scanned > 80, "suspiciously few files scanned");
}

#[test]
fn fixtures_fire_every_shipped_rule() {
    let mut fired: Vec<&'static str> = [
        "snapshot_firing.rs",
        "nondet_firing.rs",
        "unsafe_firing.rs",
        "atomicity_firing.rs",
    ]
    .iter()
    .flat_map(|f| rules_fired(&analyze_fixture(f)))
    .collect();
    fired.sort_unstable();
    fired.dedup();
    let mut all = rules::ALL_RULES.to_vec();
    all.sort_unstable();
    assert_eq!(fired, all, "every shipped rule must have a firing fixture");
}

/// Mutation test: drop the `hist_len` fold from the real
/// `PerceptronPredictor::state_digest` and the analyzer must catch
/// the now-incomplete digest. This pins the property the whole rule
/// exists for — a forgotten field in a hand-rolled digest cannot
/// slip through.
#[test]
fn mutated_digest_is_caught() {
    let real = workspace_root().join("crates/bpred/src/perceptron.rs");
    let src = std::fs::read_to_string(&real).expect("perceptron.rs should exist");
    let digest_line = ".word(u64::from(self.hist_len))";
    assert!(
        src.contains(digest_line),
        "mutation target moved; update this test"
    );
    let mutated: String = src
        .lines()
        .filter(|l| !l.contains(digest_line))
        .map(|l| format!("{l}\n"))
        .collect();
    let dir = std::env::temp_dir().join(format!("perconf-lint-mut-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("perceptron_mutated.rs");
    std::fs::write(&path, mutated).unwrap();
    let a = analyze_paths(std::slice::from_ref(&path), &Options::default()).unwrap();
    std::fs::remove_file(&path).ok();
    std::fs::remove_dir(&dir).ok();
    let caught = a.findings.iter().any(|f| {
        f.rule == rules::SNAPSHOT_COMPLETENESS
            && f.message.contains("`hist_len`")
            && f.message.contains("state_digest")
    });
    assert!(
        caught,
        "dropping hist_len from state_digest must be caught; findings: {:?}",
        a.findings
    );

    // Control: the unmutated file carries no snapshot-completeness
    // finding (ad-hoc scope still runs the other rules, so filter).
    let clean = analyze_paths(&[real], &Options::default()).unwrap();
    assert!(
        clean
            .findings
            .iter()
            .all(|f| f.rule != rules::SNAPSHOT_COMPLETENESS),
        "control failed: {:?}",
        clean.findings
    );
}
