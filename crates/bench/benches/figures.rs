//! Criterion benches for the figure experiments: the density
//! collection of Figures 4–7, the combined gating+reversal machine of
//! Figures 8–9, and the §5.4.2 latency study.

use criterion::{criterion_group, criterion_main, Criterion};
use perconf_core::{PerceptronCe, PerceptronCeConfig};
use perconf_experiments::common::{controller, perceptron, PredictorKind, Scale};
use perconf_experiments::figs::{self, Training};
use perconf_pipeline::{PipelineConfig, Simulation};
use std::hint::black_box;
use std::time::Duration;

fn fig45_bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4-5");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(3));
    g.warm_up_time(Duration::from_secs(1));
    g.bench_function("cic-density-gcc", |b| {
        b.iter(|| black_box(figs::run(Training::CorrectIncorrect, "gcc", Scale::tiny())));
    });
    g.finish();
}

fn fig67_bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6-7");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(3));
    g.warm_up_time(Duration::from_secs(1));
    g.bench_function("tnt-density-gcc", |b| {
        b.iter(|| black_box(figs::run(Training::TakenNotTaken, "gcc", Scale::tiny())));
    });
    g.finish();
}

fn fig8_bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(3));
    g.warm_up_time(Duration::from_secs(1));
    let wl = perconf_workload::spec2000_config("mcf").unwrap();
    g.bench_function("combined-gating-reversal-deep", |b| {
        b.iter(|| {
            let ctl = controller(
                PredictorKind::BimodalGshare,
                Box::new(PerceptronCe::new(PerceptronCeConfig::combined())),
            );
            let mut sim = Simulation::new(PipelineConfig::deep().gated(2), &wl, ctl);
            sim.warmup(10_000);
            let s = sim.run(30_000);
            black_box((s.reversals_good, s.reversals_bad))
        });
    });
    g.finish();
}

fn fig9_bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(3));
    g.warm_up_time(Duration::from_secs(1));
    let wl = perconf_workload::spec2000_config("mcf").unwrap();
    g.bench_function("combined-gating-reversal-wide", |b| {
        b.iter(|| {
            let ctl = controller(
                PredictorKind::BimodalGshare,
                Box::new(PerceptronCe::new(PerceptronCeConfig::combined())),
            );
            let mut sim = Simulation::new(PipelineConfig::wide().gated(2), &wl, ctl);
            sim.warmup(10_000);
            black_box(sim.run(30_000).ipc())
        });
    });
    g.finish();
}

fn latency_bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("latency-study");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(3));
    g.warm_up_time(Duration::from_secs(1));
    let wl = perconf_workload::spec2000_config("twolf").unwrap();
    for lat in [1u32, 9] {
        g.bench_function(format!("ce-latency-{lat}"), |b| {
            b.iter(|| {
                let ctl = controller(PredictorKind::BimodalGshare, perceptron(0));
                let mut sim = Simulation::new(
                    PipelineConfig::deep().gated(1).with_ce_latency(lat),
                    &wl,
                    ctl,
                );
                sim.warmup(10_000);
                black_box(sim.run(30_000).gated_cycles)
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    fig45_bench,
    fig67_bench,
    fig8_bench,
    fig9_bench,
    latency_bench
);
criterion_main!(benches);
