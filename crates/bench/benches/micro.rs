//! Microbenchmarks of the individual structures: predictor and
//! estimator lookup/train throughput, workload generation rate, cache
//! access rate, and raw simulator cycle throughput. These bound the
//! hardware-structure costs the paper discusses (§5.4.2 motivates the
//! perceptron-latency study with exactly this dot-product cost).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use perconf_bpred::{baseline_bimodal_gshare, BranchPredictor, Gshare, PerceptronPredictor};
use perconf_core::{
    ConfidenceEstimator, EstimateCtx, JrsConfig, JrsEstimator, PerceptronCe, PerceptronCeConfig,
};
use perconf_pipeline::{obs, Cache, CacheConfig, PipelineConfig, Simulation};
use perconf_workload::WorkloadGenerator;
use std::hint::black_box;
use std::time::Duration;

const N: u64 = 10_000;

fn predictor_bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("predictor");
    g.throughput(Throughput::Elements(N));
    g.sample_size(20);
    g.measurement_time(Duration::from_secs(3));
    g.warm_up_time(Duration::from_secs(1));
    g.bench_function("gshare-predict-train", |b| {
        let mut p = Gshare::new(16, 8);
        b.iter(|| {
            for i in 0..N {
                let pc = (i * 29) % 4096 * 4;
                let hist = i.wrapping_mul(0x9E37_79B9);
                let pred = p.predict(pc, hist);
                p.train(pc, hist, pred ^ (i % 7 == 0));
            }
            black_box(&p);
        });
    });
    g.bench_function("perceptron-predict-train", |b| {
        let mut p = PerceptronPredictor::new(128, 32);
        b.iter(|| {
            for i in 0..N {
                let pc = (i * 29) % 4096 * 4;
                let hist = i.wrapping_mul(0x9E37_79B9);
                let pred = p.predict(pc, hist);
                p.train(pc, hist, pred ^ (i % 7 == 0));
            }
            black_box(&p);
        });
    });
    g.bench_function("hybrid-predict-train", |b| {
        let mut p = baseline_bimodal_gshare();
        b.iter(|| {
            for i in 0..N {
                let pc = (i * 29) % 4096 * 4;
                let hist = i.wrapping_mul(0x9E37_79B9);
                let pred = p.predict(pc, hist);
                p.train(pc, hist, pred ^ (i % 7 == 0));
            }
            black_box(&p);
        });
    });
    g.finish();
}

fn estimator_bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("estimator");
    g.throughput(Throughput::Elements(N));
    g.sample_size(20);
    g.measurement_time(Duration::from_secs(3));
    g.warm_up_time(Duration::from_secs(1));
    g.bench_function("perceptron-ce-estimate-train", |b| {
        let mut ce = PerceptronCe::new(PerceptronCeConfig::default());
        b.iter(|| {
            for i in 0..N {
                let ctx = EstimateCtx {
                    pc: (i * 29) % 4096 * 4,
                    history: i.wrapping_mul(0x9E37_79B9),
                    predicted_taken: i % 3 == 0,
                };
                let est = ce.estimate(&ctx);
                ce.train(&ctx, est, i % 11 == 0);
            }
            black_box(&ce);
        });
    });
    g.bench_function("jrs-estimate-train", |b| {
        let mut ce = JrsEstimator::new(JrsConfig::default());
        b.iter(|| {
            for i in 0..N {
                let ctx = EstimateCtx {
                    pc: (i * 29) % 4096 * 4,
                    history: i.wrapping_mul(0x9E37_79B9),
                    predicted_taken: i % 3 == 0,
                };
                let est = ce.estimate(&ctx);
                ce.train(&ctx, est, i % 11 == 0);
            }
            black_box(&ce);
        });
    });
    g.finish();
}

fn workload_bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("workload");
    g.throughput(Throughput::Elements(N));
    g.sample_size(20);
    g.measurement_time(Duration::from_secs(3));
    g.warm_up_time(Duration::from_secs(1));
    let cfg = perconf_workload::spec2000_config("gcc").unwrap();
    g.bench_function("generate-uops", |b| {
        let mut gen = WorkloadGenerator::new(&cfg);
        b.iter(|| {
            for _ in 0..N {
                black_box(gen.next_uop());
            }
        });
    });
    g.finish();
}

fn cache_bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache");
    g.throughput(Throughput::Elements(N));
    g.sample_size(20);
    g.measurement_time(Duration::from_secs(3));
    g.warm_up_time(Duration::from_secs(1));
    g.bench_function("l1-access", |b| {
        let mut cache = Cache::new(CacheConfig {
            size_bytes: 32 * 1024,
            assoc: 8,
            line_bytes: 64,
        });
        b.iter(|| {
            for i in 0..N {
                black_box(cache.access((i * 97) % 65_536));
            }
        });
    });
    g.finish();
}

fn simulator_bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(3));
    g.warm_up_time(Duration::from_secs(1));
    g.throughput(Throughput::Elements(20_000));
    let wl = perconf_workload::spec2000_config("gcc").unwrap();
    g.bench_function("cycle-throughput-20k-uops", |b| {
        b.iter(|| {
            let mut sim = Simulation::with_defaults(PipelineConfig::deep(), &wl);
            black_box(sim.run(20_000).cycles)
        });
    });
    // The same run with the whole observability stack attached and
    // live: event tracing at Standard level (a no-op ZST unless built
    // with `--features trace`) plus per-stage profiling. The gap to
    // the bench above is the total observability cost.
    g.bench_function("cycle-throughput-20k-uops-observed", |b| {
        b.iter(|| {
            let mut sim = Simulation::with_defaults(PipelineConfig::deep(), &wl);
            let tracer = obs::Tracer::new();
            tracer.set_level(obs::TraceLevel::Standard);
            let profiler = obs::Profiler::default();
            profiler.enable(true);
            sim.set_tracer(tracer);
            sim.set_profiler(profiler);
            black_box(sim.run(20_000).cycles)
        });
    });
    g.finish();
}

fn obs_bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("obs");
    g.throughput(Throughput::Elements(N));
    g.sample_size(20);
    g.measurement_time(Duration::from_secs(3));
    g.warm_up_time(Duration::from_secs(1));
    // Cost of one record() call with the tracer live. Compiled out
    // (the default) this measures the empty inlined stub; with
    // `--features trace` it measures the ring-buffer push.
    g.bench_function("tracer-record", |b| {
        let t = obs::Tracer::new();
        t.set_level(obs::TraceLevel::Standard);
        b.iter(|| {
            for i in 0..N {
                t.record(obs::TraceEvent::BranchResolved {
                    cycle: i,
                    pc: i * 4,
                    mispredicted: i % 7 == 0,
                });
            }
            black_box(t.enabled())
        });
    });
    // The disabled profiler costs one relaxed atomic load per scope;
    // the enabled one adds two clock reads and a map update.
    g.bench_function("profiler-scope-disabled", |b| {
        let p = obs::Profiler::default();
        b.iter(|| {
            for _ in 0..N {
                let _s = p.scope("bench/span");
            }
            black_box(p.enabled())
        });
    });
    g.bench_function("profiler-scope-enabled", |b| {
        let p = obs::Profiler::default();
        p.enable(true);
        b.iter(|| {
            for _ in 0..N {
                let _s = p.scope("bench/span");
            }
            black_box(p.enabled())
        });
    });
    // Counters are materialized on demand, never maintained in the
    // cycle loop; this is the cost of building a full snapshot.
    g.bench_function("counters-snapshot", |b| {
        let wl = perconf_workload::spec2000_config("gcc").unwrap();
        let mut sim = Simulation::with_defaults(PipelineConfig::deep(), &wl);
        sim.run(2_000);
        b.iter(|| {
            for _ in 0..N / 100 {
                black_box(sim.counters());
            }
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    predictor_bench,
    estimator_bench,
    workload_bench,
    cache_bench,
    simulator_bench,
    obs_bench
);
criterion_main!(benches);
