//! Criterion benches that exercise the Table 2–6 reproduction
//! pipelines at reduced scale — one group per paper table. These are
//! regeneration harnesses as much as performance benches: each
//! iteration runs the same code path `repro <table>` uses.

use criterion::{criterion_group, criterion_main, Criterion};
use perconf_experiments::common::{
    controller, jrs, perceptron, trace_eval, BaselineSet, PredictorKind, Scale,
};
use perconf_experiments::{table2, table4};
use perconf_pipeline::{PipelineConfig, Simulation};
use std::hint::black_box;
use std::time::Duration;

fn table2_bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(3));
    g.warm_up_time(Duration::from_secs(1));
    let wl = perconf_workload::spec2000_config("gcc").unwrap();
    for (name, cfg) in table2::shapes() {
        g.bench_function(format!("gcc-{name}"), |b| {
            b.iter(|| {
                let mut sim = Simulation::with_defaults(cfg, &wl);
                black_box(sim.run(20_000).wasted_execution_frac())
            });
        });
    }
    g.finish();
}

fn table3_bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table3");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(3));
    g.warm_up_time(Duration::from_secs(1));
    let wl = perconf_workload::spec2000_config("vpr").unwrap();
    g.bench_function("jrs-lambda7", |b| {
        b.iter(|| {
            let mut p = PredictorKind::BimodalGshare.build();
            let mut ce = jrs(7);
            black_box(trace_eval(&wl, p.as_mut(), ce.as_mut(), 5_000, 30_000, None).0)
        });
    });
    g.bench_function("perceptron-lambda0", |b| {
        b.iter(|| {
            let mut p = PredictorKind::BimodalGshare.build();
            let mut ce = perceptron(0);
            black_box(trace_eval(&wl, p.as_mut(), ce.as_mut(), 5_000, 30_000, None).0)
        });
    });
    g.finish();
}

fn table4_bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table4");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(3));
    g.warm_up_time(Duration::from_secs(1));
    let wl = perconf_workload::spec2000_config("twolf").unwrap();
    g.bench_function("jrs-lambda7-pl2", |b| {
        b.iter(|| {
            let ctl = controller(PredictorKind::BimodalGshare, jrs(7));
            let mut sim = Simulation::new(PipelineConfig::deep().gated(2), &wl, ctl);
            sim.warmup(10_000);
            black_box(sim.run(30_000).gated_cycles)
        });
    });
    g.bench_function("perceptron-lambda0-pl1", |b| {
        b.iter(|| {
            let ctl = controller(PredictorKind::BimodalGshare, perceptron(0));
            let mut sim = Simulation::new(PipelineConfig::deep().gated(1), &wl, ctl);
            sim.warmup(10_000);
            black_box(sim.run(30_000).gated_cycles)
        });
    });
    g.finish();
}

fn table4_full_row(c: &mut Criterion) {
    // One full Table 4 design point across all 12 benchmarks, at a
    // very small scale — the shape of `repro table4`.
    let mut g = c.benchmark_group("table4-row");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(3));
    g.warm_up_time(Duration::from_secs(1));
    let scale = Scale::tiny();
    g.bench_function("perceptron-lambda0-all-benchmarks", |b| {
        b.iter(|| {
            let baselines =
                BaselineSet::build(PredictorKind::BimodalGshare, PipelineConfig::deep(), scale);
            black_box(table4::run_point(&baselines, &|| perceptron(0), 1))
        });
    });
    g.finish();
}

fn table5_bench(c: &mut Criterion) {
    // The gshare-perceptron baseline of Table 5 on one benchmark.
    let mut g = c.benchmark_group("table5");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(3));
    g.warm_up_time(Duration::from_secs(1));
    let wl = perconf_workload::spec2000_config("gcc").unwrap();
    g.bench_function("gshare-perceptron-gated", |b| {
        b.iter(|| {
            let ctl = controller(PredictorKind::GsharePerceptron, perceptron(-25));
            let mut sim = Simulation::new(PipelineConfig::deep().gated(1), &wl, ctl);
            sim.warmup(10_000);
            black_box(sim.run(30_000).ipc())
        });
    });
    g.finish();
}

fn table6_bench(c: &mut Criterion) {
    // Size sensitivity: the cheapest and the default configuration.
    use perconf_core::{PerceptronCe, PerceptronCeConfig};
    let mut g = c.benchmark_group("table6");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(3));
    g.warm_up_time(Duration::from_secs(1));
    let wl = perconf_workload::spec2000_config("vpr").unwrap();
    for (e, w, h) in [(128u32, 8u32, 32u32), (128, 8, 16)] {
        let cfg = PerceptronCeConfig::sized(e, w, h);
        g.bench_function(cfg.label(), |b| {
            b.iter(|| {
                let ctl = controller(
                    PredictorKind::BimodalGshare,
                    Box::new(PerceptronCe::new(cfg)),
                );
                let mut sim = Simulation::new(PipelineConfig::deep().gated(1), &wl, ctl);
                sim.warmup(10_000);
                black_box(sim.run(30_000).gated_cycles)
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    table2_bench,
    table3_bench,
    table4_bench,
    table4_full_row,
    table5_bench,
    table6_bench
);
criterion_main!(benches);
