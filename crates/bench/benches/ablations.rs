//! Ablation benches for the design choices DESIGN.md calls out:
//! the JRS miss policy (reset vs decrement), the perceptron training
//! threshold `T`, the training trigger, and the gating counter
//! threshold PLn. Each bench also prints the quality metric the
//! ablation affects, so `cargo bench` output doubles as an ablation
//! report.

use criterion::{criterion_group, criterion_main, Criterion};
use perconf_core::{
    ConfidenceEstimator, JrsConfig, JrsEstimator, MissPolicy, PerceptronCe, PerceptronCeConfig,
};
use perconf_experiments::common::{controller, perceptron, trace_eval, PredictorKind};
use perconf_pipeline::{PipelineConfig, Simulation};
use std::hint::black_box;
use std::time::Duration;

fn quality(ce: &mut dyn ConfidenceEstimator) -> (f64, f64) {
    let wl = perconf_workload::spec2000_config("vpr").unwrap();
    let mut p = PredictorKind::BimodalGshare.build();
    let (cm, _) = trace_eval(&wl, p.as_mut(), ce, 20_000, 60_000, None);
    (cm.pvn(), cm.spec())
}

fn jrs_miss_policy(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation-jrs-miss-policy");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(3));
    g.warm_up_time(Duration::from_secs(1));
    for policy in [MissPolicy::Reset, MissPolicy::Decrement] {
        let mut probe = JrsEstimator::new(JrsConfig {
            miss_policy: policy,
            ..JrsConfig::default()
        });
        let (pvn, spec) = quality(&mut probe);
        println!(
            "jrs {policy:?}: PVN={:.0}% Spec={:.0}%",
            pvn * 100.0,
            spec * 100.0
        );
        g.bench_function(format!("{policy:?}"), |b| {
            b.iter(|| {
                let mut ce = JrsEstimator::new(JrsConfig {
                    miss_policy: policy,
                    ..JrsConfig::default()
                });
                black_box(quality(&mut ce))
            });
        });
    }
    g.finish();
}

fn perceptron_train_threshold(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation-train-threshold");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(3));
    g.warm_up_time(Duration::from_secs(1));
    for t in [0i32, 14, 75, 150] {
        let mut probe = PerceptronCe::new(PerceptronCeConfig {
            train_threshold: t,
            ..PerceptronCeConfig::default()
        });
        let (pvn, spec) = quality(&mut probe);
        println!("T={t}: PVN={:.0}% Spec={:.0}%", pvn * 100.0, spec * 100.0);
        g.bench_function(format!("T{t}"), |b| {
            b.iter(|| {
                let mut ce = PerceptronCe::new(PerceptronCeConfig {
                    train_threshold: t,
                    ..PerceptronCeConfig::default()
                });
                black_box(quality(&mut ce))
            });
        });
    }
    g.finish();
}

fn gating_counter_threshold(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation-pl-threshold");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(3));
    g.warm_up_time(Duration::from_secs(1));
    let wl = perconf_workload::spec2000_config("twolf").unwrap();
    for pl in [1u32, 2, 3] {
        g.bench_function(format!("PL{pl}"), |b| {
            b.iter(|| {
                let ctl = controller(PredictorKind::BimodalGshare, perceptron(0));
                let mut sim = Simulation::new(PipelineConfig::deep().gated(pl), &wl, ctl);
                sim.warmup(10_000);
                black_box(sim.run(30_000).gated_cycles)
            });
        });
    }
    g.finish();
}

fn reversal_band(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation-reversal-threshold");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(3));
    g.warm_up_time(Duration::from_secs(1));
    let wl = perconf_workload::spec2000_config("mcf").unwrap();
    for rev in [30i32, 90, 150] {
        g.bench_function(format!("rev{rev}"), |b| {
            b.iter(|| {
                let ctl = controller(
                    PredictorKind::BimodalGshare,
                    Box::new(PerceptronCe::new(PerceptronCeConfig {
                        lambda: -30,
                        reverse_lambda: Some(rev),
                        ..PerceptronCeConfig::default()
                    })),
                );
                let mut sim = Simulation::new(PipelineConfig::deep().gated(2), &wl, ctl);
                sim.warmup(10_000);
                let s = sim.run(30_000);
                black_box((s.reversals_good, s.reversals_bad))
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    jrs_miss_policy,
    perceptron_train_threshold,
    gating_counter_threshold,
    reversal_band
);
criterion_main!(benches);
