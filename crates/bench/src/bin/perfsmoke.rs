//! `perfsmoke` — the CI perf-gating lane.
//!
//! ```text
//! perfsmoke [--out <file>] [--baseline <file>] [--runs <k>]
//! perfsmoke --write-baseline [--baseline <file>] [--runs <k>]
//! ```
//!
//! Runs a small fixed set of wall-clock probes (best-of-`k`, default
//! 9), writes the measurements to `--out` (default `BENCH_ci.json`,
//! uploaded as a CI artifact) and compares every **`sim/` probe** —
//! the plain, faults-wrapped, and counters-enabled cycle-loop paths —
//! against the checked-in baseline (default
//! `results/BENCH_baseline.json`). Exits non-zero when any gated
//! probe regresses more than 10%.
//!
//! Raw wall-clock numbers are not comparable across machines, so every
//! probe is *normalized* by a pure-CPU calibration loop measured in the
//! same process: `normalized = probe_secs / calibration_secs`. The
//! gate compares normalized values, which makes the checked-in baseline
//! portable across CI runner generations (it cancels the machine's
//! scalar speed, not its microarchitectural quirks — hence the generous
//! 10% threshold and best-of-k minimum to reject scheduler noise).
//!
//! Regenerating the baseline (after an intentional perf change, on a
//! quiet machine):
//!
//! ```text
//! cargo run --release -p perconf-bench --bin perfsmoke -- --write-baseline
//! ```
//!
//! The default build compiles the event tracer out, so the pipeline
//! probe here is the *tracing-disabled* number — the one the
//! zero-overhead contract is about.

#![forbid(unsafe_code)]
// Wall-clock probes are this binary's whole purpose.
#![allow(clippy::disallowed_methods)]

use perconf_pipeline::{PipelineConfig, Simulation};
use serde::{Deserialize, Serialize};
use std::hint::black_box;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

/// Allowed relative regression of a gated probe before CI fails.
const THRESHOLD: f64 = 0.10;

/// The probe that must exist in every baseline; the gate additionally
/// covers any other `sim/` probe present in both the run and the
/// baseline (the faults-wrapped and counters-enabled cycle-loop paths,
/// so the zero-overhead claims stay pinned as the layout changes).
const GATED: &str = "sim/cycle-throughput-20k";

/// Probes whose names start with this prefix are gated when the
/// baseline has them too.
const GATED_PREFIX: &str = "sim/";

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Probe {
    name: String,
    /// Best-of-k wall seconds for one probe pass.
    secs: f64,
    /// `secs / calibration_secs` — the machine-portable number.
    normalized: f64,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Report {
    /// Best-of-k wall seconds of the calibration loop.
    calibration_secs: f64,
    probes: Vec<Probe>,
}

impl Report {
    fn probe(&self, name: &str) -> Option<&Probe> {
        self.probes.iter().find(|p| p.name == name)
    }
}

/// One timed pass of `f`, in seconds.
fn time_once<F: FnMut()>(f: &mut F) -> f64 {
    let t = Instant::now();
    f();
    t.elapsed().as_secs_f64()
}

/// Measures everything together, *interleaved*: each round times the
/// calibration loop then every probe once, and each keeps its
/// best-of-rounds minimum. Interleaving means the calibration and the
/// probes sample the same wall-clock window, so transient co-tenant
/// interference (common on shared CI runners) inflates both and mostly
/// cancels out of the normalized ratio; the minimum then discards any
/// round that was hit anyway.
fn measure(runs: u32) -> Report {
    let buf: Vec<u8> = (0..1 << 20).map(|i| (i % 251) as u8).collect();
    let mut acc = 0u64;
    // Pure-CPU calibration loop: FNV-hash a 1 MiB buffer 16 times. No
    // allocation, no branchy simulation — just a stable scalar
    // workload that tracks the machine's single-thread speed.
    let mut cal = || {
        for _ in 0..16 {
            acc = acc.wrapping_add(perconf_bpred::digest_bytes(&buf));
        }
    };

    let wl = perconf_workload::spec2000_config("gcc").expect("gcc workload");
    let mut sim_probe = || {
        let mut sim = Simulation::with_defaults(PipelineConfig::deep(), &wl);
        black_box(sim.run(20_000).cycles);
    };
    // The faults-wrapped cycle loop: both structures behind bit-upset
    // wrappers, the configuration every `repro faults` cell runs. The
    // wrappers sit on the table-walk path, so layout changes that help
    // the plain loop but regress the wrapped one show up here.
    let mut faulted_probe = || {
        use perconf_bpred::SimPredictor;
        use perconf_core::{SimEstimator, SpeculationController};
        use perconf_faults::{FaultConfig, FaultyEstimator, FaultyPredictor};
        let cfg_p = FaultConfig {
            rate: 1e-4,
            history_rate: 1e-4,
            seed: 0x11,
        };
        let cfg_e = FaultConfig::state_only(1e-4, 0x22);
        let ctl = SpeculationController::new(
            Box::new(FaultyPredictor::new(
                perconf_bpred::baseline_bimodal_gshare(),
                &cfg_p,
            )) as Box<dyn SimPredictor>,
            Box::new(FaultyEstimator::new(
                Box::new(perconf_core::PerceptronCe::new(
                    perconf_core::PerceptronCeConfig::default(),
                )),
                &cfg_e,
            )) as Box<dyn SimEstimator>,
        );
        let mut sim = Simulation::new(PipelineConfig::deep().gated(1), &wl, ctl);
        black_box(sim.run(20_000).cycles);
    };
    // The counters-enabled cycle loop: runtime tracing switched on (a
    // ZST no-op unless built with the `trace` feature — this probe
    // times the *default-build* zero-overhead path CI actually gates)
    // plus the on-demand `CounterSnapshot` materialisation every sweep
    // cell performs.
    let mut counters_probe = || {
        use perconf_obs::{TraceLevel, Tracer};
        let mut sim = Simulation::with_defaults(PipelineConfig::deep(), &wl);
        let tracer = Tracer::new();
        tracer.set_level(TraceLevel::Standard);
        sim.set_tracer(tracer);
        black_box(sim.run(20_000).cycles);
        black_box(sim.counters());
    };
    let mut pred_probe = || {
        use perconf_bpred::BranchPredictor;
        let mut p = perconf_bpred::baseline_bimodal_gshare();
        for i in 0..10_000u64 {
            let pc = (i * 29) % 4096 * 4;
            let hist = i.wrapping_mul(0x9E37_79B9);
            let pred = p.predict(pc, hist);
            p.train(pc, hist, pred ^ (i % 7 == 0));
        }
        black_box(&p);
    };
    let mut est_probe = || {
        use perconf_core::ConfidenceEstimator;
        let mut ce = perconf_core::PerceptronCe::new(perconf_core::PerceptronCeConfig::default());
        for i in 0..10_000u64 {
            let ctx = perconf_core::EstimateCtx {
                pc: (i * 29) % 4096 * 4,
                history: i.wrapping_mul(0x9E37_79B9),
                predicted_taken: i % 3 == 0,
            };
            let est = ce.estimate(&ctx);
            ce.train(&ctx, est, i % 11 == 0);
        }
        black_box(&ce);
    };

    // Untimed warm-up pass of everything.
    cal();
    sim_probe();
    faulted_probe();
    counters_probe();
    pred_probe();
    est_probe();

    let mut cal_best = f64::INFINITY;
    let mut best = [f64::INFINITY; 5];
    for _ in 0..runs.max(1) {
        cal_best = cal_best.min(time_once(&mut cal));
        best[0] = best[0].min(time_once(&mut sim_probe));
        best[1] = best[1].min(time_once(&mut faulted_probe));
        best[2] = best[2].min(time_once(&mut counters_probe));
        best[3] = best[3].min(time_once(&mut pred_probe));
        best[4] = best[4].min(time_once(&mut est_probe));
    }
    black_box(acc);

    let names = [
        GATED,
        "sim/cycle-throughput-faulted-20k",
        "sim/cycle-throughput-counters-20k",
        "predictor/hybrid-10k",
        "estimator/perceptron-ce-10k",
    ];
    Report {
        calibration_secs: cal_best,
        probes: names
            .iter()
            .zip(best)
            .map(|(name, secs)| Probe {
                name: (*name).to_owned(),
                secs,
                normalized: secs / cal_best,
            })
            .collect(),
    }
}

fn write_json(path: &PathBuf, report: &Report) -> Result<(), String> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)
                .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
        }
    }
    let body =
        serde_json::to_string_pretty(report).map_err(|e| format!("cannot serialize: {e}"))?;
    let tmp = path.with_extension("json.tmp");
    std::fs::write(&tmp, body)
        .and_then(|()| std::fs::rename(&tmp, path))
        .map_err(|e| format!("cannot write {}: {e}", path.display()))
}

fn run() -> Result<(), String> {
    let mut out = PathBuf::from("BENCH_ci.json");
    let mut baseline = PathBuf::from("results/BENCH_baseline.json");
    let mut write_baseline = false;
    let mut runs = 9u32;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => out = PathBuf::from(it.next().ok_or("--out needs a file")?),
            "--baseline" => baseline = PathBuf::from(it.next().ok_or("--baseline needs a file")?),
            "--write-baseline" => write_baseline = true,
            "--runs" => {
                runs = it
                    .next()
                    .ok_or("--runs needs a count")?
                    .parse()
                    .map_err(|e| format!("--runs: {e}"))?;
            }
            other => {
                return Err(format!(
                    "unknown argument: {other}\nusage: perfsmoke [--out <file>] [--baseline <file>] [--write-baseline] [--runs <k>]"
                ))
            }
        }
    }

    let report = measure(runs);
    eprintln!("calibration: {:.3} ms", report.calibration_secs * 1e3);
    for p in &report.probes {
        eprintln!(
            "  {:<32} {:>9.3} ms  (normalized {:.2})",
            p.name,
            p.secs * 1e3,
            p.normalized
        );
    }

    if write_baseline {
        write_json(&baseline, &report)?;
        eprintln!("baseline -> {}", baseline.display());
        return Ok(());
    }

    write_json(&out, &report)?;
    eprintln!("report -> {}", out.display());

    let base_body = std::fs::read_to_string(&baseline).map_err(|e| {
        format!(
            "cannot read baseline {}: {e}\nregenerate it with: cargo run --release -p perconf-bench --bin perfsmoke -- --write-baseline",
            baseline.display()
        )
    })?;
    let base: Report = serde_json::from_str(&base_body)
        .map_err(|e| format!("malformed baseline {}: {e}", baseline.display()))?;

    base.probe(GATED).ok_or_else(|| {
        format!(
            "probe {GATED} missing from baseline {} — regenerate it",
            baseline.display()
        )
    })?;
    let mut failed = Vec::new();
    for now in report
        .probes
        .iter()
        .filter(|p| p.name.starts_with(GATED_PREFIX))
    {
        // A probe absent from the baseline is newly added: report it,
        // gate it once the baseline is regenerated.
        let Some(was) = base.probe(&now.name) else {
            eprintln!("gate {}: not in baseline, skipped", now.name);
            continue;
        };
        let ratio = now.normalized / was.normalized;
        eprintln!(
            "gate {}: normalized {:.2} vs baseline {:.2} (x{ratio:.3}, threshold x{:.3})",
            now.name,
            now.normalized,
            was.normalized,
            1.0 + THRESHOLD
        );
        if ratio > 1.0 + THRESHOLD {
            failed.push(format!(
                "{} is {:.1}% slower than the baseline (limit {:.0}%)",
                now.name,
                (ratio - 1.0) * 100.0,
                THRESHOLD * 100.0
            ));
        }
    }
    if !failed.is_empty() {
        return Err(format!(
            "performance gate failed: {}. \
             If this slowdown is intentional, regenerate the baseline: \
             cargo run --release -p perconf-bench --bin perfsmoke -- --write-baseline",
            failed.join("; ")
        ));
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
