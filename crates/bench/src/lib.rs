//! Criterion benchmark harness for the perconf workspace.
//!
//! The benches live in `benches/`:
//!
//! * `tables` — one group per paper table (2–6), running the same code
//!   paths the `repro` binary uses at reduced scale;
//! * `figures` — Figures 4–9 and the §5.4.2 latency study;
//! * `micro` — predictor/estimator lookup+train throughput, workload
//!   generation rate, cache access rate, simulator cycle throughput.
//!
//! Run with `cargo bench --workspace`.

#![forbid(unsafe_code)]
